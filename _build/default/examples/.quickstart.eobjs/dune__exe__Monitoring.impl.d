examples/monitoring.ml: Format Fun List Printf Spec View Wolves_core Wolves_engine Wolves_provenance Wolves_query Wolves_workflow Wolves_workload
