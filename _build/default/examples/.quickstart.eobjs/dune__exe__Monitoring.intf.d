examples/monitoring.mli:
