examples/pegasus_audit.ml: Format List Option Printf Spec String View Wolves_cli Wolves_core Wolves_provenance Wolves_workflow Wolves_workload
