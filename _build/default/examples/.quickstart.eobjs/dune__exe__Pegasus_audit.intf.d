examples/pegasus_audit.mli:
