examples/phylogenomics.ml: Examples Format List Option Out_channel Printf Spec View Wolves_cli Wolves_core Wolves_graph Wolves_provenance Wolves_workflow
