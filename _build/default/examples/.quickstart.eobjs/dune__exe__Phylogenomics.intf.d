examples/phylogenomics.mli:
