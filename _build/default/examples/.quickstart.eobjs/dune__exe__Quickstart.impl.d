examples/quickstart.ml: Format Spec View Wolves_cli Wolves_core Wolves_moml Wolves_workflow
