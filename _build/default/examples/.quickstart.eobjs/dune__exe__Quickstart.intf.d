examples/quickstart.mli:
