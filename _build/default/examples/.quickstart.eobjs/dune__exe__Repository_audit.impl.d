examples/repository_audit.ml: Filename Format List Printf Wolves_cli Wolves_core Wolves_repository
