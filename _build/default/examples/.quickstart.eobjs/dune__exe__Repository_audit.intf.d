examples/repository_audit.mli:
