examples/view_designer.ml: Examples Format List Option Printf Spec View Wolves_cli Wolves_core Wolves_moml Wolves_workflow Wolves_workload
