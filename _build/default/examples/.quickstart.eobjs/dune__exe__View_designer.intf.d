examples/view_designer.mli:
