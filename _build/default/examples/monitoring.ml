(* Operating a workflow: execute it many times on the simulation engine,
   accumulate the runs in the provenance store, and use views + queries to
   answer the questions an operator actually asks — with a sound view, so
   the answers are right.

   Run with: dune exec examples/monitoring.exe *)

open Wolves_workflow
module Engine = Wolves_engine.Engine
module Store = Wolves_provenance.Store
module Query = Wolves_query.Query
module Suggest = Wolves_core.Suggest
module S = Wolves_core.Soundness
module Gen = Wolves_workload.Generate

let rule title = Printf.printf "\n=== %s ===\n" title

let () =
  (* A 60-task nightly pipeline. *)
  let spec = Gen.generate Gen.Pipeline ~seed:42 ~size:60 in
  Printf.printf "workflow: %d tasks, %d dependencies\n" (Spec.n_tasks spec)
    (Spec.n_dependencies spec);

  rule "A sound, compressive operator view (automatic construction)";
  let view =
    Suggest.view_of_groups spec (Suggest.optimal_sound_banding spec ~max_size:8)
  in
  assert (S.is_sound view);
  Printf.printf "%d composites (%.1fx compression), sound by construction\n"
    (View.n_composites view) (View.compression view);

  rule "One month of nightly runs (failure rate 4%, 4 workers)";
  let store = Store.create spec in
  let makespans = ref [] in
  for night = 1 to 30 do
    let config =
      { Engine.default_config with
        Engine.workers = 4;
        failure_rate = 0.04;
        seed = night;
        duration = (fun t -> 1.0 +. float_of_int (t mod 7)) }
    in
    let trace = Engine.run ~config spec in
    makespans := trace.Engine.makespan :: !makespans;
    match Store.record_run store (Engine.statuses trace) with
    | Ok _ -> ()
    | Error msg -> failwith msg
  done;
  let clean_nights =
    List.length
      (List.filter
         (fun id ->
           List.for_all
             (fun t -> Store.status store id t = Store.Succeeded)
             (Spec.tasks spec))
         (List.init (Store.n_runs store) Fun.id))
  in
  Printf.printf "30 runs recorded; %d fully clean nights\n" clean_nights;
  Printf.printf "mean makespan %.1f (critical path %.1f)\n"
    (List.fold_left ( +. ) 0.0 !makespans /. 30.0)
    (Engine.critical_path_length
       { Engine.default_config with
         Engine.duration = (fun t -> 1.0 +. float_of_int (t mod 7)) }
       spec);

  rule "Flakiest tasks (lowest success rates)";
  let rates =
    List.map (fun t -> (Store.success_rate store t, t)) (Spec.tasks spec)
  in
  List.iteri
    (fun i (rate, t) ->
      if i < 5 then
        Printf.printf "  %-12s %.0f%%\n" (Spec.task_name spec t) (100.0 *. rate))
    (List.sort compare rates);

  rule "Cross-run influence: does the first stage actually feed the last?";
  let source = List.hd (Spec.tasks spec) in
  let sink = Spec.n_tasks spec - 1 in
  let influenced = Store.runs_where_influences store source sink in
  Printf.printf
    "data from %s reached %s in %d of 30 runs (any failed intermediate\n\
     breaks the chain)\n"
    (Spec.task_name spec source) (Spec.task_name spec sink)
    (List.length influenced);

  rule "Ad-hoc provenance queries over the (sound) view";
  List.iter
    (fun q ->
      match Query.eval_names view q with
      | Ok names -> Printf.printf "  %-55s -> %d tasks\n" q (List.length names)
      | Error e -> Format.printf "  %s -> error %a@." q Query.pp_error e)
    [ Printf.sprintf "ancestors('%s')" (Spec.task_name spec sink);
      Printf.sprintf "composites(ancestors('%s'))" (Spec.task_name spec sink);
      Printf.sprintf
        "composites(ancestors('%s')) - ancestors('%s')"
        (Spec.task_name spec sink) (Spec.task_name spec sink);
      "sources & unsound" ];
  Printf.printf
    "\nthe over-report line is the price of composite granularity; because\n\
     the view is sound it contains no false *dependencies*, only coarser\n\
     grouping (and 'sources & unsound' is empty as it should be)\n"
