(* Auditing the canonical scientific workflows: generate the Pegasus suite
   shapes at realistic scale, draw the per-stage views a domain user would,
   measure the provenance damage, and repair.

   Run with: dune exec examples/pegasus_audit.exe *)

open Wolves_workflow
module T = Wolves_workload.Templates
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module P = Wolves_provenance.Provenance
module Table = Wolves_cli.Table

let () =
  print_endline
    "Per-stage views of the Pegasus workflow shapes: the abstraction every";
  print_endline
    "domain user draws (\"all the mapping tasks\"), audited by WOLVES.\n";

  let rows =
    List.map
      (fun suite ->
        let spec = T.generate suite ~scale:16 in
        let view = T.natural_view suite spec in
        let report = S.validate view in
        let before = P.evaluate_view_items view in
        let corrected, outcomes = C.correct C.Strong view in
        let after = P.evaluate_view_items corrected in
        assert (after.P.spurious = 0);
        [ T.suite_name suite;
          string_of_int (Spec.n_tasks spec);
          Printf.sprintf "%d/%d"
            (List.length report.S.unsound)
            (View.n_composites view);
          Printf.sprintf "%.1f%%" (100.0 *. P.spurious_rate before);
          string_of_int (List.length outcomes);
          string_of_int (View.n_composites corrected) ])
      T.all_suites
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "suite"; "tasks"; "unsound stages"; "wrong provenance answers";
           "stages split"; "composites after" ]
       rows);

  (* Zoom into one concrete lie: epigenomics lanes. *)
  let spec = T.generate T.Epigenomics ~scale:4 in
  let view = T.natural_view T.Epigenomics spec in
  let t n = Spec.task_of_name_exn spec n in
  let item = { P.producer = t "fastQSplit"; consumer = t "filterContams_0" } in
  let target =
    Option.get (View.composite_of_name view "map")
  in
  Printf.printf
    "\nexample: does lane 0's filtered data feed the 'map' stage's output?\n";
  Printf.printf "  view says: %b  (stage-level path exists)\n"
    (P.view_claims_item view item target);
  (match P.explain view item target with
   | P.Genuine path ->
     Printf.printf "  and it is genuine: %s\n"
       (String.concat " -> " (List.map (Spec.task_name spec) path))
   | P.Spurious comps ->
     Printf.printf "  but it is SPURIOUS, misled by: %s\n"
       (String.concat " -> " (List.map (View.composite_name view) comps))
   | P.Not_claimed -> print_endline "  not claimed");
  (* The actually wrong claim: lane 0 data in the provenance of lane 1's
     map output item. *)
  let lane1_item = { P.producer = t "map_1"; consumer = t "mapMerge" } in
  let stats = P.evaluate_view_items view in
  Printf.printf
    "\nat item granularity, %d of %d provenance answers are wrong (%.1f%%),\n"
    stats.P.spurious stats.P.queries
    (100.0 *. P.spurious_rate stats);
  Printf.printf
    "e.g. lane 0 items are reported in the provenance of %s although the\n"
    (Format.asprintf "%a" (P.pp_item spec) lane1_item);
  print_endline "lanes never touch. After strong correction: 0 wrong answers."
