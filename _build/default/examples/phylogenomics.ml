(* The paper's running example end to end (Figure 1): phylogenomic inference
   of protein biological functions.

   Reproduces the introduction's provenance walkthrough: the user checks the
   provenance of the formatted alignment produced by composite (18) with
   respect to the view, gets a wrong answer that includes annotation data
   (composite 14 / task 3), and WOLVES pinpoints and repairs the unsound
   composite (16).

   Run with: dune exec examples/phylogenomics.exe *)

open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module P = Wolves_provenance.Provenance
module Opm = Wolves_provenance.Opm
module Render = Wolves_cli.Render
module Bitset = Wolves_graph.Bitset

let rule title =
  Printf.printf "\n=== %s ===\n" title

let () =
  let spec, view = Examples.figure1 () in

  rule "Workflow specification (Figure 1a)";
  print_string (Render.spec_summary spec);

  rule "User-defined view (Figure 1b)";
  print_string (Render.view_summary view);

  rule "Provenance analysis on the raw view";
  let c18 = Examples.figure1_query_composite view in
  print_string (Render.provenance_summary view c18);

  (* The specific wrong conclusion from the paper: annotation data (the item
     flowing 3 -> 4) is reported as provenance of the formatted alignment. *)
  let bad_item =
    { P.producer = Spec.task_of_name_exn spec "3:Extract Annotations";
      P.consumer = Spec.task_of_name_exn spec "4:Curate Annotations" }
  in
  Format.printf "paper's example item (%a): view says %b, ground truth %b@."
    (P.pp_item spec) bad_item
    (P.view_claims_item view bad_item c18)
    (P.truth_for_composite view bad_item c18);

  rule "Validator (Prop 2.1)";
  Format.printf "%a@." S.pp_report (S.validate view);

  rule "Correction under all three criteria";
  List.iter
    (fun criterion ->
      let (corrected, outcomes), elapsed =
        Render.time (fun () -> C.correct criterion view)
      in
      Format.printf "%a: %d composites -> %d composites in %.5fs@."
        C.pp_criterion criterion (View.n_composites view)
        (View.n_composites corrected) elapsed;
      List.iter
        (fun (c, o) ->
          Format.printf "  split %s into %d parts@."
            (View.composite_name view c)
            (List.length o.C.parts))
        outcomes)
    [ C.Weak; C.Strong; C.Optimal ];

  rule "Provenance on the corrected view";
  let corrected, _ = C.correct C.Strong view in
  let c18' = Option.get (View.composite_of_name corrected "18:Format Alignment") in
  print_string (Render.provenance_summary corrected c18');
  let stats = P.evaluate_view corrected in
  Format.printf "audit: %d queries, %d spurious, %d missing@." stats.P.queries
    stats.P.spurious stats.P.missing;

  rule "Alternative: merge-based resolution (extension)";
  let merged_view, merged =
    C.merge_resolve view (Examples.figure1_unsound_composite view)
  in
  Format.printf
    "merging instead of splitting also restores soundness (%b) but hides %d \
     tasks in %S@."
    (S.is_sound merged_view)
    (List.length (View.members merged_view merged))
    (View.composite_name merged_view merged);

  rule "OPM provenance graph";
  let opm = Opm.of_spec spec in
  Format.printf "expanded OPM graph: %d processes, %d artifacts@."
    (Opm.n_processes opm) (Opm.n_artifacts opm);

  (* DOT artifacts for inspection with Graphviz. *)
  let out = "phylogenomics_view.dot" in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Render.view_dot view));
  Format.printf "wrote %s (unsound composite drawn red)@." out
