(* Quickstart: build a workflow, define a view, validate it, correct it.

   Run with: dune exec examples/quickstart.exe *)

open Wolves_workflow
module Soundness = Wolves_core.Soundness
module Corrector = Wolves_core.Corrector
module Render = Wolves_cli.Render

let () =
  (* 1. Describe a small ETL-style workflow: two ingest branches that are
     cleaned separately and joined into a report. *)
  let spec =
    Spec.of_tasks_exn ~name:"etl"
      [ "fetch-sales"; "fetch-inventory"; "clean-sales"; "clean-inventory";
        "join"; "report" ]
      [ ("fetch-sales", "clean-sales");
        ("fetch-inventory", "clean-inventory");
        ("clean-sales", "join");
        ("clean-inventory", "join");
        ("join", "report") ]
  in
  print_string (Render.spec_summary spec);

  (* 2. A plausible-looking view: group the two "clean" steps together. *)
  let view =
    View.make_exn spec
      [ ("Ingest", [ "fetch-sales"; "fetch-inventory" ]);
        ("Clean", [ "clean-sales"; "clean-inventory" ]);
        ("Publish", [ "join"; "report" ]) ]
  in
  print_newline ();
  print_string (Render.view_summary view);

  (* 3. Validate: "Clean" is unsound — sales data never flows into the
     inventory cleaning step, yet the view implies it might. *)
  let report = Soundness.validate view in
  Format.printf "@.%a@.@." Soundness.pp_report report;

  (* 4. Correct it (strong local optimality) and validate again. *)
  let corrected, outcomes = Corrector.correct Corrector.Strong view in
  print_string (Render.correction_summary view outcomes);
  print_newline ();
  print_string (Render.view_summary corrected);
  assert (Soundness.is_sound corrected);

  (* 5. Round-trip through MoML, the demo's interchange format. *)
  let moml = Wolves_moml.Moml.to_string corrected in
  (match Wolves_moml.Moml.of_string moml with
   | Ok (_, reloaded) ->
     Format.printf "@.MoML round-trip OK (%d composites)@."
       (View.n_composites reloaded)
   | Error e -> Format.printf "@.MoML error: %a@." Wolves_moml.Moml.pp_error e)
