(* The demo's interactive loop, scripted: a user designs a view, WOLVES
   validates it, suggests a correction with estimated cost (§3.2), the user
   gives feedback by merging some of the resulting composites (Workflow View
   Feedback module), and the loop re-validates until the user is satisfied.

   Run with: dune exec examples/view_designer.exe *)

open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module E = Wolves_core.Estimator
module Q = Wolves_core.Quality
module Render = Wolves_cli.Render
module Gen = Wolves_workload.Generate
module Prng = Wolves_workload.Prng

let rule title = Printf.printf "\n=== %s ===\n" title

(* Build an estimation history the way the demo did: from previously
   corrected workflows, grouped by size and substructure. *)
let build_history () =
  let history = E.create () in
  let rng = Prng.create 77 in
  for _ = 1 to 40 do
    let seed = Prng.int rng 1_000_000 in
    let family = Prng.pick rng Gen.all_families in
    let spec = Gen.generate family ~seed ~size:(12 + Prng.int rng 8) in
    let members =
      List.filteri (fun i _ -> i < 8) (Prng.shuffle rng (Spec.tasks spec))
    in
    let features = E.features_of spec members in
    List.iter
      (fun criterion ->
        let outcome, elapsed =
          Render.time (fun () -> C.split_subset criterion spec members)
        in
        let optimal = C.split_subset C.Optimal spec members in
        E.record history features criterion ~runtime:elapsed
          ~quality:
            (Q.ratio
               ~optimal_parts:(List.length optimal.C.parts)
               ~parts:(List.length outcome.C.parts)))
      [ C.Weak; C.Strong; C.Optimal ]
  done;
  history

let () =
  (* The user imports a workflow and sketches a coarse view. *)
  let spec, view = Examples.figure3 () in
  rule "Draft view";
  print_string (Render.view_summary view);

  rule "Validation";
  Format.printf "%a@." S.pp_report (S.validate view);

  (* WOLVES estimates cost/quality per criterion before the user picks one
     (demo: "we provide the estimated time and quality for each approach"). *)
  rule "Estimated cost of each corrector";
  let history = build_history () in
  let t = Examples.figure3_composite view in
  let features = E.features_of spec (View.members view t) in
  List.iter
    (fun criterion ->
      let est = E.estimate history features criterion in
      Format.printf "%a: %a@." C.pp_criterion criterion E.pp_estimate est)
    [ C.Weak; C.Strong; C.Optimal ];

  (* The user picks the strong corrector. *)
  rule "Correction (strong)";
  let corrected, outcome = C.split_composite C.Strong view t in
  print_string (Render.correction_summary view [ (t, outcome) ]);
  print_string (Render.view_summary corrected);

  (* Feedback round: the user merges two of the new composites to taste —
     re-validation flags the result immediately. *)
  rule "User feedback: merge two suggested composites";
  let part0 = Option.get (View.composite_of_name corrected "T/0") in
  let part1 = Option.get (View.composite_of_name corrected "T/1") in
  let tweaked = View.merge_exn corrected [ part0; part1 ] in
  Format.printf "%a@." S.pp_report (S.validate tweaked);

  (* Unsound again: WOLVES re-corrects just that composite; the loop ends
     when validation is clean. *)
  rule "Re-correction after feedback";
  let rec settle view round =
    match (S.validate view).S.unsound with
    | [] ->
      Printf.printf "round %d: view is sound — user accepts\n" round;
      view
    | (c, _) :: _ ->
      Printf.printf "round %d: %s still unsound, splitting\n" round
        (View.composite_name view c);
      let view', _ = C.split_composite C.Strong view c in
      settle view' (round + 1)
  in
  let final = settle tweaked 1 in
  print_string (Render.view_summary final);

  (* Export the approved view. *)
  let out = "designed_view.moml" in
  (match Wolves_moml.Moml.save out final with
   | Ok () -> Printf.printf "\nsaved the approved view to %s\n" out
   | Error e -> Format.printf "save failed: %a@." Wolves_moml.Moml.pp_error e)
