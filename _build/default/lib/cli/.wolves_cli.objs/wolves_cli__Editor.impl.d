lib/cli/editor.ml: Buffer List Option Printf Spec String Wolves_core Wolves_graph Wolves_workflow
