lib/cli/editor.mli: View Wolves_core Wolves_workflow
