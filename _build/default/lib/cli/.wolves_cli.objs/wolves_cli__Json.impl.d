lib/cli/json.ml: Buffer Char Float List Printf String
