lib/cli/json.mli:
