lib/cli/render.ml: Buffer Format List Printf Spec String Unix View Wolves_core Wolves_graph Wolves_provenance Wolves_workflow
