lib/cli/render.mli: Spec View Wolves_core Wolves_workflow
