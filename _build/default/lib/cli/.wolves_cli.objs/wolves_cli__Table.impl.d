lib/cli/table.ml: List Printf String
