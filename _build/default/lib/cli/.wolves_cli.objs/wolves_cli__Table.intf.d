lib/cli/table.mli:
