open Wolves_workflow
module Session = Wolves_core.Session
module Soundness = Wolves_core.Soundness
module Corrector = Wolves_core.Corrector
module Bitset = Wolves_graph.Bitset

type t = {
  e_session : Session.t;
}

let create view = { e_session = Session.start view }

let session e = e.e_session

(* Split a command line into words; double quotes group words and may
   contain escaped quotes. *)
let tokenize line =
  let n = String.length line in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let in_word = ref false in
  let flush () =
    if !in_word then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf;
      in_word := false
    end
  in
  let i = ref 0 in
  let error = ref None in
  while !error = None && !i < n do
    (match line.[!i] with
     | ' ' | '\t' -> flush ()
     | '#' ->
       flush ();
       i := n
     | '"' ->
       in_word := true;
       incr i;
       let closed = ref false in
       while (not !closed) && !i < n do
         match line.[!i] with
         | '"' -> closed := true
         | '\\' when !i + 1 < n ->
           Buffer.add_char buf line.[!i + 1];
           incr i;
           incr i
         | c ->
           Buffer.add_char buf c;
           incr i
       done;
       if not !closed then error := Some "unterminated quote"
     | c ->
       in_word := true;
       Buffer.add_char buf c);
    incr i
  done;
  flush ();
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev !words)

let show e =
  let s = e.e_session in
  let spec = Session.spec s in
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      let members =
        String.concat ", "
          (List.map (Spec.task_name spec)
             (Option.value ~default:[] (Session.members s name)))
      in
      let verdict =
        match Session.verdict s name with
        | Some Session.Sound -> "[sound]  "
        | Some (Session.Unsound _) -> "[UNSOUND]"
        | None -> "[?]      "
      in
      Buffer.add_string buf (Printf.sprintf "%s %s = {%s}\n" verdict name members))
    (Session.composite_names s);
  Buffer.add_string buf
    (if Session.is_sound s then "view is sound\n" else "view is UNSOUND\n");
  Buffer.contents buf

let resolve_task s name =
  match Spec.task_of_name (Session.spec s) name with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "unknown task %S" name)

let help =
  "commands: show | create NAME TASK... | move TASK NAME | dissolve NAME | \
   rename OLD NEW | correct NAME CRITERION | diagnose NAME | undo | help | quit"

let execute e line =
  let s = e.e_session in
  match tokenize line with
  | Error msg -> `Error msg
  | Ok [] -> `Ok ""
  | Ok (command :: args) ->
    (match (command, args) with
     | "quit", [] | "exit", [] -> `Quit
     | "help", [] -> `Ok help
     | "show", [] -> `Ok (show e)
     | "create", name :: (_ :: _ as task_names) ->
       let rec resolve acc = function
         | [] -> Ok (List.rev acc)
         | tn :: rest ->
           (match resolve_task s tn with
            | Ok t -> resolve (t :: acc) rest
            | Error _ as err -> err)
       in
       (match resolve [] task_names with
        | Error msg -> `Error msg
        | Ok tasks ->
          (match Session.create_composite s ~name tasks with
           | Ok () -> `Ok (Printf.sprintf "created %S" name)
           | Error msg -> `Error msg))
     | "move", [ task_name; target ] ->
       (match resolve_task s task_name with
        | Error msg -> `Error msg
        | Ok task ->
          (match Session.move_task s task ~into:target with
           | Ok () -> `Ok (Printf.sprintf "moved %s into %S" task_name target)
           | Error msg -> `Error msg))
     | "dissolve", [ name ] ->
       (match Session.dissolve s name with
        | Ok () -> `Ok (Printf.sprintf "dissolved %S" name)
        | Error msg -> `Error msg)
     | "rename", [ old_name; new_name ] ->
       (match Session.rename s old_name ~into:new_name with
        | Ok () -> `Ok (Printf.sprintf "renamed %S to %S" old_name new_name)
        | Error msg -> `Error msg)
     | "correct", [ name; criterion_name ] ->
       (match Corrector.criterion_of_string criterion_name with
        | None -> `Error (Printf.sprintf "unknown criterion %S" criterion_name)
        | Some criterion ->
          (match Session.apply_correction s name criterion with
           | Ok parts -> `Ok (Printf.sprintf "split %S into %d parts" name parts)
           | Error msg -> `Error msg))
     | "diagnose", [ name ] ->
       (match Session.members s name with
        | None -> `Error (Printf.sprintf "no composite named %S" name)
        | Some members ->
          let spec = Session.spec s in
          let set = Bitset.of_list (Spec.n_tasks spec) members in
          (match Soundness.minimal_unsound_core spec set with
           | None -> `Ok (Printf.sprintf "%S is sound" name)
           | Some core ->
             `Ok
               (Printf.sprintf "minimal unsound core of %S: {%s}" name
                  (String.concat ", "
                     (List.map (Spec.task_name spec) (Bitset.elements core))))))
     | "undo", [] ->
       if Session.undo s then `Ok "undone" else `Error "nothing to undo"
     | ("create" | "move" | "dissolve" | "rename" | "correct" | "diagnose"
       | "show" | "undo" | "help" | "quit" | "exit"), _ ->
       `Error (Printf.sprintf "wrong arguments for %s; try: %s" command help)
     | other, _ -> `Error (Printf.sprintf "unknown command %S; %s" other help))

let run_script e lines =
  let responses = ref [] in
  (try
     List.iter
       (fun line ->
         match execute e line with
         | `Ok "" -> ()
         | `Ok msg -> responses := msg :: !responses
         | `Error msg -> responses := ("error: " ^ msg) :: !responses
         | `Quit -> raise Exit)
       lines
   with Exit -> ());
  List.rev !responses
