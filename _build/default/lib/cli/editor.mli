(** The interactive view-designer loop — the demo GUI as a command
    interpreter over a {!Wolves_core.Session}.

    Commands (names are quoted when they contain spaces):

    {v
    show                       current composites with verdicts
    create NAME task...        demo's "Create Composite Task"
    move TASK NAME             move one task into a composite
    dissolve NAME              replace a composite by singletons
    rename OLD NEW
    correct NAME CRITERION     split one composite (weak|strong|optimal)
    diagnose NAME              minimal unsound core of a composite
    undo
    help
    quit
    v}

    The interpreter is pure with respect to I/O: [execute] maps one command
    line to a response string (mutating the session), so the CLI wraps it
    around stdin and the tests drive it directly. *)

open Wolves_workflow

type t

val create : View.t -> t

val session : t -> Wolves_core.Session.t

val execute : t -> string -> [ `Ok of string | `Error of string | `Quit ]
(** Interpret one command line. Unknown commands and malformed arguments
    come back as [`Error]; empty lines and [#] comments as [`Ok ""]. *)

val run_script : t -> string list -> string list
(** Execute lines until exhaustion or [quit]; collects the non-empty
    responses (errors prefixed with ["error: "]). *)
