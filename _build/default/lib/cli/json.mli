(** Minimal JSON emission (no parsing) for machine-readable CLI output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default true) indents by two spaces. Strings are
    escaped per RFC 8259 (control characters as [\u00XX]); non-finite floats
    are emitted as [null]. *)
