type align =
  | Left
  | Right

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let render ?(align = []) ~header rows =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let normalise row =
    row @ List.init (n_cols - List.length row) (fun _ -> "")
  in
  let header = normalise header in
  let rows = List.map normalise rows in
  let aligns =
    align @ List.init (max 0 (n_cols - List.length align)) (fun _ -> Left)
  in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length header)
      rows
  in
  let line row =
    String.concat "  "
      (List.map2 (fun (a, w) cell -> pad a w cell)
         (List.combine aligns widths)
         row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line header :: rule :: List.map line rows) @ [])

let render_kv pairs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "%s  %s" (pad Left width k) v) pairs)
