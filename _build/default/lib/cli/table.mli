(** Plain-text table rendering for reports and benchmark output. *)

type align =
  | Left
  | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** Render rows under a header with a separator rule; columns are padded to
    the widest cell. [align] defaults to left for every column; a short list
    is padded with [Left]. Ragged rows are padded with empty cells. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block, keys right-padded. *)
