lib/core/corrector.ml: Array Bytes Format Fun Hashtbl List Printf Soundness Spec View Wolves_graph Wolves_workflow
