lib/core/corrector.mli: Format Spec View Wolves_workflow
