lib/core/estimator.ml: Corrector Float Format Hashtbl List Option Spec Wolves_graph Wolves_workflow
