lib/core/estimator.mli: Corrector Format Spec Wolves_workflow
