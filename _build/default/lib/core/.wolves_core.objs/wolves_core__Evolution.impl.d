lib/core/evolution.ml: Array Format Hashtbl List Printf Set Soundness Spec String View Wolves_graph Wolves_workflow
