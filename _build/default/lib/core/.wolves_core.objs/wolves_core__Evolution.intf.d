lib/core/evolution.mli: Format Spec View Wolves_workflow
