lib/core/hardness.ml: Corrector Fun List Printf Spec Wolves_workflow
