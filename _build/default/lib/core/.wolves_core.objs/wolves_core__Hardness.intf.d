lib/core/hardness.mli: Spec Wolves_workflow
