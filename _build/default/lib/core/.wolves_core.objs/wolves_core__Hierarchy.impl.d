lib/core/hierarchy.ml: Array Format Fun List Printf Soundness Spec View Wolves_graph Wolves_workflow
