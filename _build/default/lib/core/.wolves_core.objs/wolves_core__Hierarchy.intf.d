lib/core/hierarchy.mli: Spec View Wolves_workflow
