lib/core/interface.ml: Buffer Format List Printf Soundness Spec String View Wolves_graph Wolves_workflow
