lib/core/interface.mli: Format Spec View Wolves_workflow
