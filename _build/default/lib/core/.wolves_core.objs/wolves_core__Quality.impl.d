lib/core/quality.ml: Corrector Format List Option Printf
