lib/core/quality.mli: Corrector Format Spec Wolves_workflow
