lib/core/session.ml: Array Corrector Format Hashtbl Int List Option Printf Set Soundness Spec View Wolves_graph Wolves_workflow
