lib/core/session.mli: Corrector Spec View Wolves_workflow
