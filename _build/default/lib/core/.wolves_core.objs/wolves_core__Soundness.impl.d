lib/core/soundness.ml: Array Format Fun Hashtbl List Spec View Wolves_graph Wolves_workflow
