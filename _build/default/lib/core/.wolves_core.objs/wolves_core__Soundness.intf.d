lib/core/soundness.mli: Format Spec View Wolves_graph Wolves_workflow
