lib/core/suggest.ml: Array Format List Printf Soundness Spec View Wolves_graph Wolves_workflow
