lib/core/suggest.mli: Spec View Wolves_workflow
