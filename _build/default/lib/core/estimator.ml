open Wolves_workflow
module Digraph = Wolves_graph.Digraph
module Algo = Wolves_graph.Algo

type features = {
  size_bucket : int;
  density_bucket : int;
  depth_bucket : int;
}

let pp_features ppf f =
  Format.fprintf ppf "size~2^%d density~%d depth~2^%d" f.size_bucket
    f.density_bucket f.depth_bucket

let log2_bucket x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x / 2) in
  go 0 x

let features_of spec members =
  if members = [] then invalid_arg "Estimator.features_of: empty composite";
  let sub, _ = Digraph.induced (Spec.graph spec) members in
  let n = Digraph.n_nodes sub in
  let m = Digraph.n_edges sub in
  { size_bucket = log2_bucket n;
    density_bucket = int_of_float (Float.round (float_of_int m /. float_of_int n));
    depth_bucket = log2_bucket (1 + Algo.longest_path_length sub) }

type cell = {
  mutable count : int;
  mutable total_runtime : float;
  mutable total_quality : float;
}

type t = {
  table : (features * Corrector.criterion, cell) Hashtbl.t;
  mutable records : int;
}

let create () = { table = Hashtbl.create 64; records = 0 }

let record h features criterion ~runtime ~quality =
  let key = (features, criterion) in
  let cell =
    match Hashtbl.find_opt h.table key with
    | Some c -> c
    | None ->
      let c = { count = 0; total_runtime = 0.; total_quality = 0. } in
      Hashtbl.add h.table key c;
      c
  in
  cell.count <- cell.count + 1;
  cell.total_runtime <- cell.total_runtime +. runtime;
  cell.total_quality <- cell.total_quality +. quality;
  h.records <- h.records + 1

let n_records h = h.records

type estimate = {
  samples : int;
  expected_runtime : float option;
  expected_quality : float option;
}

let of_cells cells =
  let count = List.fold_left (fun acc c -> acc + c.count) 0 cells in
  if count = 0 then
    { samples = 0; expected_runtime = None; expected_quality = None }
  else
    let rt = List.fold_left (fun acc c -> acc +. c.total_runtime) 0. cells in
    let q = List.fold_left (fun acc c -> acc +. c.total_quality) 0. cells in
    { samples = count;
      expected_runtime = Some (rt /. float_of_int count);
      expected_quality = Some (q /. float_of_int count) }

let estimate h features criterion =
  match Hashtbl.find_opt h.table (features, criterion) with
  | Some cell when cell.count > 0 -> of_cells [ cell ]
  | Some _ | None ->
    (* Fall back to every group with the same size bucket and criterion. *)
    let cells =
      Hashtbl.fold
        (fun (f, crit) cell acc ->
          if crit = criterion && f.size_bucket = features.size_bucket then
            cell :: acc
          else acc)
        h.table []
    in
    of_cells cells

type fit = {
  exponent : float;
  coefficient : float;
  fit_samples : int;
}

let fit_runtime h criterion =
  (* One point per (size bucket): x = ln(2^bucket), y = ln(mean runtime),
     weighted by the number of runs in the bucket. *)
  let buckets = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (f, crit) cell ->
      if crit = criterion && cell.count > 0 then begin
        let count, total =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt buckets f.size_bucket)
        in
        Hashtbl.replace buckets f.size_bucket
          (count + cell.count, total +. cell.total_runtime)
      end)
    h.table;
  if Hashtbl.length buckets < 2 then None
  else begin
    let points =
      Hashtbl.fold
        (fun bucket (count, total) acc ->
          let n = float_of_int (1 lsl bucket) in
          let mean_rt = total /. float_of_int count in
          (log n, log (Float.max mean_rt 1e-9), float_of_int count) :: acc)
        buckets []
    in
    let sw = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 points in
    let sx = List.fold_left (fun acc (x, _, w) -> acc +. (w *. x)) 0.0 points in
    let sy = List.fold_left (fun acc (_, y, w) -> acc +. (w *. y)) 0.0 points in
    let sxx = List.fold_left (fun acc (x, _, w) -> acc +. (w *. x *. x)) 0.0 points in
    let sxy = List.fold_left (fun acc (x, y, w) -> acc +. (w *. x *. y)) 0.0 points in
    let denom = (sw *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then None
    else begin
      let exponent = ((sw *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (exponent *. sx)) /. sw in
      Some
        { exponent;
          coefficient = exp intercept;
          fit_samples = int_of_float sw }
    end
  end

let predict_runtime fit ~size =
  if size < 1 then invalid_arg "Estimator.predict_runtime: size < 1";
  fit.coefficient *. Float.pow (float_of_int size) fit.exponent

let pp_fit ppf fit =
  Format.fprintf ppf "runtime ~ %.3g * n^%.2f (from %d runs)" fit.coefficient
    fit.exponent fit.fit_samples

let pp_estimate ppf e =
  match (e.expected_runtime, e.expected_quality) with
  | None, _ | _, None -> Format.fprintf ppf "no history (0 samples)"
  | Some rt, Some q ->
    Format.fprintf ppf "expected %.6fs, quality %.3f (from %d past runs)" rt q
      e.samples
