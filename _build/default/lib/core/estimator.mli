(** Correction time/quality estimation (demo §3.2).

    "To make an estimation of the execution time of correcting the current
    workflow, we group the workflows which have been corrected in the past
    according to their sizes and substructures, and report the average
    running time and quality of each approach for the group that the current
    workflow belongs to."

    A correction instance is bucketed by its {!features}: the composite's
    size (log₂ bucket) and two coarse substructure descriptors (edge density
    and depth of the member-induced subgraph). Past runs accumulate per
    (features, criterion); estimates are group averages. *)

open Wolves_workflow

type features = {
  size_bucket : int;     (** ⌊log₂ n⌋ of the member count *)
  density_bucket : int;  (** induced edges per member, rounded *)
  depth_bucket : int;    (** longest induced path length, log₂ bucket *)
}

val pp_features : Format.formatter -> features -> unit

val features_of : Spec.t -> Spec.task list -> features
(** Features of one composite's member set.
    @raise Invalid_argument on an empty member list. *)

type t
(** Mutable history of past corrections. *)

val create : unit -> t

val record :
  t -> features -> Corrector.criterion -> runtime:float -> quality:float -> unit
(** Add one past run (runtime in seconds; quality per {!Quality.ratio}, use
    [1.0] when the optimal reference is unknown). *)

val n_records : t -> int

(** An estimate for a prospective correction. *)
type estimate = {
  samples : int;            (** size of the matching history group *)
  expected_runtime : float option;  (** [None] when the group is empty *)
  expected_quality : float option;
}

val estimate : t -> features -> Corrector.criterion -> estimate
(** Exact-bucket group average; when the exact group is empty, falls back to
    the nearest group by size bucket (ignoring substructure), and reports the
    group size actually used. *)

val pp_estimate : Format.formatter -> estimate -> unit

(** A fitted runtime scaling law [runtime ~ coefficient * n^exponent], from
    weighted log-log least squares over the history's size buckets
    (n is represented by 2^bucket). Complements the group-average estimate:
    the fit extrapolates to sizes never recorded. *)
type fit = {
  exponent : float;
  coefficient : float;
  fit_samples : int;
}

val fit_runtime : t -> Corrector.criterion -> fit option
(** [None] until the history covers at least two distinct size buckets. *)

val predict_runtime : fit -> size:int -> float
(** Evaluate the law at a composite size. @raise Invalid_argument when
    [size < 1]. *)

val pp_fit : Format.formatter -> fit -> unit
