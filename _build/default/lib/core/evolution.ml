open Wolves_workflow

type diff = {
  added_tasks : string list;
  removed_tasks : string list;
  added_edges : (string * string) list;
  removed_edges : (string * string) list;
}

let task_names spec = List.map (Spec.task_name spec) (Spec.tasks spec)

let edge_names spec =
  Wolves_graph.Digraph.fold_edges
    (fun u v acc -> (Spec.task_name spec u, Spec.task_name spec v) :: acc)
    (Spec.graph spec) []

let diff old_spec new_spec =
  let module SS = Set.Make (String) in
  let module ES = Set.Make (struct
    type t = string * string

    let compare = compare
  end) in
  let old_tasks = SS.of_list (task_names old_spec) in
  let new_tasks = SS.of_list (task_names new_spec) in
  let old_edges = ES.of_list (edge_names old_spec) in
  let new_edges = ES.of_list (edge_names new_spec) in
  { added_tasks = SS.elements (SS.diff new_tasks old_tasks);
    removed_tasks = SS.elements (SS.diff old_tasks new_tasks);
    added_edges = ES.elements (ES.diff new_edges old_edges);
    removed_edges = ES.elements (ES.diff old_edges new_edges) }

let is_empty d =
  d.added_tasks = [] && d.removed_tasks = [] && d.added_edges = []
  && d.removed_edges = []

let pp_diff ppf d =
  let edge (u, v) = Printf.sprintf "%s -> %s" u v in
  Format.fprintf ppf "+%d/-%d tasks, +%d/-%d edges"
    (List.length d.added_tasks)
    (List.length d.removed_tasks)
    (List.length d.added_edges)
    (List.length d.removed_edges);
  List.iter (fun t -> Format.fprintf ppf "@\n  + task %s" t) d.added_tasks;
  List.iter (fun t -> Format.fprintf ppf "@\n  - task %s" t) d.removed_tasks;
  List.iter (fun e -> Format.fprintf ppf "@\n  + %s" (edge e)) d.added_edges;
  List.iter (fun e -> Format.fprintf ppf "@\n  - %s" (edge e)) d.removed_edges

let migrate view new_spec =
  let old_spec = View.spec view in
  let taken = Hashtbl.create 32 in
  let surviving =
    List.filter_map
      (fun c ->
        let members =
          List.filter_map
            (fun t -> Spec.task_of_name new_spec (Spec.task_name old_spec t))
            (View.members view c)
        in
        if members = [] then None
        else begin
          let name = View.composite_name view c in
          Hashtbl.replace taken name ();
          Some (name, members)
        end)
      (View.composites view)
  in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (_, members) -> List.iter (fun t -> Hashtbl.replace covered t ()) members)
    surviving;
  let fresh_name base =
    let rec go candidate =
      if Hashtbl.mem taken candidate then go (candidate ^ "'") else candidate
    in
    let name = go base in
    Hashtbl.replace taken name ();
    name
  in
  let singletons =
    List.filter_map
      (fun t ->
        if Hashtbl.mem covered t then None
        else Some (fresh_name (Spec.task_name new_spec t), [ t ]))
      (Spec.tasks new_spec)
  in
  let groups = surviving @ singletons in
  let names = Array.of_list (List.map fst groups) in
  match View.of_partition ~names new_spec (List.map snd groups) with
  | Ok view -> view
  | Error e ->
    invalid_arg (Format.asprintf "Evolution.migrate: %a" View.pp_error e)

type verdict_change =
  | Still_sound
  | Still_unsound
  | Broke of (Spec.task * Spec.task) list
  | Repaired
  | Appeared

type impact = {
  old_view : View.t;
  new_view : View.t;
  changes : (string * verdict_change) list;
}

let impact view new_spec =
  let new_view = migrate view new_spec in
  let old_verdicts = Hashtbl.create 32 in
  List.iter
    (fun c ->
      Hashtbl.replace old_verdicts (View.composite_name view c)
        (Soundness.composite_sound view c))
    (View.composites view);
  let changes =
    List.map
      (fun c ->
        let name = View.composite_name new_view c in
        let sound_now = Soundness.composite_sound new_view c in
        let change =
          match Hashtbl.find_opt old_verdicts name with
          | None -> Appeared
          | Some true when sound_now -> Still_sound
          | Some false when not sound_now -> Still_unsound
          | Some true -> Broke (Soundness.composite_witnesses new_view c)
          | Some false -> Repaired
        in
        (name, change))
      (View.composites new_view)
  in
  { old_view = view; new_view; changes }

let pp_impact ppf report =
  let new_spec = View.spec report.new_view in
  let interesting =
    List.filter
      (fun (_, change) ->
        match change with
        | Still_sound | Still_unsound -> false
        | Broke _ | Repaired | Appeared -> true)
      report.changes
  in
  if interesting = [] then
    Format.fprintf ppf "no composite changed verdict"
  else
    List.iteri
      (fun i (name, change) ->
        if i > 0 then Format.fprintf ppf "@\n";
        match change with
        | Broke witnesses ->
          Format.fprintf ppf "composite %S BROKE:" name;
          List.iter
            (fun (ti, to_) ->
              Format.fprintf ppf "@\n  no path %s -> %s"
                (Spec.task_name new_spec ti)
                (Spec.task_name new_spec to_))
            witnesses
        | Repaired -> Format.fprintf ppf "composite %S repaired" name
        | Appeared -> Format.fprintf ppf "composite %S added" name
        | Still_sound | Still_unsound -> ())
      interesting
