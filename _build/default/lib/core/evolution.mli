(** Workflow evolution: migrating a view when its specification changes.

    Repository workflows evolve — tasks appear, disappear, dependencies are
    rewired — and a view designed for the old specification must follow.
    Soundness is {e not} stable under evolution: an edge added inside the
    workflow can silently break a composite that was carefully designed
    (and conversely can repair one). This module diffs two specifications,
    carries a partition across the diff, and reports exactly which
    composites changed verdict and why — the repository-maintenance
    counterpart of the demo's validator. *)

open Wolves_workflow

(** A structural diff between two specifications (matched by task name). *)
type diff = {
  added_tasks : string list;
  removed_tasks : string list;
  added_edges : (string * string) list;
  removed_edges : (string * string) list;
}

val diff : Spec.t -> Spec.t -> diff
(** [diff old_spec new_spec]; lists are sorted. *)

val is_empty : diff -> bool

val pp_diff : Format.formatter -> diff -> unit

val migrate : View.t -> Spec.t -> View.t
(** Carry the view's partition onto the new specification: composites keep
    their surviving members (matched by name), removed tasks drop out,
    emptied composites disappear, and added tasks become singleton
    composites named after themselves (suffixed when taken). *)

(** Soundness impact of an evolution on one composite. *)
type verdict_change =
  | Still_sound
  | Still_unsound
  | Broke of (Spec.task * Spec.task) list
      (** was sound, now unsound — with the new violating pairs *)
  | Repaired  (** was unsound, now sound *)
  | Appeared  (** new composite (added tasks) *)

(** Full impact report. *)
type impact = {
  old_view : View.t;
  new_view : View.t;
  changes : (string * verdict_change) list;
      (** per surviving/new composite name, in new-view order *)
}

val impact : View.t -> Spec.t -> impact
(** Migrate and compare per-composite verdicts across the evolution. *)

val pp_impact : Format.formatter -> impact -> unit
(** Lists only the composites whose verdict changed. *)
