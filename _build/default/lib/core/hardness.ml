open Wolves_workflow

(* All families share the shape: one external source feeding every entry
   point, one external sink collecting every exit, and the generated tasks
   forming the composite under correction. *)
let build ~name make_edges member_names =
  let b = Spec.Builder.create ~name () in
  let _ = Spec.Builder.add_task_exn b "source" in
  List.iter (fun t -> ignore (Spec.Builder.add_task_exn b t)) member_names;
  let _ = Spec.Builder.add_task_exn b "sink" in
  make_edges (Spec.Builder.add_dependency_exn b);
  let spec = Spec.Builder.finish_exn b in
  (spec, List.map (Spec.task_of_name_exn spec) member_names)

let blocks_instance ~blocks ~chains =
  if blocks < 0 || chains < 0 || blocks + chains < 2 then
    invalid_arg "Hardness.blocks_instance: need at least two units";
  let block_names k =
    List.map (Printf.sprintf "b%d_%s" k) [ "c"; "d"; "f"; "g" ]
  in
  let chain_names k = List.map (Printf.sprintf "h%d_%s" k) [ "a"; "b" ] in
  let member_names =
    List.concat_map block_names (List.init blocks Fun.id)
    @ List.concat_map chain_names (List.init chains Fun.id)
  in
  let make_edges add =
    for k = 0 to blocks - 1 do
      let t suffix = Printf.sprintf "b%d_%s" k suffix in
      add "source" (t "c");
      add "source" (t "d");
      List.iter
        (fun (entry, exit_) -> add (t entry) (t exit_))
        [ ("c", "f"); ("c", "g"); ("d", "f"); ("d", "g") ];
      add (t "f") "sink";
      add (t "g") "sink"
    done;
    for k = 0 to chains - 1 do
      let t suffix = Printf.sprintf "h%d_%s" k suffix in
      add "source" (t "a");
      add (t "a") (t "b");
      add (t "b") "sink"
    done
  in
  build
    ~name:(Printf.sprintf "hardness-blocks-%d-%d" blocks chains)
    make_edges member_names

let blocks_optimal_parts ~blocks ~chains = blocks + chains

let blocks_weak_parts ~blocks ~chains = (4 * blocks) + chains

let wide_block_instance ~width =
  if width < 2 then invalid_arg "Hardness.wide_block_instance: width < 2";
  let entry k = Printf.sprintf "c%d" k and exit_ k = Printf.sprintf "f%d" k in
  let member_names =
    List.init width entry @ List.init width exit_ @ [ "chain_a"; "chain_b" ]
  in
  let make_edges add =
    for i = 0 to width - 1 do
      add "source" (entry i);
      add (exit_ i) "sink";
      for j = 0 to width - 1 do
        add (entry i) (exit_ j)
      done
    done;
    (* The independent chain makes the whole composite unsound. *)
    add "source" "chain_a";
    add "chain_a" "chain_b";
    add "chain_b" "sink"
  in
  build ~name:(Printf.sprintf "hardness-wide-%d" width) make_edges member_names

let wide_block_weak_parts ~width = (2 * width) + 1

let wide_block_optimal_parts ~width =
  ignore width;
  2

let strong_gap_instance () =
  build ~name:"strong-vs-optimal-gap"
    (fun add ->
      add "a" "b";
      add "a" "c";
      add "b" "c";
      add "source" "b";
      add "b" "sink";
      add "d" "sink")
    [ "a"; "b"; "c"; "d" ]

type gap = {
  gap_spec : Spec.t;
  gap_members : Spec.task list;
  strong_parts : int;
  optimal_parts : int;
}

(* Local Erdős–Rényi DAG generator (the workload library depends on this
   one, not the other way around). *)
let random_spec ~seed ~size =
  let mix i =
    let h = ref (seed lxor (i * 0x9E3779B9) lxor 0x2545F491) in
    h := !h lxor (!h lsr 16);
    h := !h * 0x7FEB352D land max_int;
    h := !h lxor (!h lsr 15);
    !h land max_int
  in
  let edges = ref [] in
  let k = ref 0 in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      incr k;
      if mix !k mod 100 < 18 then edges := (u, v) :: !edges
    done
  done;
  Spec.of_tasks_exn
    ~name:(Printf.sprintf "gap-search-%d" seed)
    (List.init size (Printf.sprintf "t%d"))
    (List.map
       (fun (u, v) -> (Printf.sprintf "t%d" u, Printf.sprintf "t%d" v))
       !edges)

let search_strong_gap ?(tries = 2000) ?(size = 18) ?(members = 10) ~seed () =
  let result = ref None in
  let attempt = ref 0 in
  while !result = None && !attempt < tries do
    incr attempt;
    let instance_seed = seed + !attempt in
    let spec = random_spec ~seed:instance_seed ~size in
    (* A pseudo-random member subset. *)
    let chosen =
      List.filteri
        (fun i _ ->
          let h = (instance_seed * 31) + (i * 17) in
          h * 2654435761 land 0xFFFF mod size < members * 65536 / size / 4)
        (Spec.tasks spec)
    in
    let chosen =
      if List.length chosen >= 3 then
        List.filteri (fun i _ -> i < members) chosen
      else List.filteri (fun i _ -> i < members) (Spec.tasks spec)
    in
    let strong = Corrector.split_subset Corrector.Strong spec chosen in
    if strong.Corrector.certified_strong then begin
      let optimal = Corrector.split_subset Corrector.Optimal spec chosen in
      let s = List.length strong.Corrector.parts in
      let o = List.length optimal.Corrector.parts in
      if o < s then
        result :=
          Some
            { gap_spec = spec;
              gap_members = chosen;
              strong_parts = s;
              optimal_parts = o }
    end
  done;
  !result
