(** Parametric instance families exhibiting the hardness landscape of view
    correction (Theorem 2.2: minimal splitting is NP-hard).

    Each generator returns a specification together with the member list of a
    single unsound composite whose optimal split size is known analytically,
    so tests and the E-QUAL / E-TIME benches can measure algorithm quality and
    the exponential cost of exact correction against ground truth. *)

open Wolves_workflow

val blocks_instance : blocks:int -> chains:int -> Spec.t * Spec.task list
(** The Figure 3 family, generalised: [blocks] independent complete-bipartite
    2×2 blocks ({c,d} → {f,g}, entries fed from the source, exits feeding the
    sink) plus [chains] independent 2-task chains, all inside one composite.

    Ground truth: optimal (= strong local optimal) split has
    [blocks + chains] parts; every weakly local optimal split that cannot
    merge subsets has [4·blocks + chains]. @raise Invalid_argument unless
    [blocks + chains >= 2] (with fewer units the composite is already sound
    and there is nothing to split). *)

val blocks_optimal_parts : blocks:int -> chains:int -> int

val blocks_weak_parts : blocks:int -> chains:int -> int

val wide_block_instance : width:int -> Spec.t * Spec.task list
(** One complete bipartite [width]×[width] block (entries c₁..c_k each feed
    every exit f₁..f_k) plus one independent 2-task chain that makes the
    composite unsound. No two block tasks are pairwise combinable (weak local
    optimum = [2·width + 1] parts) but the whole block merges into a single
    sound composite (optimal = 2 parts) — the widest possible weak/strong
    quality gap, growing linearly with [width].
    @raise Invalid_argument when [width < 2] (a 1-wide block is a plain
    chain that even the weak corrector keeps whole). Random unsound
    instances (no analytic optimum) are provided by [Wolves_workload]. *)

val wide_block_weak_parts : width:int -> int

val wide_block_optimal_parts : width:int -> int

type gap = {
  gap_spec : Spec.t;
  gap_members : Spec.task list;
  strong_parts : int;
  optimal_parts : int;
}
(** An instance where the (certified) strong local optimal split has more
    parts than the true minimum — evidence that strong local optimality is
    weaker than optimality, which must occasionally happen unless P = NP. *)

val strong_gap_instance : unit -> Spec.t * Spec.task list
(** The minimal known separation of strong local optimality from optimality
    (found by exhaustive search over 4-member instances; pinned as a
    regression): members a, b, c, d with edges a→b, a→c, b→c, context
    s→b, b→t, d→t.

    The greedy pass merges [{a,d}] first — both are input-less, so the pair
    is {e vacuously} sound — and gets stuck at [{a,d}, {b}, {c}] (3 parts):
    no pair and no subset of these parts is combinable, so the split is
    certified strongly local optimal. The true minimum is
    [{a,b,c}, {d}] (2 parts: in = out = {b}), which is {e not a coarsening}
    of the greedy split — reaching it requires re-partitioning, which is
    exactly the operation local optimality does not license. *)

val search_strong_gap :
  ?tries:int -> ?size:int -> ?members:int -> seed:int -> unit -> gap option
(** Random search (default 2000 tries over 18-task Erdős–Rényi workflows
    with 10-member composites) for a strong-vs-optimal gap. Deterministic in
    [seed]. Used by the test-suite to characterise how often the polynomial
    corrector actually loses — on these distributions, gaps are rare or
    absent; see EXPERIMENTS.md (E-QUAL). *)
