open Wolves_workflow
module Digraph = Wolves_graph.Digraph

type t = {
  levels : View.t list; (* coarsest first; level k is over spec_of_view of
                           level k+1 in this list (the next finer one) *)
}

let spec_of_view view =
  let names = List.map (View.composite_name view) (View.composites view) in
  let edges =
    Wolves_graph.Digraph.fold_edges
      (fun c1 c2 acc ->
        (View.composite_name view c1, View.composite_name view c2) :: acc)
      (View.view_graph view) []
  in
  Spec.of_tasks_exn ~name:(Spec.name (View.spec view) ^ "+view") names edges

let base view = { levels = [ view ] }

let top h = List.hd h.levels

let coarsen h groups =
  let top_view = top h in
  match spec_of_view top_view with
  | exception Spec.Spec_error e ->
    Error (Format.asprintf "the current top level cannot be re-read as a workflow: %a"
             Spec.pp_error e)
  | top_spec ->
    (match View.make top_spec groups with
     | Ok super -> Ok { levels = super :: h.levels }
     | Error e -> Error (Format.asprintf "%a" View.pp_error e))

let height h = List.length h.levels

let level h k =
  let finest_first = List.rev h.levels in
  match List.nth_opt finest_first k with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Hierarchy.level: no level %d" k)

let flatten h =
  (* Walk from the finest level upward, composing partitions. *)
  match List.rev h.levels with
  | [] -> assert false
  | finest :: coarser ->
    let spec = View.spec finest in
    let flattened =
      List.fold_left
        (fun (current : (string * Spec.task list) list) (super : View.t) ->
          (* [current]: top-level-so-far name -> original tasks. [super]
             groups those names. *)
          List.map
            (fun c ->
              let member_names =
                List.map
                  (Spec.task_name (View.spec super))
                  (View.members super c)
              in
              ( View.composite_name super c,
                List.concat_map
                  (fun name -> List.assoc name current)
                  member_names ))
            (View.composites super))
        (List.map
           (fun c -> (View.composite_name finest c, View.members finest c))
           (View.composites finest))
        coarser
    in
    let names = Array.of_list (List.map fst flattened) in
    (match View.of_partition ~names spec (List.map snd flattened) with
     | Ok view -> view
     | Error e ->
       invalid_arg (Format.asprintf "Hierarchy.flatten: %a" View.pp_error e))

let locally_sound h =
  List.rev_map (fun view -> Soundness.is_sound view) h.levels

let sound h = List.for_all Fun.id (locally_sound h)

let first_unsound_level h =
  let rec find k = function
    | [] -> None
    | true :: rest -> find (k + 1) rest
    | false :: _ -> Some k
  in
  find 0 (locally_sound h)
