(** Multi-level workflow views (views of views).

    Kepler workflows nest composite actors arbitrarily deep; the paper's
    model has one level. A hierarchy is a stack of views: level 0 partitions
    the workflow's tasks; level k+1 partitions level k's composites (i.e.
    coarsens it). Each level has a {e local} soundness — the level viewed as
    a view over the previous level's view graph (itself a workflow) — and
    the whole stack flattens to an ordinary view over the original tasks.

    Composition theorem (tested property-based in [test_session.ml]): if
    every level is locally sound, the flattened view is sound. The converse
    fails: a flattened-sound stack can pass through an unsound intermediate
    grouping. WOLVES therefore validates levels individually, pinpointing
    the level that introduces the damage. *)

open Wolves_workflow

type t

val base : View.t -> t
(** A one-level hierarchy. *)

val spec_of_view : View.t -> Spec.t
(** The view graph as a workflow specification: one task per composite
    (named after it), one dependency per view edge. The device that lets a
    view be viewed.

    @raise Spec.Spec_error when the view graph is cyclic. Contracting a DAG
    can create cycles (two composites exchanging dataflow in both
    directions) — but only for {e unsound} views: a sound view's graph is
    always acyclic, because a view cycle would chain into a task-level cycle
    through the composites' in→out paths (property-tested in
    [test_hierarchy.ml]). Validate/correct a level before stacking on it. *)

val coarsen : t -> (string * string list) list -> (t, string) result
(** Add a level: group the current top level's composites (by name) into
    super-composites. The groups must partition the top level's composites. *)

val height : t -> int
(** Number of levels (≥ 1). *)

val level : t -> int -> View.t
(** [level h k]: the view at level [k] (0 = finest), expressed over the
    specification of level [k-1]'s view graph (level 0 is over the original
    workflow). @raise Invalid_argument when out of range. *)

val flatten : t -> View.t
(** The top level as a partition of the {e original} workflow's tasks. *)

val locally_sound : t -> bool list
(** Per-level local soundness, finest first. *)

val sound : t -> bool
(** All levels locally sound. By the composition theorem this implies the
    flattened view is sound. *)

val first_unsound_level : t -> int option
(** The finest level that is locally unsound, if any. *)
