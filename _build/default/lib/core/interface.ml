open Wolves_workflow
module Digraph = Wolves_graph.Digraph

type port = {
  port_task : Spec.task;
  peers : View.composite list;
}

type t = {
  composite : View.composite;
  name : string;
  n_members : int;
  inputs : port list;
  outputs : port list;
  contract : (Spec.task * Spec.task) list;
}

let of_composite view c =
  let spec = View.spec view in
  let g = Spec.graph spec in
  let members = View.members view c in
  let io = Soundness.composite_io view c in
  let peers_of neighbours task =
    List.sort_uniq compare
      (List.filter_map
         (fun other ->
           let other_c = View.composite_of_task view other in
           if other_c = c then None else Some other_c)
         (neighbours g task))
  in
  { composite = c;
    name = View.composite_name view c;
    n_members = List.length members;
    inputs =
      List.map
        (fun task -> { port_task = task; peers = peers_of Digraph.pred task })
        io.Soundness.inputs;
    outputs =
      List.map
        (fun task -> { port_task = task; peers = peers_of Digraph.succ task })
        io.Soundness.outputs;
    contract = Soundness.composite_witnesses view c }

let of_view view = List.map (of_composite view) (View.composites view)

let pp spec view ppf iface =
  let task = Spec.task_name spec in
  let comp c = View.composite_name view c in
  Format.fprintf ppf "@[<v 2>composite %S (%d tasks)" iface.name iface.n_members;
  List.iter
    (fun p ->
      Format.fprintf ppf "@ in  %-30s <- %s" (task p.port_task)
        (String.concat ", " (List.map comp p.peers)))
    iface.inputs;
  List.iter
    (fun p ->
      Format.fprintf ppf "@ out %-30s -> %s" (task p.port_task)
        (String.concat ", " (List.map comp p.peers)))
    iface.outputs;
  (match iface.contract with
   | [] ->
     Format.fprintf ppf
       "@ contract: SOUND — every input flows into every output"
   | broken ->
     Format.fprintf ppf "@ contract: UNSOUND — %d disconnected pairs:"
       (List.length broken);
     List.iter
       (fun (ti, to_) ->
         Format.fprintf ppf "@   %s -/-> %s" (task ti) (task to_))
       broken);
  Format.fprintf ppf "@]"

let to_markdown view =
  let spec = View.spec view in
  let task = Spec.task_name spec in
  let comp c = View.composite_name view c in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# Interface catalog: %s\n\n" (Spec.name spec));
  List.iter
    (fun iface ->
      Buffer.add_string buf (Printf.sprintf "## %s\n\n" iface.name);
      Buffer.add_string buf
        (Printf.sprintf "%d member task(s).\n\n" iface.n_members);
      if iface.inputs = [] then
        Buffer.add_string buf "No inputs (source composite).\n\n"
      else begin
        Buffer.add_string buf "| input port | fed by |\n|---|---|\n";
        List.iter
          (fun p ->
            Buffer.add_string buf
              (Printf.sprintf "| %s | %s |\n" (task p.port_task)
                 (String.concat ", " (List.map comp p.peers))))
          iface.inputs;
        Buffer.add_char buf '\n'
      end;
      if iface.outputs = [] then
        Buffer.add_string buf "No outputs (terminal composite).\n\n"
      else begin
        Buffer.add_string buf "| output port | feeds |\n|---|---|\n";
        List.iter
          (fun p ->
            Buffer.add_string buf
              (Printf.sprintf "| %s | %s |\n" (task p.port_task)
                 (String.concat ", " (List.map comp p.peers))))
          iface.outputs;
        Buffer.add_char buf '\n'
      end;
      (match iface.contract with
       | [] ->
         Buffer.add_string buf
           "**Contract: sound** — every input flows into every output; \
            view-level provenance through this composite is exact.\n\n"
       | broken ->
         Buffer.add_string buf
           (Printf.sprintf
              "**Contract: UNSOUND** — %d disconnected input/output pair(s); \
               provenance through this composite over-reports:\n\n"
              (List.length broken));
         List.iter
           (fun (ti, to_) ->
             Buffer.add_string buf
               (Printf.sprintf "- `%s` never reaches `%s`\n" (task ti) (task to_)))
           broken;
         Buffer.add_char buf '\n'))
    (of_view view);
  Buffer.contents buf
