(** Views as a user interface (paper §"significance": "workflow views can be
    thought of as an interface for users to issue queries and analyze
    results").

    This module derives the interface a composite task presents to a view
    user: its input ports (member tasks receiving data from other
    composites, with the providing composites), its output ports (members
    exporting data, with the consuming composites), and a soundness
    contract. For a sound composite the contract is the guarantee provenance
    analysis relies on: {e every input flows into every output}; for an
    unsound one the description lists exactly which input/output pairs are
    disconnected — what the composite's "signature" hides. *)

open Wolves_workflow

(** One boundary port of a composite. *)
type port = {
  port_task : Spec.task;        (** the member on the boundary *)
  peers : View.composite list;  (** composites on the other side, sorted *)
}

(** The derived interface of one composite. *)
type t = {
  composite : View.composite;
  name : string;
  n_members : int;
  inputs : port list;
  outputs : port list;
  contract : (Spec.task * Spec.task) list;
      (** disconnected (input task, output task) pairs; empty = sound, i.e.
          the full input×output dataflow contract holds *)
}

val of_composite : View.t -> View.composite -> t

val of_view : View.t -> t list
(** Interfaces of all composites, in composite order. *)

val pp : Spec.t -> View.t -> Format.formatter -> t -> unit
(** Render one interface as a signature block. *)

val to_markdown : View.t -> string
(** A markdown "interface catalog" for the whole view: one section per
    composite with its ports, wiring and contract status. *)
