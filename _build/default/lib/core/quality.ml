
let ratio ~optimal_parts ~parts =
  if optimal_parts <= 0 || parts <= 0 then
    invalid_arg "Quality.ratio: part counts must be positive";
  float_of_int optimal_parts /. float_of_int parts

type comparison = {
  members : int;
  weak : Corrector.outcome;
  strong : Corrector.outcome;
  optimal : Corrector.outcome option;
  weak_quality : float option;
  strong_quality : float option;
}

let compare_criteria ?(config = Corrector.default_config) spec members =
  let weak = Corrector.split_subset ~config Corrector.Weak spec members in
  let strong = Corrector.split_subset ~config Corrector.Strong spec members in
  let optimal =
    if List.length members <= config.Corrector.optimal_max_tasks then
      Some (Corrector.split_subset ~config Corrector.Optimal spec members)
    else None
  in
  let quality_against algo =
    Option.map
      (fun opt ->
        ratio
          ~optimal_parts:(List.length opt.Corrector.parts)
          ~parts:(List.length algo.Corrector.parts))
      optimal
  in
  { members = List.length members;
    weak;
    strong;
    optimal;
    weak_quality = quality_against weak;
    strong_quality = quality_against strong }

let pp_comparison ppf c =
  let parts o = List.length o.Corrector.parts in
  Format.fprintf ppf "n=%d weak=%d strong=%d optimal=%s q(weak)=%s q(strong)=%s"
    c.members (parts c.weak) (parts c.strong)
    (match c.optimal with Some o -> string_of_int (parts o) | None -> "-")
    (match c.weak_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-")
    (match c.strong_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-")
