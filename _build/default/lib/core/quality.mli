(** Split quality, as defined in the demo (§3.2): the quality of an algorithm
    on an instance is [optimal parts / algorithm parts] — at most 1, higher is
    better, the optimal corrector scores exactly 1. *)

open Wolves_workflow

val ratio : optimal_parts:int -> parts:int -> float
(** @raise Invalid_argument on non-positive counts. *)

(** One instance run under all three criteria. *)
type comparison = {
  members : int;  (** composite size n *)
  weak : Corrector.outcome;
  strong : Corrector.outcome;
  optimal : Corrector.outcome option;
      (** [None] when n exceeds the optimal corrector's task limit. *)
  weak_quality : float option;
  strong_quality : float option;
}

val compare_criteria :
  ?config:Corrector.config -> Spec.t -> Spec.task list -> comparison
(** Run weak, strong and (when feasible) optimal on one composite. *)

val pp_comparison : Format.formatter -> comparison -> unit
