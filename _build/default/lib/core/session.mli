(** Interactive view-editing sessions with incremental validation.

    The demo validates "while users are creating a view": after every edit
    the unsound composites are re-marked immediately. The key observation
    making this cheap is that [T.in]/[T.out] and hence the soundness of a
    composite depend only on {e its own} member set (Def 2.2 quantifies over
    tasks outside T, wherever they live) — so an edit invalidates only the
    composites whose membership changed, and every other cached verdict
    survives. A session tracks the partition mutably, caches per-composite
    verdicts, and counts cache hits so the ablation bench (E-INC) can compare
    against full revalidation.

    Composites are addressed by name (stable across edits; ids shift). *)

open Wolves_workflow

type t

type verdict =
  | Sound
  | Unsound of (Spec.task * Spec.task) list
      (** the violating (input, output) pairs *)

val start : View.t -> t
(** Open a session on a copy of the view's partition (the view itself is
    immutable and unaffected). *)

val start_fresh : Spec.t -> t
(** A session over the singleton view — the "construct a workflow view using
    WOLVES directly" entry point. *)

val spec : t -> Spec.t

val composite_names : t -> string list
(** Current composite names, in creation order. *)

val members : t -> string -> Spec.task list option

(* --- edits (the demo's view-builder actions) --- *)

val create_composite : t -> name:string -> Spec.task list -> (unit, string) result
(** Move the given tasks out of their current composites into a new
    composite (the demo's "Create Composite Task"). Emptied composites
    disappear. Fails on an existing name, an empty task list, or an unknown
    task. *)

val move_task : t -> Spec.task -> into:string -> (unit, string) result
(** Move one task into an existing composite. The source composite
    disappears when emptied. *)

val dissolve : t -> string -> (unit, string) result
(** Replace a composite by singletons (named after their tasks). *)

val rename : t -> string -> into:string -> (unit, string) result

val undo : t -> bool
(** Revert the most recent successful edit (create/move/dissolve/rename/
    correction); [false] when there is nothing to undo. Verdict caches are
    restored with the partition, so undo costs no re-validation. *)

val history_depth : t -> int
(** Number of edits that can be undone. *)

(* --- incremental validation --- *)

val verdict : t -> string -> verdict option
(** Cached soundness verdict of one composite ([None]: unknown name). *)

val unsound : t -> (string * (Spec.task * Spec.task) list) list
(** All currently unsound composites — what the demo paints red. Uses the
    cache; only composites touched since the last call are re-checked. *)

val is_sound : t -> bool

val checks_performed : t -> int
(** Soundness evaluations actually executed so far. *)

val cache_hits : t -> int
(** Evaluations avoided thanks to the incremental cache. *)

(* --- escape hatches --- *)

val current_view : t -> View.t
(** Materialise the current partition as an immutable view. *)

val apply_correction : t -> string -> Corrector.criterion -> (int, string) result
(** Split one (unsound) composite in place with the corrector; returns the
    number of resulting parts. Part names derive from the composite's. *)
