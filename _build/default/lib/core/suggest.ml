open Wolves_workflow
module Bitset = Wolves_graph.Bitset

let greedy_sound_groups spec ~max_size =
  if max_size < 1 then invalid_arg "Suggest.greedy_sound_groups: max_size < 1";
  let n = Spec.n_tasks spec in
  let current = ref [] in
  let current_set = Bitset.create n in
  let groups = ref [] in
  let close () =
    if !current <> [] then begin
      groups := List.rev !current :: !groups;
      current := [];
      Bitset.clear current_set
    end
  in
  List.iter
    (fun t ->
      Bitset.add current_set t;
      if List.length !current < max_size && Soundness.subset_sound spec current_set
      then current := t :: !current
      else begin
        Bitset.remove current_set t;
        close ();
        Bitset.add current_set t;
        current := [ t ]
      end)
    (Spec.topological_order spec);
  close ();
  List.rev !groups

let optimal_sound_banding spec ~max_size =
  if max_size < 1 then invalid_arg "Suggest.optimal_sound_banding: max_size < 1";
  let order = Array.of_list (Spec.topological_order spec) in
  let n = Array.length order in
  let infinity_groups = n + 1 in
  let dp = Array.make (n + 1) infinity_groups in
  let choice = Array.make (n + 1) 0 in
  dp.(0) <- 0;
  (* dp.(j): fewest bands covering order[0 .. j-1]. Growing the candidate
     band backward from j reuses one bitset per j. *)
  let band = Bitset.create (Spec.n_tasks spec) in
  for j = 1 to n do
    Bitset.clear band;
    let i = ref (j - 1) in
    let width = ref 1 in
    let continue_ = ref true in
    while !continue_ && !i >= 0 && !width <= max_size do
      Bitset.add band order.(!i);
      if Soundness.subset_sound spec band && dp.(!i) + 1 < dp.(j) then begin
        dp.(j) <- dp.(!i) + 1;
        choice.(j) <- !i
      end;
      decr i;
      incr width
    done;
    (* Singletons are sound, so dp.(j) is always reachable. *)
    assert (dp.(j) <= n);
    ignore !continue_
  done;
  let rec rebuild j acc =
    if j = 0 then acc
    else
      let i = choice.(j) in
      let group = Array.to_list (Array.sub order i (j - i)) in
      rebuild i (group :: acc)
  in
  rebuild n []

let fork_join_regions spec =
  let module Dominators = Wolves_graph.Dominators in
  let module Reach = Wolves_graph.Reach in
  let g = Spec.graph spec in
  let n = Spec.n_tasks spec in
  let dom = Dominators.compute g in
  let postdom = Dominators.compute_post g in
  let r = Spec.reach spec in
  let taken = Bitset.create n in
  let groups = ref [] in
  List.iter
    (fun f ->
      let succs = Spec.consumers spec f in
      if List.length succs >= 2 && not (Bitset.mem taken f) then
        match Dominators.common postdom succs with
        | None -> ()
        | Some j ->
          if j <> f && not (Bitset.mem taken j) then begin
            let region = Bitset.create n in
            Bitset.add region f;
            Bitset.add region j;
            List.iter
              (fun v ->
                if
                  v <> f && v <> j
                  && Reach.reaches r f v
                  && Reach.reaches r v j
                  && Dominators.dominates dom f v
                  && Dominators.dominates postdom j v
                then Bitset.add region v)
              (Spec.tasks spec);
            let overlap = not (Bitset.disjoint region taken) in
            if (not overlap) && Soundness.subset_sound spec region then begin
              Bitset.union_into ~into:taken region;
              groups := Bitset.elements region :: !groups
            end
          end)
    (Spec.topological_order spec);
  let singletons =
    List.filter_map
      (fun t -> if Bitset.mem taken t then None else Some [ t ])
      (Spec.tasks spec)
  in
  List.rev !groups @ singletons

let view_of_groups spec groups =
  let names =
    Array.of_list (List.mapi (fun i _ -> Printf.sprintf "V%d" i) groups)
  in
  match View.of_partition ~names spec groups with
  | Ok view -> view
  | Error e ->
    invalid_arg (Format.asprintf "Suggest.view_of_groups: %a" View.pp_error e)
