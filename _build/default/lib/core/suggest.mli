(** Automatic construction of sound views (the role of Biton et al. [2] in
    the paper's ecosystem — the demo imports views "automatically
    constructed"; this module builds them soundly by design, so the
    validator never needs to repair them).

    Both constructions walk a topological order of the workflow:

    - {!greedy_sound_groups} extends the current group while it stays sound,
      up to a size cap — linear number of soundness checks, no optimality
      guarantee;
    - {!optimal_sound_banding} computes, by dynamic programming, the
      {e minimum number} of composites over all partitions into
      topologically {e contiguous} sound bands of bounded size (contiguity
      is the price of tractability: unrestricted minimum sound partition of
      a whole workflow generalises the NP-hard Theorem 2.2 problem). *)

open Wolves_workflow

val greedy_sound_groups : Spec.t -> max_size:int -> Spec.task list list
(** Greedy sound grouping. Every group is a sound composite; groups have at
    most [max_size] members. @raise Invalid_argument when [max_size < 1]. *)

val optimal_sound_banding : Spec.t -> max_size:int -> Spec.task list list
(** Fewest contiguous sound bands of at most [max_size] tasks (singletons
    are always sound, so a solution always exists).
    @raise Invalid_argument when [max_size < 1]. *)

val fork_join_regions : Spec.t -> Spec.task list list
(** Structure-driven construction: collapse fork–join regions. For every
    fork (out-degree ≥ 2) the nearest common postdominator of its branches
    is its join; the tasks dominated by the fork and postdominated by the
    join form a single-entry/single-exit candidate region, kept when it
    verifies sound and does not overlap an already accepted region (forks
    are scanned in topological order, so outer regions win). Tasks in no
    region stay singletons. The result mirrors how a Kepler author would
    abstract sub-workflows — composites with one conceptual input and
    output. *)

val view_of_groups : Spec.t -> Spec.task list list -> View.t
(** Wrap a grouping as a view (composites named [V0], [V1], ...). *)
