lib/engine/engine.ml: Array Buffer Char Float Format List Printf Spec String Wolves_provenance Wolves_workflow
