lib/engine/engine.mli: Format Spec Wolves_provenance Wolves_workflow
