(** A small workflow execution engine (discrete-event simulation).

    The paper's setting is a workflow management system executing "in-silico"
    experiments; this engine is that substrate. It schedules a specification
    over [workers] simulated machines, respecting dependencies, with
    per-task durations and failure injection, and produces an execution
    trace: per-task status, timing, and an {e output value} per succeeded
    task.

    Output values are content hashes of (task identity, input values,
    per-run task salt), so dataflow is observable: the output of a task
    changes between two runs iff the value of some ancestor changed — the
    semantic fact provenance analysis is supposed to capture, and the
    property the engine tests pin. Traces feed the multi-run
    {!Wolves_provenance.Store} directly. *)

open Wolves_workflow

type outcome =
  | Completed of string  (** the task's output value (content hash) *)
  | Crashed              (** failure injected *)
  | Not_run              (** skipped: an input never arrived *)

(** One scheduling event, in simulated time. *)
type event = {
  task : Spec.task;
  started : float;
  finished : float;
  outcome : outcome;
}

type trace = {
  spec : Spec.t;
  events : event list;      (** ordered by finish time *)
  makespan : float;         (** total simulated duration *)
  busy_time : float;        (** summed task durations actually executed *)
}

(** Ready-queue ordering when workers are scarce. *)
type policy =
  | Fifo
      (** dependency-release order (the baseline) *)
  | Critical_path_first
      (** prioritise the task with the heaviest remaining downstream path —
          the classic makespan heuristic *)
  | Shortest_first
      (** prioritise cheap tasks (maximises early throughput, can hurt
          makespan) *)

val policy_name : policy -> string

(** Execution parameters. *)
type config = {
  workers : int;            (** simulated parallel machines, ≥ 1 *)
  duration : Spec.task -> float;  (** simulated runtime of each task, > 0 *)
  failure_rate : float;     (** independent crash probability per task *)
  seed : int;               (** drives failures and value salts *)
  salts : (Spec.task * int) list;
      (** override the value salt of specific tasks: re-running with a
          changed salt models changed inputs/parameters, and exactly the
          descendants of salted tasks change outputs *)
  policy : policy;
}

val default_config : config
(** 1 worker, unit durations, no failures, seed 0, no salts, FIFO. *)

val durations_from_attrs :
  ?key:string -> ?default:float -> Spec.t -> Spec.task -> float
(** A duration function reading each task's ["duration"] attribute (or
    [key]), falling back to [default] (1.0) when absent or unparseable —
    the bridge from annotated workflow documents to the simulator. *)

val run : ?config:config -> Spec.t -> trace
(** Execute the workflow once. @raise Invalid_argument on a non-positive
    worker count or duration. *)

val outcome_of : trace -> Spec.task -> outcome

val output_value : trace -> Spec.task -> string option
(** The task's output value, when it completed. *)

val statuses : trace -> (Spec.task * Wolves_provenance.Store.status) list
(** The trace as a status assignment accepted by
    {!Wolves_provenance.Store.record_run}. *)

val critical_path_length : config -> Spec.t -> float
(** Sum of durations along the heaviest dependency path — the makespan lower
    bound regardless of worker count. *)

val total_work : config -> Spec.t -> float
(** Sum of all task durations — the single-worker makespan (without
    failures). *)

val pp_trace : Format.formatter -> trace -> unit
(** Event log rendering. *)

val gantt : ?width:int -> trace -> string
(** ASCII Gantt chart: one row per executed task ordered by start time,
    bars scaled to [width] columns (default 60); crashed tasks end in [x],
    skipped tasks are omitted. *)
