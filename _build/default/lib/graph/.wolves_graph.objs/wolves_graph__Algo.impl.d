lib/graph/algo.ml: Array Bitset Digraph Fun Int List Queue Set Stack
