lib/graph/algo.mli: Bitset Digraph
