lib/graph/chains.ml: Algo Array Digraph List Printf
