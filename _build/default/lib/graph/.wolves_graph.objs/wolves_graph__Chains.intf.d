lib/graph/chains.mli: Digraph
