lib/graph/dominators.ml: Algo Array Digraph List Printf
