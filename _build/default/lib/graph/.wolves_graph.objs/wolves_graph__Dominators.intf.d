lib/graph/dominators.mli: Digraph
