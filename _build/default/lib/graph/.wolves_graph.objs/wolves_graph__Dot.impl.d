lib/graph/dot.ml: Buffer Digraph Hashtbl List Printf String
