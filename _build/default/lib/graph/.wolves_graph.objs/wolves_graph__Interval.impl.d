lib/graph/interval.ml: Algo Array Digraph List Printf
