lib/graph/interval.mli: Digraph
