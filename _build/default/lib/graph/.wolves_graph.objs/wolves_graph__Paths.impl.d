lib/graph/paths.ml: Algo Array Bitset Digraph List Printf Queue Reach
