lib/graph/reach.ml: Algo Array Bitset Digraph List Printf
