lib/graph/reach.mli: Bitset Digraph
