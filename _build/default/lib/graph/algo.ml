let bfs_order g sources =
  let n = Digraph.n_nodes g in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  let order = ref [] in
  let push v =
    if not (Bitset.mem seen v) then begin
      Bitset.add seen v;
      Queue.add v queue
    end
  in
  List.iter push sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter push (Digraph.succ g v)
  done;
  List.rev !order

(* Iterative depth-first search: an explicit stack of (node, remaining
   successors) frames keeps deep synthetic workflows from overflowing the
   OCaml stack. *)
let dfs_postorder g =
  let n = Digraph.n_nodes g in
  let seen = Bitset.create n in
  let post = ref [] in
  let visit root =
    if not (Bitset.mem seen root) then begin
      Bitset.add seen root;
      let stack = ref [ (root, Digraph.succ g root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, []) :: rest ->
          post := v :: !post;
          stack := rest
        | (v, w :: ws) :: rest ->
          stack := (v, ws) :: rest;
          if not (Bitset.mem seen w) then begin
            Bitset.add seen w;
            stack := (w, Digraph.succ g w) :: !stack
          end
      done
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  List.rev !post

let reachable_from g sources =
  let seen = Bitset.create (Digraph.n_nodes g) in
  List.iter (fun v -> Bitset.add seen v) (bfs_order g sources);
  seen

let reaching_to g sinks = reachable_from (Digraph.transpose g) sinks

let topological_sort g =
  let n = Digraph.n_nodes g in
  let in_deg = Array.init n (Digraph.in_degree g) in
  (* A sorted "ready" structure keeps the order deterministic. *)
  let module Ready = Set.Make (Int) in
  let ready = ref Ready.empty in
  for v = 0 to n - 1 do
    if in_deg.(v) = 0 then ready := Ready.add v !ready
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Ready.is_empty !ready) do
    let v = Ready.min_elt !ready in
    ready := Ready.remove v !ready;
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        in_deg.(w) <- in_deg.(w) - 1;
        if in_deg.(w) = 0 then ready := Ready.add w !ready)
      (Digraph.succ g v)
  done;
  if !count = n then Some (List.rev !order) else None

let is_dag g = topological_sort g <> None

let find_cycle g =
  let n = Digraph.n_nodes g in
  (* Colours: 0 unvisited, 1 on the current path, 2 done. *)
  let colour = Array.make n 0 in
  let parent = Array.make n (-1) in
  let result = ref None in
  let rec visit v =
    colour.(v) <- 1;
    let rec loop = function
      | [] -> ()
      | w :: ws ->
        if !result = None then begin
          (match colour.(w) with
           | 0 ->
             parent.(w) <- v;
             visit w
           | 1 ->
             (* Back edge v -> w: reconstruct the path w .. v. *)
             let rec build u acc = if u = w then u :: acc else build parent.(u) (u :: acc) in
             result := Some (build v [])
           | _ -> ());
          loop ws
        end
    in
    loop (Digraph.succ g v);
    colour.(v) <- 2
  in
  let v = ref 0 in
  while !result = None && !v < n do
    if colour.(!v) = 0 then visit !v;
    incr v
  done;
  !result

let sources g =
  List.filter (fun v -> Digraph.in_degree g v = 0)
    (List.init (Digraph.n_nodes g) Fun.id)

let sinks g =
  List.filter (fun v -> Digraph.out_degree g v = 0)
    (List.init (Digraph.n_nodes g) Fun.id)

(* Tarjan's algorithm, iterative to survive long chains. *)
let scc g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let frames = ref [ (root, Digraph.succ g root) ] in
    index.(root) <- !next_index;
    low.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, []) :: rest ->
        frames := rest;
        (match rest with
         | (u, _) :: _ -> low.(u) <- min low.(u) low.(v)
         | [] -> ());
        if low.(v) = index.(v) then begin
          let continue = ref true in
          while !continue do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            comp.(w) <- !next_comp;
            if w = v then continue := false
          done;
          incr next_comp
        end
      | (v, w :: ws) :: rest ->
        frames := (v, ws) :: rest;
        if index.(w) = -1 then begin
          index.(w) <- !next_index;
          low.(w) <- !next_index;
          incr next_index;
          Stack.push w stack;
          on_stack.(w) <- true;
          frames := (w, Digraph.succ g w) :: !frames
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let condensation g =
  let comp, count = scc g in
  let dag = Digraph.create ~initial_capacity:count () in
  Digraph.add_nodes dag count;
  Digraph.iter_edges
    (fun u v -> if comp.(u) <> comp.(v) then Digraph.add_edge dag comp.(u) comp.(v))
    g;
  (dag, comp)

let longest_path_length g =
  match topological_sort g with
  | None -> invalid_arg "Algo.longest_path_length: graph has a cycle"
  | Some order ->
    let dist = Array.make (Digraph.n_nodes g) 0 in
    List.iter
      (fun v ->
        List.iter
          (fun w -> if dist.(v) + 1 > dist.(w) then dist.(w) <- dist.(v) + 1)
          (Digraph.succ g v))
      order;
    Array.fold_left max 0 dist
