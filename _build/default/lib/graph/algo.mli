(** Classic traversals and decompositions over {!Digraph}. *)

val bfs_order : Digraph.t -> int list -> int list
(** Nodes reachable from the given sources, in breadth-first order. Sources
    are visited in the given order; duplicates are ignored. *)

val dfs_postorder : Digraph.t -> int list
(** A depth-first postorder covering every node (restarting from unvisited
    nodes in increasing identifier order). *)

val reachable_from : Digraph.t -> int list -> Bitset.t
(** The set of nodes reachable from the sources (sources included). *)

val reaching_to : Digraph.t -> int list -> Bitset.t
(** The set of nodes from which some sink in the list is reachable (sinks
    included). *)

val topological_sort : Digraph.t -> int list option
(** A topological order of the nodes, or [None] when the graph has a cycle.
    Deterministic: among ready nodes, smaller identifiers come first. *)

val is_dag : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** Some directed cycle as a node list [v1; ...; vk] with edges
    [v1->v2->...->vk->v1], or [None] for a DAG. *)

val sources : Digraph.t -> int list
(** Nodes with no incoming edge, in increasing order. *)

val sinks : Digraph.t -> int list
(** Nodes with no outgoing edge, in increasing order. *)

val scc : Digraph.t -> int array * int
(** Tarjan's strongly connected components. Returns [(comp, count)] where
    [comp.(v)] is the component index of [v]; components are numbered in
    reverse topological order of the condensation ([0] is a sink component). *)

val condensation : Digraph.t -> Digraph.t * int array
(** The condensation DAG together with the node-to-component map. Component
    identifiers follow {!scc}. *)

val longest_path_length : Digraph.t -> int
(** Number of edges on a longest path of a DAG.
    @raise Invalid_argument on a cyclic graph. *)
