type t = {
  n : int;
  chain_of : int array;    (* node -> chain id *)
  pos_of : int array;      (* node -> position within its chain *)
  labels : int array array; (* node -> per-chain earliest reachable position *)
}

let infinity_pos = max_int

let compute g =
  let order =
    match Algo.topological_sort g with
    | Some order -> order
    | None -> invalid_arg "Chains.compute: graph has a cycle"
  in
  let n = Digraph.n_nodes g in
  let chain_of = Array.make n (-1) in
  let pos_of = Array.make n 0 in
  (* Greedy path cover: walking the topological order, append each node to a
     chain whose current tail points to it, else open a new chain. *)
  let tails = ref [] (* (chain id, tail node) in most-recent-first order *) in
  let n_chains = ref 0 in
  List.iter
    (fun v ->
      let rec attach acc = function
        | [] ->
          let c = !n_chains in
          incr n_chains;
          chain_of.(v) <- c;
          pos_of.(v) <- 0;
          tails := (c, v) :: List.rev acc
        | (c, tail) :: rest ->
          if Digraph.mem_edge g tail v then begin
            chain_of.(v) <- c;
            pos_of.(v) <- pos_of.(tail) + 1;
            tails := (c, v) :: (List.rev_append acc rest)
          end
          else attach ((c, tail) :: acc) rest
      in
      attach [] !tails)
    order;
  let k = !n_chains in
  (* Per-node labels, in reverse topological order: the earliest position
     reachable on each chain is the min over successors, plus the node's own
     position on its own chain. *)
  let labels = Array.init n (fun _ -> Array.make k infinity_pos) in
  List.iter
    (fun v ->
      let row = labels.(v) in
      List.iter
        (fun w ->
          let wrow = labels.(w) in
          for c = 0 to k - 1 do
            if wrow.(c) < row.(c) then row.(c) <- wrow.(c)
          done)
        (Digraph.succ g v);
      if pos_of.(v) < row.(chain_of.(v)) then row.(chain_of.(v)) <- pos_of.(v))
    (List.rev order);
  { n; chain_of; pos_of; labels }

let n_chains t = if t.n = 0 then 0 else Array.length t.labels.(0)

let graph_size t = t.n

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Chains: unknown node %d" v)

let reaches t u v =
  check t u;
  check t v;
  t.labels.(u).(t.chain_of.(v)) <= t.pos_of.(v)

let index_words t = t.n * n_chains t
