(** Chain-decomposition reachability index for DAGs.

    An alternative to the dense bitset closure of {!Reach}: decompose the DAG
    into [k] chains (a greedy path cover), then label every node with, per
    chain, the earliest chain position it reaches. Construction costs
    O(V·k + E·k) time and O(V·k) space; queries are O(1). For long, narrow
    graphs (pipelines, staged analyses — the dominant workflow shapes) [k] is
    far below [V] and the index is much smaller than the closure, at equal
    query cost. The E-INDEX benchmark compares the strategies.

    Cyclic graphs are rejected; condense first ({!Algo.condensation}). *)

type t

val compute : Digraph.t -> t
(** Build the index. @raise Invalid_argument on a cyclic graph. *)

val n_chains : t -> int
(** Size of the greedy path cover (not necessarily minimum). *)

val graph_size : t -> int

val reaches : t -> int -> int -> bool
(** [reaches idx u v]: is there a directed path from [u] to [v]? Reflexive. *)

val index_words : t -> int
(** Number of machine words the labelling occupies — the space to compare
    against [Reach.n_closure_edges / 63] bitset words. *)
