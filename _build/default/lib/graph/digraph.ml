(* Adjacency is kept as reversed insertion-order lists and exposed in
   insertion order. Node identifiers are dense, so plain arrays (grown by
   doubling) back both directions. *)

type t = {
  mutable n : int;
  mutable m : int;
  mutable succ : int list array;
  mutable pred : int list array;
}

let create ?(initial_capacity = 16) () =
  let cap = max initial_capacity 1 in
  { n = 0; m = 0; succ = Array.make cap []; pred = Array.make cap [] }

let grow g needed =
  let cap = Array.length g.succ in
  if needed > cap then begin
    let cap' = max needed (2 * cap) in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    g.succ <- succ';
    g.pred <- pred'
  end

let add_node g =
  grow g (g.n + 1);
  let id = g.n in
  g.n <- id + 1;
  id

let add_nodes g k =
  if k < 0 then invalid_arg "Digraph.add_nodes: negative count";
  grow g (g.n + k);
  g.n <- g.n + k

let check g v name =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: unknown node %d" name v)

let mem_edge g u v =
  check g u "mem_edge";
  check g v "mem_edge";
  List.mem v g.succ.(u)

let add_edge g u v =
  check g u "add_edge";
  check g v "add_edge";
  if not (List.mem v g.succ.(u)) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check g u "remove_edge";
  check g v "remove_edge";
  if List.mem v g.succ.(u) then begin
    g.succ.(u) <- List.filter (fun w -> w <> v) g.succ.(u);
    g.pred.(v) <- List.filter (fun w -> w <> u) g.pred.(v);
    g.m <- g.m - 1
  end

let n_nodes g = g.n

let n_edges g = g.m

let succ g u =
  check g u "succ";
  List.rev g.succ.(u)

let pred g v =
  check g v "pred";
  List.rev g.pred.(v)

let out_degree g u =
  check g u "out_degree";
  List.length g.succ.(u)

let in_degree g v =
  check g v "in_degree";
  List.length g.pred.(v)

let iter_nodes f g =
  for v = 0 to g.n - 1 do
    f v
  done

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.succ.(u))
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let copy g =
  { g with succ = Array.copy g.succ; pred = Array.copy g.pred }

let transpose g =
  let t = create ~initial_capacity:g.n () in
  add_nodes t g.n;
  iter_edges (fun u v -> add_edge t v u) g;
  t

let of_edges ~n edges =
  let g = create ~initial_capacity:n () in
  add_nodes g n;
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let induced g nodes =
  let order = Array.of_list nodes in
  let renumber = Hashtbl.create (Array.length order) in
  Array.iteri
    (fun fresh original ->
      check g original "induced";
      if Hashtbl.mem renumber original then
        invalid_arg "Digraph.induced: duplicate node";
      Hashtbl.add renumber original fresh)
    order;
  let sub = create ~initial_capacity:(Array.length order) () in
  add_nodes sub (Array.length order);
  Array.iteri
    (fun fresh original ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt renumber v with
          | Some fresh_v -> add_edge sub fresh fresh_v
          | None -> ())
        (List.rev g.succ.(original)))
    order;
  (sub, order)

let equal a b =
  a.n = b.n
  && a.m = b.m
  && (let same = ref true in
      for u = 0 to a.n - 1 do
        let sa = List.sort compare a.succ.(u)
        and sb = List.sort compare b.succ.(u) in
        if sa <> sb then same := false
      done;
      !same)

let pp ppf g =
  Format.fprintf ppf "digraph(%d nodes:" g.n;
  iter_edges (fun u v -> Format.fprintf ppf " %d->%d" u v) g;
  Format.fprintf ppf ")"
