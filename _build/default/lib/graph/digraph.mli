(** Mutable directed graphs over dense integer node identifiers.

    Nodes are the integers [0 .. n_nodes g - 1]; [add_node] allocates the next
    identifier. Parallel edges are collapsed ([add_edge] is idempotent) and
    self-loops are permitted at this layer (the workflow layer forbids them).
    This is the substrate under workflow specifications, views, provenance
    graphs and the synthetic generators. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** A graph with no nodes. [initial_capacity] pre-sizes internal arrays. *)

val add_node : t -> int
(** Allocate a fresh node and return its identifier. *)

val add_nodes : t -> int -> unit
(** [add_nodes g k] allocates [k] fresh nodes. @raise Invalid_argument if
    [k < 0]. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u -> v]; a no-op when already present.
    @raise Invalid_argument if either endpoint is not a node of [g]. *)

val remove_edge : t -> int -> int -> unit
(** Remove the edge if present; a no-op otherwise. *)

val mem_edge : t -> int -> int -> bool

val n_nodes : t -> int

val n_edges : t -> int

val succ : t -> int -> int list
(** Successors of a node, in insertion order.
    @raise Invalid_argument on an unknown node. *)

val pred : t -> int -> int list
(** Predecessors of a node, in insertion order. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_nodes : (int -> unit) -> t -> unit

val iter_edges : (int -> int -> unit) -> t -> unit
(** Visit every edge [u -> v], grouped by source node. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int) list
(** Every edge, grouped by source node. *)

val copy : t -> t

val transpose : t -> t
(** The graph with every edge reversed. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on nodes [0 .. n-1].
    @raise Invalid_argument on out-of-range endpoints. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] (in the given order,
    which must be duplicate-free), with nodes renumbered [0 ..]; the returned
    array maps new identifiers back to the originals. *)

val equal : t -> t -> bool
(** Same node count and same edge set (insertion order ignored). *)

val pp : Format.formatter -> t -> unit
(** Compact rendering such as [digraph(4 nodes: 0->1 0->2 1->3)]. *)
