type cluster = {
  cluster_name : string;
  cluster_label : string;
  cluster_nodes : int list;
  cluster_color : string option;
}

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(graph_name = "workflow") ?node_label ?node_color ?(clusters = [])
    g =
  let buf = Buffer.create 1024 in
  let label v =
    match node_label with Some f -> f v | None -> string_of_int v
  in
  let emit_node indent v =
    let color_attr =
      match node_color with
      | Some f ->
        (match f v with
         | Some c -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" (escape c)
         | None -> "")
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%sn%d [label=\"%s\"%s];\n" indent v (escape (label v))
         color_attr)
  in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape graph_name));
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  let clustered = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n"
           (escape c.cluster_name) (escape c.cluster_label));
      (match c.cluster_color with
       | Some color ->
         Buffer.add_string buf
           (Printf.sprintf "    color=\"%s\";\n    penwidth=2;\n" (escape color))
       | None -> ());
      List.iter
        (fun v ->
          Hashtbl.replace clustered v ();
          emit_node "    " v)
        c.cluster_nodes;
      Buffer.add_string buf "  }\n")
    clusters;
  Digraph.iter_nodes
    (fun v -> if not (Hashtbl.mem clustered v) then emit_node "  " v)
    g;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
