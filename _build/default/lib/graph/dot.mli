(** Graphviz DOT rendering of {!Digraph} values.

    The CLI uses clusters to draw composite tasks of a view and colour
    attributes to mark unsound composites (the demo GUI's red/green marking). *)

type cluster = {
  cluster_name : string;   (** unique per cluster; used as [subgraph cluster_x] id *)
  cluster_label : string;  (** human-readable caption *)
  cluster_nodes : int list;
  cluster_color : string option;  (** e.g. [Some "red"] for unsound composites *)
}

val to_string :
  ?graph_name:string ->
  ?node_label:(int -> string) ->
  ?node_color:(int -> string option) ->
  ?clusters:cluster list ->
  Digraph.t ->
  string
(** Render the graph as a DOT document. Nodes default to their identifier as
    label; clusters draw the listed nodes inside labelled boxes. *)

val escape : string -> string
(** Escape a string for use inside a double-quoted DOT identifier. *)
