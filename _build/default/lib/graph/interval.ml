type t = {
  n : int;
  post : int array;           (* postorder number of each node *)
  rows : (int * int) array array;
      (* per node: sorted disjoint [lo, hi] intervals of reachable postorder
         numbers (own subtree included) *)
}

(* Merge two sorted disjoint interval lists, coalescing overlaps and
   adjacency. *)
let merge_intervals a b =
  let out = ref [] in
  let push ((lo, hi) as iv) =
    match !out with
    | (plo, phi) :: rest when lo <= phi + 1 ->
      out := (plo, max phi hi) :: rest
    | _ -> out := iv :: !out
  in
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.iter push rest
    | ((xlo, _) as x) :: xs', ((ylo, _) as y) :: ys' ->
      if xlo <= ylo then begin
        push x;
        go xs' ys
      end
      else begin
        push y;
        go xs ys'
      end
  in
  go a b;
  List.rev !out

let compute g =
  let order =
    match Algo.topological_sort g with
    | Some order -> order
    | None -> invalid_arg "Interval.compute: graph has a cycle"
  in
  let n = Digraph.n_nodes g in
  (* Spanning forest: first predecessor in the order is the tree parent. *)
  let children = Array.make n [] in
  let is_root = Array.make n true in
  List.iter
    (fun v ->
      match Digraph.pred g v with
      | [] -> ()
      | parent :: _ ->
        is_root.(v) <- false;
        children.(parent) <- v :: children.(parent))
    order;
  (* Postorder numbering of the forest (iterative). *)
  let post = Array.make n (-1) in
  let low = Array.make n max_int in
  let counter = ref 0 in
  let visit root =
    let stack = ref [ (root, children.(root)) ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, []) :: rest ->
        post.(v) <- !counter;
        incr counter;
        low.(v) <- min low.(v) post.(v);
        (match rest with
         | (p, _) :: _ -> low.(p) <- min low.(p) low.(v)
         | [] -> ());
        stack := rest
      | (v, c :: cs) :: rest ->
        stack := (c, children.(c)) :: (v, cs) :: rest
    done
  in
  List.iter (fun v -> if is_root.(v) then visit v) order;
  (* Propagate interval lists in reverse topological order. *)
  let rows = Array.make n [] in
  List.iter
    (fun v ->
      let own = [ (low.(v), post.(v)) ] in
      let combined =
        List.fold_left
          (fun acc w -> merge_intervals acc rows.(w))
          own (Digraph.succ g v)
      in
      rows.(v) <- combined)
    (List.rev order);
  { n; post; rows = Array.map Array.of_list rows }

let graph_size t = t.n

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Interval: unknown node %d" v)

let reaches t u v =
  check t u;
  check t v;
  let target = t.post.(v) in
  let row = t.rows.(u) in
  (* Binary search for the interval that could contain [target]. *)
  let lo = ref 0 and hi = ref (Array.length row - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let ilo, ihi = row.(mid) in
    if target < ilo then hi := mid - 1
    else if target > ihi then lo := mid + 1
    else found := true
  done;
  !found

let n_intervals t =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 t.rows

let max_intervals_per_node t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.rows
