(** Tree-cover (interval) reachability index for DAGs, after
    Agrawal–Borgida–Jagadish: pick a spanning forest, number it in postorder
    so every subtree is one interval, then propagate interval lists along
    non-tree edges. Tree-shaped reachability costs O(1) and one interval;
    the lists only grow where the DAG genuinely diverges from the forest —
    on workflow-shaped graphs most nodes keep 1–3 intervals, far below the
    n/63 words per node of the bitset closure. Compared in E-INDEX. *)

type t

val compute : Digraph.t -> t
(** @raise Invalid_argument on a cyclic graph. *)

val graph_size : t -> int

val reaches : t -> int -> int -> bool
(** Reflexive reachability. *)

val n_intervals : t -> int
(** Total intervals stored — the index size (2 words each). *)

val max_intervals_per_node : t -> int
