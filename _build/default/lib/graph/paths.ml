let topo_or_fail g name =
  match Algo.topological_sort g with
  | Some order -> order
  | None -> invalid_arg (Printf.sprintf "Paths.%s: graph has a cycle" name)

let count_paths g source target =
  let n = Digraph.n_nodes g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Paths.count_paths: unknown node";
  let order = topo_or_fail g "count_paths" in
  (* counts.(v) = number of paths source -> v, accumulated forward. *)
  let counts = Array.make n 0.0 in
  counts.(source) <- 1.0;
  List.iter
    (fun v ->
      if counts.(v) > 0.0 then
        List.iter
          (fun w -> counts.(w) <- counts.(w) +. counts.(v))
          (Digraph.succ g v))
    order;
  counts.(target)

let total_paths g =
  let n = Digraph.n_nodes g in
  let order = topo_or_fail g "total_paths" in
  (* ending.(v) = number of non-empty paths ending at v; each edge u -> v
     extends every path ending at u, plus the length-1 path (u, v). *)
  let ending = Array.make n 0.0 in
  List.iter
    (fun v ->
      List.iter
        (fun w -> ending.(w) <- ending.(w) +. ending.(v) +. 1.0)
        (Digraph.succ g v))
    order;
  Array.fold_left ( +. ) 0.0 ending

let find_path g source target =
  let n = Digraph.n_nodes g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Paths.find_path: unknown node";
  if source = target then Some [ source ]
  else begin
    let parent = Array.make n (-1) in
    let seen = Bitset.create n in
    Bitset.add seen source;
    let queue = Queue.create () in
    Queue.add source queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if not (Bitset.mem seen w) then begin
            Bitset.add seen w;
            parent.(w) <- v;
            if w = target then found := true else Queue.add w queue
          end)
        (Digraph.succ g v)
    done;
    if not !found then None
    else begin
      let rec build v acc =
        if v = source then v :: acc else build parent.(v) (v :: acc)
      in
      Some (build target [])
    end
  end

let transitive_reduction g =
  ignore (topo_or_fail g "transitive_reduction");
  let r = Reach.compute g in
  let reduced = Digraph.create ~initial_capacity:(Digraph.n_nodes g) () in
  Digraph.add_nodes reduced (Digraph.n_nodes g);
  Digraph.iter_edges
    (fun u v ->
      (* Keep u -> v unless another successor of u already reaches v. *)
      let redundant =
        List.exists
          (fun w -> w <> v && Reach.reaches r w v)
          (Digraph.succ g u)
      in
      if not redundant then Digraph.add_edge reduced u v)
    g;
  reduced

let is_transitively_reduced g =
  Digraph.equal g (transitive_reduction g)
