(** Path counting and transitive reduction on DAGs.

    Path counts quantify why the naive Definition 2.1 check explodes (the
    E-VALID experiment reports them); the transitive reduction is the minimal
    workflow with the same provenance semantics — useful for display and as a
    canonical form. Both reject cyclic graphs. *)

val count_paths : Digraph.t -> int -> int -> float
(** Number of distinct directed paths between two nodes (1 when equal, as
    the empty path). Computed as a float because counts grow exponentially;
    exact for counts below 2⁵³. @raise Invalid_argument on a cyclic graph or
    unknown nodes. *)

val total_paths : Digraph.t -> float
(** Total number of non-empty directed paths in the DAG — the search space
    of naive path enumeration. *)

val find_path : Digraph.t -> int -> int -> int list option
(** Some directed path [u; ...; v] (node sequence, consecutive pairs are
    edges), or [None] when unreachable. [Some [u]] when [u = v]. BFS, so the
    path has the fewest edges. Works on cyclic graphs. *)

val transitive_reduction : Digraph.t -> Digraph.t
(** The unique minimal subgraph of a DAG with the same reachability
    relation: every edge [u -> v] such that [v] is reachable from [u] by a
    longer path is removed. @raise Invalid_argument on a cyclic graph. *)

val is_transitively_reduced : Digraph.t -> bool
