type t = {
  n : int;
  rows : Bitset.t array; (* rows.(v) = descendants of v, v included *)
}

let compute_dag g order =
  let n = Digraph.n_nodes g in
  let rows = Array.init n (fun _ -> Bitset.create n) in
  (* In reverse topological order every successor row is already final. *)
  List.iter
    (fun v ->
      let row = rows.(v) in
      Bitset.add row v;
      List.iter (fun w -> Bitset.union_into ~into:row rows.(w)) (Digraph.succ g v))
    (List.rev order);
  { n; rows }

let compute_general g =
  let n = Digraph.n_nodes g in
  let dag, comp = Algo.condensation g in
  let comp_order =
    match Algo.topological_sort dag with
    | Some order -> order
    | None -> assert false (* condensations are acyclic *)
  in
  (* Closure over components, then expanded to member nodes. *)
  let count = Digraph.n_nodes dag in
  let comp_rows = Array.init count (fun _ -> Bitset.create count) in
  List.iter
    (fun c ->
      let row = comp_rows.(c) in
      Bitset.add row c;
      List.iter (fun d -> Bitset.union_into ~into:row comp_rows.(d)) (Digraph.succ dag c))
    (List.rev comp_order);
  let members = Array.make count [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  let expanded = Array.init count (fun _ -> Bitset.create n) in
  for c = 0 to count - 1 do
    Bitset.iter
      (fun d -> List.iter (fun v -> Bitset.add expanded.(c) v) members.(d))
      comp_rows.(c)
  done;
  { n; rows = Array.init n (fun v -> expanded.(comp.(v))) }

let compute g =
  match Algo.topological_sort g with
  | Some order -> compute_dag g order
  | None -> compute_general g

let graph_size r = r.n

let check r v =
  if v < 0 || v >= r.n then
    invalid_arg (Printf.sprintf "Reach: unknown node %d" v)

let reaches r u v =
  check r u;
  check r v;
  Bitset.mem r.rows.(u) v

let descendants r v =
  check r v;
  r.rows.(v)

let ancestors r v =
  check r v;
  let result = Bitset.create r.n in
  for u = 0 to r.n - 1 do
    if Bitset.mem r.rows.(u) v then Bitset.add result u
  done;
  result

let ancestors_of_set r set =
  let result = Bitset.create r.n in
  for u = 0 to r.n - 1 do
    if not (Bitset.disjoint r.rows.(u) set) then Bitset.add result u
  done;
  result

let descendants_of_set r set =
  let result = Bitset.create r.n in
  Bitset.iter (fun v -> Bitset.union_into ~into:result r.rows.(v)) set;
  result

let n_closure_edges r =
  Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 r.rows
