lib/lang/wfdsl.ml: Buffer Format Hashtbl In_channel List Out_channel Printf Spec String View Wolves_graph Wolves_workflow
