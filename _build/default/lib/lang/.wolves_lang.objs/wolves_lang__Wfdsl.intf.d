lib/lang/wfdsl.mli: Format Spec View Wolves_workflow
