(** A human-writable workflow description language (the [.wf] format).

    MoML is the interchange format; this DSL is what a person types:

    {v
    # phylogenomic inference, abridged
    workflow "phylo" {
      task "select";   task "split";  task "align";  task "display";

      "select" -> "split" -> "align" -> "display";   # chains are sugar

      composite "Input"  { "select" "split" }
      composite "Render" { "display" }
      # tasks in no composite become singletons
    }
    v}

    Grammar (comments run [#] to end of line; names are double-quoted,
    with backslash escapes for the quote and the backslash itself):

    {v
    document  := 'workflow' NAME '{' statement* '}'
    statement := 'task' NAME attrs? ';'
               | NAME ('->' NAME)+ ';'
               | 'composite' NAME '{' NAME* '}'
    attrs     := '[' NAME '=' NAME (',' NAME '=' NAME)* ']'
    v}

    Edges may reference tasks declared anywhere in the document. *)

open Wolves_workflow

type error = {
  line : int;    (** 1-based *)
  column : int;  (** 1-based *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val of_string : string -> (Spec.t * View.t, error) result
(** Parse a document into a specification and view (singletons for tasks in
    no composite). Workflow-level problems (cycles, duplicate tasks, overlap
    between composites) are reported as errors at the document's location of
    the offending name where possible. *)

val to_string : View.t -> string
(** Canonical rendering; [of_string ∘ to_string] preserves the
    specification and partition. Singleton composites named after their only
    task are rendered implicitly. *)

val load : string -> (Spec.t * View.t, error) result
(** Read a [.wf] file. I/O failures are reported at line 0. *)

val save : string -> View.t -> (unit, error) result
