lib/moml/moml.ml: Format Hashtbl In_channel List Option Out_channel Printf Spec String View Wolves_workflow Wolves_xml
