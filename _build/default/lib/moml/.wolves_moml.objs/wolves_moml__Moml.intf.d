lib/moml/moml.mli: Format Spec View Wolves_workflow Wolves_xml
