open Wolves_workflow
module Ast = Wolves_xml.Ast
module Parse = Wolves_xml.Parse
module Print = Wolves_xml.Print

type error =
  | Xml of Parse.error
  | Structure of string
  | Spec_error of Spec.error
  | View_error of View.error

let pp_error ppf = function
  | Xml e -> Format.fprintf ppf "XML error at %a" Parse.pp_error e
  | Structure msg -> Format.fprintf ppf "malformed MoML: %s" msg
  | Spec_error e -> Format.fprintf ppf "workflow error: %a" Spec.pp_error e
  | View_error e -> Format.fprintf ppf "view error: %a" View.pp_error e

exception Fail of error

let fail e = raise (Fail e)

let structure fmt = Format.kasprintf (fun msg -> fail (Structure msg)) fmt

let name_of e tag_context =
  match Ast.attr e "name" with
  | Some n -> n
  | None -> structure "<%s> without a name attribute (%s)" e.Ast.tag tag_context

(* A port is "<task name>.<direction>"; task names may themselves contain
   dots, so split at the last one. *)
let split_port port =
  match String.rindex_opt port '.' with
  | None -> structure "port %S has no .in/.out suffix" port
  | Some i ->
    let task = String.sub port 0 i in
    let dir = String.sub port (i + 1) (String.length port - i - 1) in
    (match dir with
     | "in" | "out" -> (task, dir)
     | _ -> structure "port %S must end in .in or .out" port)

let is_entity (e : Ast.element) = e.Ast.tag = "entity"

(* Direction of a declared <port>: Ptolemy marks it with an <property
   name="input"/> / <property name="output"/> child. *)
let port_direction (port : Ast.element) port_name task_name =
  let has name =
    List.exists
      (fun p -> Ast.attr p "name" = Some name)
      (Ast.children_named port "property")
  in
  match (has "input", has "output") with
  | true, false -> "in"
  | false, true -> "out"
  | true, true ->
    structure "port %S of %S is both input and output (unsupported)" port_name
      task_name
  | false, false ->
    structure "port %S of %S declares no direction (add <property name=\"input\"/> or \"output\")"
      port_name task_name

let parse_root root =
  if root.Ast.tag <> "entity" then
    structure "root element must be <entity>, found <%s>" root.Ast.tag;
  let workflow_name = name_of root "root" in
  (* Groups: (composite name, atomic task names). *)
  let groups = ref [] in
  let tasks = ref [] in
  let add_group name members = groups := (name, members) :: !groups in
  (* Declared ports: (task, port name) -> "in" | "out". *)
  let ports = Hashtbl.create 32 in
  (* Task metadata: <property name="k" value="v"/> children. *)
  let attrs = ref [] in
  let add_task_attrs entity task_name =
    List.iter
      (fun prop ->
        match (Ast.attr prop "name", Ast.attr prop "value") with
        | Some key, Some value -> attrs := (task_name, key, value) :: !attrs
        | _ -> ())
      (Ast.children_named entity "property")
  in
  let add_task_ports entity task_name =
    List.iter
      (fun port ->
        let pname = name_of port "port" in
        if Hashtbl.mem ports (task_name, pname) then
          structure "duplicate port %S on %S" pname task_name;
        Hashtbl.replace ports (task_name, pname)
          (port_direction port pname task_name))
      (Ast.children_named entity "port")
  in
  let add_task ?entity name =
    tasks := name :: !tasks;
    Option.iter
      (fun e ->
        add_task_ports e name;
        add_task_attrs e name)
      entity;
    name
  in
  List.iter
    (function
      | Ast.Element child when is_entity child ->
        let child_name = name_of child "top-level entity" in
        let grandchildren = Ast.children_named child "entity" in
        if grandchildren = [] then
          (* Atomic task directly in the workflow: singleton composite. *)
          add_group child_name [ add_task ~entity:child child_name ]
        else begin
          List.iter
            (fun grand ->
              if Ast.children_named grand "entity" <> [] then
                structure
                  "entity %S nests deeper than composite/atomic (two levels)"
                  (name_of grand "nested entity"))
            grandchildren;
          add_group child_name
            (List.map
               (fun grand ->
                 add_task ~entity:grand (name_of grand "atomic task"))
               grandchildren)
        end
      | Ast.Element _ | Ast.Text _ -> ())
    root.Ast.children;
  (* Relations and links. *)
  let relations = Hashtbl.create 32 in
  List.iter
    (fun rel ->
      let n = name_of rel "relation" in
      if Hashtbl.mem relations n then structure "duplicate relation %S" n;
      Hashtbl.replace relations n [])
    (Ast.children_named root "relation");
  List.iter
    (fun link ->
      let port =
        match Ast.attr link "port" with
        | Some p -> p
        | None -> structure "<link> without a port attribute"
      in
      let rel =
        match Ast.attr link "relation" with
        | Some r -> r
        | None -> structure "<link> without a relation attribute"
      in
      match Hashtbl.find_opt relations rel with
      | None -> structure "link references unknown relation %S" rel
      | Some links ->
        (* A port reference is either a declared port of the task, or the
           implicit .in / .out suffix convention. *)
        let task, direction =
          match String.rindex_opt port '.' with
          | Some i ->
            let t = String.sub port 0 i in
            let p = String.sub port (i + 1) (String.length port - i - 1) in
            (match Hashtbl.find_opt ports (t, p) with
             | Some dir -> (t, dir)
             | None ->
               let t', dir = split_port port in
               (t', dir))
          | None -> split_port port
        in
        Hashtbl.replace relations rel ((task, direction) :: links))
    (Ast.children_named root "link");
  (* A relation is a hyperedge: every linked output port feeds every linked
     input port (Ptolemy fan-out / fan-in). *)
  let deps =
    Hashtbl.fold
      (fun rel links acc ->
        let outs = List.filter (fun (_, d) -> d = "out") links in
        let ins = List.filter (fun (_, d) -> d = "in") links in
        if outs = [] then
          structure "relation %S has no source (.out) port" rel
        else if ins = [] then
          structure "relation %S has no destination (.in) port" rel
        else
          List.fold_left
            (fun acc (producer, _) ->
              List.fold_left
                (fun acc (consumer, _) -> (rel, producer, consumer) :: acc)
                acc ins)
            acc outs)
      relations []
    |> List.sort compare
    |> List.map (fun (_, p, c) -> (p, c))
  in
  (workflow_name, List.rev !tasks, List.rev !groups, deps, List.rev !attrs)

let of_string text =
  match Parse.document text with
  | Error e -> Error (Xml e)
  | Ok root ->
    (try
       let name, tasks, groups, deps, attrs = parse_root root in
       let b = Spec.Builder.create ~name () in
       let rec step f = function
         | [] -> Ok ()
         | x :: rest ->
           (match f x with Error e -> Error e | Ok _ -> step f rest)
       in
       let built =
         match step (Spec.Builder.add_task b) tasks with
         | Error e -> Error e
         | Ok () ->
           (match
              step (fun (p, c) -> Spec.Builder.add_dependency b p c) deps
            with
            | Error e -> Error e
            | Ok () ->
              (match
                 step
                   (fun (task, key, value) ->
                     Spec.Builder.set_attr b task ~key value)
                   attrs
               with
               | Error e -> Error e
               | Ok () -> Spec.Builder.finish b))
       in
       (match built with
        | Error e -> Error (Spec_error e)
        | Ok spec ->
          (match View.make spec groups with
           | Error e -> Error (View_error e)
           | Ok view -> Ok (spec, view)))
     with Fail e -> Error e)

let entity ?(attrs = []) ?(children = []) name =
  Ast.{ tag = "entity"; attrs = ("name", name) :: attrs; children }

let atomic_entity ?(task_attrs = []) name =
  Ast.Element
    (entity
       ~attrs:[ ("class", "wolves.Actor") ]
       ~children:
         (List.map
            (fun (key, value) ->
              Ast.element ~attrs:[ ("name", key); ("value", value) ] "property")
            task_attrs)
       name)

(* One relation per producer, linked once from its .out port and once into
   each consumer's .in port — the Ptolemy fan-out idiom, which also keeps
   documents small. *)
let dependency_elements spec =
  List.concat
    (List.filter_map
       (fun u ->
         match Spec.consumers spec u with
         | [] -> None
         | consumers ->
           let rel = Printf.sprintf "r%d" u in
           Some
             (Ast.element
                ~attrs:[ ("name", rel); ("class", "wolves.Relation") ]
                "relation"
              :: Ast.element
                   ~attrs:
                     [ ("port", Spec.task_name spec u ^ ".out");
                       ("relation", rel) ]
                   "link"
              :: List.map
                   (fun v ->
                     Ast.element
                       ~attrs:
                         [ ("port", Spec.task_name spec v ^ ".in");
                           ("relation", rel) ]
                       "link")
                   consumers))
       (Spec.tasks spec))

let to_string view =
  let spec = View.spec view in
  let composites =
    List.map
      (fun c ->
        Ast.Element
          (entity
             ~attrs:[ ("class", "wolves.CompositeActor") ]
             ~children:
               (List.map
                  (fun t ->
                    atomic_entity ~task_attrs:(Spec.attrs spec t)
                      (Spec.task_name spec t))
                  (View.members view c))
             (View.composite_name view c)))
      (View.composites view)
  in
  let root =
    entity
      ~attrs:[ ("class", "wolves.Workflow") ]
      ~children:(composites @ dependency_elements spec)
      (Spec.name spec)
  in
  Print.to_string root

let spec_to_string spec =
  let root =
    entity
      ~attrs:[ ("class", "wolves.Workflow") ]
      ~children:
        (List.map
           (fun t ->
             atomic_entity ~task_attrs:(Spec.attrs spec t) (Spec.task_name spec t))
           (Spec.tasks spec)
         @ dependency_elements spec)
      (Spec.name spec)
  in
  Print.to_string root

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error (Structure msg)

let save path view =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string view)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Structure msg)
