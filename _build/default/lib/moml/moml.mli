(** MoML import/export (demo §3.2: "A user may load into the system a
    workflow specification and a pre-defined workflow view defined in
    Modeling Markup Language (MOML)").

    The dialect is the Ptolemy II / Kepler structural subset:

    - the root [<entity>] is the workflow;
    - a nested [<entity>] containing further entities is a composite task of
      the view; its children are atomic tasks;
    - a childless [<entity>] directly under the root is an atomic task in a
      singleton composite;
    - dataflow is [<relation name="…"/>] plus two [<link port="…"
      relation="…"/>] elements per dependency, ports written
      [task name.out] / [task name.in];
    - [<property>] elements and [class] attributes are accepted and ignored
      (they carry actor configuration, irrelevant to view soundness).

    One document therefore carries both the specification and the view, and
    [of_string ∘ to_string] is the identity on (specification, partition). *)

open Wolves_workflow

type error =
  | Xml of Wolves_xml.Parse.error
  | Structure of string
      (** malformed MoML: nesting too deep, dangling link, bad port, ... *)
  | Spec_error of Spec.error
  | View_error of View.error

val pp_error : Format.formatter -> error -> unit

val of_string : string -> (Spec.t * View.t, error) result
(** Parse a MoML document into a specification and its view. *)

val to_string : View.t -> string
(** Serialise a view (with its specification) as MoML. Every composite is
    written as a nested entity, singletons included, so names round-trip. *)

val spec_to_string : Spec.t -> string
(** Serialise a bare specification (flat entities; parses back to the
    singleton view). *)

val load : string -> (Spec.t * View.t, error) result
(** Read and parse a file. I/O failures are reported as [Structure]. *)

val save : string -> View.t -> (unit, error) result
(** Write [to_string] to a file. *)
