lib/provenance/opm.ml: Array Buffer Format List Printf Provenance Spec Wolves_graph Wolves_workflow
