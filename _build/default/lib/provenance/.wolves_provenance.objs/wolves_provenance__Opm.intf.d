lib/provenance/opm.mli: Provenance Spec Wolves_graph Wolves_workflow
