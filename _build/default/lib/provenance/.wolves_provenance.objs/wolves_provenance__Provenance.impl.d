lib/provenance/provenance.ml: Format List Spec View Wolves_core Wolves_graph Wolves_workflow
