lib/provenance/provenance.mli: Format Spec View Wolves_graph Wolves_workflow
