lib/provenance/store.ml: Array Buffer Format Fun Hashtbl In_channel List Option Out_channel Printf Provenance Spec String Wolves_graph Wolves_workflow
