lib/provenance/store.mli: Format Provenance Spec Wolves_workflow
