open Wolves_workflow
module Digraph = Wolves_graph.Digraph
module Algo = Wolves_graph.Algo
module Bitset = Wolves_graph.Bitset

type node =
  | Process of Spec.task
  | Artifact of Provenance.item

type t = {
  spec_size : int;
  artifacts : Provenance.item array;
  graph : Digraph.t;
}

(* Node ids: tasks occupy [0, n); artifact k occupies n + k. *)
let of_spec spec =
  let n = Spec.n_tasks spec in
  let artifacts = Array.of_list (Provenance.items spec) in
  let g = Digraph.create ~initial_capacity:(n + Array.length artifacts) () in
  Digraph.add_nodes g (n + Array.length artifacts);
  Array.iteri
    (fun k { Provenance.producer; consumer } ->
      Digraph.add_edge g producer (n + k);
      Digraph.add_edge g (n + k) consumer)
    artifacts;
  { spec_size = n; artifacts; graph = g }

let graph t = t.graph

let node_of_id t id =
  if id < 0 || id >= Digraph.n_nodes t.graph then
    invalid_arg (Printf.sprintf "Opm.node_of_id: %d out of range" id)
  else if id < t.spec_size then Process id
  else Artifact t.artifacts.(id - t.spec_size)

let n_processes t = t.spec_size

let n_artifacts t = Array.length t.artifacts

let label spec = function
  | Process task -> Spec.task_name spec task
  | Artifact item -> Format.asprintf "data[%a]" (Provenance.pp_item spec) item

let artifact_id t item =
  let found = ref None in
  Array.iteri (fun k a -> if a = item && !found = None then found := Some k) t.artifacts;
  match !found with
  | Some k -> t.spec_size + k
  | None -> invalid_arg "Opm.provenance_of_artifact: unknown item"

let provenance_of_artifact t item =
  let id = artifact_id t item in
  let upstream = Algo.reaching_to t.graph [ id ] in
  List.map (node_of_id t) (Bitset.elements upstream)

let to_dot spec t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph \"opm\" {\n  rankdir=TB;\n";
  Digraph.iter_nodes
    (fun id ->
      let shape =
        match node_of_id t id with Process _ -> "box" | Artifact _ -> "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" id
           (Wolves_graph.Dot.escape (label spec (node_of_id t id)))
           shape))
    t.graph;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    t.graph;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
