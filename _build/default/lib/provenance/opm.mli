(** Open-Provenance-Model-style provenance graphs (paper ref [6]).

    Expands a workflow run into an explicit bipartite causality graph:
    process nodes (one per task) and artifact nodes (one per data item
    flowing on a dependency edge), with [used] edges (artifact → process) and
    [wasGeneratedBy] edges rendered as process → artifact dataflow direction,
    so that graph reachability equals provenance. Useful for exporting what a
    provenance store would materialise, and for size comparisons between
    workflow-level and view-level analysis. *)

open Wolves_workflow

type node =
  | Process of Spec.task
  | Artifact of Provenance.item

type t

val of_spec : Spec.t -> t
(** The provenance graph of one (canonical) run of the workflow. *)

val graph : t -> Wolves_graph.Digraph.t
(** Dataflow-direction digraph: process u → artifact (u,v) → process v.
    Shared; do not mutate. *)

val node_of_id : t -> int -> node
(** Interpret a graph node id. @raise Invalid_argument when out of range. *)

val n_processes : t -> int

val n_artifacts : t -> int

val label : Spec.t -> node -> string

val provenance_of_artifact : t -> Provenance.item -> node list
(** Every process and artifact upstream of (and including) the item —
    a transitive-closure query on the OPM graph. *)

val to_dot : Spec.t -> t -> string
(** DOT rendering with box processes and ellipse artifacts. *)
