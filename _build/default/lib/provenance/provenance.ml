open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach

type item = {
  producer : Spec.task;
  consumer : Spec.task;
}

let pp_item spec ppf { producer; consumer } =
  Format.fprintf ppf "%s -> %s" (Spec.task_name spec producer)
    (Spec.task_name spec consumer)

let items spec =
  List.map
    (fun (u, v) -> { producer = u; consumer = v })
    (Digraph.edges (Spec.graph spec))

let inter_composite_items view =
  List.filter
    (fun { producer; consumer } ->
      View.composite_of_task view producer <> View.composite_of_task view consumer)
    (items (View.spec view))

let task_ancestors spec t = Reach.ancestors (Spec.reach spec) t

let item_in_provenance spec item t = Spec.depends spec item.consumer t

let items_in_provenance spec t =
  List.filter (fun item -> item_in_provenance spec item t) (items spec)

let composite_ancestors view c = Reach.ancestors (View.view_reach view) c

let expand view composites =
  let result = Bitset.create (Spec.n_tasks (View.spec view)) in
  Bitset.iter
    (fun c -> List.iter (Bitset.add result) (View.members view c))
    composites;
  result

let view_claims_item view item target =
  let holder = View.composite_of_task view item.consumer in
  Reach.reaches (View.view_reach view) holder target

let composite_outputs view c =
  (Wolves_core.Soundness.composite_io view c).Wolves_core.Soundness.outputs

let truth_for_composite view item target =
  let spec = View.spec view in
  List.exists
    (fun o -> Spec.depends spec item.consumer o)
    (composite_outputs view target)

type stats = {
  queries : int;
  spurious : int;
  missing : int;
}

let evaluate_view view =
  let targets =
    List.filter (fun c -> composite_outputs view c <> []) (View.composites view)
  in
  let data = inter_composite_items view in
  List.fold_left
    (fun acc target ->
      List.fold_left
        (fun acc item ->
          let said = view_claims_item view item target in
          let truth = truth_for_composite view item target in
          { queries = acc.queries + 1;
            spurious = (acc.spurious + if said && not truth then 1 else 0);
            missing = (acc.missing + if truth && not said then 1 else 0) })
        acc data)
    { queries = 0; spurious = 0; missing = 0 }
    targets

let evaluate_view_items view =
  let spec = View.spec view in
  let vr = View.view_reach view in
  let data = inter_composite_items view in
  List.fold_left
    (fun acc target ->
      let target_comp = View.composite_of_task view target.producer in
      List.fold_left
        (fun acc item ->
          if item = target then acc
          else begin
            let holder = View.composite_of_task view item.consumer in
            let said = Reach.reaches vr holder target_comp in
            let truth = Spec.depends spec item.consumer target.producer in
            { queries = acc.queries + 1;
              spurious = (acc.spurious + if said && not truth then 1 else 0);
              missing = (acc.missing + if truth && not said then 1 else 0) }
          end)
        acc data)
    { queries = 0; spurious = 0; missing = 0 }
    data

let spurious_rate stats =
  if stats.queries = 0 then 0.0
  else float_of_int stats.spurious /. float_of_int stats.queries

type explanation =
  | Genuine of Spec.task list
  | Spurious of View.composite list
  | Not_claimed

let explain view item target =
  let spec = View.spec view in
  if not (view_claims_item view item target) then Not_claimed
  else begin
    (* Prefer a genuine task-level chain to some output of the target. *)
    let genuine =
      List.find_map
        (fun o ->
          if Spec.depends spec item.consumer o then
            Wolves_graph.Paths.find_path (Spec.graph spec) item.consumer o
          else None)
        (composite_outputs view target)
    in
    match genuine with
    | Some path -> Genuine path
    | None ->
      let holder = View.composite_of_task view item.consumer in
      (match
         Wolves_graph.Paths.find_path (View.view_graph view) holder target
       with
       | Some composites -> Spurious composites
       | None -> assert false (* the claim implies a view path *))
  end

let spurious_items view target =
  List.filter
    (fun item ->
      view_claims_item view item target && not (truth_for_composite view item target))
    (inter_composite_items view)
