(** Provenance analysis over workflows and views (paper §1).

    "The provenance of a data item is the sequence of steps used to produce
    the data, together with the intermediate data and parameters used as
    input to those steps" — the workflow graph is the provenance graph of a
    run, and provenance queries are transitive-closure queries.

    Data items flow on dependency edges: the item on edge [(u, v)] was
    produced by [u] and consumed by [v]. The item is in the provenance of the
    output of task [t] iff [v ⇝ t] (its content fed a chain of steps ending
    in [t]).

    At the view level, a user sees only composite tasks: the item exported by
    composite [T1] into [T2] is judged part of the provenance of composite
    [T]'s output iff [T2 ⇝ T] in the view graph ([T2 = T] included) — exactly
    the reasoning the paper's introduction walks through for task 18. On a
    sound view this judgement is exact (no spurious and no missing answers,
    for composites with a non-empty out set); on an unsound view it reports
    spurious provenance, e.g. Figure 1's annotation data (edge 3→4) in the
    provenance of the formatted alignment. *)

open Wolves_workflow
module Bitset = Wolves_graph.Bitset

type item = {
  producer : Spec.task;
  consumer : Spec.task;
}
(** The data item flowing on one dependency edge. *)

val pp_item : Spec.t -> Format.formatter -> item -> unit

val items : Spec.t -> item list
(** One item per dependency edge, grouped by producer. *)

val inter_composite_items : View.t -> item list
(** The items crossing composite boundaries — the data a view user can see. *)

(* --- workflow-level queries --- *)

val task_ancestors : Spec.t -> Spec.task -> Bitset.t
(** All tasks whose output (transitively) feeds the given task, itself
    included: the task-level provenance of its output. *)

val item_in_provenance : Spec.t -> item -> Spec.task -> bool
(** Ground truth: is the item part of the provenance of [t]'s output? *)

val items_in_provenance : Spec.t -> Spec.task -> item list
(** All items in the provenance of a task's output. *)

(* --- view-level queries --- *)

val composite_ancestors : View.t -> View.composite -> Bitset.t
(** View-level provenance: composites with a view path to the given one,
    itself included. *)

val expand : View.t -> Bitset.t -> Bitset.t
(** Expand a set of composites to the union of their member tasks (what a
    user believes the provenance contains, task-wise). *)

val view_claims_item : View.t -> item -> View.composite -> bool
(** Does the view lead the user to count this item in the provenance of the
    composite's output? True iff the item's consuming composite has a view
    path to the target (or is the target). *)

val truth_for_composite : View.t -> item -> View.composite -> bool
(** Ground truth at composite granularity: the item feeds some task of
    [T.out]. Composites with an empty out set have no exported output; the
    truth is [false] for them. *)

(* --- correctness metrics (E-PROV) --- *)

type stats = {
  queries : int;   (** (item, composite) pairs evaluated *)
  spurious : int;  (** view says yes, ground truth no *)
  missing : int;   (** view says no, ground truth yes — provably 0 *)
}

val evaluate_view : View.t -> stats
(** Composite granularity: evaluate every inter-composite item against every
    composite with a non-empty out set, where the claim is "the item is in
    the provenance of {e some} output of T". Coarse: symmetric lane-parallel
    stages can be unsound yet never wrong at this granularity (every lane
    reaches its own lane's output). *)

val evaluate_view_items : View.t -> stats
(** Item granularity: for every pair of inter-composite items (d, d'), does
    the view's answer to "is d in the provenance of d'?" (a view path from
    d's consuming composite to d's producing composite) match the task-level
    truth (d's consumer reaches d's producer)? Exact on sound views
    (property-tested); the sharpest measure of unsoundness damage. *)

val spurious_rate : stats -> float
(** [spurious / queries] (0 when no queries). *)

val spurious_items : View.t -> View.composite -> item list
(** The items wrongly reported in the provenance of one composite's output —
    Figure 1's demonstration, programmatically. *)

(** Why the view does (or does not) report an item in a composite's
    provenance. *)
type explanation =
  | Genuine of Spec.task list
      (** a real dependency chain from the item's consumer to a task of the
          target's out set (node sequence, consecutive pairs are edges) *)
  | Spurious of View.composite list
      (** the view path (composite sequence) that misleads the user: it
          exists in the view graph, but no member-level chain backs the
          item *)
  | Not_claimed
      (** the view does not report the item at all (and rightly so) *)

val explain : View.t -> item -> View.composite -> explanation
(** Justify {!view_claims_item} with a concrete witness either way — the
    demo GUI's "Show Dependency", with receipts. *)
