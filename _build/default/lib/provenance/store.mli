(** A provenance store over multiple workflow executions.

    The paper treats one execution, whose provenance graph is the workflow
    graph itself. Real provenance stores hold {e many} runs, and runs fail
    part-way: a failed task produces no output and everything downstream of
    it is skipped. The store records per-run task statuses, materialises the
    executed subgraph per run (with a cached closure), and answers the
    cross-run queries a reproducibility audit needs ("in which runs did data
    from X actually reach Y?"). *)

open Wolves_workflow

type run_id = int

type status =
  | Succeeded
  | Failed
  | Skipped  (** not executed: some upstream task failed *)

val pp_status : Format.formatter -> status -> unit

type t

val create : Spec.t -> t

val spec : t -> Spec.t

val simulate_run : t -> failure_rate:float -> seed:int -> run_id
(** Execute the workflow once: every task whose producers all succeeded
    fails independently with probability [failure_rate], everything
    downstream of a failure is skipped. Deterministic in [seed]. *)

val record_run : t -> (Spec.task * status) list -> (run_id, string) result
(** Record an externally observed run. Every task must be given exactly one
    status, and the statuses must be {e consistent}: a task with a failed or
    skipped producer cannot have run (must be [Skipped]). *)

val n_runs : t -> int

val status : t -> run_id -> Spec.task -> status
(** @raise Invalid_argument on an unknown run or task. *)

val succeeded : t -> run_id -> Spec.task list

val items_of_run : t -> run_id -> Provenance.item list
(** The data items actually produced in the run: edges whose producer
    succeeded. *)

val run_provenance : t -> run_id -> Spec.task -> Spec.task list
(** Provenance of a task's output {e within the run}: its ancestors among
    the tasks that succeeded in that run (the task included, when it
    succeeded; empty otherwise). *)

val runs_where_influences : t -> Spec.task -> Spec.task -> run_id list
(** The runs in which data flowed from the first task into the second: both
    succeeded and a path of succeeded tasks connects them. *)

val success_rate : t -> Spec.task -> float
(** Fraction of runs in which the task succeeded (0 when no runs). *)

val save_csv : t -> string -> (unit, string) result
(** Persist all runs as CSV ([run,task,status], one row per task per run;
    task names are quoted). *)

val load_csv : Spec.t -> string -> (t, string) result
(** Rebuild a store from {!save_csv} output. Runs are re-validated through
    {!record_run}; inconsistent or incomplete runs are reported as errors. *)
