lib/query/query.ml: Buffer Format List Spec String View Wolves_core Wolves_graph Wolves_workflow
