lib/query/query.mli: Format View Wolves_graph Wolves_workflow
