open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module Reach = Wolves_graph.Reach
module Algo = Wolves_graph.Algo

type error = {
  position : int;
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "at offset %d: %s" e.position e.message

exception Fail of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Fail { position; message })) fmt

(* --- lexer --- *)

type token =
  | Name of string   (* 'quoted literal' *)
  | Ident of string  (* bare keyword or function *)
  | Lparen
  | Rparen
  | Amp
  | Bar
  | Minus
  | Bang
  | End

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let c = input.[!pos] in
    let start = !pos in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr pos
     | '(' ->
       tokens := (Lparen, start) :: !tokens;
       incr pos
     | ')' ->
       tokens := (Rparen, start) :: !tokens;
       incr pos
     | '&' ->
       tokens := (Amp, start) :: !tokens;
       incr pos
     | '|' ->
       tokens := (Bar, start) :: !tokens;
       incr pos
     | '-' ->
       tokens := (Minus, start) :: !tokens;
       incr pos
     | '!' ->
       tokens := (Bang, start) :: !tokens;
       incr pos
     | '\'' ->
       incr pos;
       let buf = Buffer.create 16 in
       let closed = ref false in
       while (not !closed) && !pos < n do
         if input.[!pos] = '\'' then begin
           closed := true;
           incr pos
         end
         else begin
           Buffer.add_char buf input.[!pos];
           incr pos
         end
       done;
       if not !closed then fail start "unterminated literal";
       tokens := (Name (Buffer.contents buf), start) :: !tokens
     | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
       let buf = Buffer.create 16 in
       while
         !pos < n
         &&
         match input.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false
       do
         Buffer.add_char buf input.[!pos];
         incr pos
       done;
       tokens := (Ident (Buffer.contents buf), start) :: !tokens
     | c -> fail start "unexpected character %C" c)
  done;
  List.rev ((End, n) :: !tokens)

(* --- parser (recursive descent producing an AST) --- *)

type ast =
  | Literal of string * int
  | Keyword of string * int
  | Apply of string * int * ast
  | Union of ast * ast
  | Diff of ast * ast
  | Inter of ast * ast
  | Complement of ast

type stream = {
  mutable tokens : (token * int) list;
}

let peek st = List.hd st.tokens

let advance st = st.tokens <- List.tl st.tokens

let functions = [ "ancestors"; "descendants"; "producers"; "consumers"; "composites" ]

let keywords = [ "all"; "none"; "sources"; "sinks"; "unsound" ]

let rec parse_expr st =
  let left = ref (parse_term st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Bar, _ ->
      advance st;
      left := Union (!left, parse_term st)
    | Minus, _ ->
      advance st;
      left := Diff (!left, parse_term st)
    | _ -> continue_ := false
  done;
  !left

and parse_term st =
  let left = ref (parse_factor st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Amp, _ ->
      advance st;
      left := Inter (!left, parse_factor st)
    | _ -> continue_ := false
  done;
  !left

and parse_factor st =
  match peek st with
  | Bang, _ ->
    advance st;
    Complement (parse_factor st)
  | Lparen, _ ->
    advance st;
    let inner = parse_expr st in
    (match peek st with
     | Rparen, _ ->
       advance st;
       inner
     | _, p -> fail p "expected ')'")
  | Name literal, p ->
    advance st;
    Literal (literal, p)
  | Ident id, p when List.mem id functions ->
    advance st;
    (match peek st with
     | Lparen, _ ->
       advance st;
       let arg = parse_expr st in
       (match peek st with
        | Rparen, _ ->
          advance st;
          Apply (id, p, arg)
        | _, p' -> fail p' "expected ')' closing %s(...)" id)
     | _, p' -> fail p' "%s needs an argument in parentheses" id)
  | Ident id, p when List.mem id keywords ->
    advance st;
    Keyword (id, p)
  | Ident id, p ->
    fail p "unknown identifier %S (functions: %s; keywords: %s)" id
      (String.concat ", " functions)
      (String.concat ", " keywords)
  | End, p -> fail p "expected an expression"
  | (Rparen | Amp | Bar | Minus), p -> fail p "expected an expression"

let parse input =
  let st = { tokens = tokenize input } in
  let ast = parse_expr st in
  match peek st with
  | End, _ -> ast
  | _, p -> fail p "trailing input after the expression"

(* --- evaluation --- *)

let rec eval_ast view ast =
  let spec = View.spec view in
  let n = Spec.n_tasks spec in
  let r = Spec.reach spec in
  match ast with
  | Literal (name, p) ->
    (match Spec.task_of_name spec name with
     | Some t -> Bitset.of_list n [ t ]
     | None ->
       (match View.composite_of_name view name with
        | Some c -> Bitset.of_list n (View.members view c)
        | None -> fail p "no task or composite named %S" name))
  | Keyword ("all", _) ->
    let s = Bitset.create n in
    Bitset.fill s;
    s
  | Keyword ("none", _) -> Bitset.create n
  | Keyword ("sources", _) -> Bitset.of_list n (Algo.sources (Spec.graph spec))
  | Keyword ("sinks", _) -> Bitset.of_list n (Algo.sinks (Spec.graph spec))
  | Keyword ("unsound", _) ->
    let report = Wolves_core.Soundness.validate view in
    let s = Bitset.create n in
    List.iter
      (fun (c, _) -> List.iter (Bitset.add s) (View.members view c))
      report.Wolves_core.Soundness.unsound;
    s
  | Keyword (other, p) -> fail p "unknown keyword %S" other
  | Apply ("ancestors", _, arg) ->
    Reach.ancestors_of_set r (eval_ast view arg)
  | Apply ("descendants", _, arg) ->
    Reach.descendants_of_set r (eval_ast view arg)
  | Apply ("producers", _, arg) ->
    let s = Bitset.create n in
    Bitset.iter
      (fun t -> List.iter (Bitset.add s) (Spec.producers spec t))
      (eval_ast view arg);
    s
  | Apply ("consumers", _, arg) ->
    let s = Bitset.create n in
    Bitset.iter
      (fun t -> List.iter (Bitset.add s) (Spec.consumers spec t))
      (eval_ast view arg);
    s
  | Apply ("composites", _, arg) ->
    let s = Bitset.create n in
    Bitset.iter
      (fun t ->
        List.iter (Bitset.add s)
          (View.members view (View.composite_of_task view t)))
      (eval_ast view arg);
    s
  | Apply (other, p, _) -> fail p "unknown function %S" other
  | Complement a ->
    let n = Spec.n_tasks (View.spec view) in
    let all = Bitset.create n in
    Bitset.fill all;
    Bitset.diff all (eval_ast view a)
  | Union (a, b) -> Bitset.union (eval_ast view a) (eval_ast view b)
  | Inter (a, b) -> Bitset.inter (eval_ast view a) (eval_ast view b)
  | Diff (a, b) -> Bitset.diff (eval_ast view a) (eval_ast view b)

let eval view input =
  match eval_ast view (parse input) with
  | result -> Ok result
  | exception Fail e -> Error e

let eval_names view input =
  match eval view input with
  | Error e -> Error e
  | Ok set ->
    Ok (List.map (Spec.task_name (View.spec view)) (Bitset.elements set))
