(** A small provenance query language over a workflow and its view.

    The demo GUI's "Show Dependency" as a composable algebra. Queries
    evaluate to sets of atomic tasks:

    {v
    expr    := term (('|' term) | ('-' term))*      union, difference
    term    := factor ('&' factor)*                 intersection
    factor  := '!' factor                           complement
             | '(' expr ')'
             | fn '(' expr ')'
             | 'name'                               task or composite literal
             | all | none | sources | sinks | unsound
    fn      := ancestors | descendants | producers | consumers | composites
    v}

    A quoted ['name'] denotes the task of that name, or — when no task
    matches — the member set of the composite of that name. [ancestors] /
    [descendants] are reflexive–transitive; [producers] / [consumers] are
    one step; [composites(e)] closes a set to composite granularity (all
    members of every composite touching [e]); [unsound] is the union of the
    view's unsound composites.

    Examples over Figure 1:
    - [ancestors('8:Format Alignment')] — the paper's provenance query;
    - [composites(ancestors('8:Format Alignment')) - ancestors('8:Format
      Alignment')] — exactly the tasks a view-level answer over-reports;
    - [unsound & sources] — unsound composites touching workflow inputs. *)

open Wolves_workflow

type error = {
  position : int;  (** 0-based offset into the query string *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val eval : View.t -> string -> (Wolves_graph.Bitset.t, error) result
(** Parse and evaluate; the resulting set has capacity [Spec.n_tasks]. *)

val eval_names : View.t -> string -> (string list, error) result
(** Like {!eval}, but returning task names in increasing id order. *)
