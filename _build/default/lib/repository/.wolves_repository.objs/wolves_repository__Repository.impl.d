lib/repository/repository.ml: Array Filename Format Hashtbl List Option Printf Spec Sys View Wolves_core Wolves_graph Wolves_moml Wolves_workflow Wolves_workload
