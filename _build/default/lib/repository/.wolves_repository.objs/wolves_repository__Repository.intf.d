lib/repository/repository.mli: Format Spec View Wolves_core Wolves_workflow Wolves_workload
