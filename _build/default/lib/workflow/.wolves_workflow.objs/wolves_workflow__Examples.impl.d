lib/workflow/examples.ml: Spec View
