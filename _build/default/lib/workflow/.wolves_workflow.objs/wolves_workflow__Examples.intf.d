lib/workflow/examples.mli: Spec View
