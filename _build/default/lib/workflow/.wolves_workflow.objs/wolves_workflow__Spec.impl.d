lib/workflow/spec.ml: Array Format Fun Hashtbl List Option Printf String Wolves_graph
