lib/workflow/spec.mli: Format Wolves_graph
