lib/workflow/view.ml: Array Format Fun Hashtbl Int List Printf Set Spec String Wolves_graph
