lib/workflow/view.mli: Format Spec Wolves_graph
