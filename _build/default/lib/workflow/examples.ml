(* Task names follow the paper's Figure 1 narrative; the number prefix is the
   paper's task number, kept in the name so the correspondence is visible in
   every rendering. *)

let figure1_tasks =
  [ "1:Select Entries";
    "2:Split Entries";
    "3:Extract Annotations";
    "4:Curate Annotations";
    "5:Format Annotations";
    "6:Extract Sequences";
    "7:Create Alignment";
    "8:Format Alignment";
    "9:Consider Other Annotations";
    "10:Process Other Annotations";
    "11:Build Phylo Tree";
    "12:Display Tree" ]

let figure1_deps =
  [ ("1:Select Entries", "2:Split Entries");
    ("2:Split Entries", "3:Extract Annotations");
    ("2:Split Entries", "6:Extract Sequences");
    ("3:Extract Annotations", "4:Curate Annotations");
    ("4:Curate Annotations", "5:Format Annotations");
    ("5:Format Annotations", "11:Build Phylo Tree");
    ("6:Extract Sequences", "7:Create Alignment");
    ("7:Create Alignment", "8:Format Alignment");
    ("8:Format Alignment", "11:Build Phylo Tree");
    ("9:Consider Other Annotations", "10:Process Other Annotations");
    ("10:Process Other Annotations", "11:Build Phylo Tree");
    ("11:Build Phylo Tree", "12:Display Tree") ]

let figure1_spec () =
  Spec.of_tasks_exn ~name:"phylogenomic-inference" figure1_tasks figure1_deps

let figure1_groups =
  [ ("13:Select Entries", [ "1:Select Entries" ]);
    ("14:Split & Annotate", [ "2:Split Entries"; "3:Extract Annotations" ]);
    ("15:Extract Sequences", [ "6:Extract Sequences" ]);
    ("16:Align Sequences", [ "4:Curate Annotations"; "7:Create Alignment" ]);
    ("17:Format Annotations", [ "5:Format Annotations" ]);
    ("18:Format Alignment", [ "8:Format Alignment" ]);
    ( "19:Build Phylo Tree",
      [ "9:Consider Other Annotations";
        "10:Process Other Annotations";
        "11:Build Phylo Tree";
        "12:Display Tree" ] ) ]

let figure1_view spec = View.make_exn spec figure1_groups

let figure1 () =
  let spec = figure1_spec () in
  (spec, figure1_view spec)

let composite_named view name =
  match View.composite_of_name view name with
  | Some c -> c
  | None -> invalid_arg ("Examples: missing composite " ^ name)

let figure1_unsound_composite view = composite_named view "16:Align Sequences"

let figure1_query_composite view = composite_named view "18:Format Alignment"

(* Figure 3 gadget: source s feeds every entry point, sink t collects every
   exit. The middle composite T = {a .. m} decomposes into one complete
   bipartite block {c,d} x {f,g} (weak local optimality cannot merge any pair
   of it, subset merging fuses all four) and four two-task chains that any
   corrector keeps as chains. Result: weak = 8 parts, strong = optimal = 5. *)
let figure3_tasks =
  [ "s"; "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k"; "m"; "t" ]

let figure3_deps =
  [ (* chain 1 *)
    ("s", "a"); ("a", "b"); ("b", "t");
    (* bipartite block *)
    ("s", "c"); ("s", "d");
    ("c", "f"); ("c", "g"); ("d", "f"); ("d", "g");
    ("f", "t"); ("g", "t");
    (* chains 2..4 *)
    ("s", "e"); ("e", "h"); ("h", "t");
    ("s", "i"); ("i", "j"); ("j", "t");
    ("s", "k"); ("k", "m"); ("m", "t") ]

let figure3 () =
  let spec = Spec.of_tasks_exn ~name:"figure3-gadget" figure3_tasks figure3_deps in
  let view =
    View.make_exn spec
      [ ("Source", [ "s" ]);
        ( "T",
          [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k"; "m" ] );
        ("Sink", [ "t" ]) ]
  in
  (spec, view)

let figure3_composite view = composite_named view "T"

let prop21_counterexample () =
  let spec =
    Spec.of_tasks_exn ~name:"prop21-counterexample"
      [ "x"; "a"; "b"; "y" ]
      [ ("x", "a"); ("b", "y"); ("x", "y") ]
  in
  let view =
    View.make_exn spec [ ("X", [ "x" ]); ("T", [ "a"; "b" ]); ("Y", [ "y" ]) ]
  in
  (spec, view)
