(** The paper's running examples, hand-encoded.

    These are used by the unit tests, the example programs and the E-FIG1 /
    E-FIG3 benchmark sections. *)

val figure1_spec : unit -> Spec.t
(** The Figure 1(a) workflow: phylogenomic inference of protein biological
    functions, 12 atomic tasks (numbered 1–12 in the paper; names below). *)

val figure1_view : Spec.t -> View.t
(** The Figure 1(b) view: 7 composite tasks (numbered 13–19 in the paper).
    Composite 16 ("Align Sequences" = tasks 4 and 7) is unsound: there is no
    path from task 4 ∈ 16.in to task 7 ∈ 16.out. *)

val figure1 : unit -> Spec.t * View.t

val figure1_unsound_composite : View.t -> View.composite
(** The composite the paper calls (16). *)

val figure1_query_composite : View.t -> View.composite
(** The composite the paper calls (18), "Format Alignment" = task 8, whose
    provenance is analysed in the introduction. *)

val figure3 : unit -> Spec.t * View.t
(** A 14-task workflow (source, sink and the 12 tasks a–m of Figure 3) whose
    single middle composite is unsound. Reconstructed so that the paper's
    exact outcome holds: the deterministic weak local optimal corrector
    splits it into 8 parts, the strong local optimal corrector into 5, and
    the paper's two spot checks hold ({f,g} is not combinable because
    ¬reach(g, f); {c,d,f,g} merges into a sound task). *)

val figure3_composite : View.t -> View.composite
(** The unsound composite of {!figure3} (members a–m). *)

val prop21_counterexample : unit -> Spec.t * View.t
(** Workflow {x→a, b→y, x→y} with view X={x}, T={a,b}, Y={y}: every view path
    has a workflow witness (the literal Def 2.1 holds) yet T is unsound per
    Def 2.3. Shows that the operative validator condition (all composites
    sound) is strictly stronger than the literal Def 2.1 statement. *)
