module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach

type composite = int

type t = {
  spec : Spec.t;
  names : string array;
  groups : Spec.task array array; (* members, sorted increasing *)
  of_task : composite array;
  graph : Digraph.t;
  mutable closure : Reach.t option;
}

type error =
  | Empty_composite of string
  | Duplicate_composite_name of string
  | Task_in_several_composites of string
  | Task_not_covered of string
  | Unknown_task_in_view of string
  | Unknown_composite of int

let pp_error ppf = function
  | Empty_composite n -> Format.fprintf ppf "composite %S has no members" n
  | Duplicate_composite_name n ->
    Format.fprintf ppf "duplicate composite name %S" n
  | Task_in_several_composites n ->
    Format.fprintf ppf "task %S belongs to several composites" n
  | Task_not_covered n ->
    Format.fprintf ppf "task %S is not covered by the view" n
  | Unknown_task_in_view n ->
    Format.fprintf ppf "view mentions unknown task %S" n
  | Unknown_composite c -> Format.fprintf ppf "unknown composite %d" c

exception View_error of error

let ok_exn = function Ok v -> v | Error e -> raise (View_error e)

(* Build the view graph: contract the partition, keeping inter-composite
   edges and dropping self-loops. *)
let build_graph spec of_task count =
  let g = Digraph.create ~initial_capacity:count () in
  Digraph.add_nodes g count;
  Digraph.iter_edges
    (fun u v ->
      if of_task.(u) <> of_task.(v) then Digraph.add_edge g of_task.(u) of_task.(v))
    (Spec.graph spec);
  g

let of_ids spec named_groups =
  let n = Spec.n_tasks spec in
  let count = List.length named_groups in
  let names = Array.make count "" in
  let groups = Array.make count [||] in
  let of_task = Array.make n (-1) in
  let seen_names = Hashtbl.create count in
  let rec fill i = function
    | [] -> Ok ()
    | (name, member_ids) :: rest ->
      if Hashtbl.mem seen_names name then Error (Duplicate_composite_name name)
      else begin
        Hashtbl.add seen_names name ();
        names.(i) <- name;
        match member_ids with
        | [] -> Error (Empty_composite name)
        | _ ->
          let arr = Array.of_list member_ids in
          Array.sort compare arr;
          groups.(i) <- arr;
          let dup = ref None in
          Array.iter
            (fun t ->
              if of_task.(t) <> -1 then dup := Some t else of_task.(t) <- i)
            arr;
          (match !dup with
           | Some t -> Error (Task_in_several_composites (Spec.task_name spec t))
           | None -> fill (i + 1) rest)
      end
  in
  match fill 0 named_groups with
  | Error e -> Error e
  | Ok () ->
    let uncovered = ref None in
    for t = n - 1 downto 0 do
      if of_task.(t) = -1 then uncovered := Some t
    done;
    (match !uncovered with
     | Some t -> Error (Task_not_covered (Spec.task_name spec t))
     | None ->
       Ok { spec;
            names;
            groups;
            of_task;
            graph = build_graph spec of_task count;
            closure = None })

let make spec named_groups =
  (* Resolve names; duplicate member names inside one group surface as
     Task_in_several_composites through the id-level check. *)
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | (cname, member_names) :: rest ->
      let rec ids acc_ids = function
        | [] -> Ok (List.rev acc_ids)
        | mn :: more ->
          (match Spec.task_of_name spec mn with
           | Some id -> ids (id :: acc_ids) more
           | None -> Error (Unknown_task_in_view mn))
      in
      (match ids [] member_names with
       | Error e -> Error e
       | Ok member_ids -> resolve ((cname, member_ids) :: acc) rest)
  in
  match resolve [] named_groups with
  | Error e -> Error e
  | Ok named -> of_ids spec named

let make_exn spec named_groups = ok_exn (make spec named_groups)

let default_names ?names count =
  match names with
  | Some arr when Array.length arr = count -> Array.to_list arr
  | Some _ | None -> List.init count (Printf.sprintf "C%d")

let of_partition ?names spec parts =
  let labels = default_names ?names (List.length parts) in
  of_ids spec (List.combine labels parts)

let of_partition_exn ?names spec parts = ok_exn (of_partition ?names spec parts)

let singleton_view spec =
  of_ids spec
    (List.map (fun t -> (Spec.task_name spec t, [ t ])) (Spec.tasks spec))
  |> ok_exn

let spec v = v.spec

let n_composites v = Array.length v.groups

let check v c =
  if c < 0 || c >= n_composites v then raise (View_error (Unknown_composite c))

let composite_name v c =
  check v c;
  v.names.(c)

let composite_of_name v name =
  let result = ref None in
  Array.iteri (fun i n -> if n = name && !result = None then result := Some i) v.names;
  !result

let members v c =
  check v c;
  Array.to_list v.groups.(c)

let composite_of_task v t =
  if t < 0 || t >= Array.length v.of_task then
    invalid_arg (Printf.sprintf "View.composite_of_task: unknown task %d" t);
  v.of_task.(t)

let composites v = List.init (n_composites v) Fun.id

let view_graph v = v.graph

let view_reach v =
  match v.closure with
  | Some r -> r
  | None ->
    let r = Reach.compute v.graph in
    v.closure <- Some r;
    r

let split v c parts =
  check v c;
  let old = Array.to_list v.groups.(c) in
  let flat = List.concat parts in
  let sorted = List.sort compare flat in
  if List.exists (fun p -> p = []) parts then
    Error (Empty_composite (v.names.(c) ^ "/"))
  else if List.length sorted <> List.length old || sorted <> old then
    (* Either a member is missing, duplicated, or foreign. *)
    (match List.find_opt (fun t -> not (List.mem t old)) flat with
     | Some t -> Error (Unknown_task_in_view (Spec.task_name v.spec t))
     | None ->
       let rec first_dup = function
         | a :: (b :: _ as rest) -> if a = b then Some a else first_dup rest
         | _ -> None
       in
       (match first_dup sorted with
        | Some t -> Error (Task_in_several_composites (Spec.task_name v.spec t))
        | None ->
          let missing = List.find (fun t -> not (List.mem t flat)) old in
          Error (Task_not_covered (Spec.task_name v.spec missing))))
  else begin
    let base = v.names.(c) in
    let named_parts =
      List.mapi (fun i part -> (Printf.sprintf "%s/%d" base i, part)) parts
    in
    let keep =
      List.filter_map
        (fun c' ->
          if c' = c then None
          else Some (v.names.(c'), Array.to_list v.groups.(c')))
        (composites v)
    in
    of_ids v.spec (keep @ named_parts)
  end

let split_exn v c parts = ok_exn (split v c parts)

let merge v cs =
  match cs with
  | [] -> Error (Unknown_composite (-1))
  | first :: _ ->
    (try
       List.iter (check v) cs;
       let module S = Set.Make (Int) in
       let set = S.of_list cs in
       if S.cardinal set <> List.length cs then
         Error (Duplicate_composite_name (v.names.(first)))
       else begin
         let merged_members =
           List.concat_map (fun c -> Array.to_list v.groups.(c)) (S.elements set)
         in
         let keep =
           List.filter_map
             (fun c' ->
               if S.mem c' set then None
               else Some (v.names.(c'), Array.to_list v.groups.(c')))
             (composites v)
         in
         of_ids v.spec (keep @ [ (v.names.(first), merged_members) ])
       end
     with View_error e -> Error e)

let merge_exn v cs = ok_exn (merge v cs)

let compression v =
  if n_composites v = 0 then 1.0
  else float_of_int (Spec.n_tasks v.spec) /. float_of_int (n_composites v)

let equal a b =
  a.spec == b.spec
  &&
  let parts v =
    List.sort compare (Array.to_list (Array.map Array.to_list v.groups))
  in
  parts a = parts b

let pp ppf v =
  Format.fprintf ppf "view of %S (%d composites):" (Spec.name v.spec)
    (n_composites v);
  Array.iteri
    (fun c group ->
      Format.fprintf ppf "@ %s={%s}" v.names.(c)
        (String.concat ", "
           (List.map (Spec.task_name v.spec) (Array.to_list group))))
    v.groups
