(** Workflow views: partitions of a specification's tasks into composite
    tasks.

    A view groups every atomic task of a {!Spec} into exactly one composite
    task; the view graph keeps all inter-composite dependency edges (the
    paper's construction, §1). Views are immutable; {!split} and {!merge}
    return refined copies — they implement the Workflow View Feedback loop of
    the demo. *)

type composite = int
(** Composite-task identifier, dense in [0 .. n_composites - 1]. *)

type t

type error =
  | Empty_composite of string
  | Duplicate_composite_name of string
  | Task_in_several_composites of string
  | Task_not_covered of string
  | Unknown_task_in_view of string
  | Unknown_composite of int

val pp_error : Format.formatter -> error -> unit

exception View_error of error

val make : Spec.t -> (string * string list) list -> (t, error) result
(** [make spec groups] builds a view from [(composite name, member task
    names)] pairs. The groups must partition the specification's tasks. *)

val make_exn : Spec.t -> (string * string list) list -> t

val of_partition : ?names:string array -> Spec.t -> Spec.task list list -> (t, error) result
(** Partition given directly by internal task identifiers; composite names
    default to ["C0"], ["C1"], ... in list order. *)

val of_partition_exn : ?names:string array -> Spec.t -> Spec.task list list -> t

val singleton_view : Spec.t -> t
(** One composite per atomic task (always sound); composites are named after
    their task. *)

val spec : t -> Spec.t

val n_composites : t -> int

val composite_name : t -> composite -> string

val composite_of_name : t -> string -> composite option

val members : t -> composite -> Spec.task list
(** Member tasks in increasing identifier order. *)

val composite_of_task : t -> Spec.task -> composite

val composites : t -> composite list

val view_graph : t -> Wolves_graph.Digraph.t
(** Nodes are composites; there is an edge [T1 -> T2] (T1 ≠ T2) iff some
    member of T1 has a dependency edge to some member of T2. Shared with the
    view: do not mutate. *)

val view_reach : t -> Wolves_graph.Reach.t
(** Reflexive–transitive closure of {!view_graph}, cached. *)

val split : t -> composite -> Spec.task list list -> (t, error) result
(** [split view c parts] replaces composite [c] by the given sub-partition of
    its members (names derive from [c]'s name with [/0], [/1], ... suffixes).
    Fails when [parts] is not a partition of [c]'s members. *)

val split_exn : t -> composite -> Spec.task list list -> t

val merge : t -> composite list -> (t, error) result
(** [merge view cs] fuses the listed composites (at least one) into a single
    composite named after the first; other composites are unchanged. *)

val merge_exn : t -> composite list -> t

val compression : t -> float
(** [n_tasks / n_composites]: how much smaller the view is (1.0 for the
    empty view). *)

val equal : t -> t -> bool
(** Same specification (physically) and same partition (names ignored). *)

val pp : Format.formatter -> t -> unit
(** Lists each composite with its members. *)
