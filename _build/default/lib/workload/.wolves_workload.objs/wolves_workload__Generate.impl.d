lib/workload/generate.ml: Array Fun Hashtbl List Printf Prng Spec Wolves_workflow
