lib/workload/generate.mli: Spec Wolves_workflow
