lib/workload/prng.mli:
