lib/workload/templates.ml: Hashtbl List Printf Spec String View Wolves_workflow
