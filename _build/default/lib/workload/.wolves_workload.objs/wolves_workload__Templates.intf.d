lib/workload/templates.mli: Spec View Wolves_workflow
