lib/workload/views.ml: Array Generate List Printf Prng Queue Spec View Wolves_core Wolves_graph Wolves_workflow
