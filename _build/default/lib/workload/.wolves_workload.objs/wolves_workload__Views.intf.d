lib/workload/views.mli: Generate Spec View Wolves_workflow
