open Wolves_workflow

type family =
  | Layered
  | Erdos_renyi
  | Series_parallel
  | Pipeline

let all_families = [ Layered; Erdos_renyi; Series_parallel; Pipeline ]

let family_name = function
  | Layered -> "layered"
  | Erdos_renyi -> "erdos-renyi"
  | Series_parallel -> "series-parallel"
  | Pipeline -> "pipeline"

let family_of_string = function
  | "layered" -> Some Layered
  | "erdos-renyi" -> Some Erdos_renyi
  | "series-parallel" -> Some Series_parallel
  | "pipeline" -> Some Pipeline
  | _ -> None

let task_name i = Printf.sprintf "t%d" i

(* Tie any task left without edges (e.g. by layer trimming) to its
   predecessor id, preserving acyclicity. *)
let ensure_no_isolated ~size edges =
  let touched = Array.make size false in
  List.iter
    (fun (u, v) ->
      touched.(u) <- true;
      touched.(v) <- true)
    edges;
  let extra = ref [] in
  for v = 0 to size - 1 do
    if not touched.(v) then
      extra := (if v = 0 then (0, 1) else (v - 1, v)) :: !extra
  done;
  !extra @ edges

let spec_of_edges ~name ~size edges =
  let edges = ensure_no_isolated ~size edges in
  Spec.of_tasks_exn ~name
    (List.init size task_name)
    (List.map (fun (u, v) -> (task_name u, task_name v)) edges)

(* --- layered ------------------------------------------------------- *)

let layered_edges rng ~layers ~width =
  let edges = ref [] in
  let task layer k = (layer * width) + k in
  for layer = 0 to layers - 2 do
    for k = 0 to width - 1 do
      (* One mandatory edge keeps every task on a source-to-sink path. *)
      let main = Prng.int rng width in
      edges := (task layer k, task (layer + 1) main) :: !edges;
      for k' = 0 to width - 1 do
        if k' <> main && Prng.bernoulli rng (1.0 /. float_of_int width) then
          edges := (task layer k, task (layer + 1) k') :: !edges
      done
    done
  done;
  !edges

let layered ~seed ~layers ~width ~fanout =
  if layers < 2 || width < 1 then invalid_arg "Generate.layered: too small";
  let rng = Prng.create seed in
  let task layer k = (layer * width) + k in
  let edges = ref [] in
  for layer = 0 to layers - 2 do
    for k = 0 to width - 1 do
      let main = Prng.int rng width in
      edges := (task layer k, task (layer + 1) main) :: !edges;
      for k' = 0 to width - 1 do
        if k' <> main && Prng.bernoulli rng (fanout /. float_of_int width) then
          edges := (task layer k, task (layer + 1) k') :: !edges
      done
    done
  done;
  spec_of_edges
    ~name:(Printf.sprintf "layered-%dx%d-seed%d" layers width seed)
    ~size:(layers * width) !edges

(* --- Erdős–Rényi DAG ------------------------------------------------ *)

let erdos_renyi_edges rng ~size =
  (* Random topological order, then forward edges with probability giving
     expected degree ~2.5; a guaranteed edge to a later task keeps tasks
     connected. *)
  let order = Array.of_list (Prng.shuffle rng (List.init size Fun.id)) in
  let p = 2.5 /. float_of_int size in
  let edges = ref [] in
  for i = 0 to size - 1 do
    if i < size - 1 then begin
      let forced = i + 1 + Prng.int rng (size - 1 - i) in
      edges := (order.(i), order.(forced)) :: !edges;
      for j = i + 1 to size - 1 do
        if j <> forced && Prng.bernoulli rng p then
          edges := (order.(i), order.(j)) :: !edges
      done
    end
  done;
  !edges

(* --- series–parallel ------------------------------------------------ *)

(* Allocate [size] tasks by recursive composition. Returns the edge list and
   the entry/exit tasks of each block. *)
let series_parallel_edges rng ~size =
  let next = ref 0 in
  let fresh () =
    let t = !next in
    incr next;
    t
  in
  let edges = ref [] in
  (* Build a block of exactly [budget] >= 1 tasks; return (entry, exit). *)
  let rec block budget =
    if budget = 1 then
      let t = fresh () in
      (t, t)
    else if budget = 2 || Prng.bool rng then begin
      (* series: left then right *)
      let left = 1 + Prng.int rng (budget - 1) in
      let e1, x1 = block left in
      let e2, x2 = block (budget - left) in
      edges := (x1, e2) :: !edges;
      (e1, x2)
    end
    else begin
      (* parallel between a fresh fork and join: needs >= 2 internal *)
      let inner = budget - 2 in
      if inner < 2 then begin
        let e1, x1 = block (budget - 1) in
        let t = fresh () in
        edges := (x1, t) :: !edges;
        (e1, t)
      end
      else begin
        (* Fork and join bracket [inner] = budget - 2 interior tasks split
           over 2..min(4, inner) branches of >= 1 task each. *)
        let fork = fresh () in
        let branches = min (2 + Prng.int rng 3) inner in
        let remaining = ref inner in
        let exits = ref [] in
        for b = 0 to branches - 1 do
          let slots_left = branches - 1 - b in
          let this =
            if b = branches - 1 then !remaining
            else 1 + Prng.int rng (!remaining - slots_left)
          in
          remaining := !remaining - this;
          let e, x = block this in
          edges := (fork, e) :: !edges;
          exits := x :: !exits
        done;
        let join = fresh () in
        List.iter (fun x -> edges := (x, join) :: !edges) !exits;
        (fork, join)
      end
    end
  in
  let entry, exit_ = block size in
  ignore entry;
  ignore exit_;
  assert (!next = size);
  !edges

(* --- pipeline -------------------------------------------------------- *)

let pipeline_edges rng ~size =
  (* Stages of 1 (plain actor) or a fork-join fan; consecutive stages fully
     chained through their boundary tasks. *)
  let edges = ref [] in
  let next = ref 0 in
  let fresh () =
    let t = !next in
    incr next;
    t
  in
  let prev_exit = ref None in
  while !next < size do
    let remaining = size - !next in
    let fan =
      if remaining >= 4 && Prng.bernoulli rng 0.4 then
        2 + Prng.int rng (min 4 (remaining - 3))
      else 0
    in
    if fan > 0 then begin
      let fork = fresh () in
      (match !prev_exit with
       | Some x -> edges := (x, fork) :: !edges
       | None -> ());
      let mids = List.init fan (fun _ -> fresh ()) in
      let join = fresh () in
      List.iter
        (fun m ->
          edges := (fork, m) :: !edges;
          edges := (m, join) :: !edges)
        mids;
      prev_exit := Some join
    end
    else begin
      let t = fresh () in
      (match !prev_exit with
       | Some x -> edges := (x, t) :: !edges
       | None -> ());
      prev_exit := Some t
    end
  done;
  !edges

let generate family ~seed ~size =
  if size < 2 then invalid_arg "Generate.generate: size < 2";
  let rng = Prng.create (seed lxor (Hashtbl.hash (family_name family) * 65599)) in
  let name = Printf.sprintf "%s-%d-seed%d" (family_name family) size seed in
  match family with
  | Layered ->
    let width = max 1 (int_of_float (sqrt (float_of_int size))) in
    let layers = (size + width - 1) / width in
    (* Round the size up to layers*width, then trim by rebuilding with the
       exact count through direct edge generation on [size] ids. *)
    let edges =
      layered_edges rng ~layers ~width
      |> List.filter (fun (u, v) -> u < size && v < size)
    in
    spec_of_edges ~name ~size edges
  | Erdos_renyi -> spec_of_edges ~name ~size (erdos_renyi_edges rng ~size)
  | Series_parallel -> spec_of_edges ~name ~size (series_parallel_edges rng ~size)
  | Pipeline -> spec_of_edges ~name ~size (pipeline_edges rng ~size)
