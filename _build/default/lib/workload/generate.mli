(** Synthetic workflow-specification generators.

    Stand-ins for the Kepler / myExperiment corpora used in the paper's
    evaluation (not available offline — see DESIGN.md, Substitutions). Each
    family produces the structural shape common in those repositories;
    everything is deterministic in the seed. *)

open Wolves_workflow

type family =
  | Layered
      (** Tasks arranged in layers; edges go to the next layer(s). The shape
          of staged scientific analyses. *)
  | Erdos_renyi
      (** Random DAG: each forward pair (u < v in a random order) is an edge
          with uniform probability. *)
  | Series_parallel
      (** Recursive series/parallel composition — nested sub-workflows. *)
  | Pipeline
      (** A chain of stages, each either a single task or a fork–join fan;
          the dominant Kepler actor-pipeline shape. *)

val all_families : family list

val family_name : family -> string

val family_of_string : string -> family option

val generate : family -> seed:int -> size:int -> Spec.t
(** A specification with exactly [size] tasks (plus no extras), connected
    enough that no task is fully isolated. @raise Invalid_argument when
    [size < 2]. *)

val layered : seed:int -> layers:int -> width:int -> fanout:float -> Spec.t
(** Direct access to the layered family: [layers]·[width] tasks; each task
    has ≥ 1 edge to the next layer and further edges drawn with expected
    count [fanout]. *)
