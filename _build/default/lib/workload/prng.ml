(* SplitMix64 (Steele, Lea, Flood 2014), on OCaml's 63-bit ints via Int64.
   Simple, fast, and identical on every platform. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int non-negatively;
     modulo bias is negligible for our bounds. *)
  let raw = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  raw mod bound

let float t bound =
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  let unit = float_of_int raw /. float_of_int (1 lsl 53) in
  unit *. bound

let bool t = Int64.logand (next t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
