(** Deterministic pseudo-random number generation (SplitMix64).

    All synthetic workloads are parameterised by an integer seed and are
    fully reproducible across runs and platforms — a requirement for the
    benchmark harness, whose tables must be regenerable. *)

type t

val create : int -> t
(** A generator seeded deterministically from the given integer. *)

val split : t -> t
(** An independent generator derived from (and advancing) this one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0, 1]). *)

val pick : t -> 'a list -> 'a
(** Uniform element. @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)
