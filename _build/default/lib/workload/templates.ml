open Wolves_workflow

type suite =
  | Montage
  | Cybershake
  | Epigenomics
  | Ligo

let all_suites = [ Montage; Cybershake; Epigenomics; Ligo ]

let suite_name = function
  | Montage -> "montage"
  | Cybershake -> "cybershake"
  | Epigenomics -> "epigenomics"
  | Ligo -> "ligo"

let suite_of_string = function
  | "montage" -> Some Montage
  | "cybershake" -> Some Cybershake
  | "epigenomics" -> Some Epigenomics
  | "ligo" -> Some Ligo
  | _ -> None

(* Builder helpers: tasks are created on first mention, edges check both
   endpoints exist. *)
type b = {
  builder : Spec.Builder.t;
  mutable order : string list; (* declaration order, reversed *)
}

let task b name =
  ignore (Spec.Builder.add_task_exn b.builder name);
  b.order <- name :: b.order;
  name

let edge b u v = Spec.Builder.add_dependency_exn b.builder u v

let fresh name = { builder = Spec.Builder.create ~name (); order = [] }

let finish b = Spec.Builder.finish_exn b.builder

(* --- Montage ------------------------------------------------------- *)

let montage ~scale =
  let b = fresh (Printf.sprintf "montage-%d" scale) in
  let project = List.init scale (fun i -> task b (Printf.sprintf "mProject_%d" i)) in
  (* Adjacent tiles overlap: one mDiffFit per neighbouring pair. *)
  let diffs =
    List.init (max 0 (scale - 1)) (fun i ->
        let d = task b (Printf.sprintf "mDiffFit_%d_%d" i (i + 1)) in
        edge b (List.nth project i) d;
        edge b (List.nth project (i + 1)) d;
        d)
  in
  let concat = task b "mConcatFit" in
  List.iter (fun d -> edge b d concat) diffs;
  (* A single tile has no overlaps: tie projection straight in. *)
  if diffs = [] then List.iter (fun p -> edge b p concat) project;
  let bg_model = task b "mBgModel" in
  edge b concat bg_model;
  let backgrounds =
    List.init scale (fun i ->
        let bg = task b (Printf.sprintf "mBackground_%d" i) in
        edge b bg_model bg;
        edge b (List.nth project i) bg;
        bg)
  in
  let imgtbl = task b "mImgtbl" in
  List.iter (fun bg -> edge b bg imgtbl) backgrounds;
  let add = task b "mAdd" in
  edge b imgtbl add;
  List.iter (fun bg -> edge b bg add) backgrounds;
  let shrink = task b "mShrink" in
  edge b add shrink;
  let jpeg = task b "mJPEG" in
  edge b shrink jpeg;
  finish b

(* --- CyberShake ---------------------------------------------------- *)

let cybershake ~scale =
  let b = fresh (Printf.sprintf "cybershake-%d" scale) in
  let zip_seis = ref [] and zip_psa = ref [] in
  for i = 0 to scale - 1 do
    let sgt = task b (Printf.sprintf "ExtractSGT_%d" i) in
    for j = 0 to 1 do
      let synth = task b (Printf.sprintf "SeismogramSynthesis_%d_%d" i j) in
      edge b sgt synth;
      let peak = task b (Printf.sprintf "PeakValCalc_%d_%d" i j) in
      edge b synth peak;
      zip_seis := synth :: !zip_seis;
      zip_psa := peak :: !zip_psa
    done
  done;
  let zs = task b "ZipSeis" in
  List.iter (fun s -> edge b s zs) !zip_seis;
  let zp = task b "ZipPSA" in
  List.iter (fun p -> edge b p zp) !zip_psa;
  finish b

(* --- Epigenomics ---------------------------------------------------- *)

let epigenomics ~scale =
  let b = fresh (Printf.sprintf "epigenomics-%d" scale) in
  let split = task b "fastQSplit" in
  let maps =
    List.init scale (fun i ->
        let filter = task b (Printf.sprintf "filterContams_%d" i) in
        edge b split filter;
        let sol = task b (Printf.sprintf "sol2sanger_%d" i) in
        edge b filter sol;
        let bfq = task b (Printf.sprintf "fastq2bfq_%d" i) in
        edge b sol bfq;
        let map = task b (Printf.sprintf "map_%d" i) in
        edge b bfq map;
        map)
  in
  let merge = task b "mapMerge" in
  List.iter (fun m -> edge b m merge) maps;
  let index = task b "maqIndex" in
  edge b merge index;
  let pileup = task b "pileup" in
  edge b index pileup;
  finish b

(* --- LIGO Inspiral --------------------------------------------------- *)

let ligo ~scale =
  let b = fresh (Printf.sprintf "ligo-%d" scale) in
  let group_size = 3 in
  let lanes =
    List.init scale (fun i ->
        let bank = task b (Printf.sprintf "TmpltBank_%d" i) in
        let insp = task b (Printf.sprintf "Inspiral1_%d" i) in
        edge b bank insp;
        insp)
  in
  (* First coincidence stage: fan-in groups of 3 lanes. *)
  let n_groups = (scale + group_size - 1) / group_size in
  let thincas =
    List.init n_groups (fun g ->
        let thinca = task b (Printf.sprintf "Thinca1_%d" g) in
        List.iteri
          (fun i insp -> if i / group_size = g then edge b insp thinca)
          lanes;
        thinca)
  in
  (* Second stage: per-lane trig banks from the group's coincidence. *)
  let thinca2s =
    List.init n_groups (fun g -> task b (Printf.sprintf "Thinca2_%d" g))
  in
  List.iteri
    (fun i _ ->
      let g = i / group_size in
      let trig = task b (Printf.sprintf "TrigBank_%d" i) in
      edge b (List.nth thincas g) trig;
      let insp2 = task b (Printf.sprintf "Inspiral2_%d" i) in
      edge b trig insp2;
      edge b insp2 (List.nth thinca2s g))
    lanes;
  finish b

let generate suite ~scale =
  if scale < 1 then invalid_arg "Templates.generate: scale < 1";
  match suite with
  | Montage -> montage ~scale
  | Cybershake -> cybershake ~scale
  | Epigenomics -> epigenomics ~scale
  | Ligo -> ligo ~scale

(* Group tasks by stage: everything before the first '_' (or the whole name
   for the singleton pipeline steps). *)
let natural_view suite spec =
  ignore suite;
  let stage name =
    match String.index_opt name '_' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let order = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let s = stage (Spec.task_name spec t) in
      match Hashtbl.find_opt groups s with
      | Some members -> Hashtbl.replace groups s (t :: members)
      | None ->
        Hashtbl.replace groups s [ t ];
        order := s :: !order)
    (Spec.tasks spec);
  let named =
    List.rev_map (fun s -> (s, List.rev (Hashtbl.find groups s))) !order
  in
  View.make_exn spec
    (List.map
       (fun (s, members) -> (s, List.map (Spec.task_name spec) members))
       named)
