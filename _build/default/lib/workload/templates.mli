(** Parametric generators for the canonical scientific-workflow shapes used
    across workflow research (the Pegasus benchmark suite): Montage
    (astronomy mosaics), CyberShake (seismic hazard), Epigenomics (genome
    sequencing), and LIGO Inspiral (gravitational-wave search).

    These are the published {e structures} of those workflows — task types,
    fan-in/fan-out patterns, stage wiring — generated at a chosen scale, not
    the applications themselves. They stand in for the real repository
    content the paper's evaluation drew from (Kepler, myExperiment host
    exactly such pipelines), giving the audit/correction experiments
    realistic dependency shapes with meaningful task names. *)

open Wolves_workflow

type suite =
  | Montage
      (** mProject × n → mDiffFit per overlapping (adjacent) tile pair →
          mConcatFit → mBgModel → mBackground × n → mImgtbl → mAdd →
          mShrink → mJPEG *)
  | Cybershake
      (** ExtractSGT × n → seismogram synthesis (m per site) → peak value
          extraction → zip aggregations *)
  | Epigenomics
      (** fastQSplit → filterContams/sol2sanger/fastq2bfq/map per lane →
          mapMerge → maqIndex → pileup *)
  | Ligo
      (** TmpltBank × n → Inspiral × n → Thinca (fan-in groups) → TrigBank →
          Inspiral(veto) → Thinca — two-stage coincidence analysis *)

val all_suites : suite list

val suite_name : suite -> string

val suite_of_string : string -> suite option

val generate : suite -> scale:int -> Spec.t
(** Instantiate the shape at a scale (≥ 1): [scale] controls the width of
    the data-parallel stages (e.g. number of Montage tiles). Task counts
    grow linearly in the scale. Deterministic — the structure carries no
    randomness. @raise Invalid_argument when [scale < 1]. *)

val natural_view : suite -> Spec.t -> View.t
(** The view a domain user would draw: one composite per processing stage
    (all mProject tasks together, etc.). Stage views are {e not} always
    sound — data-parallel stages with disjoint lanes are exactly the
    unsound-composite pattern the paper warns about — which makes these
    workflows the realistic audit corpus. *)
