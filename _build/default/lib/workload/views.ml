open Wolves_workflow
module Digraph = Wolves_graph.Digraph

type policy =
  | Topological_bands of int
  | Connected_groups of int
  | Random_partition of int
  | Sound_groups of int

let policy_name = function
  | Topological_bands k -> Printf.sprintf "topological-bands-%d" k
  | Connected_groups k -> Printf.sprintf "connected-groups-%d" k
  | Random_partition k -> Printf.sprintf "random-partition-%d" k
  | Sound_groups k -> Printf.sprintf "sound-groups-%d" k

let chunk size xs =
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let bands spec k =
  chunk k (Spec.topological_order spec)

(* Grow groups by BFS along (undirected) dependency edges so composites
   follow the workflow structure. *)
let connected_groups rng spec k =
  let n = Spec.n_tasks spec in
  let g = Spec.graph spec in
  let assigned = Array.make n false in
  let groups = ref [] in
  let order = Prng.shuffle rng (Spec.tasks spec) in
  List.iter
    (fun seed_task ->
      if not assigned.(seed_task) then begin
        let group = ref [] in
        let frontier = Queue.create () in
        Queue.add seed_task frontier;
        assigned.(seed_task) <- true;
        let count = ref 0 in
        while !count < k && not (Queue.is_empty frontier) do
          let t = Queue.pop frontier in
          group := t :: !group;
          incr count;
          let neighbours = Digraph.succ g t @ Digraph.pred g t in
          List.iter
            (fun u ->
              if (not assigned.(u)) && !count + Queue.length frontier < k then begin
                assigned.(u) <- true;
                Queue.add u frontier
              end)
            neighbours
        done;
        (* Anything still queued was claimed; keep it in this group. *)
        Queue.iter (fun t -> group := t :: !group) frontier;
        groups := List.rev !group :: !groups
      end)
    order;
  List.rev !groups

let random_partition rng spec k =
  chunk k (Prng.shuffle rng (Spec.tasks spec))

(* Sound-by-construction grouping, delegated to the core's automatic view
   construction. *)
let sound_groups spec k = Wolves_core.Suggest.greedy_sound_groups spec ~max_size:k

let build ~seed policy spec =
  let rng = Prng.create seed in
  let parts =
    match policy with
    | Topological_bands k ->
      if k < 1 then invalid_arg "Views.build: band size < 1";
      bands spec k
    | Connected_groups k ->
      if k < 1 then invalid_arg "Views.build: group size < 1";
      connected_groups rng spec k
    | Random_partition k ->
      if k < 1 then invalid_arg "Views.build: group size < 1";
      random_partition rng spec k
    | Sound_groups k ->
      if k < 1 then invalid_arg "Views.build: group size < 1";
      sound_groups spec k
  in
  View.of_partition_exn spec parts

let inject_unsoundness ~seed ~attempts view =
  let rng = Prng.create seed in
  let rec go view attempts =
    if attempts = 0 || not (Wolves_core.Soundness.is_sound view) then view
    else begin
      (* Move one random task into a random other composite. *)
      let spec = View.spec view in
      let t = Prng.int rng (Spec.n_tasks spec) in
      let from_c = View.composite_of_task view t in
      if List.length (View.members view from_c) <= 1 then go view (attempts - 1)
      else begin
        let candidates =
          List.filter (fun c -> c <> from_c) (View.composites view)
        in
        match candidates with
        | [] -> view
        | _ ->
          let to_c = Prng.pick rng candidates in
          let parts =
            List.map
              (fun c ->
                let ms = View.members view c in
                if c = from_c then List.filter (fun x -> x <> t) ms
                else if c = to_c then t :: ms
                else ms)
              (View.composites view)
          in
          go (View.of_partition_exn spec parts) (attempts - 1)
      end
    end
  in
  go view attempts

let unsound_corpus ~seed ~families ~sizes ~per_cell =
  let rng = Prng.create seed in
  List.concat_map
    (fun family ->
      List.concat_map
        (fun size ->
          List.init per_cell (fun i ->
              let wf_seed = Prng.int rng 1_000_000 in
              ignore i;
              let spec = Generate.generate family ~seed:wf_seed ~size in
              let view = build ~seed:wf_seed (Connected_groups 4) spec in
              let view =
                inject_unsoundness ~seed:(wf_seed + 1) ~attempts:(4 * size) view
              in
              (spec, view)))
        sizes)
    families
