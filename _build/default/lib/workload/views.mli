(** Synthetic view generators over a workflow specification.

    Two kinds mirror the paper's evaluation inputs (§3.1): expert-style
    structure-following partitions ("views manually defined by expert users")
    and mechanical partitions ("views automatically constructed"). A third,
    fully random policy and an explicit unsoundness injector produce the
    unsound inputs the correctors are exercised on. *)

open Wolves_workflow

type policy =
  | Topological_bands of int
      (** Consecutive bands of the given size along a topological order —
          the shape produced by automatic view construction over staged
          workflows. *)
  | Connected_groups of int
      (** Groups grown along dependency edges up to the given size
          (expert-style: composites follow the workflow's structure). *)
  | Random_partition of int
      (** Uniformly random groups of roughly the given size — adversarial,
          mostly unsound. *)
  | Sound_groups of int
      (** Greedy groups of at most the given size that are {e sound by
          construction}: walk a topological order and extend the current
          group only while it stays a sound composite. Used where the
          experiment needs a compressive view that is already correct
          (e.g. the view-level provenance speed-up measurement). *)

val policy_name : policy -> string

val build : seed:int -> policy -> Spec.t -> View.t
(** Generate a view of the specification under the policy. Group-size
    arguments must be ≥ 1; the last group may be smaller. Deterministic in
    [seed]. *)

val inject_unsoundness :
  seed:int -> attempts:int -> View.t -> View.t
(** Perturb a view by moving random tasks between composites until at least
    one composite becomes unsound, making at most [attempts] moves. Returns
    the perturbed view (which may still be sound if the budget was too small
    — callers check). Never empties a composite. *)

val unsound_corpus :
  seed:int ->
  families:Generate.family list ->
  sizes:int list ->
  per_cell:int ->
  (Spec.t * View.t) list
(** A corpus crossing workflow families and sizes; each entry's view is
    perturbed toward unsoundness ([Connected_groups] base policy, group size
    4). Used by the E-PROV and E-AUDIT experiments. *)
