lib/xml/ast.ml: Format List String
