lib/xml/ast.mli: Format
