lib/xml/parse.ml: Ast Buffer Format List Printf String Uchar
