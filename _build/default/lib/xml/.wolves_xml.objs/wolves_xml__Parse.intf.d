lib/xml/parse.mli: Ast Format
