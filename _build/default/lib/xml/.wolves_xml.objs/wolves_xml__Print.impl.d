lib/xml/print.ml: Ast Buffer List Printf String
