lib/xml/print.mli: Ast
