type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) ?(children = []) tag = Element { tag; attrs; children }

let text s = Text s

let attr e name = List.assoc_opt name e.attrs

let attr_exn e name = List.assoc name e.attrs

let children_named e name =
  List.filter_map
    (function Element c when c.tag = name -> Some c | Element _ | Text _ -> None)
    e.children

let first_child_named e name =
  match children_named e name with [] -> None | c :: _ -> Some c

let rec text_content e =
  String.concat ""
    (List.map
       (function Text s -> s | Element c -> text_content c)
       e.children)

let is_blank s = String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s

let rec strip_whitespace node =
  match node with
  | Text _ -> node
  | Element e ->
    let children =
      List.filter_map
        (function
          | Text s when is_blank s -> None
          | child -> Some (strip_whitespace child))
        e.children
    in
    Element { e with children }

let sorted_attrs attrs = List.sort compare attrs

let rec equal a b =
  match (a, b) with
  | Text s, Text s' -> s = s'
  | Element e, Element e' ->
    e.tag = e'.tag
    && sorted_attrs e.attrs = sorted_attrs e'.attrs
    && List.length e.children = List.length e'.children
    && List.for_all2 equal e.children e'.children
  | Text _, Element _ | Element _, Text _ -> false

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element e ->
    Format.fprintf ppf "@[<hv 2><%s%a>%a</%s>@]" e.tag
      (fun ppf attrs ->
        List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) attrs)
      e.attrs
      (fun ppf children ->
        List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) children)
      e.children e.tag
