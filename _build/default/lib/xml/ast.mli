(** Abstract syntax of the XML subset used by MoML documents.

    Supported: elements, attributes, character data (with the five predefined
    entities plus numeric references), comments and CDATA (parsed into text);
    prologs and processing instructions are accepted and discarded. Not
    supported (rejected at parse time): DTDs and namespaces beyond plain
    prefixed names. *)

type t =
  | Element of element
  | Text of string  (** character data, already entity-decoded *)

and element = {
  tag : string;
  attrs : (string * string) list;  (** in document order; values decoded *)
  children : t list;
}

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t
(** Convenience constructor. *)

val text : string -> t

val attr : element -> string -> string option
(** First attribute with the given name. *)

val attr_exn : element -> string -> string
(** @raise Not_found when the attribute is missing. *)

val children_named : element -> string -> element list
(** Child elements with the given tag, in document order. *)

val first_child_named : element -> string -> element option

val text_content : element -> string
(** Concatenation of all descendant text nodes. *)

val strip_whitespace : t -> t
(** Recursively drop text nodes that consist only of whitespace (the
    indentation {!Print} adds between elements). Mixed and non-blank text is
    kept verbatim. *)

val equal : t -> t -> bool
(** Structural equality ignoring attribute order. *)

val pp : Format.formatter -> t -> unit
