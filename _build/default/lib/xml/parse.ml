type error = {
  line : int;
  column : int;
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

exception Fail of error

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable column : int;
}

let fail st message = raise (Fail { line = st.line; column = st.column; message })

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.input.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.column <- 1
    end
    else st.column <- st.column + 1;
    st.pos <- st.pos + 1
  end

let next st =
  let c = peek st in
  if c = '\000' && eof st then fail st "unexpected end of input";
  advance st;
  c

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, found %C" c got)

let looking_at st prefix =
  let len = String.length prefix in
  st.pos + len <= String.length st.input
  && String.sub st.input st.pos len = prefix

let skip st n =
  for _ = 1 to n do
    advance st
  done

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    fail st (Printf.sprintf "expected a name, found %C" (peek st));
  let buf = Buffer.create 16 in
  while (not (eof st)) && is_name_char (peek st) do
    Buffer.add_char buf (next st)
  done;
  Buffer.contents buf

(* Decode one entity reference, the leading '&' already consumed. *)
let parse_entity st =
  let buf = Buffer.create 8 in
  let rec read () =
    match next st with
    | ';' -> Buffer.contents buf
    | c when Buffer.length buf > 10 ->
      ignore c;
      fail st "entity reference too long"
    | c ->
      Buffer.add_char buf c;
      read ()
  in
  let name = read () in
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let decode_numeric digits base =
      match int_of_string_opt (base ^ digits) with
      | Some code when code > 0 && code < 0x110000 ->
        (* Encode the scalar value back to UTF-8. *)
        let b = Buffer.create 4 in
        Buffer.add_utf_8_uchar b (Uchar.of_int code);
        Buffer.contents b
      | Some _ | None -> fail st (Printf.sprintf "invalid character reference &%s;" name)
    in
    if String.length name > 2 && name.[0] = '#' && (name.[1] = 'x' || name.[1] = 'X')
    then decode_numeric (String.sub name 2 (String.length name - 2)) "0x"
    else if String.length name > 1 && name.[0] = '#' then
      decode_numeric (String.sub name 1 (String.length name - 1)) ""
    else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted attribute value";
  let buf = Buffer.create 16 in
  let rec read () =
    match next st with
    | c when c = quote -> Buffer.contents buf
    | '&' ->
      Buffer.add_string buf (parse_entity st);
      read ()
    | '<' -> fail st "'<' is not allowed in attribute values"
    | c ->
      Buffer.add_char buf c;
      read ()
  in
  read ()

let skip_until st terminator what =
  let rec go () =
    if eof st then fail st (Printf.sprintf "unterminated %s" what)
    else if looking_at st terminator then skip st (String.length terminator)
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* Skip comments / processing instructions / prolog; returns true when
   something was skipped. *)
let skip_misc st =
  if looking_at st "<!--" then begin
    skip st 4;
    skip_until st "-->" "comment";
    true
  end
  else if looking_at st "<?" then begin
    skip st 2;
    skip_until st "?>" "processing instruction";
    true
  end
  else false

let rec skip_all_misc st =
  skip_spaces st;
  if skip_misc st then skip_all_misc st

let rec parse_element st =
  expect st '<';
  let tag = parse_name st in
  let rec parse_attrs acc =
    skip_spaces st;
    match peek st with
    | '>' ->
      advance st;
      let children = parse_content st tag in
      Ast.{ tag; attrs = List.rev acc; children }
    | '/' ->
      advance st;
      expect st '>';
      Ast.{ tag; attrs = List.rev acc; children = [] }
    | c when is_name_start c ->
      let name = parse_name st in
      if List.mem_assoc name acc then
        fail st (Printf.sprintf "duplicate attribute %s" name);
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let value = parse_attr_value st in
      parse_attrs ((name, value) :: acc)
    | c -> fail st (Printf.sprintf "unexpected %C in element tag" c)
  in
  parse_attrs []

and parse_content st tag =
  let children = ref [] in
  let text_buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      children := Ast.Text (Buffer.contents text_buf) :: !children;
      Buffer.clear text_buf
    end
  in
  let rec go () =
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at st "</" then begin
      skip st 2;
      let closing = parse_name st in
      if closing <> tag then
        fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
      skip_spaces st;
      expect st '>';
      flush_text ()
    end
    else if looking_at st "<![CDATA[" then begin
      skip st 9;
      let start = st.pos in
      let rec find () =
        if eof st then fail st "unterminated CDATA section"
        else if looking_at st "]]>" then begin
          Buffer.add_string text_buf (String.sub st.input start (st.pos - start));
          skip st 3
        end
        else begin
          advance st;
          find ()
        end
      in
      find ();
      go ()
    end
    else if skip_misc st then go ()
    else if peek st = '<' then begin
      flush_text ();
      let child = parse_element st in
      children := Ast.Element child :: !children;
      go ()
    end
    else
      match next st with
      | '&' ->
        Buffer.add_string text_buf (parse_entity st);
        go ()
      | c ->
        Buffer.add_char text_buf c;
        go ()
  in
  go ();
  List.rev !children

let document input =
  let st = { input; pos = 0; line = 1; column = 1 } in
  try
    skip_all_misc st;
    if looking_at st "<!DOCTYPE" then fail st "DTDs are not supported";
    if eof st then fail st "no root element";
    let root = parse_element st in
    skip_all_misc st;
    if not (eof st) then fail st "content after the root element";
    Ok root
  with Fail e -> Error e
