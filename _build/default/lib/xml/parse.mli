(** Recursive-descent parser for the XML subset of {!Ast}. *)

type error = {
  line : int;   (** 1-based *)
  column : int; (** 1-based *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** Renders as [line 3, column 7: message]. *)

val document : string -> (Ast.element, error) result
(** Parse a complete document: optional prolog, comments and processing
    instructions, then exactly one root element. Trailing garbage after the
    root element is an error. *)
