let escape_with buf specials s =
  String.iter
    (fun c ->
      match List.assoc_opt c specials with
      | Some replacement -> Buffer.add_string buf replacement
      | None -> Buffer.add_char buf c)
    s

let text_specials = [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;") ]

let attr_specials = ('"', "&quot;") :: text_specials

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape_with buf text_specials s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape_with buf attr_specials s;
  Buffer.contents buf

let has_text_child e =
  List.exists (function Ast.Text _ -> true | Ast.Element _ -> false) e.Ast.children

let to_string ?(indent = 2) ?(declaration = true) root =
  let buf = Buffer.create 1024 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let emit_attrs attrs =
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape_attr v)))
      attrs
  in
  let rec emit_inline = function
    | Ast.Text s -> escape_with buf text_specials s
    | Ast.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      emit_attrs e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter emit_inline e.children;
        Buffer.add_string buf (Printf.sprintf "</%s>" e.tag)
      end
  in
  let rec emit depth (e : Ast.element) =
    pad depth;
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    emit_attrs e.attrs;
    if e.children = [] then Buffer.add_string buf "/>\n"
    else if has_text_child e then begin
      (* Mixed content: inline so no whitespace is invented. *)
      Buffer.add_char buf '>';
      List.iter emit_inline e.children;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
    end
    else begin
      Buffer.add_string buf ">\n";
      List.iter
        (function
          | Ast.Element child -> emit (depth + 1) child
          | Ast.Text _ -> assert false)
        e.children;
      pad depth;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
    end
  in
  emit 0 root;
  Buffer.contents buf
