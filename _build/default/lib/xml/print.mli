(** Serialisation of {!Ast} values back to XML text. *)

val escape_text : string -> string
(** Escape ['&'], ['<'] and ['>'] for character data. *)

val escape_attr : string -> string
(** Escape ['&'], ['<'], ['>'], ['"'] for double-quoted attribute values. *)

val to_string : ?indent:int -> ?declaration:bool -> Ast.element -> string
(** Render a document. [indent] (default 2) controls pretty-printing:
    element-only content is laid out one child per line; mixed content is
    rendered inline to preserve text exactly. [declaration] (default true)
    emits the [<?xml version="1.0"?>] prolog. Guaranteed to round-trip
    through {!Parse.document}. *)
