test/test_cli.ml: Alcotest Examples Float List Option QCheck2 QCheck_alcotest String View Wolves_cli Wolves_core Wolves_workflow
