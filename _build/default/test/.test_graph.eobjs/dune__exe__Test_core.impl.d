test/test_core.ml: Alcotest Examples Format Fun List Option Printf QCheck2 QCheck_alcotest Spec String View Wolves_core Wolves_graph Wolves_workflow Wolves_workload
