test/test_engine.ml: Alcotest Examples Hashtbl List Printf QCheck2 QCheck_alcotest Spec String Wolves_engine Wolves_graph Wolves_provenance Wolves_workflow Wolves_workload
