test/test_evolution.ml: Alcotest Examples List Option QCheck2 QCheck_alcotest Spec View Wolves_core Wolves_engine Wolves_provenance Wolves_workflow Wolves_workload
