test/test_graph.ml: Alcotest Array Float Fun Int List Printf QCheck2 QCheck_alcotest Set String Wolves_graph
