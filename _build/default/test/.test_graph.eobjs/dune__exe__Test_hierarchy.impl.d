test/test_hierarchy.ml: Alcotest Examples List QCheck2 QCheck_alcotest Spec View Wolves_core Wolves_graph Wolves_workflow Wolves_workload
