test/test_lang.ml: Alcotest Examples Filename Format List Option Printf QCheck2 QCheck_alcotest Spec String Sys View Wolves_engine Wolves_lang Wolves_moml Wolves_workflow Wolves_workload
