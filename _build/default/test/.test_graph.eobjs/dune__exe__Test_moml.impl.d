test/test_moml.ml: Alcotest Examples Filename Format List Option Printf QCheck2 QCheck_alcotest Spec String Sys View Wolves_graph Wolves_moml Wolves_workflow Wolves_workload
