test/test_moml.mli:
