test/test_provenance.ml: Alcotest Examples Filename Fun List Option Out_channel QCheck2 QCheck_alcotest Spec String Sys View Wolves_core Wolves_graph Wolves_provenance Wolves_workflow Wolves_workload
