test/test_provenance.mli:
