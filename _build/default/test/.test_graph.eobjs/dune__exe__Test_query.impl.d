test/test_query.ml: Alcotest Examples Format List Printf QCheck2 QCheck_alcotest String Wolves_graph Wolves_query Wolves_workflow
