test/test_repository.ml: Alcotest Array Examples Filename Fun List Printf Spec String Sys View Wolves_core Wolves_graph Wolves_repository Wolves_workflow Wolves_workload
