test/test_session.ml: Alcotest Examples List Option QCheck2 QCheck_alcotest Spec View Wolves_core Wolves_graph Wolves_workflow Wolves_workload
