test/test_templates.ml: Alcotest List Option QCheck2 QCheck_alcotest Spec View Wolves_core Wolves_graph Wolves_provenance Wolves_workflow Wolves_workload
