test/test_workflow.ml: Alcotest Examples Format Hashtbl List Option Printf QCheck2 QCheck_alcotest Spec View Wolves_core Wolves_graph Wolves_workflow
