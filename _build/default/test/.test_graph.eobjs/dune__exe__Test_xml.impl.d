test/test_xml.ml: Alcotest Buffer Bytes Char Format List Printf QCheck2 QCheck_alcotest String Wolves_xml
