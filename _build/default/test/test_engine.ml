(* Tests for the execution engine: scheduling bounds, failure propagation,
   dataflow (content-hash) semantics, and the bridge into the provenance
   store. *)

open Wolves_workflow
module Engine = Wolves_engine.Engine
module Store = Wolves_provenance.Store
module P = Wolves_provenance.Provenance
module Gen = Wolves_workload.Generate
module Bitset = Wolves_graph.Bitset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let fig1 () = Examples.figure1_spec ()

let cfg ?(workers = 1) ?(failure_rate = 0.0) ?(seed = 0) ?(salts = []) () =
  { Engine.default_config with Engine.workers; failure_rate; seed; salts }

let test_sequential_run () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ()) spec in
  check_float "makespan = total work on 1 worker"
    (Engine.total_work (cfg ()) spec)
    trace.Engine.makespan;
  check_int "every task has an event" 12 (List.length trace.Engine.events);
  check_bool "all completed" true
    (List.for_all
       (fun e -> match e.Engine.outcome with Engine.Completed _ -> true | _ -> false)
       trace.Engine.events)

let test_parallel_speedup () =
  let spec = fig1 () in
  let one = Engine.run ~config:(cfg ~workers:1 ()) spec in
  let many = Engine.run ~config:(cfg ~workers:4 ()) spec in
  let unlimited = Engine.run ~config:(cfg ~workers:64 ()) spec in
  check_bool "parallel not slower" true
    (many.Engine.makespan <= one.Engine.makespan);
  check_float "unlimited workers = critical path"
    (Engine.critical_path_length (cfg ()) spec)
    unlimited.Engine.makespan;
  check_float "busy time invariant" one.Engine.busy_time many.Engine.busy_time

let test_event_consistency () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ~workers:3 ()) spec in
  (* A task starts only after all its producers finished. *)
  let finish = Hashtbl.create 12 in
  List.iter
    (fun e -> Hashtbl.replace finish e.Engine.task e.Engine.finished)
    trace.Engine.events;
  List.iter
    (fun e ->
      List.iter
        (fun p ->
          check_bool "producer finished first" true
            (Hashtbl.find finish p <= e.Engine.started +. 1e-9))
        (Spec.producers spec e.Engine.task))
    trace.Engine.events;
  (* Never more than [workers] tasks running at once: check by sweeping. *)
  let overlaps at =
    List.length
      (List.filter
         (fun e ->
           e.Engine.started < at -. 1e-9
           && at +. 1e-9 < e.Engine.finished
           && e.Engine.started < e.Engine.finished)
         trace.Engine.events)
  in
  List.iter
    (fun e ->
      check_bool "worker bound respected" true
        (overlaps (e.Engine.started +. 0.5) <= 3))
    trace.Engine.events

let test_failure_propagation () =
  let spec = fig1 () in
  (* Find a seed that crashes the split task; then everything downstream of
     it is Not_run. *)
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let rec find_seed seed =
    if seed > 50_000 then Alcotest.fail "no crashing seed found"
    else
      let trace = Engine.run ~config:(cfg ~failure_rate:0.08 ~seed ()) spec in
      if Engine.outcome_of trace t2 = Engine.Crashed then trace else find_seed (seed + 1)
  in
  let trace = find_seed 0 in
  let downstream = P.task_ancestors spec t2 in
  ignore downstream;
  List.iter
    (fun t ->
      if t <> t2 && Spec.depends spec t2 t then
        check_bool "downstream skipped or crashed... skipped" true
          (Engine.outcome_of trace t = Engine.Not_run))
    (Spec.tasks spec)

let test_dataflow_semantics () =
  let spec = fig1 () in
  let base = Engine.run ~config:(cfg ()) spec in
  (* Salting task 2 changes exactly the outputs of its descendants. *)
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let salted = Engine.run ~config:(cfg ~salts:[ (t2, 1) ] ()) spec in
  List.iter
    (fun t ->
      let changed =
        Engine.output_value base t <> Engine.output_value salted t
      in
      check_bool
        (Printf.sprintf "output of %s changed iff descendant of 2"
           (Spec.task_name spec t))
        (Spec.depends spec t2 t) changed)
    (Spec.tasks spec);
  (* Determinism: same config, same values. *)
  let again = Engine.run ~config:(cfg ()) spec in
  List.iter
    (fun t ->
      check_bool "deterministic" true
        (Engine.output_value base t = Engine.output_value again t))
    (Spec.tasks spec)

let test_store_bridge () =
  let spec = fig1 () in
  let store = Store.create spec in
  let trace = Engine.run ~config:(cfg ~failure_rate:0.2 ~seed:7 ()) spec in
  match Store.record_run store (Engine.statuses trace) with
  | Ok id ->
    check_int "statuses accepted" 0 id;
    (* run provenance from the store matches the engine's completed set *)
    List.iter
      (fun t ->
        let completed =
          match Engine.outcome_of trace t with
          | Engine.Completed _ -> true
          | _ -> false
        in
        check_bool "status agreement" completed
          (Store.status store id t = Store.Succeeded))
      (Spec.tasks spec)
  | Error msg -> Alcotest.fail msg

let test_gantt () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ~workers:3 ()) spec in
  let chart = Engine.gantt ~width:40 trace in
  let lines = String.split_on_char '\n' chart in
  (* one row per executed task + the time axis *)
  check_int "rows" (12 + 1 + 1) (List.length lines);
  check_bool "has bars" true
    (List.exists (fun l -> String.contains l '#') lines);
  (* a crashing run draws x bars *)
  let rec crashing seed =
    let t = Engine.run ~config:(cfg ~failure_rate:0.3 ~seed ()) spec in
    if List.exists (fun e -> e.Engine.outcome = Engine.Crashed) t.Engine.events
    then t
    else crashing (seed + 1)
  in
  let t = crashing 1 in
  check_bool "crashes marked" true (String.contains (Engine.gantt t) 'x')

let test_bad_config () =
  let spec = fig1 () in
  Alcotest.check_raises "no workers"
    (Invalid_argument "Engine.run: need at least one worker") (fun () ->
      ignore (Engine.run ~config:{ (cfg ()) with Engine.workers = 0 } spec));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Engine.run: durations must be positive") (fun () ->
      ignore
        (Engine.run
           ~config:{ (cfg ()) with Engine.duration = (fun _ -> 0.0) }
           spec))

(* Properties over generated workflows. *)
let gen_spec =
  QCheck2.Gen.(
    map
      (fun (seed, size) ->
        (seed, Gen.generate (List.nth Gen.all_families (seed mod 4)) ~seed ~size))
      (pair (int_range 0 100_000) (int_range 5 60)))

let prop_makespan_bounds =
  QCheck2.Test.make ~name:"critical path <= makespan <= total work" ~count:80
    QCheck2.Gen.(pair gen_spec (int_range 1 8))
    (fun ((seed, spec), workers) ->
      let config =
        { Engine.default_config with
          Engine.workers;
          duration = (fun t -> 1.0 +. float_of_int ((t + seed) mod 5)) }
      in
      let trace = Engine.run ~config spec in
      let cp = Engine.critical_path_length config spec in
      let work = Engine.total_work config spec in
      cp -. 1e-6 <= trace.Engine.makespan
      && trace.Engine.makespan <= work +. 1e-6
      && abs_float (trace.Engine.busy_time -. work) < 1e-6)

let prop_statuses_always_consistent =
  QCheck2.Test.make
    ~name:"engine traces are always accepted by the provenance store"
    ~count:80
    QCheck2.Gen.(pair gen_spec (int_range 0 100))
    (fun ((_, spec), seed) ->
      let trace =
        Engine.run ~config:(cfg ~failure_rate:0.3 ~seed ()) spec
      in
      match Store.record_run (Store.create spec) (Engine.statuses trace) with
      | Ok _ -> true
      | Error _ -> false)

let prop_salt_changes_exactly_descendants =
  QCheck2.Test.make
    ~name:"salting a task changes exactly its descendants' outputs" ~count:60
    QCheck2.Gen.(pair gen_spec (int_range 0 1000))
    (fun ((_, spec), pick) ->
      let target = pick mod Spec.n_tasks spec in
      let base = Engine.run ~config:(cfg ()) spec in
      let salted = Engine.run ~config:(cfg ~salts:[ (target, 99) ] ()) spec in
      List.for_all
        (fun t ->
          (Engine.output_value base t <> Engine.output_value salted t)
          = Spec.depends spec target t)
        (Spec.tasks spec))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_engine"
    [ ( "engine",
        [ Alcotest.test_case "sequential run" `Quick test_sequential_run;
          Alcotest.test_case "parallel speedup and bounds" `Quick
            test_parallel_speedup;
          Alcotest.test_case "event consistency" `Quick test_event_consistency;
          Alcotest.test_case "failure propagation" `Quick test_failure_propagation;
          Alcotest.test_case "dataflow semantics" `Quick test_dataflow_semantics;
          Alcotest.test_case "store bridge" `Quick test_store_bridge;
          Alcotest.test_case "gantt rendering" `Quick test_gantt;
          Alcotest.test_case "config validation" `Quick test_bad_config;
          qt prop_makespan_bounds;
          qt prop_statuses_always_consistent;
          qt prop_salt_changes_exactly_descendants ] ) ]
