(* Tests for workflow evolution (diff, migrate, impact), provenance
   explanations, and engine scheduling policies. *)

open Wolves_workflow
module Ev = Wolves_core.Evolution
module S = Wolves_core.Soundness
module P = Wolves_provenance.Provenance
module Engine = Wolves_engine.Engine
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Evolution                                                           *)
(* ------------------------------------------------------------------ *)

let v1_spec () =
  Spec.of_tasks_exn ~name:"svc"
    [ "ingest"; "clean"; "train"; "report" ]
    [ ("ingest", "clean"); ("clean", "train"); ("train", "report") ]

(* v2 adds a validation step, drops the report, and rewires. *)
let v2_spec () =
  Spec.of_tasks_exn ~name:"svc"
    [ "ingest"; "clean"; "validate"; "train" ]
    [ ("ingest", "clean"); ("clean", "validate"); ("validate", "train");
      ("ingest", "train") ]

let test_diff () =
  let d = Ev.diff (v1_spec ()) (v2_spec ()) in
  Alcotest.(check (list string)) "added tasks" [ "validate" ] d.Ev.added_tasks;
  Alcotest.(check (list string)) "removed tasks" [ "report" ] d.Ev.removed_tasks;
  check_int "added edges" 3 (List.length d.Ev.added_edges);
  check_int "removed edges" 2 (List.length d.Ev.removed_edges);
  check_bool "non-empty" false (Ev.is_empty d);
  check_bool "self-diff empty" true (Ev.is_empty (Ev.diff (v1_spec ()) (v1_spec ())))

let test_migrate () =
  let old_spec = v1_spec () in
  let view =
    View.make_exn old_spec
      [ ("Prep", [ "ingest"; "clean" ]); ("Model", [ "train"; "report" ]) ]
  in
  let migrated = Ev.migrate view (v2_spec ()) in
  check_int "three composites (Prep, Model-survivor, validate singleton)" 3
    (View.n_composites migrated);
  let model = Option.get (View.composite_of_name migrated "Model") in
  check_int "Model lost the removed task" 1
    (List.length (View.members migrated model));
  check_bool "new task got a singleton" true
    (View.composite_of_name migrated "validate" <> None)

let test_migrate_name_collision () =
  let old_spec = Spec.of_tasks_exn ~name:"w" [ "a"; "b" ] [ ("a", "b") ] in
  (* A composite already named like the task that will appear. *)
  let view = View.make_exn old_spec [ ("c", [ "a"; "b" ]) ] in
  let new_spec =
    Spec.of_tasks_exn ~name:"w" [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ]
  in
  let migrated = Ev.migrate view new_spec in
  check_int "two composites" 2 (View.n_composites migrated);
  check_bool "fresh singleton got a primed name" true
    (View.composite_of_name migrated "c'" <> None)

let chain_spec () =
  (* s -> a -> b -> c: {a,b} is sound (in = {a}, out = {b}, a reaches b). *)
  Spec.of_tasks_exn ~name:"w" [ "s"; "a"; "b"; "c" ]
    [ ("s", "a"); ("a", "b"); ("b", "c") ]

let parallel_spec () =
  (* s feeds a and b independently; both feed c: {a,b} is unsound. *)
  Spec.of_tasks_exn ~name:"w" [ "s"; "a"; "b"; "c" ]
    [ ("s", "a"); ("s", "b"); ("a", "c"); ("b", "c") ]

let test_impact_breaks () =
  let old_spec = chain_spec () in
  let view =
    View.make_exn old_spec
      [ ("S", [ "s" ]); ("AB", [ "a"; "b" ]); ("C", [ "c" ]) ]
  in
  assert (S.is_sound view);
  (* The evolution parallelises a and b: AB silently breaks. *)
  let report = Ev.impact view (parallel_spec ()) in
  (match List.assoc "AB" report.Ev.changes with
   | Ev.Broke witnesses -> check_bool "witnesses given" true (witnesses <> [])
   | _ -> Alcotest.fail "expected AB to break");
  (match List.assoc "C" report.Ev.changes with
   | Ev.Still_sound -> ()
   | _ -> Alcotest.fail "C unaffected")

let test_impact_repairs () =
  let old_spec = parallel_spec () in
  let view =
    View.make_exn old_spec
      [ ("S", [ "s" ]); ("AB", [ "a"; "b" ]); ("C", [ "c" ]) ]
  in
  assert (not (S.is_sound view));
  let report = Ev.impact view (chain_spec ()) in
  match List.assoc "AB" report.Ev.changes with
  | Ev.Repaired -> ()
  | _ -> Alcotest.fail "expected AB repaired"

let prop_migrate_partitions =
  QCheck2.Test.make ~name:"migration always yields a partition of the new spec"
    ~count:80
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 6 30) (int_range 2 5))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let old_spec = Gen.generate family ~seed ~size in
      let new_spec = Gen.generate family ~seed:(seed + 1) ~size:(size + 3) in
      let view = Views.build ~seed (Views.Connected_groups k) old_spec in
      let migrated = Ev.migrate view new_spec in
      List.sort compare
        (List.concat_map (View.members migrated) (View.composites migrated))
      = Spec.tasks new_spec)

(* ------------------------------------------------------------------ *)
(* Provenance explanations                                             *)
(* ------------------------------------------------------------------ *)

let test_explain () =
  let spec, view = Examples.figure1 () in
  let c18 = Examples.figure1_query_composite view in
  let item p c =
    { P.producer = Spec.task_of_name_exn spec p;
      P.consumer = Spec.task_of_name_exn spec c }
  in
  (* Genuine: sequence data feeding the alignment. *)
  (match P.explain view (item "2:Split Entries" "6:Extract Sequences") c18 with
   | P.Genuine path ->
     Alcotest.(check (list string)) "witness chain"
       [ "6:Extract Sequences"; "7:Create Alignment"; "8:Format Alignment" ]
       (List.map (Spec.task_name spec) path)
   | _ -> Alcotest.fail "expected Genuine");
  (* Spurious: the paper's annotation item, with the misleading view path. *)
  (match P.explain view (item "3:Extract Annotations" "4:Curate Annotations") c18 with
   | P.Spurious composites ->
     Alcotest.(check (list string)) "misleading view path"
       [ "16:Align Sequences"; "18:Format Alignment" ]
       (List.map (View.composite_name view) composites)
   | _ -> Alcotest.fail "expected Spurious");
  (* Not claimed: downstream data. *)
  match P.explain view (item "11:Build Phylo Tree" "12:Display Tree") c18 with
  | P.Not_claimed -> ()
  | _ -> Alcotest.fail "expected Not_claimed"

let prop_explanations_consistent =
  QCheck2.Test.make
    ~name:"explanations agree with claims and truths" ~count:80
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 8 30) (int_range 2 5))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition k) spec in
      let targets =
        List.filter
          (fun c ->
            (Wolves_core.Soundness.composite_io view c).Wolves_core.Soundness.outputs
            <> [])
          (View.composites view)
      in
      List.for_all
        (fun item ->
          List.for_all
            (fun target ->
              match P.explain view item target with
              | P.Not_claimed -> not (P.view_claims_item view item target)
              | P.Genuine path ->
                P.truth_for_composite view item target
                && (match path with
                    | first :: _ -> first = item.P.consumer
                    | [] -> false)
              | P.Spurious _ ->
                P.view_claims_item view item target
                && not (P.truth_for_composite view item target))
            targets)
        (P.inter_composite_items view))

(* ------------------------------------------------------------------ *)
(* Scheduling policies                                                 *)
(* ------------------------------------------------------------------ *)

let test_policies_run () =
  let spec = Gen.generate Gen.Layered ~seed:3 ~size:40 in
  let base policy =
    { Engine.default_config with
      Engine.workers = 3;
      duration = (fun t -> 1.0 +. float_of_int (t mod 5));
      policy }
  in
  let results =
    List.map
      (fun policy ->
        let trace = Engine.run ~config:(base policy) spec in
        (* same work, valid bounds, regardless of policy *)
        check_bool "bounds" true
          (Engine.critical_path_length (base policy) spec -. 1e-6
           <= trace.Engine.makespan
           && trace.Engine.makespan
              <= Engine.total_work (base policy) spec +. 1e-6);
        trace.Engine.makespan)
      [ Engine.Fifo; Engine.Critical_path_first; Engine.Shortest_first ]
  in
  match results with
  | [ _fifo; cpf; _sf ] ->
    (* CPF should never be beaten badly on layered graphs; sanity: it is
       within the bounds already checked. Just pin that policies can give
       different makespans on this instance. *)
    check_bool "cpf produced a finite makespan" true (cpf > 0.0)
  | _ -> Alcotest.fail "three policies"

let prop_policies_same_outputs =
  QCheck2.Test.make
    ~name:"scheduling policy affects timing, never dataflow results"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 5 40))
    (fun (seed, size) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let run policy =
        Engine.run
          ~config:
            { Engine.default_config with
              Engine.workers = 2;
              duration = (fun t -> 1.0 +. float_of_int (t mod 3));
              policy }
          spec
      in
      let a = run Engine.Fifo in
      let b = run Engine.Critical_path_first in
      let c = run Engine.Shortest_first in
      List.for_all
        (fun t ->
          Engine.output_value a t = Engine.output_value b t
          && Engine.output_value b t = Engine.output_value c t)
        (Spec.tasks spec))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_evolution"
    [ ( "evolution",
        [ Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "migration name collision" `Quick
            test_migrate_name_collision;
          Alcotest.test_case "impact: broke" `Quick test_impact_breaks;
          Alcotest.test_case "impact: repaired" `Quick test_impact_repairs;
          qt prop_migrate_partitions ] );
      ( "explain",
        [ Alcotest.test_case "figure 1 explanations" `Quick test_explain;
          qt prop_explanations_consistent ] );
      ( "scheduling",
        [ Alcotest.test_case "policies respect bounds" `Quick test_policies_run;
          qt prop_policies_same_outputs ] ) ]
