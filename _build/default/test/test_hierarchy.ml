(* Tests for multi-level views: construction, flattening, per-level
   validation, and the composition theorem (locally sound levels => sound
   flattened view). *)

open Wolves_workflow
module Hr = Wolves_core.Hierarchy
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Prng = Wolves_workload.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_spec_of_view () =
  let _, view = Examples.figure1 () in
  let vspec = Hr.spec_of_view view in
  check_int "one task per composite" 7 (Spec.n_tasks vspec);
  (* View edges of figure 1: 13->14, 14->16, 15->16?? compute: count. *)
  check_int "edges = view edges" (Wolves_graph.Digraph.n_edges (View.view_graph view))
    (Spec.n_dependencies vspec);
  check_bool "task named after composite" true
    (Spec.task_of_name vspec "16:Align Sequences" <> None)

let test_two_levels_fig1 () =
  let _, view = Examples.figure1 () in
  let h = Hr.base view in
  check_int "height 1" 1 (Hr.height h);
  (* Coarsen: group the annotation side and the sequence side. *)
  match
    Hr.coarsen h
      [ ("Input", [ "13:Select Entries"; "14:Split & Annotate" ]);
        ("Annotations", [ "16:Align Sequences"; "17:Format Annotations" ]);
        ("Sequences", [ "15:Extract Sequences"; "18:Format Alignment" ]);
        ("Output", [ "19:Build Phylo Tree" ]) ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok h2 ->
    check_int "height 2" 2 (Hr.height h2);
    let flat = Hr.flatten h2 in
    check_int "flattened composites" 4 (View.n_composites flat);
    check_int "flattened covers all tasks" 12
      (List.fold_left
         (fun acc c -> acc + List.length (View.members flat c))
         0 (View.composites flat));
    (* Level 0 (figure 1's view) is unsound; so the stack is unsound. *)
    check_bool "stack unsound" false (Hr.sound h2);
    Alcotest.(check (option int)) "level 0 is the culprit" (Some 0)
      (Hr.first_unsound_level h2)

let test_sound_stack () =
  (* Correct figure 1 first, then coarsen soundly: chain groups. *)
  let _, view = Examples.figure1 () in
  let corrected, _ = C.correct C.Strong view in
  let h = Hr.base corrected in
  let names = List.map (View.composite_name corrected) (View.composites corrected) in
  (* Two super-groups: a prefix and the rest, split at the phylo-tree
     builder; this may or may not be sound — find a trivial sound coarsening
     instead: all singleton super-groups. *)
  let singleton_groups = List.map (fun n -> ("S:" ^ n, [ n ])) names in
  match Hr.coarsen h singleton_groups with
  | Error msg -> Alcotest.fail msg
  | Ok h2 ->
    check_bool "singleton coarsening keeps soundness" true (Hr.sound h2);
    check_bool "flattened sound" true (S.is_sound (Hr.flatten h2));
    check_int "levels accessible" 8 (View.n_composites (Hr.level h2 0))

let test_coarsen_errors () =
  let _, view = Examples.figure3 () in
  let h = Hr.base view in
  (match Hr.coarsen h [ ("X", [ "Source" ]) ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "partial cover accepted");
  match Hr.coarsen h [ ("X", [ "Source"; "nope" ]) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown composite accepted"

(* The composition theorem. *)
let prop_composition =
  QCheck2.Test.make
    ~name:"locally sound levels => sound flattened view" ~count:80
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 10 40) (int_range 2 5))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      (* Level 0: a corrected (hence sound) view. *)
      let v0, _ =
        C.correct C.Strong (Views.build ~seed (Views.Connected_groups k) spec)
      in
      (* Level 1: sound groups over the view-graph-as-workflow. *)
      let vspec = Hr.spec_of_view v0 in
      let super = Views.build ~seed:(seed + 1) (Views.Sound_groups k) vspec in
      let groups =
        List.map
          (fun c ->
            ( "S" ^ string_of_int c,
              List.map (Spec.task_name vspec) (View.members super c) ))
          (View.composites super)
      in
      match Hr.coarsen (Hr.base v0) groups with
      | Error _ -> false
      | Ok h ->
        Hr.sound h
        (* the theorem: *)
        && S.is_sound (Hr.flatten h))

(* Sanity: the flattened partition equals composing memberships by hand. *)
let prop_flatten_partition =
  QCheck2.Test.make ~name:"flatten produces a partition of the base tasks"
    ~count:80
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 10 40) (int_range 2 5))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families ((seed + 1) mod 4) in
      let spec = Gen.generate family ~seed ~size in
      (* Stack over a corrected level: unsound views can have cyclic view
         graphs, which cannot be re-read as workflows. *)
      let v0, _ =
        C.correct C.Strong (Views.build ~seed (Views.Connected_groups k) spec)
      in
      let vspec = Hr.spec_of_view v0 in
      let super =
        Views.build ~seed:(seed + 2) (Views.Random_partition k) vspec
      in
      let groups =
        List.map
          (fun c ->
            ( "S" ^ string_of_int c,
              List.map (Spec.task_name vspec) (View.members super c) ))
          (View.composites super)
      in
      match Hr.coarsen (Hr.base v0) groups with
      | Error _ -> false
      | Ok h ->
        let flat = Hr.flatten h in
        View.n_composites flat = View.n_composites super
        && List.sort compare
             (List.concat_map (View.members flat) (View.composites flat))
           = Spec.tasks spec)

(* Theorem: a sound view's view graph is acyclic (an unsound one's need
   not be). *)
let prop_sound_views_acyclic =
  QCheck2.Test.make ~name:"sound views have acyclic view graphs" ~count:80
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 8 40) (int_range 2 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view, _ =
        C.correct C.Strong (Views.build ~seed (Views.Random_partition k) spec)
      in
      Wolves_graph.Algo.is_dag (View.view_graph view))

let test_unsound_view_graph_can_cycle () =
  (* x -> a, b -> y with A = {x, y}, B = {a, b}: edges A->B and B->A. *)
  let spec =
    Spec.of_tasks_exn ~name:"cycle" [ "x"; "a"; "b"; "y" ]
      [ ("x", "a"); ("b", "y") ]
  in
  let view = View.make_exn spec [ ("A", [ "x"; "y" ]); ("B", [ "a"; "b" ]) ] in
  check_bool "view graph cyclic" false
    (Wolves_graph.Algo.is_dag (View.view_graph view));
  check_bool "and the view is unsound" false (S.is_sound view);
  match Hr.coarsen (Hr.base view) [ ("All", [ "A"; "B" ]) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stacking on a cyclic view graph must fail"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_hierarchy"
    [ ( "hierarchy",
        [ Alcotest.test_case "view graph as workflow" `Quick test_spec_of_view;
          Alcotest.test_case "two levels over figure 1" `Quick test_two_levels_fig1;
          Alcotest.test_case "sound stack" `Quick test_sound_stack;
          Alcotest.test_case "coarsen errors" `Quick test_coarsen_errors;
          Alcotest.test_case "unsound view graphs can cycle" `Quick
            test_unsound_view_graph_can_cycle;
          qt prop_composition;
          qt prop_flatten_partition;
          qt prop_sound_views_acyclic ] ) ]
