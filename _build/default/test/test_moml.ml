(* Tests for MoML import/export: fixed documents, error injection, and
   round-trip properties over generated workloads. *)

open Wolves_workflow
module Moml = Wolves_moml.Moml
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "MoML error: %a" Moml.pp_error e

let sample_doc =
  {|<?xml version="1.0"?>
<entity name="demo" class="wolves.Workflow">
  <!-- a two-composite view over four tasks -->
  <entity name="front" class="wolves.CompositeActor">
    <entity name="a" class="wolves.Actor"/>
    <entity name="b" class="wolves.Actor"/>
  </entity>
  <entity name="back" class="wolves.CompositeActor">
    <entity name="c" class="wolves.Actor"/>
  </entity>
  <entity name="d" class="wolves.Actor"/>
  <relation name="r0" class="wolves.Relation"/>
  <link port="a.out" relation="r0"/>
  <link port="b.in" relation="r0"/>
  <relation name="r1"/>
  <link port="b.out" relation="r1"/>
  <link port="c.in" relation="r1"/>
  <relation name="r2"/>
  <link port="c.in" relation="r2"/>
  <link port="d.out" relation="r2"/>
  <property name="director" value="dataflow"/>
</entity>|}

let test_parse_sample () =
  let spec, view = ok (Moml.of_string sample_doc) in
  Alcotest.(check string) "workflow name" "demo" (Spec.name spec);
  check_int "tasks" 4 (Spec.n_tasks spec);
  check_int "deps" 3 (Spec.n_dependencies spec);
  check_int "composites" 3 (View.n_composites view);
  (* r2 is written in-first/out-second: direction still d -> c. *)
  check_bool "d -> c" true
    (Spec.depends spec (Spec.task_of_name_exn spec "d")
       (Spec.task_of_name_exn spec "c"));
  let front = Option.get (View.composite_of_name view "front") in
  check_int "front members" 2 (List.length (View.members view front));
  (* The childless top-level entity becomes a singleton composite. *)
  check_bool "singleton d" true (View.composite_of_name view "d" <> None)

let test_parse_errors () =
  let cases =
    [ ("<relation name=\"x\"/>", "root element must be <entity>");
      ("<entity class=\"w\"/>", "without a name");
      ( {|<entity name="w"><entity name="c"><entity name="inner"><entity name="deep"/></entity></entity></entity>|},
        "nests deeper" );
      ( {|<entity name="w"><entity name="a"/><link port="a.out" relation="nope"/></entity>|},
        "unknown relation" );
      ( {|<entity name="w"><entity name="a"/><relation name="r"/><link port="a.out" relation="r"/></entity>|},
        "no destination (.in) port" );
      ( {|<entity name="w"><entity name="a"/><entity name="b"/><relation name="r"/><link port="a.out" relation="r"/><link port="b.out" relation="r"/></entity>|},
        "no destination (.in) port" );
      ( {|<entity name="w"><entity name="a"/><entity name="b"/><relation name="r"/><link port="a.in" relation="r"/><link port="b.in" relation="r"/></entity>|},
        "no source (.out) port" );
      ( {|<entity name="w"><entity name="a"><port name="p"/></entity></entity>|},
        "declares no direction" );
      ( {|<entity name="w"><entity name="a"><port name="p"><property name="input"/><property name="output"/></port></entity></entity>|},
        "both input and output" );
      ( {|<entity name="w"><entity name="a"><port name="p"><property name="output"/></port><port name="p"><property name="input"/></port></entity></entity>|},
        "duplicate port" );
      ( {|<entity name="w"><entity name="a"/><relation name="r"/><relation name="r"/></entity>|},
        "duplicate relation" );
      ( {|<entity name="w"><entity name="a"/><entity name="b"/><relation name="r"/><link port="a" relation="r"/><link port="b.in" relation="r"/></entity>|},
        "no .in/.out suffix" );
      ( {|<entity name="w"><entity name="a"/><entity name="b"/><relation name="r"/><link port="a.sideways" relation="r"/><link port="b.in" relation="r"/></entity>|},
        "must end in .in or .out" );
      ( {|<entity name="w"><entity name="a"/><relation name="r"/><link relation="r"/></entity>|},
        "without a port" ) ]
  in
  List.iter
    (fun (doc, fragment) ->
      match Moml.of_string doc with
      | Ok _ -> Alcotest.failf "expected an error for %s" fragment
      | Error e ->
        let msg = Format.asprintf "%a" Moml.pp_error e in
        let contains =
          let ln = String.length fragment and lh = String.length msg in
          let rec go i = i + ln <= lh && (String.sub msg i ln = fragment || go (i + 1)) in
          go 0
        in
        check_bool (Printf.sprintf "%s in %s" fragment msg) true contains)
    cases

let test_bad_xml_reported () =
  match Moml.of_string "<entity name=" with
  | Error (Moml.Xml _) -> ()
  | _ -> Alcotest.fail "expected an Xml error"

let test_workflow_errors_propagate () =
  (* Cycle a -> b -> a. *)
  let doc =
    {|<entity name="w"><entity name="a"/><entity name="b"/>
      <relation name="r0"/><link port="a.out" relation="r0"/><link port="b.in" relation="r0"/>
      <relation name="r1"/><link port="b.out" relation="r1"/><link port="a.in" relation="r1"/>
      </entity>|}
  in
  match Moml.of_string doc with
  | Error (Moml.Spec_error (Spec.Cyclic _)) -> ()
  | _ -> Alcotest.fail "expected a Cyclic workflow error"

let test_unknown_task_in_link () =
  let doc =
    {|<entity name="w"><entity name="a"/><relation name="r"/>
      <link port="ghost.out" relation="r"/><link port="a.in" relation="r"/></entity>|}
  in
  match Moml.of_string doc with
  | Error (Moml.Spec_error (Spec.Unknown_task "ghost")) -> ()
  | _ -> Alcotest.fail "expected Unknown_task"

let test_roundtrip_figure1 () =
  let _, view = Examples.figure1 () in
  let spec', view' = ok (Moml.of_string (Moml.to_string view)) in
  check_int "tasks preserved" 12 (Spec.n_tasks spec');
  check_int "deps preserved" 12 (Spec.n_dependencies spec');
  check_int "composites preserved" 7 (View.n_composites view');
  (* Same partition by names. *)
  List.iter
    (fun c ->
      let name = View.composite_name view c in
      let c' = Option.get (View.composite_of_name view' name) in
      Alcotest.(check (list string))
        (Printf.sprintf "members of %s" name)
        (List.map (Spec.task_name (View.spec view)) (View.members view c))
        (List.map (Spec.task_name spec') (View.members view' c')))
    (View.composites view)

let test_spec_to_string () =
  let spec, _ = Examples.figure1 () in
  let spec', view' = ok (Moml.of_string (Moml.spec_to_string spec)) in
  check_int "tasks" 12 (Spec.n_tasks spec');
  check_int "singleton view" 12 (View.n_composites view')

let test_file_io () =
  let _, view = Examples.figure3 () in
  let path = Filename.temp_file "wolves" ".moml" in
  (match Moml.save path view with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %a" Moml.pp_error e);
  let spec', view' = ok (Moml.load path) in
  Sys.remove path;
  check_int "tasks" 14 (Spec.n_tasks spec');
  check_int "composites" 3 (View.n_composites view');
  match Moml.load "/nonexistent/wolves.moml" with
  | Error (Moml.Structure _) -> ()
  | _ -> Alcotest.fail "expected a Structure error for a missing file"

(* Round-trip property over generated workflows and views. *)

let test_declared_ports_and_fanout () =
  (* Ptolemy-style document: declared ports with direction properties and a
     fan-out relation (one source port, two destinations). *)
  let doc =
    {|<?xml version="1.0"?>
<entity name="ptolemy" class="ptolemy.actor.TypedCompositeActor">
  <entity name="Ramp" class="ptolemy.actor.lib.Ramp">
    <port name="output" class="ptolemy.actor.TypedIOPort"><property name="output"/></port>
  </entity>
  <entity name="Scale" class="ptolemy.actor.lib.Scale">
    <port name="input" class="ptolemy.actor.TypedIOPort"><property name="input"/></port>
    <port name="result" class="ptolemy.actor.TypedIOPort"><property name="output"/></port>
  </entity>
  <entity name="Display" class="ptolemy.actor.lib.Display">
    <port name="input" class="ptolemy.actor.TypedIOPort"><property name="input"/></port>
  </entity>
  <entity name="Logger" class="ptolemy.actor.lib.Recorder">
    <port name="input" class="ptolemy.actor.TypedIOPort"><property name="input"/></port>
  </entity>
  <relation name="r0" class="ptolemy.actor.TypedIORelation"/>
  <link port="Ramp.output" relation="r0"/>
  <link port="Scale.input" relation="r0"/>
  <relation name="r1" class="ptolemy.actor.TypedIORelation"/>
  <link port="Scale.result" relation="r1"/>
  <link port="Display.input" relation="r1"/>
  <link port="Logger.input" relation="r1"/>
</entity>|}
  in
  let spec, view = ok (Moml.of_string doc) in
  check_int "four actors" 4 (Spec.n_tasks spec);
  (* r1 fans out: Scale -> Display and Scale -> Logger. *)
  check_int "three dependencies" 3 (Spec.n_dependencies spec);
  check_bool "fan-out to Display" true
    (Spec.depends spec (Spec.task_of_name_exn spec "Scale")
       (Spec.task_of_name_exn spec "Display"));
  check_bool "fan-out to Logger" true
    (Spec.depends spec (Spec.task_of_name_exn spec "Scale")
       (Spec.task_of_name_exn spec "Logger"));
  check_int "singleton view" 4 (View.n_composites view)

let test_declared_ports_in_composites () =
  (* Ports declared on tasks inside a composite entity also resolve. *)
  let doc =
    {|<entity name="w">
  <entity name="Stage" class="wolves.CompositeActor">
    <entity name="a"><port name="o"><property name="output"/></port></entity>
    <entity name="b"><port name="i"><property name="input"/></port></entity>
  </entity>
  <relation name="r"/>
  <link port="a.o" relation="r"/>
  <link port="b.i" relation="r"/>
</entity>|}
  in
  let spec, view = ok (Moml.of_string doc) in
  check_bool "edge a->b" true
    (Spec.depends spec (Spec.task_of_name_exn spec "a")
       (Spec.task_of_name_exn spec "b"));
  check_int "one composite" 1 (View.n_composites view)

let roundtrip_prop =
  QCheck2.Test.make ~name:"MoML round-trips generated views" ~count:100
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 4 40) (int_range 1 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Connected_groups k) spec in
      match Moml.of_string (Moml.to_string view) with
      | Error _ -> false
      | Ok (spec', view') ->
        Spec.n_tasks spec' = Spec.n_tasks spec
        && Spec.n_dependencies spec' = Spec.n_dependencies spec
        && View.n_composites view' = View.n_composites view
        && List.for_all
             (fun c ->
               let name = View.composite_name view c in
               match View.composite_of_name view' name with
               | None -> false
               | Some c' ->
                 List.map (Spec.task_name spec) (View.members view c)
                 = List.map (Spec.task_name spec') (View.members view' c'))
             (View.composites view)
        (* Dependencies survive by name. *)
        && List.for_all
             (fun (u, v) ->
               Wolves_graph.Digraph.mem_edge (Spec.graph spec')
                 (Spec.task_of_name_exn spec' (Spec.task_name spec u))
                 (Spec.task_of_name_exn spec' (Spec.task_name spec v)))
             (Wolves_graph.Digraph.edges (Spec.graph spec)))

let moml_fuzz =
  QCheck2.Test.make ~name:"MoML parser total on random bytes" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 150))
    (fun input ->
      match Moml.of_string input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "wolves_moml"
    [ ( "parse",
        [ Alcotest.test_case "sample document" `Quick test_parse_sample;
          Alcotest.test_case "structural errors" `Quick test_parse_errors;
          Alcotest.test_case "xml errors surfaced" `Quick test_bad_xml_reported;
          Alcotest.test_case "workflow errors surfaced" `Quick
            test_workflow_errors_propagate;
          Alcotest.test_case "unknown task in link" `Quick test_unknown_task_in_link;
          Alcotest.test_case "declared ports and fan-out" `Quick
            test_declared_ports_and_fanout;
          Alcotest.test_case "ports inside composites" `Quick
            test_declared_ports_in_composites ] );
      ( "print",
        [ Alcotest.test_case "figure 1 round trip" `Quick test_roundtrip_figure1;
          Alcotest.test_case "bare specification" `Quick test_spec_to_string;
          Alcotest.test_case "file save/load" `Quick test_file_io;
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest moml_fuzz ] ) ]
