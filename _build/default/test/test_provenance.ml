(* Tests for provenance analysis: ground-truth queries, view-level claims,
   the Figure 1 narrative, the soundness => exact-provenance theorem, and the
   OPM expansion. *)

open Wolves_workflow
module P = Wolves_provenance.Provenance
module Opm = Wolves_provenance.Opm
module Store = Wolves_provenance.Store
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Bitset = Wolves_graph.Bitset
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 = Examples.figure1

let item spec p c =
  { P.producer = Spec.task_of_name_exn spec p;
    P.consumer = Spec.task_of_name_exn spec c }

(* ------------------------------------------------------------------ *)
(* Workflow-level queries                                              *)
(* ------------------------------------------------------------------ *)

let test_items () =
  let spec, view = fig1 () in
  check_int "one item per edge" (Spec.n_dependencies spec)
    (List.length (P.items spec));
  (* Inter-composite items: edges crossing the 7 composites. Internal edges:
     2->3 (14), 9->10, 10->11, 11->12 (19). So 12 - 4 = 8. *)
  check_int "inter-composite items" 8 (List.length (P.inter_composite_items view))

let test_task_ancestors () =
  let spec, _ = fig1 () in
  let t n = Spec.task_of_name_exn spec n in
  let anc = P.task_ancestors spec (t "8:Format Alignment") in
  let expected =
    [ "1:Select Entries"; "2:Split Entries"; "6:Extract Sequences";
      "7:Create Alignment"; "8:Format Alignment" ]
  in
  Alcotest.(check (list string)) "ancestors of 8" expected
    (List.map (Spec.task_name spec) (Bitset.elements anc))

let test_item_in_provenance () =
  let spec, _ = fig1 () in
  let t n = Spec.task_of_name_exn spec n in
  (* The paper's ground truth: data 2->6 is provenance of 8; data 3->4 is
     not. *)
  check_bool "sequences feed the alignment" true
    (P.item_in_provenance spec (item spec "2:Split Entries" "6:Extract Sequences")
       (t "8:Format Alignment"));
  check_bool "annotations do not" false
    (P.item_in_provenance spec
       (item spec "3:Extract Annotations" "4:Curate Annotations")
       (t "8:Format Alignment"));
  check_int "items in provenance of 8" 4
    (List.length (P.items_in_provenance spec (t "8:Format Alignment")))

(* ------------------------------------------------------------------ *)
(* View-level: the Figure 1 narrative                                  *)
(* ------------------------------------------------------------------ *)

let test_fig1_view_provenance () =
  let spec, view = fig1 () in
  let c18 = Examples.figure1_query_composite view in
  let anc = P.composite_ancestors view c18 in
  (* "the outputs of tasks (13), (14), (15) and (16) will be considered as
     the provenance of the output of task (18)" *)
  let expected = [ "13:Select Entries"; "14:Split & Annotate";
                   "15:Extract Sequences"; "16:Align Sequences";
                   "18:Format Alignment" ] in
  Alcotest.(check (list string)) "view ancestors of 18" expected
    (List.sort compare
       (List.map (View.composite_name view) (Bitset.elements anc)));
  (* "Nevertheless, this is wrong!": the annotation item 3->4 is claimed but
     not true provenance. *)
  let bad = item spec "3:Extract Annotations" "4:Curate Annotations" in
  check_bool "view claims the annotation item" true
    (P.view_claims_item view bad c18);
  check_bool "ground truth denies it" false (P.truth_for_composite view bad c18);
  let spurious = P.spurious_items view c18 in
  check_bool "3->4 among the spurious items" true (List.mem bad spurious);
  let stats = P.evaluate_view view in
  check_bool "unsound view has spurious provenance" true (stats.P.spurious > 0);
  check_int "missing answers never happen" 0 stats.P.missing

let test_fig1_corrected_provenance () =
  let spec, view = fig1 () in
  let corrected, _ = C.correct C.Strong view in
  check_bool "corrected sound" true (S.is_sound corrected);
  let stats = P.evaluate_view corrected in
  check_int "sound view: no spurious answers" 0 stats.P.spurious;
  check_int "sound view: no missing answers" 0 stats.P.missing;
  (* And the specific paper item is now correctly excluded. *)
  let bad = item spec "3:Extract Annotations" "4:Curate Annotations" in
  let c18 =
    Option.get (View.composite_of_name corrected "18:Format Alignment")
  in
  check_bool "annotation item no longer claimed" false
    (P.view_claims_item corrected bad c18)

let test_expand () =
  let _, view = fig1 () in
  let c18 = Examples.figure1_query_composite view in
  let anc = P.composite_ancestors view c18 in
  let tasks = P.expand view anc in
  (* 13+14+15+16+18 = {1} {2,3} {6} {4,7} {8} *)
  check_int "expanded task count" 7 (Bitset.cardinal tasks)

(* ------------------------------------------------------------------ *)
(* Theorem: sound views give exact provenance                          *)
(* ------------------------------------------------------------------ *)

let prop_sound_views_exact =
  QCheck2.Test.make
    ~name:"sound view => no spurious and no missing provenance" ~count:100
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 8 40) (int_range 2 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition k) spec in
      let corrected, _ = C.correct C.Strong view in
      let stats = P.evaluate_view corrected in
      stats.P.spurious = 0 && stats.P.missing = 0)

let test_item_granularity_fig1 () =
  let _, view = fig1 () in
  let stats = P.evaluate_view_items view in
  check_bool "unsound view wrong at item granularity" true (stats.P.spurious > 0);
  check_int "never missing" 0 stats.P.missing;
  let corrected, _ = C.correct C.Strong view in
  let stats' = P.evaluate_view_items corrected in
  check_int "sound view exact at item granularity" 0 stats'.P.spurious;
  check_int "still never missing" 0 stats'.P.missing

let prop_sound_views_exact_items =
  QCheck2.Test.make
    ~name:"sound view => exact item-granularity provenance" ~count:80
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 8 30) (int_range 2 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition k) spec in
      let corrected, _ = C.correct C.Strong view in
      let stats = P.evaluate_view_items corrected in
      stats.P.spurious = 0 && stats.P.missing = 0)

let prop_missing_always_zero =
  QCheck2.Test.make
    ~name:"even unsound views never miss true provenance" ~count:100
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 8 40) (int_range 2 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition k) spec in
      (P.evaluate_view view).P.missing = 0)

(* ------------------------------------------------------------------ *)
(* OPM expansion                                                       *)
(* ------------------------------------------------------------------ *)

let test_opm () =
  let spec, _ = fig1 () in
  let opm = Opm.of_spec spec in
  check_int "processes" 12 (Opm.n_processes opm);
  check_int "artifacts" 12 (Opm.n_artifacts opm);
  let g = Opm.graph opm in
  check_int "nodes" 24 (Wolves_graph.Digraph.n_nodes g);
  (* process -> artifact -> process chains: 2 edges per artifact *)
  check_int "edges" 24 (Wolves_graph.Digraph.n_edges g);
  let up =
    Opm.provenance_of_artifact opm
      (item spec "7:Create Alignment" "8:Format Alignment")
  in
  let processes =
    List.filter_map
      (function Opm.Process t -> Some (Spec.task_name spec t) | Opm.Artifact _ -> None)
      up
  in
  Alcotest.(check (list string)) "upstream processes"
    [ "1:Select Entries"; "2:Split Entries"; "6:Extract Sequences";
      "7:Create Alignment" ]
    (List.sort compare processes);
  let dot = Opm.to_dot spec opm in
  check_bool "dot mentions artifacts" true
    (String.length dot > 0
     &&
     let needle = "ellipse" in
     let ln = String.length needle and lh = String.length dot in
     let rec go i = i + ln <= lh && (String.sub dot i ln = needle || go (i + 1)) in
     go 0)

let test_opm_label_and_errors () =
  let spec, _ = fig1 () in
  let opm = Opm.of_spec spec in
  (match Opm.node_of_id opm 0 with
   | Opm.Process t ->
     Alcotest.(check string) "label" "1:Select Entries" (Opm.label spec (Opm.Process t))
   | Opm.Artifact _ -> Alcotest.fail "id 0 is a process");
  Alcotest.check_raises "node range"
    (Invalid_argument "Opm.node_of_id: 99 out of range") (fun () ->
      ignore (Opm.node_of_id opm 99))


(* ------------------------------------------------------------------ *)
(* Provenance store (multi-run)                                        *)
(* ------------------------------------------------------------------ *)

let test_store_perfect_run () =
  let spec, _ = fig1 () in
  let store = Store.create spec in
  let id = Store.simulate_run store ~failure_rate:0.0 ~seed:1 in
  check_int "first run id" 0 id;
  check_int "all tasks succeeded" 12 (List.length (Store.succeeded store id));
  check_int "all items produced" 12 (List.length (Store.items_of_run store id));
  let t8 = Spec.task_of_name_exn spec "8:Format Alignment" in
  Alcotest.(check (list string)) "run provenance = static provenance"
    [ "1:Select Entries"; "2:Split Entries"; "6:Extract Sequences";
      "7:Create Alignment"; "8:Format Alignment" ]
    (List.map (Spec.task_name spec) (Store.run_provenance store id t8))

let test_store_failure_propagates () =
  let spec, _ = fig1 () in
  let store = Store.create spec in
  (* Record a run where task 2 failed: everything downstream is skipped. *)
  let t name = Spec.task_of_name_exn spec name in
  let statuses =
    List.map
      (fun task ->
        let name = Spec.task_name spec task in
        if name = "1:Select Entries" then (task, Store.Succeeded)
        else if name = "2:Split Entries" then (task, Store.Failed)
        else if
          name = "9:Consider Other Annotations"
          || name = "10:Process Other Annotations"
        then (task, Store.Succeeded)
        else (task, Store.Skipped))
      (Spec.tasks spec)
  in
  (match Store.record_run store statuses with
   | Ok id ->
     check_int "three tasks ran" 3 (List.length (Store.succeeded store id));
     check_bool "8 has no provenance in this run" true
       (Store.run_provenance store id (t "8:Format Alignment") = []);
     check_int "items only from succeeded producers" 3
       (List.length (Store.items_of_run store id))
   | Error msg -> Alcotest.fail msg)

let test_store_consistency_check () =
  let spec, _ = fig1 () in
  let store = Store.create spec in
  (* Task 2 succeeded although task 1 failed: rejected. *)
  let statuses =
    List.map
      (fun task ->
        let name = Spec.task_name spec task in
        if name = "1:Select Entries" then (task, Store.Failed)
        else if name = "2:Split Entries" then (task, Store.Succeeded)
        else (task, Store.Skipped))
      (Spec.tasks spec)
  in
  (match Store.record_run store statuses with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "inconsistent run accepted");
  (match Store.record_run store [] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing statuses accepted");
  (match Store.record_run store [ (0, Store.Succeeded); (0, Store.Succeeded) ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate statuses accepted")

let test_store_cross_run_queries () =
  let spec, _ = fig1 () in
  let store = Store.create spec in
  for seed = 1 to 50 do
    ignore (Store.simulate_run store ~failure_rate:0.15 ~seed)
  done;
  check_int "50 runs" 50 (Store.n_runs store);
  let t1 = Spec.task_of_name_exn spec "1:Select Entries" in
  let t12 = Spec.task_of_name_exn spec "12:Display Tree" in
  let influence = Store.runs_where_influences store t1 t12 in
  (* In every such run the full pipeline survived: both endpoints succeeded
     and each run's provenance confirms the influence. *)
  List.iter
    (fun id ->
      check_bool "both succeeded" true
        (Store.status store id t1 = Store.Succeeded
         && Store.status store id t12 = Store.Succeeded);
      check_bool "t1 in provenance of t12" true
        (List.mem t1 (Store.run_provenance store id t12)))
    influence;
  (* Success rates decay downstream: the display task cannot succeed more
     often than the root selection task. *)
  check_bool "downstream rate lower" true
    (Store.success_rate store t12 <= Store.success_rate store t1)

let prop_store_provenance_subset_of_static =
  QCheck2.Test.make
    ~name:"run provenance is a subset of static provenance" ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 5 30))
    (fun (seed, size) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let store = Store.create spec in
      let id = Store.simulate_run store ~failure_rate:0.2 ~seed in
      List.for_all
        (fun task ->
          let run_prov = Store.run_provenance store id task in
          let static = P.task_ancestors spec task in
          List.for_all (fun u -> Bitset.mem static u) run_prov)
        (Spec.tasks spec))


let test_store_csv_roundtrip () =
  let spec, _ = fig1 () in
  let store = Store.create spec in
  for seed = 1 to 12 do
    ignore (Store.simulate_run store ~failure_rate:0.2 ~seed)
  done;
  let path = Filename.temp_file "wolves_store" ".csv" in
  (match Store.save_csv store path with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "save: %s" msg);
  (match Store.load_csv spec path with
   | Error msg -> Alcotest.failf "load: %s" msg
   | Ok store' ->
     check_int "same run count" (Store.n_runs store) (Store.n_runs store');
     List.iter
       (fun id ->
         List.iter
           (fun t ->
             check_bool "same status" true
               (Store.status store id t = Store.status store' id t))
           (Spec.tasks spec))
       (List.init (Store.n_runs store) Fun.id));
  Sys.remove path;
  (match Store.load_csv spec "/nonexistent.csv" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing file accepted");
  (* corrupt input *)
  let bad = Filename.temp_file "wolves_store" ".csv" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc "run,task,status\n0,\"ghost\",succeeded\n");
  (match Store.load_csv spec bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad row accepted");
  Sys.remove bad

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_provenance"
    [ ( "workflow-level",
        [ Alcotest.test_case "items" `Quick test_items;
          Alcotest.test_case "task ancestors" `Quick test_task_ancestors;
          Alcotest.test_case "item membership" `Quick test_item_in_provenance ] );
      ( "view-level",
        [ Alcotest.test_case "figure 1 narrative" `Quick test_fig1_view_provenance;
          Alcotest.test_case "figure 1 after correction" `Quick
            test_fig1_corrected_provenance;
          Alcotest.test_case "expand composites" `Quick test_expand;
          Alcotest.test_case "item granularity on figure 1" `Quick
            test_item_granularity_fig1;
          qt prop_sound_views_exact;
          qt prop_sound_views_exact_items;
          qt prop_missing_always_zero ] );
      ( "store",
        [ Alcotest.test_case "perfect run" `Quick test_store_perfect_run;
          Alcotest.test_case "failure propagation" `Quick
            test_store_failure_propagates;
          Alcotest.test_case "consistency checking" `Quick
            test_store_consistency_check;
          Alcotest.test_case "cross-run queries" `Quick
            test_store_cross_run_queries;
          Alcotest.test_case "csv round trip" `Quick test_store_csv_roundtrip;
          qt prop_store_provenance_subset_of_static ] );
      ( "opm",
        [ Alcotest.test_case "expansion and queries" `Quick test_opm;
          Alcotest.test_case "labels and errors" `Quick test_opm_label_and_errors ] ) ]
