(* Tests for the provenance query language: lexing/parsing errors,
   evaluation over Figure 1, algebraic laws. *)

open Wolves_workflow
module Q = Wolves_query.Query
module Bitset = Wolves_graph.Bitset

let view () = snd (Examples.figure1 ())

let ok v q =
  match Q.eval_names v q with
  | Ok names -> names
  | Error e -> Alcotest.failf "query %S failed: %a" q Q.pp_error e

let err v q =
  match Q.eval v q with
  | Ok _ -> Alcotest.failf "expected %S to fail" q
  | Error e -> Format.asprintf "%a" Q.pp_error e

let check_names = Alcotest.(check (list string))
let check_bool = Alcotest.(check bool)

let test_literals () =
  let v = view () in
  check_names "task literal" [ "1:Select Entries" ] (ok v "'1:Select Entries'");
  check_names "composite literal expands" [ "2:Split Entries"; "3:Extract Annotations" ]
    (ok v "'14:Split & Annotate'");
  check_bool "unknown literal" true
    (let msg = err v "'nope'" in
     String.length msg > 0)

let test_keywords () =
  let v = view () in
  Alcotest.(check int) "all" 12 (List.length (ok v "all"));
  check_names "none" [] (ok v "none");
  check_names "sources" [ "1:Select Entries"; "9:Consider Other Annotations" ]
    (ok v "sources");
  check_names "sinks" [ "12:Display Tree" ] (ok v "sinks");
  check_names "unsound = members of composite 16"
    [ "4:Curate Annotations"; "7:Create Alignment" ]
    (ok v "unsound")

let test_functions () =
  let v = view () in
  check_names "the paper's provenance query"
    [ "1:Select Entries"; "2:Split Entries"; "6:Extract Sequences";
      "7:Create Alignment"; "8:Format Alignment" ]
    (ok v "ancestors('8:Format Alignment')");
  check_names "producers (one step)" [ "5:Format Annotations";
                                       "8:Format Alignment";
                                       "10:Process Other Annotations" ]
    (ok v "producers('11:Build Phylo Tree')");
  check_names "consumers of split" [ "3:Extract Annotations"; "6:Extract Sequences" ]
    (ok v "consumers('2:Split Entries')");
  (* The over-report of view-level provenance, as a query: *)
  check_names "view-level over-report"
    [ "3:Extract Annotations"; "4:Curate Annotations" ]
    (ok v
       "composites(ancestors('8:Format Alignment')) - ancestors('8:Format \
        Alignment')")

let test_operators_and_precedence () =
  let v = view () in
  (* & binds tighter than | and -. *)
  check_names "a | b & c parses as a | (b & c)"
    [ "1:Select Entries" ]
    (ok v "'1:Select Entries' | '2:Split Entries' & '3:Extract Annotations'");
  check_names "parentheses override" []
    (ok v "('1:Select Entries' | '2:Split Entries') & '3:Extract Annotations'");
  check_names "difference chains left"
    [ "12:Display Tree" ]
    (ok v "sinks - sources - none")

let test_complement () =
  let v = view () in
  Alcotest.(check int) "!none = all" 12 (List.length (ok v "!none"));
  check_names "!all = none" [] (ok v "!all");
  (* Non-ancestors of the alignment: the annotation branch + downstream. *)
  Alcotest.(check int) "complement of ancestors" 7
    (List.length (ok v "!ancestors('8:Format Alignment')"));
  check_names "double complement" (ok v "sources") (ok v "!!sources");
  (* binds tighter than & *)
  check_names "precedence" (ok v "sinks") (ok v "!sources & sinks")

let test_parse_errors () =
  let v = view () in
  List.iter
    (fun (q, fragment) ->
      let msg = err v q in
      let contains =
        let ln = String.length fragment and lh = String.length msg in
        let rec go i = i + ln <= lh && (String.sub msg i ln = fragment || go (i + 1)) in
        go 0
      in
      check_bool (Printf.sprintf "%S -> %s (got %s)" q fragment msg) true contains)
    [ ("", "expected an expression");
      ("ancestors", "needs an argument");
      ("ancestors('1:Select Entries'", "expected ')'");
      ("'unterminated", "unterminated literal");
      ("all all", "trailing input");
      ("bogus", "unknown identifier");
      ("all @ none", "unexpected character");
      ("& all", "expected an expression") ]

let test_error_positions () =
  let v = view () in
  match Q.eval v "all | bogus" with
  | Error e -> Alcotest.(check int) "position points at bogus" 6 e.Q.position
  | Ok _ -> Alcotest.fail "expected failure"

(* Algebraic laws on randomly generated expressions over a fixed view. *)
let gen_ast_string =
  let open QCheck2.Gen in
  let atom =
    oneofl
      [ "'1:Select Entries'"; "'14:Split & Annotate'"; "sources"; "sinks";
        "unsound"; "all"; "none"; "ancestors('8:Format Alignment')" ]
  in
  let rec expr depth =
    if depth = 0 then atom
    else
      oneof
        [ atom;
          map2 (Printf.sprintf "(%s | %s)") (expr (depth - 1)) (expr (depth - 1));
          map2 (Printf.sprintf "(%s & %s)") (expr (depth - 1)) (expr (depth - 1));
          map2 (Printf.sprintf "(%s - %s)") (expr (depth - 1)) (expr (depth - 1));
          map (Printf.sprintf "descendants(%s)") (expr (depth - 1));
          map (Printf.sprintf "composites(%s)") (expr (depth - 1)) ]
  in
  expr 3

let prop_algebra =
  QCheck2.Test.make ~name:"set algebra laws hold for generated queries"
    ~count:200
    QCheck2.Gen.(pair gen_ast_string gen_ast_string)
    (fun (qa, qb) ->
      let v = view () in
      match (Q.eval v qa, Q.eval v qb) with
      | Ok a, Ok b ->
        let union1 = Q.eval v (Printf.sprintf "(%s) | (%s)" qa qb) in
        let union2 = Q.eval v (Printf.sprintf "(%s) | (%s)" qb qa) in
        let idem = Q.eval v (Printf.sprintf "(%s) & (%s)" qa qa) in
        (match (union1, union2, idem) with
         | Ok u1, Ok u2, Ok i ->
           Bitset.equal u1 u2
           && Bitset.equal i a
           && Bitset.subset (Bitset.inter a b) u1
         | _ -> false)
      | _ -> false)

let prop_monotone_closure =
  QCheck2.Test.make ~name:"ancestors/descendants are extensive and idempotent"
    ~count:100 gen_ast_string
    (fun q ->
      let v = view () in
      match
        ( Q.eval v q,
          Q.eval v (Printf.sprintf "ancestors(%s)" q),
          Q.eval v (Printf.sprintf "ancestors(ancestors(%s))" q) )
      with
      | Ok base, Ok anc, Ok anc2 ->
        Bitset.subset base anc && Bitset.equal anc anc2
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_query"
    [ ( "query",
        [ Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "keywords" `Quick test_keywords;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "operators and precedence" `Quick
            test_operators_and_precedence;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          qt prop_algebra;
          qt prop_monotone_closure ] ) ]
