(* Tests for the interactive editing session (incremental validation), the
   minimal unsound core, the anytime exact corrector, mixed split/merge
   resolution, and the chain reachability index. *)

open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Session = Wolves_core.Session
module Bitset = Wolves_graph.Bitset
module Chains = Wolves_graph.Chains
module Reach = Wolves_graph.Reach
module Digraph = Wolves_graph.Digraph
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Prng = Wolves_workload.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Session                                                              *)
(* ------------------------------------------------------------------ *)

let test_session_fresh () =
  let spec, _ = Examples.figure1 () in
  let s = Session.start_fresh spec in
  check_int "singleton composites" 12 (List.length (Session.composite_names s));
  check_bool "singleton view sound" true (Session.is_sound s);
  check_int "12 checks" 12 (Session.checks_performed s);
  (* Re-validating is free. *)
  check_bool "still sound" true (Session.is_sound s);
  check_int "no further checks" 12 (Session.checks_performed s);
  check_int "12 hits" 12 (Session.cache_hits s)

let test_session_build_fig1 () =
  let spec, view = Examples.figure1 () in
  let s = Session.start_fresh spec in
  let t name = Spec.task_of_name_exn spec name in
  (* Recreate the paper's composite 16 — the validator flags it at once. *)
  (match
     Session.create_composite s ~name:"16"
       [ t "4:Curate Annotations"; t "7:Create Alignment" ]
   with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (match Session.unsound s with
   | [ ("16", witnesses) ] ->
     check_bool "paper witness"
       true
       (List.mem (t "4:Curate Annotations", t "7:Create Alignment") witnesses)
   | other ->
     Alcotest.failf "expected exactly composite 16, got %d" (List.length other));
  (* Splitting it back with the corrector makes the session sound again. *)
  (match Session.apply_correction s "16" C.Strong with
   | Ok parts -> check_int "split into 2" 2 parts
   | Error msg -> Alcotest.fail msg);
  check_bool "sound after correction" true (Session.is_sound s);
  ignore view

let test_session_incremental_cost () =
  let spec = Gen.generate Gen.Layered ~seed:8 ~size:60 in
  let s = Session.start (Views.build ~seed:8 (Views.Connected_groups 4) spec) in
  let _ = Session.unsound s in
  let baseline = Session.checks_performed s in
  check_int "one check per composite"
    (List.length (Session.composite_names s))
    baseline;
  (* One move dirties exactly two composites. *)
  let names = Session.composite_names s in
  let target = List.nth names 0 in
  let source = List.nth names (List.length names - 1) in
  let task = List.hd (Option.get (Session.members s source)) in
  (match Session.move_task s task ~into:target with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  let _ = Session.unsound s in
  let after = Session.checks_performed s in
  check_bool "at most 2 re-checks" true (after - baseline <= 2)

let test_session_edits () =
  let spec =
    Spec.of_tasks_exn ~name:"tiny" [ "a"; "b"; "c"; "d" ]
      [ ("a", "b"); ("b", "c"); ("c", "d") ]
  in
  let s = Session.start_fresh spec in
  let t name = Spec.task_of_name_exn spec name in
  (* Error paths. *)
  (match Session.create_composite s ~name:"a" [ t "b" ] with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "duplicate name accepted");
  (match Session.create_composite s ~name:"X" [] with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "empty composite accepted");
  (match Session.create_composite s ~name:"X" [ t "b"; t "b" ] with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "duplicate members accepted");
  (match Session.move_task s (t "a") ~into:"nope" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unknown target accepted");
  (* A real reshuffle: {a,b} {c,d} via create + move. *)
  (match Session.create_composite s ~name:"front" [ t "a"; t "b" ] with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match Session.move_task s (t "d") ~into:"c" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check_int "two composites left" 2 (List.length (Session.composite_names s));
  check_bool "both sound (chains)" true (Session.is_sound s);
  (* rename, dissolve *)
  (match Session.rename s "front" ~into:"head" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check_bool "renamed" true (Session.members s "head" <> None);
  (match Session.dissolve s "head" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check_int "dissolved to singletons" 3 (List.length (Session.composite_names s));
  (* materialise *)
  let view = Session.current_view s in
  check_int "view matches" 3 (View.n_composites view)

(* Property: a session following random edits agrees with the from-scratch
   validator at every step. *)
let prop_session_agrees =
  QCheck2.Test.make ~name:"session verdicts = full validator after edits"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 10 30) (int_range 1 30))
    (fun (seed, size, edits) ->
      let spec = Gen.generate Gen.Pipeline ~seed ~size in
      let s = Session.start (Views.build ~seed (Views.Connected_groups 3) spec) in
      let rng = Prng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to edits do
        let names = Session.composite_names s in
        let task = Prng.int rng size in
        let target = Prng.pick rng names in
        (match Session.move_task s task ~into:target with
         | Ok () | Error _ -> ());
        let session_unsound =
          List.sort compare (List.map fst (Session.unsound s))
        in
        let view = Session.current_view s in
        let full =
          List.sort compare
            (List.map
               (fun (c, _) -> View.composite_name view c)
               (S.validate view).S.unsound)
        in
        if session_unsound <> full then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Minimal unsound core                                                 *)
(* ------------------------------------------------------------------ *)

let test_minimal_core_fig3 () =
  let spec, view = Examples.figure3 () in
  let t = Examples.figure3_composite view in
  let set =
    Bitset.of_list (Spec.n_tasks spec) (View.members view t)
  in
  match S.minimal_unsound_core spec set with
  | None -> Alcotest.fail "T is unsound"
  | Some core ->
    check_bool "core unsound" false (S.subset_sound spec core);
    check_bool "core within T" true (Bitset.subset core set);
    (* minimality: removing any member makes it sound *)
    Bitset.iter
      (fun x ->
        let smaller = Bitset.copy core in
        Bitset.remove smaller x;
        check_bool "removing any member restores soundness" true
          (S.subset_sound spec smaller))
      core;
    check_int "the 2-chain core" 2 (Bitset.cardinal core)

let test_minimal_core_sound_input () =
  let spec, _ = Examples.figure1 () in
  let all = Bitset.create (Spec.n_tasks spec) in
  Bitset.fill all;
  check_bool "sound input -> None" true (S.minimal_unsound_core spec all = None)

let prop_minimal_core =
  QCheck2.Test.make ~name:"minimal unsound cores are minimal and unsound"
    ~count:100
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 8 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let spec = Gen.generate Gen.Erdos_renyi ~seed ~size in
      let rng = Prng.create (seed + 7) in
      let members =
        List.filteri (fun i _ -> i < k) (Prng.shuffle rng (Spec.tasks spec))
      in
      let set = Bitset.of_list size members in
      match S.minimal_unsound_core spec set with
      | None -> S.subset_sound spec set
      | Some core ->
        (not (S.subset_sound spec core))
        && Bitset.subset core set
        && Bitset.for_all
             (fun x ->
               let smaller = Bitset.copy core in
               Bitset.remove smaller x;
               S.subset_sound spec smaller)
             core)

(* ------------------------------------------------------------------ *)
(* Anytime exact corrector                                              *)
(* ------------------------------------------------------------------ *)

let test_anytime_fig3 () =
  let spec, view = Examples.figure3 () in
  let members = View.members view (Examples.figure3_composite view) in
  let outcome, proven = C.split_subset_anytime spec members in
  check_bool "proven optimal" true proven;
  check_int "5 parts like the DP" 5 (List.length outcome.C.parts);
  check_bool "valid split" true (C.Oracle.valid_split spec members outcome.C.parts)

let test_anytime_budget () =
  (* A widish instance with a tiny budget: must return a valid (incumbent)
     split and report non-completion. *)
  let spec, members = Wolves_core.Hardness.wide_block_instance ~width:8 in
  let outcome, proven = C.split_subset_anytime ~node_budget:10 spec members in
  check_bool "budget exhausted" false proven;
  check_bool "still a valid split" true
    (C.Oracle.valid_split spec members outcome.C.parts);
  check_int "incumbent = strong result" 2 (List.length outcome.C.parts)

let prop_anytime_matches_dp =
  QCheck2.Test.make ~name:"anytime B&B = subset DP on small instances"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 8 24) (int_range 3 10))
    (fun (seed, size, k) ->
      let spec = Gen.generate Gen.Layered ~seed ~size in
      let rng = Prng.create (seed + 3) in
      let members =
        List.sort compare
          (List.filteri (fun i _ -> i < k) (Prng.shuffle rng (Spec.tasks spec)))
      in
      let dp = C.split_subset C.Optimal spec members in
      let bb, proven = C.split_subset_anytime spec members in
      proven
      && List.length bb.C.parts = List.length dp.C.parts
      && C.Oracle.valid_split spec members bb.C.parts)

(* ------------------------------------------------------------------ *)
(* Mixed resolution                                                     *)
(* ------------------------------------------------------------------ *)

let test_resolve_auto_fig1 () =
  let _, view = Examples.figure1 () in
  let resolved, decisions = C.resolve_auto view in
  check_bool "sound" true (S.is_sound resolved);
  check_int "one decision" 1 (List.length decisions);
  (* 16 splits into 2 (cost 1) vs merge absorbing several: split wins. *)
  match decisions with
  | [ { C.composite = "16:Align Sequences"; action = `Split 2 } ] -> ()
  | [ d ] -> Alcotest.failf "unexpected decision: %a" C.pp_decision d
  | _ -> Alcotest.fail "expected one decision"

let test_resolve_auto_prefers_merge () =
  (* Five independent chains split into 5 parts (cost 4), but absorbing the
     single source composite makes the whole thing sound at cost 1: the
     mixed resolver must pick the merge. *)
  let spec, members = Wolves_core.Hardness.blocks_instance ~blocks:0 ~chains:5 in
  let view =
    Wolves_workflow.View.make_exn spec
      [ ("Source", [ "source" ]);
        ("Block", List.map (Spec.task_name spec) members);
        ("Sink", [ "sink" ]) ]
  in
  let resolved, decisions = C.resolve_auto view in
  check_bool "sound" true (S.is_sound resolved);
  match decisions with
  | [ { C.action = `Merge _; _ } ] -> ()
  | [ { C.action = `Split parts; _ } ] ->
    Alcotest.failf "expected a merge, got a split into %d" parts
  | _ -> Alcotest.fail "expected one decision"

let prop_resolve_auto_sound =
  QCheck2.Test.make ~name:"resolve_auto always produces a sound view"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 8 30) (int_range 2 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition k) spec in
      let resolved, _ = C.resolve_auto view in
      S.is_sound resolved)

(* ------------------------------------------------------------------ *)
(* Chain reachability index                                             *)
(* ------------------------------------------------------------------ *)

let test_chains_basic () =
  let g = Digraph.of_edges ~n:6 [ (0, 1); (1, 2); (0, 3); (3, 4); (2, 5); (4, 5) ] in
  let idx = Chains.compute g in
  check_bool "0 reaches 5" true (Chains.reaches idx 0 5);
  check_bool "reflexive" true (Chains.reaches idx 3 3);
  check_bool "1 not to 4" false (Chains.reaches idx 1 4);
  check_bool "no back edges" false (Chains.reaches idx 5 0);
  check_bool "few chains on near-chain graph" true (Chains.n_chains idx <= 3)

let test_chains_rejects_cycles () =
  let g = Digraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cyclic" (Invalid_argument "Chains.compute: graph has a cycle")
    (fun () -> ignore (Chains.compute g))

let test_chains_narrow_compact () =
  (* On a near-path DAG the greedy cover has k ~ 1 chains and the index
     beats the n * ceil(n/63) words the bitset closure allocates. *)
  let n = 500 in
  let g = Digraph.create ~initial_capacity:n () in
  Digraph.add_nodes g n;
  for v = 0 to n - 2 do
    Digraph.add_edge g v (v + 1)
  done;
  let idx = Chains.compute g in
  check_int "single chain" 1 (Chains.n_chains idx);
  let closure_alloc_words = n * ((n + 62) / 63) in
  check_bool "index much smaller than the closure" true
    (Chains.index_words idx * 4 < closure_alloc_words)

let prop_chains_agree_with_reach =
  QCheck2.Test.make ~name:"chain index agrees with bitset closure" ~count:100
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 2 40))
    (fun (seed, size) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let g = Spec.graph spec in
      let idx = Chains.compute g in
      let r = Reach.compute g in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> Chains.reaches idx u v = Reach.reaches r u v)
            (Spec.tasks spec))
        (Spec.tasks spec))

(* ------------------------------------------------------------------ *)
(* Strong-closure branching                                             *)
(* ------------------------------------------------------------------ *)

let test_strong_closure_branches () =
  (* T = {p, x, y, q} with p -> x and y -> q only: repairing the bad pair
     (x, y) can absorb either x's supplier p or y's consumer q — both moves
     are available, exercising the branching path of the closure search. *)
  let spec =
    Spec.of_tasks_exn ~name:"branchy"
      [ "s"; "p"; "x"; "y"; "q"; "t" ]
      [ ("s", "p"); ("p", "x"); ("y", "q"); ("q", "t") ]
  in
  let members = List.map (Spec.task_of_name_exn spec) [ "p"; "x"; "y"; "q" ] in
  let strong = C.split_subset C.Strong spec members in
  check_bool "certified" true strong.C.certified_strong;
  check_bool "valid" true (C.Oracle.valid_split spec members strong.C.parts);
  check_int "two chains" 2 (List.length strong.C.parts)


(* ------------------------------------------------------------------ *)
(* Automatic view construction (Suggest)                               *)
(* ------------------------------------------------------------------ *)

module Suggest = Wolves_core.Suggest

let test_suggest_fig1 () =
  let spec, _ = Examples.figure1 () in
  let greedy = Suggest.greedy_sound_groups spec ~max_size:4 in
  let banded = Suggest.optimal_sound_banding spec ~max_size:4 in
  let check_grouping tag groups =
    let view = Suggest.view_of_groups spec groups in
    check_bool (tag ^ " sound") true (Wolves_core.Soundness.is_sound view);
    check_int (tag ^ " covers all tasks") 12
      (List.fold_left (fun acc g -> acc + List.length g) 0 groups)
  in
  check_grouping "greedy" greedy;
  check_grouping "banded" banded;
  check_bool "optimal banding no worse than greedy" true
    (List.length banded <= List.length greedy);
  check_bool "compressive" true (List.length banded < 12)

let test_suggest_args () =
  let spec, _ = Examples.figure1 () in
  Alcotest.check_raises "greedy max_size"
    (Invalid_argument "Suggest.greedy_sound_groups: max_size < 1") (fun () ->
      ignore (Suggest.greedy_sound_groups spec ~max_size:0));
  Alcotest.check_raises "banding max_size"
    (Invalid_argument "Suggest.optimal_sound_banding: max_size < 1") (fun () ->
      ignore (Suggest.optimal_sound_banding spec ~max_size:0))

let prop_suggest_sound =
  QCheck2.Test.make
    ~name:"suggested views are always sound and partition the tasks"
    ~count:80
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 5 60) (int_range 1 8))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let greedy = Suggest.greedy_sound_groups spec ~max_size:k in
      let banded = Suggest.optimal_sound_banding spec ~max_size:k in
      List.for_all
        (fun groups ->
          let view = Suggest.view_of_groups spec groups in
          Wolves_core.Soundness.is_sound view
          && List.for_all (fun g -> List.length g <= k) groups
          && List.sort compare (List.concat groups) = Spec.tasks spec)
        [ greedy; banded ]
      && List.length banded <= List.length greedy)


let test_fork_join_regions () =
  (* A pipeline with explicit fork-join fans collapses to few composites. *)
  let spec = Gen.generate Gen.Pipeline ~seed:6 ~size:40 in
  let groups = Suggest.fork_join_regions spec in
  let view = Suggest.view_of_groups spec groups in
  check_bool "fork-join view sound" true (Wolves_core.Soundness.is_sound view);
  check_bool "collapsed something" true
    (List.exists (fun g -> List.length g >= 3) groups);
  (* Figure 1: the whole workflow is one fork (task 2) without a clean join
     covering 9/10; at least the construction stays sound. *)
  let spec1, _ = Examples.figure1 () in
  let view1 = Suggest.view_of_groups spec1 (Suggest.fork_join_regions spec1) in
  check_bool "figure 1 fork-join view sound" true
    (Wolves_core.Soundness.is_sound view1)

let prop_fork_join_sound =
  QCheck2.Test.make ~name:"fork-join regions always give sound views"
    ~count:80
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 5 80))
    (fun (seed, size) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let groups = Suggest.fork_join_regions spec in
      let view = Suggest.view_of_groups spec groups in
      Wolves_core.Soundness.is_sound view
      && List.sort compare (List.concat groups) = Spec.tasks spec)


let test_session_undo () =
  let spec, _ = Examples.figure1 () in
  let s = Session.start_fresh spec in
  let t name = Spec.task_of_name_exn spec name in
  check_int "no history" 0 (Session.history_depth s);
  check_bool "nothing to undo" false (Session.undo s);
  (* Build the unsound composite, validate, then undo it. *)
  (match
     Session.create_composite s ~name:"16"
       [ t "4:Curate Annotations"; t "7:Create Alignment" ]
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check_int "one undoable edit" 1 (Session.history_depth s);
  check_int "one unsound" 1 (List.length (Session.unsound s));
  check_bool "undo succeeds" true (Session.undo s);
  check_bool "back to the sound singleton view" true (Session.is_sound s);
  check_int "12 singletons again" 12 (List.length (Session.composite_names s));
  (* Undo restores cached verdicts: no new checks needed. *)
  let before = Session.checks_performed s in
  check_bool "still sound" true (Session.is_sound s);
  check_bool "at most 2 fresh checks after undo" true
    (Session.checks_performed s - before <= 2);
  (* Failed edits leave no history entry. *)
  let depth = Session.history_depth s in
  (match Session.create_composite s ~name:"16" [] with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "empty composite accepted");
  check_int "failed edit not recorded" depth (Session.history_depth s)

let test_session_undo_chain () =
  let spec, view = Examples.figure3 () in
  ignore spec;
  let s = Session.start view in
  let partition () =
    List.sort compare
      (List.map (fun n -> Option.get (Session.members s n))
         (Session.composite_names s))
  in
  let p0 = partition () in
  (match Session.apply_correction s "T" C.Strong with
   | Ok parts -> check_int "5 parts" 5 parts
   | Error m -> Alcotest.fail m);
  let p1 = partition () in
  check_bool "partition changed" true (p0 <> p1);
  (match Session.dissolve s "T/1" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check_bool "undo dissolve" true (Session.undo s);
  check_bool "back to corrected" true (partition () = p1);
  check_bool "undo correction" true (Session.undo s);
  check_bool "back to original" true (partition () = p0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_session_and_extensions"
    [ ( "session",
        [ Alcotest.test_case "fresh session" `Quick test_session_fresh;
          Alcotest.test_case "rebuild figure 1 interactively" `Quick
            test_session_build_fig1;
          Alcotest.test_case "incremental cost" `Quick test_session_incremental_cost;
          Alcotest.test_case "edits and errors" `Quick test_session_edits;
          Alcotest.test_case "undo" `Quick test_session_undo;
          Alcotest.test_case "undo chain" `Quick test_session_undo_chain;
          qt prop_session_agrees ] );
      ( "minimal-core",
        [ Alcotest.test_case "figure 3 core" `Quick test_minimal_core_fig3;
          Alcotest.test_case "sound input" `Quick test_minimal_core_sound_input;
          qt prop_minimal_core ] );
      ( "anytime",
        [ Alcotest.test_case "figure 3" `Quick test_anytime_fig3;
          Alcotest.test_case "budget exhaustion" `Quick test_anytime_budget;
          qt prop_anytime_matches_dp ] );
      ( "resolve-auto",
        [ Alcotest.test_case "figure 1 splits" `Quick test_resolve_auto_fig1;
          Alcotest.test_case "wide block merges" `Quick
            test_resolve_auto_prefers_merge;
          qt prop_resolve_auto_sound ] );
      ( "chains",
        [ Alcotest.test_case "basic queries" `Quick test_chains_basic;
          Alcotest.test_case "cycles rejected" `Quick test_chains_rejects_cycles;
          Alcotest.test_case "compact on narrow graphs" `Quick
            test_chains_narrow_compact;
          qt prop_chains_agree_with_reach ] );
      ( "strong-branching",
        [ Alcotest.test_case "two-sided repair" `Quick test_strong_closure_branches ] );
      ( "suggest",
        [ Alcotest.test_case "figure 1 constructions" `Quick test_suggest_fig1;
          Alcotest.test_case "argument validation" `Quick test_suggest_args;
          Alcotest.test_case "fork-join regions" `Quick test_fork_join_regions;
          qt prop_suggest_sound;
          qt prop_fork_join_sound ] ) ]
