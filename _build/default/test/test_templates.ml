(* Tests for the scientific-workflow template suite (Montage, CyberShake,
   Epigenomics, LIGO): shapes, natural stage views, audit behaviour, and
   correction of the realistic corpora. *)

open Wolves_workflow
module T = Wolves_workload.Templates
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module P = Wolves_provenance.Provenance
module Algo = Wolves_graph.Algo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_montage_shape () =
  let spec = T.generate T.Montage ~scale:4 in
  (* 4 mProject + 3 mDiffFit + mConcatFit + mBgModel + 4 mBackground +
     mImgtbl + mAdd + mShrink + mJPEG = 17 *)
  check_int "tasks" 17 (Spec.n_tasks spec);
  check_bool "acyclic" true (Algo.is_dag (Spec.graph spec));
  let t n = Spec.task_of_name_exn spec n in
  check_bool "projection feeds the final mosaic" true
    (Spec.depends spec (t "mProject_0") (t "mJPEG"));
  check_bool "background correction uses the model" true
    (Spec.depends spec (t "mBgModel") (t "mBackground_3"));
  (* single tile edge case *)
  let tiny = T.generate T.Montage ~scale:1 in
  check_bool "scale 1 builds" true (Spec.n_tasks tiny > 0);
  check_bool "still connected to output" true
    (Spec.depends tiny
       (Spec.task_of_name_exn tiny "mProject_0")
       (Spec.task_of_name_exn tiny "mJPEG"))

let test_cybershake_shape () =
  let spec = T.generate T.Cybershake ~scale:5 in
  (* 5 SGT + 10 synth + 10 peak + 2 zips = 27 *)
  check_int "tasks" 27 (Spec.n_tasks spec);
  let t n = Spec.task_of_name_exn spec n in
  check_bool "synthesis feeds both zips" true
    (Spec.depends spec (t "SeismogramSynthesis_2_1") (t "ZipSeis")
     && Spec.depends spec (t "SeismogramSynthesis_2_1") (t "ZipPSA"))

let test_epigenomics_shape () =
  let spec = T.generate T.Epigenomics ~scale:6 in
  (* split + 4*6 lanes + merge + index + pileup = 28 *)
  check_int "tasks" 28 (Spec.n_tasks spec);
  let t n = Spec.task_of_name_exn spec n in
  check_bool "lane flows end to end" true
    (Spec.depends spec (t "fastQSplit") (t "pileup"));
  check_int "pileup has one producer" 1
    (List.length (Spec.producers spec (t "pileup")))

let test_ligo_shape () =
  let spec = T.generate T.Ligo ~scale:7 in
  check_bool "acyclic" true (Algo.is_dag (Spec.graph spec));
  let t n = Spec.task_of_name_exn spec n in
  (* 7 lanes in groups of 3 -> 3 groups *)
  check_bool "groups exist" true (Spec.task_of_name spec "Thinca1_2" <> None);
  check_bool "two-stage analysis" true
    (Spec.depends spec (t "TmpltBank_0") (t "Thinca2_0"));
  check_bool "groups are independent" false
    (Spec.depends spec (t "TmpltBank_0") (t "Thinca2_1"))

let test_natural_views_audit () =
  (* The realistic finding: stage views of data-parallel workflows are
     frequently unsound — the paper's motivating survey, on real shapes. *)
  let unsound_stage_views = ref 0 in
  List.iter
    (fun suite ->
      let spec = T.generate suite ~scale:6 in
      let view = T.natural_view suite spec in
      (* stage view covers all tasks *)
      check_int
        (T.suite_name suite ^ " stage view covers tasks")
        (Spec.n_tasks spec)
        (List.fold_left
           (fun acc c -> acc + List.length (View.members view c))
           0 (View.composites view));
      if not (S.is_sound view) then incr unsound_stage_views)
    T.all_suites;
  check_bool "most natural stage views are unsound" true (!unsound_stage_views >= 3)

let test_epigenomics_stage_witness () =
  (* The filter stage groups independent lanes: the classic unsound
     composite, with real task names. *)
  let spec = T.generate T.Epigenomics ~scale:3 in
  let view = T.natural_view T.Epigenomics spec in
  let stage = Option.get (View.composite_of_name view "filterContams") in
  check_bool "filter stage unsound" false (S.composite_sound view stage);
  let witnesses = S.composite_witnesses view stage in
  let t n = Spec.task_of_name_exn spec n in
  check_bool "cross-lane witness" true
    (List.mem (t "filterContams_0", t "filterContams_1") witnesses)

let test_correction_restores_provenance () =
  List.iter
    (fun suite ->
      let spec = T.generate suite ~scale:5 in
      let view = T.natural_view suite spec in
      let corrected, _ = C.correct C.Strong view in
      check_bool (T.suite_name suite ^ " corrected sound") true
        (S.is_sound corrected);
      let stats = P.evaluate_view corrected in
      check_int (T.suite_name suite ^ " exact provenance") 0 stats.P.spurious)
    T.all_suites

let test_scale_guard () =
  Alcotest.check_raises "scale 0" (Invalid_argument "Templates.generate: scale < 1")
    (fun () -> ignore (T.generate T.Montage ~scale:0))

let prop_templates_valid =
  QCheck2.Test.make ~name:"all suites at all scales are valid DAG workflows"
    ~count:60
    QCheck2.Gen.(pair (oneofl T.all_suites) (int_range 1 20))
    (fun (suite, scale) ->
      let spec = T.generate suite ~scale in
      Algo.is_dag (Spec.graph spec)
      && Spec.n_tasks spec > 0
      && List.for_all
           (fun t -> Spec.producers spec t <> [] || Spec.consumers spec t <> [])
           (Spec.tasks spec)
      &&
      let view = T.natural_view suite spec in
      View.n_composites view <= Spec.n_tasks spec)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_templates"
    [ ( "templates",
        [ Alcotest.test_case "montage" `Quick test_montage_shape;
          Alcotest.test_case "cybershake" `Quick test_cybershake_shape;
          Alcotest.test_case "epigenomics" `Quick test_epigenomics_shape;
          Alcotest.test_case "ligo" `Quick test_ligo_shape;
          Alcotest.test_case "natural stage views are often unsound" `Quick
            test_natural_views_audit;
          Alcotest.test_case "epigenomics witness" `Quick
            test_epigenomics_stage_witness;
          Alcotest.test_case "correction restores exact provenance" `Quick
            test_correction_restores_provenance;
          Alcotest.test_case "scale guard" `Quick test_scale_guard;
          qt prop_templates_valid ] ) ]
