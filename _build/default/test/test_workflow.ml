(* Tests for workflow specifications, views and the hand-encoded paper
   examples. *)

open Wolves_workflow
module Digraph = Wolves_graph.Digraph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let simple_spec () =
  Spec.of_tasks_exn ~name:"simple"
    [ "a"; "b"; "c"; "d" ]
    [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_build () =
  let s = simple_spec () in
  check_string "name" "simple" (Spec.name s);
  check_int "tasks" 4 (Spec.n_tasks s);
  check_int "deps" 4 (Spec.n_dependencies s);
  let a = Spec.task_of_name_exn s "a" and d = Spec.task_of_name_exn s "d" in
  check_string "task_name" "a" (Spec.task_name s a);
  check_bool "depends a d" true (Spec.depends s a d);
  check_bool "not depends d a" false (Spec.depends s d a);
  check_bool "reflexive" true (Spec.depends s a a);
  check_int "producers of d" 2 (List.length (Spec.producers s d));
  check_int "consumers of a" 2 (List.length (Spec.consumers s a))

let test_spec_duplicate () =
  match Spec.of_tasks ~name:"x" [ "a"; "a" ] [] with
  | Error (Spec.Duplicate_task "a") -> ()
  | _ -> Alcotest.fail "expected Duplicate_task"

let test_spec_unknown () =
  match Spec.of_tasks ~name:"x" [ "a" ] [ ("a", "zz") ] with
  | Error (Spec.Unknown_task "zz") -> ()
  | _ -> Alcotest.fail "expected Unknown_task"

let test_spec_self_dep () =
  match Spec.of_tasks ~name:"x" [ "a" ] [ ("a", "a") ] with
  | Error (Spec.Self_dependency "a") -> ()
  | _ -> Alcotest.fail "expected Self_dependency"

let test_spec_cycle () =
  match
    Spec.of_tasks ~name:"x" [ "a"; "b"; "c" ]
      [ ("a", "b"); ("b", "c"); ("c", "a") ]
  with
  | Error (Spec.Cyclic names) ->
    check_int "cycle length" 3 (List.length names)
  | _ -> Alcotest.fail "expected Cyclic"

let test_spec_builder_independent () =
  (* finish freezes a copy: later builder edits do not leak in. *)
  let b = Spec.Builder.create ~name:"frozen" () in
  let _ = Spec.Builder.add_task_exn b "a" in
  let _ = Spec.Builder.add_task_exn b "b" in
  Spec.Builder.add_dependency_exn b "a" "b";
  let frozen = Spec.Builder.finish_exn b in
  let _ = Spec.Builder.add_task_exn b "c" in
  Spec.Builder.add_dependency_exn b "b" "c";
  check_int "frozen unaffected" 2 (Spec.n_tasks frozen);
  let second = Spec.Builder.finish_exn b in
  check_int "second snapshot" 3 (Spec.n_tasks second)

let test_spec_topo () =
  let s = simple_spec () in
  let order = Spec.topological_order s in
  let pos = Hashtbl.create 4 in
  List.iteri (fun i t -> Hashtbl.replace pos t i) order;
  Digraph.iter_edges
    (fun u v ->
      check_bool "edge sorted" true (Hashtbl.find pos u < Hashtbl.find pos v))
    (Spec.graph s)

(* ------------------------------------------------------------------ *)
(* View                                                                *)
(* ------------------------------------------------------------------ *)

let test_view_make () =
  let s = simple_spec () in
  let v = View.make_exn s [ ("front", [ "a"; "b" ]); ("back", [ "c"; "d" ]) ] in
  check_int "composites" 2 (View.n_composites v);
  let front = Option.get (View.composite_of_name v "front") in
  let back = Option.get (View.composite_of_name v "back") in
  check_string "name" "front" (View.composite_name v front);
  check_int "front members" 2 (List.length (View.members v front));
  check_int "task->composite" front
    (View.composite_of_task v (Spec.task_of_name_exn s "b"));
  let g = View.view_graph v in
  check_bool "front -> back edge" true (Digraph.mem_edge g front back);
  check_bool "no back edge" false (Digraph.mem_edge g back front);
  (* a->b is internal: the view graph has exactly one edge *)
  check_int "one inter-composite edge" 1 (Digraph.n_edges g);
  Alcotest.(check (float 0.001)) "compression" 2.0 (View.compression v)

let test_view_errors () =
  let s = simple_spec () in
  let expect groups expected =
    match View.make s groups with
    | Error e -> check_string "error" expected (Format.asprintf "%a" View.pp_error e)
    | Ok _ -> Alcotest.fail "expected an error"
  in
  expect
    [ ("x", [ "a"; "b" ]); ("y", [ "c" ]) ]
    "task \"d\" is not covered by the view";
  expect
    [ ("x", [ "a"; "b"; "c" ]); ("y", [ "c"; "d" ]) ]
    "task \"c\" belongs to several composites";
  expect
    [ ("x", [ "a"; "b" ]); ("x", [ "c"; "d" ]) ]
    "duplicate composite name \"x\"";
  expect
    [ ("x", [ "a"; "b"; "c"; "d" ]); ("y", []) ]
    "composite \"y\" has no members";
  expect
    [ ("x", [ "a"; "b"; "c"; "d"; "zz" ]) ]
    "view mentions unknown task \"zz\""

let test_view_split () =
  let s = simple_spec () in
  let v = View.make_exn s [ ("all", [ "a"; "b"; "c"; "d" ]) ] in
  let b = Spec.task_of_name_exn s "b" and c = Spec.task_of_name_exn s "c" in
  let a = Spec.task_of_name_exn s "a" and d = Spec.task_of_name_exn s "d" in
  let v' = View.split_exn v 0 [ [ a; b ]; [ c; d ] ] in
  check_int "split into two" 2 (View.n_composites v');
  check_bool "names suffixed" true
    (View.composite_of_name v' "all/0" <> None
     && View.composite_of_name v' "all/1" <> None);
  (* error cases *)
  (match View.split v 0 [ [ a; b ]; [ c ] ] with
   | Error (View.Task_not_covered _) -> ()
   | _ -> Alcotest.fail "expected Task_not_covered");
  (match View.split v 0 [ [ a; b ]; [ b; c; d ] ] with
   | Error (View.Task_in_several_composites _) -> ()
   | _ -> Alcotest.fail "expected duplicate");
  (match View.split v' 0 [ [ a ]; [ b; c ] ] with
   | Error (View.Unknown_task_in_view _) -> ()
   | _ -> Alcotest.fail "expected foreign task")

let test_view_merge () =
  let s = simple_spec () in
  let v = View.singleton_view s in
  check_int "singleton count" 4 (View.n_composites v);
  let v' = View.merge_exn v [ 0; 1 ] in
  check_int "after merge" 3 (View.n_composites v');
  let merged = Option.get (View.composite_of_name v' "a") in
  check_int "merged members" 2 (List.length (View.members v' merged));
  (match View.merge v [ 0; 0 ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate ids rejected");
  (match View.merge v [ 9 ] with
   | Error (View.Unknown_composite 9) -> ()
   | _ -> Alcotest.fail "unknown composite rejected")

let test_view_split_merge_roundtrip () =
  let s = simple_spec () in
  let v = View.make_exn s [ ("all", [ "a"; "b"; "c"; "d" ]) ] in
  let parts =
    [ [ Spec.task_of_name_exn s "a" ];
      [ Spec.task_of_name_exn s "b"; Spec.task_of_name_exn s "c" ];
      [ Spec.task_of_name_exn s "d" ] ]
  in
  let v' = View.split_exn v 0 parts in
  let v'' = View.merge_exn v' (View.composites v') in
  check_bool "split then merge-all restores partition" true (View.equal v v'')

let test_empty_workflow () =
  (* Degenerate but legal: a workflow with no tasks. *)
  let spec = Spec.of_tasks_exn ~name:"empty" [] [] in
  check_int "no tasks" 0 (Spec.n_tasks spec);
  Alcotest.(check (list int)) "no topo order" [] (Spec.topological_order spec);
  let view = View.singleton_view spec in
  check_int "no composites" 0 (View.n_composites view);
  Alcotest.(check (float 0.0)) "compression defined" 1.0 (View.compression view);
  check_bool "vacuously sound" true (Wolves_core.Soundness.is_sound view);
  (* And the correctors leave it alone. *)
  let corrected, outcomes =
    Wolves_core.Corrector.correct Wolves_core.Corrector.Strong view
  in
  check_int "nothing corrected" 0 (List.length outcomes);
  check_int "still empty" 0 (View.n_composites corrected)

let test_single_task_workflow () =
  let spec = Spec.of_tasks_exn ~name:"solo" [ "only" ] [] in
  let view = View.singleton_view spec in
  check_bool "sound" true (Wolves_core.Soundness.is_sound view);
  check_int "one composite" 1 (View.n_composites view)

(* ------------------------------------------------------------------ *)
(* Examples                                                            *)
(* ------------------------------------------------------------------ *)

let test_figure1_shape () =
  let spec, view = Examples.figure1 () in
  check_int "12 tasks" 12 (Spec.n_tasks spec);
  check_int "12 deps" 12 (Spec.n_dependencies spec);
  check_int "7 composites" 7 (View.n_composites view);
  (* Narrative facts from the paper's introduction. *)
  let t n = Spec.task_of_name_exn spec n in
  check_bool "2 reaches 8 (sequences feed the alignment)" true
    (Spec.depends spec (t "2:Split Entries") (t "8:Format Alignment"));
  check_bool "3 does not reach 8 (the paper's wrong provenance)" false
    (Spec.depends spec (t "3:Extract Annotations") (t "8:Format Alignment"));
  let c16 = Examples.figure1_unsound_composite view in
  check_int "16 has two members" 2 (List.length (View.members view c16))

let test_figure3_shape () =
  let spec, view = Examples.figure3 () in
  check_int "14 tasks" 14 (Spec.n_tasks spec);
  check_int "3 composites" 3 (View.n_composites view);
  let t = Examples.figure3_composite view in
  check_int "12 members" 12 (List.length (View.members view t))

let test_prop21_shape () =
  let spec, view = Examples.prop21_counterexample () in
  check_int "4 tasks" 4 (Spec.n_tasks spec);
  check_int "3 composites" 3 (View.n_composites view)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_dag_spec =
  QCheck2.Gen.(
    bind (int_range 2 20) (fun n ->
        bind (list_size (int_range 0 40) (pair (int_bound 1000) (int_bound 1000)))
          (fun raw ->
            let edges =
              List.filter_map
                (fun (a, b) ->
                  let u = a mod n and v = b mod n in
                  if u < v then Some (u, v) else if v < u then Some (v, u) else None)
                raw
            in
            return (n, edges))))

let spec_of (n, edges) =
  Spec.of_tasks_exn ~name:"prop"
    (List.init n (Printf.sprintf "t%d"))
    (List.map (fun (u, v) -> (Printf.sprintf "t%d" u, Printf.sprintf "t%d" v)) edges)

let prop_view_graph_edges =
  QCheck2.Test.make ~name:"view graph = contracted dependency graph" ~count:200
    QCheck2.Gen.(pair gen_dag_spec (int_range 1 5))
    (fun ((n, edges), k) ->
      let spec = spec_of (n, edges) in
      (* Partition tasks round-robin into k groups (k <= n). *)
      let k = min k n in
      let parts =
        List.init k (fun g ->
            List.filter (fun t -> t mod k = g) (Spec.tasks spec))
      in
      let view = View.of_partition_exn spec parts in
      let vg = View.view_graph view in
      let expected_edge c1 c2 =
        List.exists
          (fun (u, v) ->
            View.composite_of_task view u = c1 && View.composite_of_task view v = c2)
          edges
      in
      List.for_all
        (fun c1 ->
          List.for_all
            (fun c2 ->
              c1 = c2 || Digraph.mem_edge vg c1 c2 = expected_edge c1 c2)
            (View.composites view))
        (View.composites view))

let prop_singleton_view_partition =
  QCheck2.Test.make ~name:"singleton view covers every task exactly once"
    ~count:100 gen_dag_spec
    (fun input ->
      let spec = spec_of input in
      let view = View.singleton_view spec in
      View.n_composites view = Spec.n_tasks spec
      && List.for_all
           (fun t -> View.members view (View.composite_of_task view t) = [ t ])
           (Spec.tasks spec))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_workflow"
    [ ( "spec",
        [ Alcotest.test_case "build and query" `Quick test_spec_build;
          Alcotest.test_case "duplicate task" `Quick test_spec_duplicate;
          Alcotest.test_case "unknown task" `Quick test_spec_unknown;
          Alcotest.test_case "self dependency" `Quick test_spec_self_dep;
          Alcotest.test_case "cycle rejected" `Quick test_spec_cycle;
          Alcotest.test_case "builder snapshots are frozen" `Quick
            test_spec_builder_independent;
          Alcotest.test_case "topological order" `Quick test_spec_topo ] );
      ( "view",
        [ Alcotest.test_case "make and query" `Quick test_view_make;
          Alcotest.test_case "invalid views rejected" `Quick test_view_errors;
          Alcotest.test_case "split" `Quick test_view_split;
          Alcotest.test_case "merge" `Quick test_view_merge;
          Alcotest.test_case "split/merge round trip" `Quick
            test_view_split_merge_roundtrip;
          Alcotest.test_case "empty workflow" `Quick test_empty_workflow;
          Alcotest.test_case "single-task workflow" `Quick
            test_single_task_workflow;
          qt prop_view_graph_edges;
          qt prop_singleton_view_partition ] );
      ( "examples",
        [ Alcotest.test_case "figure 1" `Quick test_figure1_shape;
          Alcotest.test_case "figure 3" `Quick test_figure3_shape;
          Alcotest.test_case "prop 2.1 counterexample" `Quick test_prop21_shape ] ) ]
