(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md (the
   demo paper's evaluation claims, §3.1, plus its figures and motivating
   claims), one section per experiment id, and finishes with Bechamel
   micro-benchmarks (one Test.make per experiment kernel).

   Run with: dune exec bench/main.exe            (all sections)
             dune exec bench/main.exe -- E-QUAL  (a subset)
   Flags (before section ids):
     --json FILE        also write a machine-readable artifact: per-section
                        wall time, section-specific key figures, and the
                        Wolves_obs registry snapshot (soundness checks vs
                        pruning probes, cache hit counts, timer histograms)
     --smoke            shrink every workload so the whole run finishes in
                        seconds (CI's @bench-smoke alias)
     --compare FILE     regression gate: diff each section's wall time
                        against a committed --json artifact (any schema
                        version) and exit 1 when a section exceeds
                        baseline x threshold (+ absolute slack, so
                        microsecond sections are noise-immune)
     --threshold F      slowdown factor tolerated by --compare (default
                        1.5)
     --domains N        default domain count for the parallel kernels
                        (closure construction, validator, corrector);
                        equivalent to WOLVES_DOMAINS=N                    *)

open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module E = Wolves_core.Estimator
module Q = Wolves_core.Quality
module H = Wolves_core.Hardness
module P = Wolves_provenance.Provenance
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Prng = Wolves_workload.Prng
module R = Wolves_repository.Repository
module Table = Wolves_cli.Table
module Render = Wolves_cli.Render
module Bitset = Wolves_graph.Bitset
module Reach = Wolves_graph.Reach
module Json = Wolves_cli.Json
module Benchgate = Wolves_cli.Benchgate
module Metrics = Wolves_obs.Metrics
module Par = Wolves_par.Par
module Labels = Wolves_graph.Labels
module Annot = Wolves_analysis.Annot

(* Smoke mode: every section picks between its full workload and a
   seconds-scale stand-in, so CI can run the whole harness end to end. *)
let smoke = ref false

let sm full light = if !smoke then light else full

(* The machine-readable artifact (--json): one entry per section run, with
   the wall time, any key figures the section publishes via [kv], and the
   metrics-registry snapshot collected while the section ran. *)
module Report = struct
  let entries : (string * Json.t) list ref = ref []
  let current : (string * Json.t) list ref = ref []

  let kv key v = current := (key, v) :: !current

  let timer_json (st : Metrics.timer_stats) =
    Json.Obj
      [ ("count", Json.Int st.Metrics.count);
        ("sum_s", Json.Float st.Metrics.sum);
        ("max_s", Json.Float st.Metrics.max) ]

  let metrics_json (snap : Metrics.snapshot) =
    Json.Obj
      [ ( "counters",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Int v)) snap.Metrics.counters) );
        ( "gauges",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Float v)) snap.Metrics.gauges) );
        ( "timers",
          Json.Obj
            (List.filter_map
               (fun (n, st) ->
                 if st.Metrics.count = 0 then None else Some (n, timer_json st))
               snap.Metrics.timers) ) ]

  let finish_section id ~wall snap =
    entries :=
      ( id,
        Json.Obj
          (("wall_time_s", Json.Float wall)
           :: List.rev !current
          @ [ ("metrics", metrics_json snap) ]) )
      :: !entries;
    current := []

  let write path =
    let doc =
      Json.Obj
        [ ("schema_version", Json.Int 2);
          ("harness", Json.String "bench/main.ml");
          ("smoke", Json.Bool !smoke);
          ("sections", Json.Obj (List.rev !entries)) ]
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.to_string doc);
        Out_channel.output_char oc '\n')
end

let section id paper_claim =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" id;
  Printf.printf "paper: %s\n" paper_claim;
  Printf.printf "==================================================================\n"

let fmt_s t =
  if t < 1e-6 then Printf.sprintf "%.0fns" (t *. 1e9)
  else if t < 1e-3 then Printf.sprintf "%.1fus" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.2fms" (t *. 1e3)
  else Printf.sprintf "%.2fs" t

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Repeat a thunk until it has consumed ~[budget] seconds and report the mean
   wall-clock time per run (at least one run). *)
let time_per_run ?(budget = 0.05) f =
  let _, first = Render.time f in
  if first > budget then first
  else begin
    let runs = max 1 (int_of_float (budget /. (first +. 1e-9))) in
    let _, total = Render.time (fun () -> for _ = 1 to runs do ignore (f ()) done) in
    total /. float_of_int runs
  end

(* A random correction instance: a composite of [k] random tasks inside a
   generated workflow (deterministic in [seed]). *)
let random_instance family ~seed ~size ~k =
  let spec = Gen.generate family ~seed ~size in
  let rng = Prng.create (seed lxor 0x5EED) in
  let members =
    List.sort compare
      (List.filteri (fun i _ -> i < k) (Prng.shuffle rng (Spec.tasks spec)))
  in
  (spec, members)

(* ------------------------------------------------------------------ *)
(* E-FIG1                                                               *)
(* ------------------------------------------------------------------ *)

let e_fig1 () =
  section "E-FIG1"
    "Figure 1: the phylogenomics view is unsound at composite 16 and yields \
     wrong provenance for the output of composite 18";
  let spec, view = Examples.figure1 () in
  let report = S.validate view in
  let unsound_names =
    List.map (fun (c, _) -> View.composite_name view c) report.S.unsound
  in
  Printf.printf "unsound composites: %s (paper: 16)\n"
    (String.concat ", " unsound_names);
  let c18 = Examples.figure1_query_composite view in
  let spurious = P.spurious_items view c18 in
  Printf.printf "spurious items in provenance of 18: %s (paper: data of task 3)\n"
    (String.concat ", "
       (List.map (Format.asprintf "%a" (P.pp_item spec)) spurious));
  let corrected, _ = C.correct C.Strong view in
  let stats = P.evaluate_view corrected in
  Printf.printf "after correction: %d spurious / %d queries (expected 0)\n"
    stats.P.spurious stats.P.queries

(* ------------------------------------------------------------------ *)
(* E-FIG3                                                               *)
(* ------------------------------------------------------------------ *)

let e_fig3 () =
  section "E-FIG3"
    "Figure 3: weak local optimal split = 8 parts, strong = 5, strong is \
     strictly better; {f,g} not combinable, {c,d,f,g} combinable";
  let spec, view = Examples.figure3 () in
  let members = View.members view (Examples.figure3_composite view) in
  let rows =
    List.map
      (fun criterion ->
        let outcome, elapsed =
          Render.time (fun () -> C.split_subset criterion spec members)
        in
        let name = Format.asprintf "%a" C.pp_criterion criterion in
        (* checks counts full soundness decisions only; the optimal DP's
           bit-parallel mask evaluations and the anytime search's pruning
           probes report separately (see Corrector.outcome). *)
        Report.kv name
          (Json.Obj
             [ ("parts", Json.Int (List.length outcome.C.parts));
               ("checks", Json.Int outcome.C.checks);
               ("probes", Json.Int outcome.C.probes);
               ("time_s", Json.Float elapsed) ]);
        [ name;
          string_of_int (List.length outcome.C.parts);
          string_of_int outcome.C.checks;
          string_of_int outcome.C.probes;
          fmt_s elapsed ])
      [ C.Weak; C.Strong; C.Optimal ]
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "criterion"; "parts"; "soundness checks"; "probes"; "time" ]
       rows);
  let t n = Spec.task_of_name_exn spec n in
  Printf.printf "{f,g} combinable: %b (paper: false)\n"
    (C.combinable spec [ t "f" ] [ t "g" ]);
  Printf.printf "{c,d,f,g} combinable: %b (paper: true)\n"
    (C.combinable spec [ t "c"; t "d" ] [ t "f"; t "g" ])

(* ------------------------------------------------------------------ *)
(* E-QUAL                                                               *)
(* ------------------------------------------------------------------ *)

let e_qual () =
  section "E-QUAL"
    "\xc2\xa73.1: the strongly local optimal corrector often produces views with \
     similar quality to the optimal corrector (quality = optimal parts / \
     algorithm parts, 1.0 is best)";
  (* Instances: the unsound composites found in a corpus of generated
     workflows with structure-following views perturbed toward unsoundness
     (the paper's expert + automatic views), capped to the optimal
     corrector's range. *)
  let rows = ref [] in
  List.iter
    (fun family ->
      let corpus =
        Views.unsound_corpus ~seed:42 ~families:[ family ]
          ~sizes:(sm [ 24; 48 ] [ 16 ])
          ~per_cell:(sm 12 2)
      in
      let instances =
        List.concat_map
          (fun (spec, view) ->
            List.filter_map
              (fun (c, _) ->
                let members = View.members view c in
                let n = List.length members in
                if n >= 3 && n <= 16 then Some (spec, members) else None)
              (S.validate view).S.unsound)
          corpus
      in
      let weak_q = ref [] and strong_q = ref [] in
      let weak_sub = ref 0 in
      List.iter
        (fun (spec, members) ->
          let cmp = Q.compare_criteria spec members in
          Option.iter (fun q -> weak_q := q :: !weak_q) cmp.Q.weak_quality;
          Option.iter
            (fun q ->
              if q < 0.999 then incr weak_sub;
              ignore q)
            cmp.Q.weak_quality;
          Option.iter (fun q -> strong_q := q :: !strong_q) cmp.Q.strong_quality)
        instances;
      if !weak_q <> [] then
        rows :=
          [ Gen.family_name family;
            string_of_int (List.length !weak_q);
            Printf.sprintf "%.3f" (mean !weak_q);
            Printf.sprintf "%.3f" (mean !strong_q);
            string_of_int !weak_sub ]
          :: !rows)
    Gen.all_families;
  (* The analytic hardness families: the worst case for weak optimality. *)
  List.iter
    (fun (blocks, chains) ->
      let spec, members = H.blocks_instance ~blocks ~chains in
      let cmp = Q.compare_criteria spec members in
      rows :=
        [ Printf.sprintf "blocks(%d,%d)" blocks chains;
          "1";
          (match cmp.Q.weak_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
          (match cmp.Q.strong_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
          "1" ]
        :: !rows)
    (sm [ (1, 1); (2, 2); (3, 3) ] [ (1, 1); (2, 2) ]);
  List.iter
    (fun width ->
      let spec, members = H.wide_block_instance ~width in
      let cmp = Q.compare_criteria spec members in
      rows :=
        [ Printf.sprintf "wide-block(%d)" width;
          "1";
          (match cmp.Q.weak_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
          (match cmp.Q.strong_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
          "1" ]
        :: !rows)
    (sm [ 2; 4; 7 ] [ 2; 4 ]);
  (* The pinned strong-vs-optimal separation (see Hardness.strong_gap_instance). *)
  let gap_spec, gap_members = H.strong_gap_instance () in
  let gap_cmp = Q.compare_criteria gap_spec gap_members in
  rows :=
    [ "strong-gap gadget";
      "1";
      (match gap_cmp.Q.weak_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
      (match gap_cmp.Q.strong_quality with Some q -> Printf.sprintf "%.3f" q | None -> "-");
      "1" ]
    :: !rows;
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:
         [ "family"; "unsound composites"; "weak quality"; "strong quality";
           "weak suboptimal" ]
       (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* E-TIME                                                               *)
(* ------------------------------------------------------------------ *)

let e_time () =
  section "E-TIME"
    "\xc2\xa73.1: strong is several orders of magnitude faster than optimal and \
     comparable in efficiency with weak";
  Report.kv "domains" (Json.Int (Par.default_domains ()));
  (* strong* = the polynomial closure algorithm alone; strong+cert adds the
     exhaustive certification sweep this repo runs by default (see
     DESIGN.md). The paper's claims concern the polynomial algorithm. *)
  let no_cert = { C.default_config with C.certify = false } in
  let seeds = List.init (sm 3 1) Fun.id in
  let instance_for seed n =
    (* Mix a structured hardness instance into every size so the correctors
       have real work (random subsets are usually near-trivial). *)
    if seed = 0 && n >= 6 && n mod 2 = 0 then
      let blocks = max 1 (n / 8) in
      let chains = (n - 4 * blocks) / 2 in
      if 4 * blocks + 2 * chains = n && chains >= 0 then
        H.blocks_instance ~blocks ~chains
      else random_instance Gen.Layered ~seed:(seed * 37) ~size:(3 * n) ~k:n
    else random_instance Gen.Layered ~seed:(seed * 37) ~size:(3 * n) ~k:n
  in
  let rows =
    List.map
      (fun n ->
        let collect config criterion =
          mean
            (List.map
               (fun seed ->
                 let spec, members = instance_for seed n in
                 time_per_run ~budget:0.02 (fun () ->
                     C.split_subset ~config criterion spec members))
               seeds)
        in
        let weak_t = collect C.default_config C.Weak in
        let strong_t = collect no_cert C.Strong in
        let strong_cert_t = collect C.default_config C.Strong in
        let optimal_t =
          if n <= 18 then Some (collect C.default_config C.Optimal) else None
        in
        [ string_of_int n;
          fmt_s weak_t;
          fmt_s strong_t;
          fmt_s strong_cert_t;
          (match optimal_t with Some t -> fmt_s t | None -> "(skipped)");
          (match optimal_t with
           | Some t -> Printf.sprintf "%.0fx" (t /. strong_t)
           | None -> "-") ])
      (sm [ 8; 10; 12; 14; 16; 18; 20 ] [ 8; 10; 12 ])
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "composite size"; "weak"; "strong*"; "strong+cert"; "optimal";
           "optimal/strong*" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-VALID                                                              *)
(* ------------------------------------------------------------------ *)

let e_valid () =
  section "E-VALID"
    "§2.1: the Prop 2.1 validator is polynomial; directly applying Def 2.1 \
     by path enumeration is exponential";
  (* Small sizes: naive path enumeration explodes quickly. *)
  let naive_rows =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Layered ~seed:1 ~size in
        let view = Views.build ~seed:1 (Views.Topological_bands 5) spec in
        let validator_t = time_per_run (fun () -> S.validate view) in
        let naive_result, naive_t =
          Render.time (fun () -> S.naive_preserves_paths ~fuel:20_000_000 view)
        in
        [ string_of_int size;
          fmt_s validator_t;
          (match naive_result with
           | Some _ -> fmt_s naive_t
           | None -> Printf.sprintf ">%s (fuel exhausted)" (fmt_s naive_t)) ])
      (sm [ 10; 20; 30; 40; 60; 80 ] [ 10; 20 ])
  in
  print_endline
    (Table.render
       ~align:[ Table.Right; Table.Right; Table.Right ]
       ~header:[ "workflow size"; "validator (Prop 2.1)"; "naive Def 2.1" ]
       naive_rows);
  (* Large sizes: the validator scales. *)
  let big_rows =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Layered ~seed:2 ~size in
        let view = Views.build ~seed:2 (Views.Topological_bands 5) spec in
        let t = time_per_run (fun () -> S.validate view) in
        [ string_of_int size; string_of_int (View.n_composites view); fmt_s t ])
      (sm [ 100; 250; 500; 1000; 2000 ] [ 100 ])
  in
  print_endline "";
  print_endline
    (Table.render
       ~align:[ Table.Right; Table.Right; Table.Right ]
       ~header:[ "workflow size"; "composites"; "validator time" ]
       big_rows)

(* ------------------------------------------------------------------ *)
(* E-PROV                                                               *)
(* ------------------------------------------------------------------ *)

let e_prov () =
  section "E-PROV"
    "§1: unsound views cause incorrect provenance analysis; corrected views \
     answer every provenance query exactly";
  let corpus =
    Views.unsound_corpus ~seed:11 ~families:Gen.all_families
      ~sizes:(sm [ 20; 40 ] [ 20 ])
      ~per_cell:(sm 5 1)
  in
  let evaluate (spec, view) =
    ignore spec;
    let stats = P.evaluate_view view in
    (stats, S.is_sound view)
  in
  let before = List.map evaluate corpus in
  let after =
    List.map
      (fun (spec, view) ->
        ignore spec;
        let corrected, _ = C.correct C.Strong view in
        evaluate (spec, corrected))
      corpus
  in
  let summarise tag results =
    let unsound = List.length (List.filter (fun (_, sound) -> not sound) results) in
    let rates = List.map (fun (s, _) -> P.spurious_rate s) results in
    let with_spurious =
      List.length (List.filter (fun (s, _) -> s.P.spurious > 0) results)
    in
    [ tag;
      Printf.sprintf "%d/%d" unsound (List.length results);
      Printf.sprintf "%d/%d" with_spurious (List.length results);
      Printf.sprintf "%.2f%%" (100.0 *. mean rates) ]
  in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:
         [ "corpus"; "unsound views"; "views w/ spurious answers";
           "mean spurious rate" ]
       [ summarise "as designed" before; summarise "after correction" after ])

(* ------------------------------------------------------------------ *)
(* E-SPEED                                                              *)
(* ------------------------------------------------------------------ *)

let e_speed () =
  section "E-SPEED"
    "\xc2\xa71: provenance analysis at the view level is more efficient than at \
     the workflow level (smaller graphs, smaller transitive closures)";
  (* Sound-by-construction compressive views over pipeline workflows: the
     setting the paper motivates (analyse provenance on the view, correctly). *)
  let rows =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Pipeline ~seed:5 ~size in
        let view = Views.build ~seed:5 (Views.Sound_groups 10) spec in
        assert (S.is_sound view);
        let build_wf =
          time_per_run ~budget:0.05 (fun () ->
              Reach.compute (Spec.graph spec))
        in
        let build_view =
          time_per_run ~budget:0.05 (fun () ->
              Reach.compute (View.view_graph view))
        in
        let wf_closure = Reach.n_closure_edges (Spec.reach spec) in
        let view_closure = Reach.n_closure_edges (View.view_reach view) in
        let task = Spec.n_tasks spec - 1 in
        let wf_q =
          time_per_run ~budget:0.02 (fun () -> P.task_ancestors spec task)
        in
        let view_q =
          time_per_run ~budget:0.02 (fun () ->
              P.composite_ancestors view (View.composite_of_task view task))
        in
        [ string_of_int size;
          string_of_int (View.n_composites view);
          string_of_int wf_closure;
          string_of_int view_closure;
          fmt_s build_wf;
          fmt_s build_view;
          fmt_s wf_q;
          fmt_s view_q;
          Printf.sprintf "%.1fx" (wf_q /. view_q) ])
      (sm [ 100; 250; 500; 1000; 2000; 3000 ] [ 100; 250 ])
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:
         [ "tasks"; "composites"; "wf closure"; "view closure"; "wf TC build";
           "view TC build"; "wf query"; "view query"; "query speedup" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-EST                                                                *)
(* ------------------------------------------------------------------ *)

let e_est () =
  section "E-EST"
    "§3.2: WOLVES estimates correction time and quality from past runs \
     grouped by size and substructure";
  let history = E.create () in
  let rng = Prng.create 313 in
  let run_one seed =
    let family = Prng.pick rng Gen.all_families in
    let k = 6 + Prng.int rng 8 in
    let spec, members =
      if seed mod 3 = 0 then
        H.blocks_instance ~blocks:(1 + (seed mod 2)) ~chains:(1 + (seed mod 3))
      else random_instance family ~seed ~size:(3 * k) ~k
    in
    let features = E.features_of spec members in
    let per_criterion =
      List.map
        (fun criterion ->
          let outcome, elapsed =
            Render.time (fun () -> C.split_subset criterion spec members)
          in
          let optimal = C.split_subset C.Optimal spec members in
          let quality =
            Q.ratio
              ~optimal_parts:(List.length optimal.C.parts)
              ~parts:(List.length outcome.C.parts)
          in
          (criterion, elapsed, quality))
        [ C.Weak; C.Strong ]
    in
    (features, per_criterion)
  in
  (* Train on 300 corrections. *)
  for seed = 1 to sm 300 30 do
    let features, runs = run_one seed in
    List.iter
      (fun (criterion, elapsed, quality) ->
        E.record history features criterion ~runtime:elapsed ~quality)
      runs
  done;
  (* Evaluate predictions on 100 fresh corrections. *)
  let q_errors = ref [] in
  let t_log_errors = ref [] in
  let covered = ref 0 and total = ref 0 in
  for seed = 1001 to sm 1100 1010 do
    let features, runs = run_one seed in
    List.iter
      (fun (criterion, elapsed, quality) ->
        incr total;
        let est = E.estimate history features criterion in
        match (est.E.expected_runtime, est.E.expected_quality) with
        | Some rt, Some q ->
          incr covered;
          q_errors := abs_float (q -. quality) :: !q_errors;
          t_log_errors :=
            abs_float (log10 ((rt +. 1e-9) /. (elapsed +. 1e-9)))
            :: !t_log_errors
        | _ -> ())
      runs
  done;
  Printf.printf "history: %d recorded corrections\n" (E.n_records history);
  Printf.printf "coverage: %d/%d fresh corrections had a matching group\n"
    !covered !total;
  Printf.printf "mean |quality error|: %.3f (quality scale 0..1)\n"
    (mean !q_errors);
  Printf.printf
    "mean |log10(predicted/actual runtime)|: %.2f (0 = exact, 1 = 10x off)\n"
    (mean !t_log_errors);
  List.iter
    (fun criterion ->
      match E.fit_runtime history criterion with
      | Some fit ->
        Format.printf "fitted scaling law for %a: %a@." C.pp_criterion criterion
          E.pp_fit fit
      | None -> ())
    [ C.Weak; C.Strong ]

(* ------------------------------------------------------------------ *)
(* E-AUDIT                                                              *)
(* ------------------------------------------------------------------ *)

let e_audit () =
  section "E-AUDIT"
    "§1: a survey of a curated repository reveals unsound views (synthetic \
     corpus standing in for Kepler / myExperiment)";
  let repo =
    R.synthesize ~seed:2009 ~per_cell:(sm 10 2) ~sizes:(sm [ 16; 32 ] [ 16 ]) ()
  in
  let audit = R.audit repo in
  Format.printf "%a@." R.pp_audit audit

(* ------------------------------------------------------------------ *)
(* E-INC: ablation — incremental session validation vs full revalidation *)
(* ------------------------------------------------------------------ *)

let e_inc () =
  section "E-INC (ablation)"
    "demo: validating while the user edits the view; incremental per-\
     composite caching vs re-validating the whole view after every edit";
  let module Session = Wolves_core.Session in
  let rows =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Layered ~seed:13 ~size in
        let view = Views.build ~seed:13 (Views.Connected_groups 5) spec in
        let edits = sm 200 50 in
        let rng0 = Prng.create 99 in
        let moves =
          List.init edits (fun _ -> Prng.int rng0 size)
        in
        (* Incremental: one session, move + query unsound after each edit. *)
        let _, inc_t =
          Render.time (fun () ->
              let s = Session.start view in
              List.iter
                (fun task ->
                  let names = Session.composite_names s in
                  let target = List.nth names (task mod List.length names) in
                  (match Session.move_task s task ~into:target with
                   | Ok () | Error _ -> ());
                  ignore (Session.unsound s))
                moves)
        in
        let s_stats = Session.start view in
        let checks_inc =
          let s = s_stats in
          List.iter
            (fun task ->
              let names = Session.composite_names s in
              let target = List.nth names (task mod List.length names) in
              (match Session.move_task s task ~into:target with
               | Ok () | Error _ -> ());
              ignore (Session.unsound s))
            moves;
          Session.checks_performed s
        in
        (* Full: rebuild + validate the whole view after each edit. *)
        let _, full_t =
          Render.time (fun () ->
              let s = Session.start view in
              List.iter
                (fun task ->
                  let names = Session.composite_names s in
                  let target = List.nth names (task mod List.length names) in
                  (match Session.move_task s task ~into:target with
                   | Ok () | Error _ -> ());
                  ignore (S.validate (Session.current_view s)))
                moves)
        in
        Report.kv
          (Printf.sprintf "size_%d" size)
          (Json.Obj
             [ ("edits", Json.Int edits);
               ("incremental_checks", Json.Int checks_inc);
               ("incremental_s", Json.Float inc_t);
               ("full_s", Json.Float full_t) ]);
        [ string_of_int size;
          string_of_int edits;
          string_of_int checks_inc;
          fmt_s inc_t;
          fmt_s full_t;
          Printf.sprintf "%.1fx" (full_t /. inc_t) ])
      (sm [ 50; 100; 200; 400 ] [ 50 ])
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "tasks"; "edits"; "incremental checks"; "incremental"; "full";
           "speedup" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-INDEX: ablation — reachability index strategies                    *)
(* ------------------------------------------------------------------ *)

let e_index () =
  section "E-INDEX (ablation)"
    "graph management: bitset transitive closure vs chain-decomposition \
     index vs per-query BFS, across workflow shapes";
  let module Chains = Wolves_graph.Chains in
  let module Interval = Wolves_graph.Interval in
  let module Algo = Wolves_graph.Algo in
  let n = sm 1000 200 in
  let shapes =
    [ (Printf.sprintf "pipeline-%d" n, Gen.generate Gen.Pipeline ~seed:7 ~size:n);
      (Printf.sprintf "layered-%d" n, Gen.generate Gen.Layered ~seed:7 ~size:n);
      ( Printf.sprintf "narrow-layered-%d" (3 * (n / 3)),
        Gen.layered ~seed:7 ~layers:(n / 3) ~width:3 ~fanout:1.0 );
      ( Printf.sprintf "series-parallel-%d" n,
        Gen.generate Gen.Series_parallel ~seed:7 ~size:n ) ]
  in
  let rows =
    List.map
      (fun (name, spec) ->
        let g = Spec.graph spec in
        let n = Spec.n_tasks spec in
        let closure_build = time_per_run ~budget:0.1 (fun () -> Reach.compute g) in
        let chains_build = time_per_run ~budget:0.1 (fun () -> Chains.compute g) in
        let interval_build =
          time_per_run ~budget:0.1 (fun () -> Interval.compute g)
        in
        let closure = Reach.compute g in
        let chains = Chains.compute g in
        let interval = Interval.compute g in
        let rng = Prng.create 5 in
        let queries =
          Array.init 512 (fun _ -> (Prng.int rng n, Prng.int rng n))
        in
        let run_queries f =
          time_per_run ~budget:0.05 (fun () ->
              Array.iter (fun (u, v) -> ignore (f u v)) queries)
        in
        let closure_q = run_queries (Reach.reaches closure) in
        let chains_q = run_queries (Chains.reaches chains) in
        let interval_q = run_queries (Interval.reaches interval) in
        let bfs_q =
          run_queries (fun u v ->
              Wolves_graph.Bitset.mem (Algo.reachable_from g [ u ]) v)
        in
        let closure_words = n * ((n + 62) / 63) in
        [ name;
          string_of_int closure_words;
          Printf.sprintf "%d (k=%d)" (Chains.index_words chains)
            (Chains.n_chains chains);
          Printf.sprintf "%d (max %d/node)"
            (2 * Interval.n_intervals interval)
            (Interval.max_intervals_per_node interval);
          fmt_s closure_build;
          fmt_s chains_build;
          fmt_s interval_build;
          fmt_s (closure_q /. 512.);
          fmt_s (chains_q /. 512.);
          fmt_s (interval_q /. 512.);
          fmt_s (bfs_q /. 512.) ])
      shapes
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "graph"; "closure words"; "chain words"; "interval words";
           "closure build"; "chains build"; "interval build"; "closure q";
           "chains q"; "interval q"; "BFS q" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-BB: ablation — anytime branch-and-bound beyond the DP limit        *)
(* ------------------------------------------------------------------ *)

let e_bb () =
  section "E-BB (ablation)"
    "exact correction beyond the subset-DP limit: anytime branch-and-bound \
     seeded with the strong corrector's split";
  let rows =
    List.map
      (fun (blocks, chains) ->
        let spec, members = H.blocks_instance ~blocks ~chains in
        let n = List.length members in
        let strong =
          C.split_subset C.Strong spec members
        in
        let (outcome, proven), elapsed =
          Render.time (fun () ->
              C.split_subset_anytime ~node_budget:(sm 2_000_000 100_000) spec
                members)
        in
        [ Printf.sprintf "blocks(%d,%d)" blocks chains;
          string_of_int n;
          string_of_int (List.length strong.C.parts);
          string_of_int (List.length outcome.C.parts);
          (if proven then "yes" else "no");
          fmt_s elapsed ])
      (sm [ (2, 2); (3, 2); (3, 4); (4, 4); (5, 4) ] [ (2, 2); (3, 2) ])
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "instance"; "tasks"; "strong parts"; "B&B parts"; "proven minimum";
           "time" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-MIXED: ablation — split-only vs merge-only vs mixed resolution     *)
(* ------------------------------------------------------------------ *)

let e_mixed () =
  section "E-MIXED (ablation)"
    "the paper's open problem: interaction of splitting and merging; the \
     mixed resolver picks the cheaper repair per composite";
  let corpus =
    Views.unsound_corpus ~seed:23 ~families:Gen.all_families ~sizes:[ 24 ]
      ~per_cell:(sm 5 1)
  in
  let stats =
    List.map
      (fun (_, view) ->
        let before = View.n_composites view in
        let split_view, _ = C.correct C.Strong view in
        let mixed_view, decisions = C.resolve_auto view in
        let merges =
          List.length
            (List.filter
               (fun d -> match d.C.action with `Merge _ -> true | `Split _ -> false)
               decisions)
        in
        ( before,
          View.n_composites split_view,
          View.n_composites mixed_view,
          merges ))
      corpus
  in
  let total f = List.fold_left (fun acc x -> acc + f x) 0 stats in
  Printf.printf "views: %d; composites before: %d\n" (List.length stats)
    (total (fun (b, _, _, _) -> b));
  Printf.printf "after split-only  correction: %d composites\n"
    (total (fun (_, s, _, _) -> s));
  Printf.printf "after mixed       resolution: %d composites (%d merge decisions)\n"
    (total (fun (_, _, m, _) -> m))
    (total (fun (_, _, _, g) -> g));
  Printf.printf
    "mixed resolution trades detail for compactness where splitting would \
     fragment the view\n"

(* ------------------------------------------------------------------ *)
(* E-SUGGEST: ablation — automatic sound view construction               *)
(* ------------------------------------------------------------------ *)

let e_suggest () =
  section "E-SUGGEST (ablation)"
    "automatic view construction (the role of [2] in the paper): sound-by-\
     design groupings vs the corpus policies that need correction";
  let module Suggest = Wolves_core.Suggest in
  let rows = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun size ->
          let spec = Gen.generate family ~seed:17 ~size in
          let greedy, greedy_t =
            Render.time (fun () -> Suggest.greedy_sound_groups spec ~max_size:8)
          in
          let banded, banded_t =
            Render.time (fun () -> Suggest.optimal_sound_banding spec ~max_size:8)
          in
          let bands = Views.build ~seed:17 (Views.Topological_bands 8) spec in
          let bands_unsound =
            List.length
              (Wolves_core.Soundness.validate bands).Wolves_core.Soundness.unsound
          in
          rows :=
            [ Printf.sprintf "%s-%d" (Gen.family_name family) size;
              Printf.sprintf "%.1fx (%s)"
                (float_of_int size /. float_of_int (List.length greedy))
                (fmt_s greedy_t);
              Printf.sprintf "%.1fx (%s)"
                (float_of_int size /. float_of_int (List.length banded))
                (fmt_s banded_t);
              Printf.sprintf "%.1fx / %d unsound"
                (View.compression bands) bands_unsound ]
            :: !rows)
        (sm [ 100; 400 ] [ 100 ]))
    Gen.all_families;
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:
         [ "workflow"; "greedy sound (compression)";
           "optimal banding (compression)"; "naive bands (for contrast)" ]
       (List.rev !rows));
  print_endline
    "greedy/banding views are sound by construction; naive topological bands\n\
     reach similar compression but are mostly unsound and must be corrected"

(* ------------------------------------------------------------------ *)
(* E-SCHED: ablation — engine scheduling policies                       *)
(* ------------------------------------------------------------------ *)

let e_sched () =
  section "E-SCHED (ablation)"
    "execution-engine substrate: ready-queue policies vs makespan on \
     limited workers (critical path = lower bound)";
  let module Engine = Wolves_engine.Engine in
  let rows =
    List.concat_map
      (fun (family, size) ->
        List.map
          (fun workers ->
            let spec = Gen.generate family ~seed:21 ~size in
            let base policy =
              { Engine.default_config with
                Engine.workers;
                duration = (fun t -> 1.0 +. float_of_int (t mod 7));
                policy }
            in
            let makespan policy =
              (Engine.run ~config:(base policy) spec).Engine.makespan
            in
            let fifo = makespan Engine.Fifo in
            let cpf = makespan Engine.Critical_path_first in
            let sf = makespan Engine.Shortest_first in
            [ Printf.sprintf "%s-%d" (Gen.family_name family) size;
              string_of_int workers;
              Printf.sprintf "%.0f" (Engine.critical_path_length (base Engine.Fifo) spec);
              Printf.sprintf "%.0f" fifo;
              Printf.sprintf "%.0f" cpf;
              Printf.sprintf "%.0f" sf ])
          (sm [ 2; 4; 8 ] [ 2; 4 ]))
      (sm
         [ (Gen.Layered, 120); (Gen.Erdos_renyi, 120) ]
         [ (Gen.Layered, 60) ])
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:
         [ "workflow"; "workers"; "critical path"; "fifo"; "cp-first";
           "shortest-first" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-TEMPLATES: the realistic corpus — canonical scientific workflows    *)
(* ------------------------------------------------------------------ *)

let e_templates () =
  section "E-TEMPLATES"
    "\xc2\xa71 on real shapes: natural per-stage views of canonical scientific \
     workflows (Pegasus suite) are unsound and corrupt provenance; WOLVES \
     repairs them";
  let module T = Wolves_workload.Templates in
  let rows =
    List.concat_map
      (fun suite ->
        List.map
          (fun scale ->
            let spec = T.generate suite ~scale in
            let view = T.natural_view suite spec in
            let report = S.validate view in
            let stats = P.evaluate_view_items view in
            let (corrected, _), elapsed =
              Render.time (fun () -> C.correct C.Strong view)
            in
            let stats' = P.evaluate_view_items corrected in
            [ Printf.sprintf "%s-%d" (T.suite_name suite) scale;
              string_of_int (Spec.n_tasks spec);
              Printf.sprintf "%d/%d"
                (List.length report.S.unsound)
                (View.n_composites view);
              Printf.sprintf "%.1f%%" (100.0 *. P.spurious_rate stats);
              string_of_int (View.n_composites corrected);
              Printf.sprintf "%.1f%%" (100.0 *. P.spurious_rate stats');
              fmt_s elapsed ])
          (sm [ 8; 32 ] [ 4 ]))
      T.all_suites
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right ]
       ~header:
         [ "workflow"; "tasks"; "unsound stages"; "spurious before";
           "composites after"; "spurious after"; "correction time" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E-FAULT: fault-tolerant execution — exact provenance under           *)
(* crashes+retries, checkpoint/resume work savings, deadline-degrading  *)
(* correction.                                                          *)
(* ------------------------------------------------------------------ *)

let e_fault () =
  section "E-FAULT"
    "robustness: influence queries on the provenance store stay exact under \
     crashes+retries; resume re-executes only the affected subgraph; the \
     corrector degrades optimal → strong → weak under a deadline";
  let module Engine = Wolves_engine.Engine in
  let module Store = Wolves_provenance.Store in

  (* --- (a) influence-query exactness under failure injection ---------
     Ground truth for "x influenced y in run r": salt x and replay the run
     with the same seed — crash draws are salt-independent, so the replay
     has the identical failure pattern, and y was influenced iff its output
     value changed. The store's claim is path-reachability through the
     tasks that succeeded in r. The two must agree exactly: the engine's
     succeeded set is ancestor-closed, so a succeeded path is precisely a
     flow of (changed) values. *)
  let size = sm 30 16 in
  let seeds_per_rate = sm 6 2 in
  let spec = Gen.generate Gen.Layered ~seed:42 ~size in
  let tasks = Spec.tasks spec in
  let config ?(salts = []) seed failure_rate =
    { Engine.default_config with
      Engine.workers = 4;
      failure_rate;
      seed;
      salts;
      policy = Engine.Critical_path_first;
      retries = 2;
      backoff = 0.5 }
  in
  let rates = sm [ 0.05; 0.1; 0.2; 0.35; 0.5 ] [ 0.05; 0.2 ] in
  let exact_at_02 = ref None in
  let rows_a =
    List.map
      (fun rate ->
        let store = Store.create spec in
        let runs =
          List.map
            (fun seed ->
              let trace = Engine.run ~config:(config seed rate) spec in
              match Store.record_run store (Engine.statuses trace) with
              | Ok id -> (seed, id, trace)
              | Error msg -> failwith msg)
            (List.init seeds_per_rate (fun i -> 1001 + i))
        in
        let crashed_attempts =
          List.fold_left
            (fun acc (_, _, trace) ->
              acc
              + List.length
                  (List.filter
                     (fun e -> e.Engine.outcome = Engine.Crashed)
                     trace.Engine.events))
            0 runs
        in
        let recovered =
          List.fold_left
            (fun acc (_, _, trace) ->
              acc
              + List.length
                  (List.filter
                     (fun t ->
                       Engine.n_attempts trace t > 1
                       && Engine.output_value trace t <> None)
                     tasks))
            0 runs
        in
        (* Salted replays, one per (source task, run). *)
        let salted =
          List.map
            (fun x ->
              ( x,
                List.map
                  (fun (seed, id, trace) ->
                    let t' =
                      Engine.run
                        ~config:(config ~salts:[ (x, 4242) ] seed rate)
                        spec
                    in
                    (id, trace, t'))
                  runs ))
            tasks
        in
        let queries = ref 0 and spurious = ref 0 and missing = ref 0 in
        List.iter
          (fun (x, replays) ->
            List.iter
              (fun y ->
                if x <> y then begin
                  let influenced = Store.runs_where_influences store x y in
                  List.iter
                    (fun (id, base, replay) ->
                      incr queries;
                      let claimed = List.mem id influenced in
                      let truth =
                        match
                          ( Engine.output_value base y,
                            Engine.output_value replay y )
                        with
                        | Some a, Some b -> a <> b
                        | _ -> false
                      in
                      if claimed && not truth then incr spurious;
                      if truth && not claimed then incr missing)
                    replays
                end)
              tasks)
          salted;
        if rate = 0.2 then exact_at_02 := Some (!spurious, !missing);
        Report.kv
          (Printf.sprintf "exactness_rate_%.2f" rate)
          (Json.Obj
             [ ("queries", Json.Int !queries);
               ("spurious", Json.Int !spurious);
               ("missing", Json.Int !missing) ]);
        [ Printf.sprintf "%.2f" rate;
          string_of_int (List.length runs);
          string_of_int crashed_attempts;
          string_of_int recovered;
          string_of_int !queries;
          string_of_int !spurious;
          string_of_int !missing ])
      rates
  in
  Printf.printf
    "influence queries vs salted-replay ground truth (%d tasks, retries 2):\n"
    size;
  print_endline
    (Table.render
       ~align:
         [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right ]
       ~header:
         [ "failure rate"; "runs"; "crashed attempts"; "tasks recovered";
           "queries"; "spurious"; "missing" ]
       rows_a);
  (match !exact_at_02 with
   | Some (s, m) ->
     Printf.printf
       "at failure rate 0.20 with retries: %d spurious, %d missing \
        (claim: 0, 0)\n"
       s m
   | None -> ());

  (* --- (b) checkpoint/resume: only the crash cone re-executes -------- *)
  let rsize = sm 40 20 in
  let rspec = Gen.generate Gen.Layered ~seed:7 ~size:rsize in
  let duration t = 1.0 +. float_of_int (t mod 3) in
  let rconfig ?(failure_rate = 0.0) seed =
    { Engine.default_config with
      Engine.workers = 4;
      duration;
      failure_rate;
      seed;
      policy = Engine.Critical_path_first }
  in
  (* A single injected crash (no retries), whose cone is less than half the
     workload. *)
  let n = Spec.n_tasks rspec in
  let reach = Spec.reach rspec in
  let pick =
    let rec go seed =
      if seed > 5000 then failwith "E-FAULT: no single-crash seed found"
      else begin
        let trace = Engine.run ~config:(rconfig ~failure_rate:0.05 seed) rspec in
        let crashed =
          List.filter
            (fun t -> Engine.outcome_of trace t = Engine.Crashed)
            (Spec.tasks rspec)
        in
        match crashed with
        | [ c ] when Bitset.cardinal (Reach.descendants reach c) * 2 < n ->
          (seed, trace, c)
        | _ -> go (seed + 1)
      end
    in
    go 1
  in
  let seed, prior, crashed_task = pick in
  let resumed = Engine.resume ~config:(rconfig seed) prior in
  let fresh = Engine.run ~config:(rconfig seed) rspec in
  let identical =
    List.for_all
      (fun t -> Engine.output_value resumed t = Engine.output_value fresh t)
      (Spec.tasks rspec)
  in
  let reexecuted = List.length (Engine.executed_tasks resumed) in
  let frac = float_of_int reexecuted /. float_of_int n in
  let full_work = Engine.total_work (rconfig seed) rspec in
  let work_saved = 1.0 -. (resumed.Engine.busy_time /. full_work) in
  Printf.printf
    "\nresume after one crash (%d tasks, seed %d, crash at %S, cone %d):\n"
    n seed
    (Spec.task_name rspec crashed_task)
    (Bitset.cardinal (Reach.descendants reach crashed_task));
  Printf.printf
    "  re-executed %d/%d tasks (%.0f%%), work %.1f of %.1f simulated s \
     (saved %.0f%%)\n"
    reexecuted n (100.0 *. frac) resumed.Engine.busy_time full_work
    (100.0 *. work_saved);
  Printf.printf "  outputs identical to a fresh zero-failure run: %b\n"
    identical;
  Report.kv "resume_reexec_fraction" (Json.Float frac);
  Report.kv "resume_work_saved_fraction" (Json.Float work_saved);
  Report.kv "resume_outputs_identical" (Json.Bool identical);

  (* --- (c) deadline-degrading correction on the Fig. 3 gadget -------- *)
  let fspec, fview = Examples.figure3 () in
  let fmembers = View.members fview (Examples.figure3_composite fview) in
  let budget_rows =
    List.map
      (fun (label, budget, node_budget) ->
        let o =
          C.with_deadline ?node_budget ~deadline_s:budget fspec fmembers
        in
        if label = "1 ms" then
          Report.kv "deadline_1ms_tier"
            (Json.String (Format.asprintf "%a" C.pp_criterion o.C.tier));
        [ label;
          Format.asprintf "%a" C.pp_criterion o.C.tier;
          string_of_int (List.length o.C.result.C.parts);
          string_of_int o.C.result.C.checks;
          fmt_s o.C.elapsed_s;
          (match o.C.abandoned with
           | None -> "-"
           | Some c -> Format.asprintf "%a" C.pp_criterion c);
          (if o.C.proven_optimal then "yes" else "no") ])
      [ ("1 ms", 0.001, None);
        ("10 ms", 0.01, None);
        ("1 s (bb cut at 50 nodes)", 1.0, Some 50);
        ("1 s", 1.0, None) ]
  in
  Printf.printf
    "\ndeadline-degrading correction of the Fig. 3 gadget (weak needs 77 \
     checks, strong 124; budget = max(wall, checks x 100us)):\n";
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
           Table.Left; Table.Left ]
       ~header:
         [ "budget"; "tier"; "parts"; "checks"; "elapsed"; "abandoned";
           "proven min" ]
       budget_rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment kernel.      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let fig1_spec, fig1_view = Examples.figure1 () in
  ignore fig1_spec;
  let fig3_spec, fig3_view = Examples.figure3 () in
  let fig3_members = View.members fig3_view (Examples.figure3_composite fig3_view) in
  let blocks_spec, blocks_members = H.blocks_instance ~blocks:2 ~chains:2 in
  let valid_spec = Gen.generate Gen.Layered ~seed:2 ~size:500 in
  let valid_view = Views.build ~seed:2 (Views.Topological_bands 5) valid_spec in
  let prov_spec = Gen.generate Gen.Layered ~seed:5 ~size:500 in
  let prov_view = Views.build ~seed:5 (Views.Topological_bands 10) prov_spec in
  let prov_task = Spec.n_tasks prov_spec - 1 in
  [ Test.make ~name:"E-FIG1/validate"
      (Staged.stage (fun () -> Wolves_core.Soundness.validate fig1_view));
    Test.make ~name:"E-FIG3/weak"
      (Staged.stage (fun () -> C.split_subset C.Weak fig3_spec fig3_members));
    Test.make ~name:"E-FIG3/strong"
      (Staged.stage (fun () -> C.split_subset C.Strong fig3_spec fig3_members));
    Test.make ~name:"E-FIG3/optimal"
      (Staged.stage (fun () -> C.split_subset C.Optimal fig3_spec fig3_members));
    Test.make ~name:"E-QUAL+E-TIME/blocks22-weak"
      (Staged.stage (fun () -> C.split_subset C.Weak blocks_spec blocks_members));
    Test.make ~name:"E-QUAL+E-TIME/blocks22-strong"
      (Staged.stage (fun () -> C.split_subset C.Strong blocks_spec blocks_members));
    Test.make ~name:"E-QUAL+E-TIME/blocks22-optimal"
      (Staged.stage (fun () -> C.split_subset C.Optimal blocks_spec blocks_members));
    Test.make ~name:"E-VALID/validator-500"
      (Staged.stage (fun () -> Wolves_core.Soundness.validate valid_view));
    Test.make ~name:"E-SPEED/workflow-query-500"
      (Staged.stage (fun () -> P.task_ancestors prov_spec prov_task));
    Test.make ~name:"E-SPEED/view-query-500"
      (Staged.stage (fun () ->
           P.composite_ancestors prov_view
             (View.composite_of_task prov_view prov_task)));
    Test.make ~name:"E-PROV/evaluate-fig1"
      (Staged.stage (fun () -> P.evaluate_view fig1_view)) ]

let e_bechamel () =
  section "E-MICRO (bechamel)"
    "per-kernel steady-state timings (OLS on monotonic clock)";
  Report.kv "domains" (Json.Int (Par.default_domains ()));
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (sm 0.25 0.02))
      ~kde:(Some 1000) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        (* Each Test.make above is a single-elt test; analyze its one cell. *)
        let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
        let analysed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name result acc ->
            let estimate =
              match Analyze.OLS.estimates result with
              | Some [ est ] -> Printf.sprintf "%.1fns" est
              | Some ests ->
                String.concat "," (List.map (Printf.sprintf "%.1f") ests)
              | None -> "-"
            in
            [ name; estimate ] :: acc)
          analysed [])
      (bechamel_tests ())
    |> List.concat
  in
  print_endline
    (Table.render ~align:[ Table.Left; Table.Right ]
       ~header:[ "kernel"; "time/run" ] (List.sort compare rows))

(* ------------------------------------------------------------------ *)
(* E-LINT: lint throughput and autofix convergence                      *)
(* ------------------------------------------------------------------ *)

let e_lint () =
  section "E-LINT"
    "static analysis at scale: the rule-driven linter (Prop 2.1 soundness \
     plus structural/DSL rules) sweeps a generated 500-spec corpus; the \
     autofix fixpoint leaves every view sound";
  let module Lint = Wolves_lint.Lint in
  let module LD = Wolves_lint.Diagnostic in
  let module LFix = Wolves_lint.Fix in
  let module Wfdsl = Wolves_lang.Wfdsl in

  (* 4 families x 5 sizes x 25 seeds = 500 specs (smoke: 4 x 2 x 5 = 40);
     every other view is perturbed toward unsoundness so the Error-severity
     path is exercised as hard as the structural rules. *)
  let sizes = sm [ 20; 40; 80; 120; 200 ] [ 20; 40 ] in
  let seeds = sm 25 5 in
  let corpus =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun size ->
            List.init seeds (fun i ->
                let seed = (size * 131) + i in
                let spec = Gen.generate family ~seed ~size in
                let view =
                  Views.build ~seed (Views.Connected_groups 4) spec
                in
                let view =
                  if i mod 2 = 0 then
                    Views.inject_unsoundness ~seed ~attempts:12 view
                  else view
                in
                (family, view)))
          sizes)
      Gen.all_families
  in
  let n_specs = List.length corpus in
  let n_tasks =
    List.fold_left
      (fun acc (_, v) -> acc + Spec.n_tasks (View.spec v))
      0 corpus
  in

  (* Render to .wf and re-parse with the source map up front, so the timed
     region is pure analysis (all three rule layers) with no I/O. *)
  let parsed =
    List.map
      (fun (family, view) ->
        match Wfdsl.of_string_with_source (Wfdsl.to_string view) with
        | Ok (_, view', source) -> (family, view', Some source)
        | Error _ -> (family, view, None))
      corpus
  in

  let per_family = Hashtbl.create 8 in
  let all = ref [] in
  let _, lint_wall =
    Render.time (fun () ->
        List.iter
          (fun (family, view, source) ->
            let ds = Lint.run ?source view in
            let name = Gen.family_name family in
            let specs, diags =
              Option.value ~default:(0, 0) (Hashtbl.find_opt per_family name)
            in
            Hashtbl.replace per_family name (specs + 1, diags + List.length ds);
            all := ds :: !all)
          parsed)
  in
  let diagnostics = List.concat !all in
  let by_severity s =
    List.length (List.filter (fun d -> d.LD.severity = s) diagnostics)
  in

  (* Autofix on a slice of the corpus: fixpoint must converge with every
     view sound afterwards. *)
  let fix_n = sm 100 20 in
  let fix_applied = ref 0 and fix_sound = ref 0 in
  let _, fix_wall =
    Render.time (fun () ->
        List.iteri
          (fun i (_, view, _) ->
            if i < fix_n then begin
              let fixed, applied = LFix.apply view in
              fix_applied := !fix_applied + List.length applied;
              if S.is_sound fixed then incr fix_sound
            end)
          parsed)
  in

  let specs_per_s = float_of_int n_specs /. lint_wall in
  let tasks_per_s = float_of_int n_tasks /. lint_wall in
  Report.kv "corpus_specs" (Json.Int n_specs);
  Report.kv "corpus_tasks" (Json.Int n_tasks);
  Report.kv "lint_wall_s" (Json.Float lint_wall);
  Report.kv "specs_per_s" (Json.Float specs_per_s);
  Report.kv "tasks_per_s" (Json.Float tasks_per_s);
  Report.kv "diagnostics_total" (Json.Int (List.length diagnostics));
  Report.kv "errors" (Json.Int (by_severity LD.Error));
  Report.kv "warnings" (Json.Int (by_severity LD.Warning));
  Report.kv "hints" (Json.Int (by_severity LD.Hint));
  Report.kv "fix_specs" (Json.Int (min fix_n n_specs));
  Report.kv "fix_wall_s" (Json.Float fix_wall);
  Report.kv "fix_applied" (Json.Int !fix_applied);
  Report.kv "fix_all_sound" (Json.Bool (!fix_sound = min fix_n n_specs));

  let rows =
    Hashtbl.fold
      (fun name (specs, diags) acc -> [ name; string_of_int specs; string_of_int diags ] :: acc)
      per_family []
  in
  print_endline
    (Table.render ~align:[ Table.Left; Table.Right; Table.Right ]
       ~header:[ "family"; "specs"; "diagnostics" ] (List.sort compare rows));
  Printf.printf
    "lint: %d specs (%d tasks) in %s  =  %.0f specs/s, %.0f tasks/s\n"
    n_specs n_tasks (fmt_s lint_wall) specs_per_s tasks_per_s;
  Printf.printf "fix: %d views, %d fixes in %s, all sound: %b\n"
    (min fix_n n_specs) !fix_applied (fmt_s fix_wall)
    (!fix_sound = min fix_n n_specs)

(* ------------------------------------------------------------------ *)
(* E-TRACE: observability overhead — off vs metrics vs event tracing    *)
(* ------------------------------------------------------------------ *)

let e_trace () =
  section "E-TRACE"
    "observability: the same workload with instrumentation off, with metric \
     histograms recording, and with a ring-buffer tracer installed; the \
     off-path must stay a single load-and-branch per probe";
  let module Trace = Wolves_trace.Trace in
  let spec = Gen.generate Gen.Layered ~seed:2 ~size:(sm 500 100) in
  let view = Views.build ~seed:2 (Views.Topological_bands 5) spec in
  let fspec, fview = Examples.figure3 () in
  let fmembers = View.members fview (Examples.figure3_composite fview) in
  (* One validator pass over a 500-task view plus one strong correction:
     both hot paths cross every instrumented probe (timers, spans, args). *)
  let workload () =
    ignore (S.validate view);
    ignore (C.split_subset C.Strong fspec fmembers)
  in
  let budget = sm 0.3 0.05 in
  (* The driver enables metrics around every section; undo that here — the
     three modes ARE the experiment — and restore on the way out. *)
  let was_enabled = Metrics.is_enabled () in
  let restore () = Metrics.set_enabled was_enabled in
  Fun.protect ~finally:restore @@ fun () ->
  Metrics.set_enabled false;
  (* Warm caches and allocator before the first timed mode, so the cold
     start does not land on the baseline and mask the real overheads. *)
  for _ = 1 to 3 do workload () done;
  (* Interleave the three modes round-robin and keep the per-mode minimum:
     timing them back-to-back instead would charge whatever heap growth and
     major-GC settling happens first entirely to one mode (measurably, the
     baseline came out ~15% *slower* than the instrumented modes that ran
     after it). The minimum over interleaved trials is robust to that. *)
  let collector = Trace.create () in
  let trials = 3 in
  let tbudget = budget /. float_of_int trials in
  let best = [| infinity; infinity; infinity |] in
  for _ = 1 to trials do
    Metrics.set_enabled false;
    best.(0) <- Float.min best.(0) (time_per_run ~budget:tbudget workload);
    Metrics.set_enabled true;
    best.(1) <- Float.min best.(1) (time_per_run ~budget:tbudget workload);
    Metrics.set_enabled false;
    best.(2) <-
      Float.min best.(2)
        (Trace.with_tracing collector (fun () ->
             time_per_run ~budget:tbudget workload))
  done;
  let off_t = best.(0) and metrics_t = best.(1) and trace_t = best.(2) in
  let recorded = Trace.length collector + Trace.dropped collector in
  let pct base t = 100.0 *. ((t /. base) -. 1.0) in
  Report.kv "baseline_s" (Json.Float off_t);
  Report.kv "metrics_s" (Json.Float metrics_t);
  Report.kv "metrics_overhead_pct" (Json.Float (pct off_t metrics_t));
  Report.kv "trace_s" (Json.Float trace_t);
  Report.kv "trace_overhead_pct" (Json.Float (pct off_t trace_t));
  Report.kv "trace_events_recorded" (Json.Int recorded);
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right ]
       ~header:[ "mode"; "time/run"; "overhead" ]
       [ [ "off (production default)"; fmt_s off_t; "-" ];
         [ "metrics histograms"; fmt_s metrics_t;
           Printf.sprintf "%+.1f%%" (pct off_t metrics_t) ];
         [ "ring-buffer tracer"; fmt_s trace_t;
           Printf.sprintf "%+.1f%%" (pct off_t trace_t) ] ]);
  Printf.printf "tracer recorded %d events across the timed runs\n" recorded

(* ------------------------------------------------------------------ *)
(* E-PAR                                                                *)
(* ------------------------------------------------------------------ *)

let e_par () =
  section "E-PAR"
    "scaling claim: closure construction and validation parallelise across \
     domains with byte-identical results at every domain count";
  let size = sm 30_000 3_000 in
  let spec = Gen.generate Gen.Layered ~seed:11 ~size in
  let g = Spec.graph spec in
  let view =
    Views.build ~seed:11 (Views.Topological_bands (sm 300 30)) spec
  in
  (* Force the spec's cached closure once so the validator sweep below times
     the composite checks, not a first-query closure build. *)
  ignore (Spec.reach spec);
  Report.kv "cores" (Json.Int (Par.recommended_domains ()));
  Report.kv "size" (Json.Int size);
  let saved = Par.default_domains () in
  Fun.protect ~finally:(fun () -> Par.set_default_domains saved) @@ fun () ->
  let budget = sm 0.5 0.1 in
  let reference = ref None in
  let measurements =
    List.map
      (fun d ->
        Par.set_default_domains d;
        let closure = ref None in
        let closure_t =
          time_per_run ~budget (fun () -> closure := Some (Reach.compute g))
        in
        let report = ref None in
        let validate_t =
          time_per_run ~budget (fun () ->
              report := Some (S.validate ~domains:d view))
        in
        let closure = Option.get !closure and report = Option.get !report in
        let identical =
          match !reference with
          | None ->
            reference := Some (closure, report.S.unsound);
            true
          | Some (c1, u1) ->
            Reach.equal c1 closure && u1 = report.S.unsound
        in
        Report.kv (Printf.sprintf "closure_s_d%d" d) (Json.Float closure_t);
        Report.kv (Printf.sprintf "validate_s_d%d" d) (Json.Float validate_t);
        (d, closure_t, validate_t, identical))
      [ 1; 2; 4; 8 ]
  in
  let base_closure, base_validate =
    match measurements with
    | (_, c, v, _) :: _ -> (c, v)
    | [] -> (0.0, 0.0)
  in
  (match List.rev measurements with
   | (_, c, v, _) :: _ ->
     Report.kv "closure_speedup_max" (Json.Float (base_closure /. c));
     Report.kv "validate_speedup_max" (Json.Float (base_validate /. v))
   | [] -> ());
  print_endline
    (Table.render
       ~align:
         [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Left ]
       ~header:
         [ "domains"; "closure"; "speedup"; "validate"; "speedup";
           "identical" ]
       (List.map
          (fun (d, c, v, identical) ->
            [ string_of_int d;
              fmt_s c;
              Printf.sprintf "%.2fx" (base_closure /. c);
              fmt_s v;
              Printf.sprintf "%.2fx" (base_validate /. v);
              string_of_bool identical ])
          measurements));
  Printf.printf "%d hardware core(s) available to this run\n"
    (Par.recommended_domains ());
  if List.exists (fun (_, _, _, identical) -> not identical) measurements
  then failwith "E-PAR: parallel results diverge from the sequential run"

(* ------------------------------------------------------------------ *)
(* E-STORE                                                              *)
(* ------------------------------------------------------------------ *)

let e_store () =
  section "E-STORE"
    "durability: WAL append throughput, crash-recovery time as the log \
     grows, and a fault-injection sweep where every crash point must \
     recover all acknowledged records";
  let module Wstore = Wolves_storage.Store in
  let module Sio = Wolves_storage.Storage_io in
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  let fresh_dir name =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "wolves_bench_store_%s" name)
    in
    rm_rf dir;
    dir
  in
  let ok = function
    | Ok v -> v
    | Error e -> failwith (Format.asprintf "E-STORE: %a" Wstore.pp_error e)
  in
  let value_bytes = 256 in
  let value i =
    let b = Bytes.create value_bytes in
    let rng = Prng.create (i lxor 0x570E) in
    for j = 0 to value_bytes - 1 do
      Bytes.set b j (Char.chr (32 + Prng.int rng 95))
    done;
    Bytes.to_string b
  in
  let config = { Wstore.default_config with Wstore.segment_bytes = 1 lsl 20 } in
  let ingest ?(sync = false) dir n =
    let store = ok (Wstore.init ~config dir) in
    for i = 0 to n - 1 do
      ok
        (Wstore.append store ~sync Wstore.Workflow
           ~id:(Printf.sprintf "wf-%05d" i) (value i))
    done;
    ok (Wstore.close store)
  in
  (* Append throughput: batched (fsync on close) vs synced every record. *)
  let n_batch = sm 20_000 2_000 in
  let dir = fresh_dir "ingest" in
  let (), batch_t = Render.time (fun () -> ingest dir n_batch) in
  rm_rf dir;
  let n_sync = sm 2_000 200 in
  let dir = fresh_dir "ingest_sync" in
  let (), sync_t = Render.time (fun () -> ingest ~sync:true dir n_sync) in
  rm_rf dir;
  let rate n t = float_of_int n /. Float.max t 1e-9 in
  let mb n t =
    float_of_int (n * (value_bytes + 27)) /. 1e6 /. Float.max t 1e-9
  in
  Report.kv "ingest_records" (Json.Int n_batch);
  Report.kv "ingest_records_per_s" (Json.Float (rate n_batch batch_t));
  Report.kv "ingest_synced_records_per_s" (Json.Float (rate n_sync sync_t));
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "mode"; "records"; "records/s"; "MB/s" ]
       [ [ "batched (sync on close)"; string_of_int n_batch;
           Printf.sprintf "%.0f" (rate n_batch batch_t);
           Printf.sprintf "%.1f" (mb n_batch batch_t) ];
         [ "synced every append"; string_of_int n_sync;
           Printf.sprintf "%.0f" (rate n_sync sync_t);
           Printf.sprintf "%.1f" (mb n_sync sync_t) ] ]);
  (* Recovery time vs log size: tear the tail of the biggest segment so
     every reopen scans, truncates, and rewrites the catalog. *)
  let recovery_rows =
    List.map
      (fun n ->
        let dir = fresh_dir (Printf.sprintf "recover_%d" n) in
        ingest dir n;
        let seg =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".seg")
          |> List.map (fun f -> Filename.concat dir f)
          |> List.sort (fun a b ->
                 compare (Unix.stat b).Unix.st_size (Unix.stat a).Unix.st_size)
          |> List.hd
        in
        Unix.truncate seg ((Unix.stat seg).Unix.st_size - 13);
        let (store, recovery), t = Render.time (fun () -> ok (Wstore.open_ dir)) in
        let stats = Wstore.stats store in
        ok (Wstore.close store);
        rm_rf dir;
        Report.kv
          (Printf.sprintf "recovery_s_%d" n)
          (Json.Float t);
        [ string_of_int n;
          Printf.sprintf "%.1f" (float_of_int stats.Wstore.n_bytes /. 1e6);
          string_of_int (List.length recovery.Wstore.truncations);
          fmt_s t ])
      (sm [ 2_000; 8_000; 32_000 ] [ 500; 2_000 ])
  in
  print_endline
    (Table.render
       ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "records"; "MB"; "truncations"; "recovery" ]
       recovery_rows);
  (* Fault-injection sweep: crash at (a sample of) every mutating operation
     of an ingest; each reopen must recover every acknowledged record. *)
  let n_crash = sm 60 20 in
  let faulty_ingest dir plan =
    let io, injector = Sio.faulty plan Sio.system in
    let acked = ref 0 in
    (try
       let store = ok (Wstore.init ~io ~config dir) in
       for i = 0 to n_crash - 1 do
         ok
           (Wstore.append store ~sync:true Wstore.Workflow
              ~id:(Printf.sprintf "wf-%05d" i) (value i));
         incr acked
       done;
       ok (Wstore.close store)
     with Sio.Crashed _ -> ());
    (!acked, injector)
  in
  let dir = fresh_dir "crash_probe" in
  let _, probe = faulty_ingest dir (Sio.Crash_after_ops max_int) in
  rm_rf dir;
  let total_ops = probe.Sio.ops_seen in
  let step = sm 1 (max 1 (total_ops / 25)) in
  let points = ref 0 in
  let op = ref 0 in
  let (), sweep_t =
    Render.time (fun () ->
        while !op < total_ops do
          let dir = fresh_dir "crash" in
          let acked, _ = faulty_ingest dir (Sio.Crash_after_ops !op) in
          (match Wstore.open_ dir with
           | Error e ->
             if acked > 0 then
               failwith
                 (Format.asprintf "E-STORE: crash at op %d unrecoverable: %a"
                    !op Wstore.pp_error e)
           | Ok (store, _) ->
             let recovered = List.length (ok (Wstore.records store)) in
             ok (Wstore.close store);
             if recovered < acked then
               failwith
                 (Printf.sprintf
                    "E-STORE: crash at op %d lost records (%d acked, %d \
                     recovered)"
                    !op acked recovered));
          rm_rf dir;
          incr points;
          op := !op + step
        done)
  in
  Report.kv "crash_points" (Json.Int !points);
  Report.kv "crash_total_ops" (Json.Int total_ops);
  Printf.printf
    "crash matrix: %d crash points (of %d mutating ops, step %d) — every \
     acknowledged record recovered, in %s\n"
    !points total_ops step (fmt_s sweep_t)

(* ------------------------------------------------------------------ *)
(* E-ANALYZE                                                            *)
(* ------------------------------------------------------------------ *)

(* Rebuild [spec] with deterministic, consistent, deliberately partial
   dependency annotations: roughly half the interior tasks get entries for
   all but one output (so inference has completions to do), each entry
   drawn from the task's real producers with one input sometimes dropped
   (so dead data shows up too). *)
let sprinkle_annotations ~seed spec =
  let rng = Prng.create (seed lxor 0xA11075) in
  let b = Spec.Builder.create ~name:(Spec.name spec) () in
  List.iter (fun t -> ignore (Spec.Builder.add_task_exn b (Spec.task_name spec t)))
    (Spec.tasks spec);
  List.iter
    (fun t ->
      List.iter
        (fun c ->
          Spec.Builder.add_dependency_exn b (Spec.task_name spec t)
            (Spec.task_name spec c))
        (Spec.consumers spec t))
    (Spec.tasks spec);
  List.iter
    (fun t ->
      let inputs = Spec.producers spec t and outputs = Spec.consumers spec t in
      if inputs <> [] && List.length outputs >= 2 && Prng.bool rng then
        List.iteri
          (fun i c ->
            if i < List.length outputs - 1 then begin
              let dropped = Prng.int rng (List.length inputs) in
              let kept =
                List.filteri
                  (fun j _ -> j <> dropped || List.length inputs = 1)
                  inputs
              in
              Spec.Builder.annotate_exn b (Spec.task_name spec t)
                ~output:(Spec.task_name spec c)
                (List.map (Spec.task_name spec) kept)
            end)
          outputs)
    (Spec.tasks spec);
  Spec.Builder.finish_exn b

let e_analyze () =
  section "E-ANALYZE"
    "analysis claim: reachability-label pair probes run >= 10x faster \
     than closure-row scans; build time and index size degrade with graph \
     width (honest ablation: the closure wins both on this wide layered \
     spec); annotation inference completes whole corpora at interactive \
     rates";
  let size = sm 30_000 3_000 in
  let spec = Gen.generate Gen.Layered ~seed:11 ~size in
  let g = Spec.graph spec in
  Report.kv "size" (Json.Int size);
  (* --- construction: label index vs dense closure --- *)
  let budget = sm 0.5 0.1 in
  let labels = ref None in
  let label_build_t =
    time_per_run ~budget (fun () -> labels := Some (Labels.compute g))
  in
  let reach = ref None in
  let closure_build_t =
    time_per_run ~budget (fun () -> reach := Some (Reach.compute g))
  in
  let labels = Option.get !labels and reach = Option.get !reach in
  Report.kv "label_build_s" (Json.Float label_build_t);
  Report.kv "closure_build_s" (Json.Float closure_build_t);
  Report.kv "label_chains" (Json.Int (Labels.n_chains labels));
  Report.kv "label_index_words" (Json.Int (Labels.index_words labels));
  Report.kv "closure_words"
    (Json.Int (size * ((size + 62) / 63)));
  (* --- probe throughput --- *)
  let n_pairs = sm 200_000 20_000 in
  let rng = Prng.create 0xBEEF in
  let pairs =
    Array.init n_pairs (fun _ -> (Prng.int rng size, Prng.int rng size))
  in
  (* a reusable singleton bitset makes the row probe as cheap as it can be:
     the O(n/w) subset scan is the cost being measured, not allocation *)
  let singleton = Bitset.create size in
  let rate t = float_of_int n_pairs /. t in
  let label_hits = ref 0 in
  let label_t =
    time_per_run ~budget (fun () ->
        label_hits := 0;
        Array.iter
          (fun (u, v) -> if Labels.reaches labels u v then incr label_hits)
          pairs)
  in
  let row_hits = ref 0 in
  let row_t =
    time_per_run ~budget (fun () ->
        row_hits := 0;
        Array.iter
          (fun (u, v) ->
            Bitset.add singleton v;
            if Reach.row_subset reach singleton u then incr row_hits;
            Bitset.remove singleton v)
          pairs)
  in
  (* honesty row: the closure's own O(1) pair probe, where the dense
     representation wins — the labels' edge is space and build time *)
  let pair_hits = ref 0 in
  let pair_t =
    time_per_run ~budget (fun () ->
        pair_hits := 0;
        Array.iter
          (fun (u, v) -> if Reach.reaches reach u v then incr pair_hits)
          pairs)
  in
  if !label_hits <> !row_hits || !label_hits <> !pair_hits then
    failwith "E-ANALYZE: label probes disagree with the closure";
  let speedup = rate label_t /. rate row_t in
  Report.kv "label_probes_per_s" (Json.Float (rate label_t));
  Report.kv "closure_row_probes_per_s" (Json.Float (rate row_t));
  Report.kv "closure_pair_probes_per_s" (Json.Float (rate pair_t));
  Report.kv "probe_speedup_vs_row" (Json.Float speedup);
  (* --- inference throughput over an annotated corpus --- *)
  let corpus_n = sm 500 50 in
  let corpus =
    List.init corpus_n (fun i ->
        let family =
          List.nth Gen.all_families (i mod List.length Gen.all_families)
        in
        sprinkle_annotations ~seed:i
          (Gen.generate family ~seed:(i * 7 + 1) ~size:40))
  in
  let entries = ref 0 and iters = ref 0 in
  let _, infer_t =
    Render.time (fun () ->
        List.iter
          (fun s ->
            let r = Annot.infer s in
            iters := !iters + r.Annot.iterations;
            List.iter
              (fun inf ->
                entries := !entries + List.length inf.Annot.inf_entries)
              r.Annot.inferred)
          corpus)
  in
  Report.kv "corpus_specs" (Json.Int corpus_n);
  Report.kv "inference_specs_per_s"
    (Json.Float (float_of_int corpus_n /. infer_t));
  Report.kv "inferred_entries" (Json.Int !entries);
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right ]
       ~header:[ "figure"; "labels"; "closure" ]
       [ [ "build"; fmt_s label_build_t; fmt_s closure_build_t ];
         [ "index words";
           string_of_int (Labels.index_words labels);
           string_of_int (size * ((size + 62) / 63)) ];
         [ "pair probes/s";
           Printf.sprintf "%.1fM" (rate label_t /. 1e6);
           Printf.sprintf "%.1fM (row: %.2fM)" (rate pair_t /. 1e6)
             (rate row_t /. 1e6) ] ]);
  Printf.printf
    "label pair probe is %.1fx the closure-row probe (target >= 10x)\n\
     inference: %d specs with partial annotations -> %d inferred entries \
     in %s (%.0f specs/s, %.1f flow fixpoints/spec)\n"
    speedup corpus_n !entries (fmt_s infer_t)
    (float_of_int corpus_n /. infer_t)
    (float_of_int !iters /. float_of_int corpus_n);
  if (not !smoke) && speedup < 10.0 then
    failwith
      (Printf.sprintf
         "E-ANALYZE: label probes only %.1fx closure-row probes (need 10x)"
         speedup)

(* ------------------------------------------------------------------ *)
(* E-SERVE                                                              *)
(* ------------------------------------------------------------------ *)

module Srv = Wolves_server.Server
module Scl = Wolves_server.Client
module Ssvc = Wolves_server.Service
module Spr = Wolves_server.Protocol

let e_serve () =
  section "E-SERVE"
    "service claim: a pinned corpus serves concurrent validate/query \
     traffic at corpus scale with bounded tail latency, sheds overload \
     with immediate OVERLOADED replies, and degrades correction tiers \
     rather than deadlines under queueing";
  let module T = Wolves_workload.Templates in
  (* Corpus: the layered random family plus the Montage suite — the same
     two shapes EXPERIMENTS.md uses for the service scenario. *)
  let layered =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Layered ~seed:(100 + size) ~size in
        let view = Views.build ~seed:size (Views.Topological_bands 8) spec in
        (Printf.sprintf "layered-%d" size, view))
      (sm [ 60; 120; 240 ] [ 30 ])
  in
  let montage =
    List.map
      (fun scale ->
        let spec = T.generate T.Montage ~scale in
        (Printf.sprintf "montage-%d" scale, T.natural_view T.Montage spec))
      (sm [ 8; 16 ] [ 4 ])
  in
  let corpus = layered @ montage in
  let service, load_s = Render.time (fun () -> Ssvc.load corpus) in
  let n_tasks =
    List.fold_left (fun a (_, v) -> a + Spec.n_tasks (View.spec v)) 0 corpus
  in
  Printf.printf "corpus: %d workflows, %d tasks, pinned in %s\n"
    (Ssvc.size service) n_tasks (fmt_s load_s);
  Report.kv "corpus_workflows" (Json.Int (Ssvc.size service));
  Report.kv "corpus_tasks" (Json.Int n_tasks);
  Report.kv "load_s" (Json.Float load_s);
  let sock_path =
    let p = Filename.temp_file "wolves-bench" ".sock" in
    Sys.remove p;
    p
  in
  let config =
    { Srv.default_config with workers = 4; queue_depth = 64 }
  in
  let srv =
    match Srv.start ~config (Srv.Unix_socket sock_path) service with
    | Ok s -> s
    | Error e -> failwith ("E-SERVE: start: " ^ e)
  in
  Fun.protect
    ~finally:(fun () ->
      Srv.stop srv;
      if Sys.file_exists sock_path then Sys.remove sock_path)
  @@ fun () ->
  (* Byte-identity spot check: the reply over the socket is the reply of
     the direct library call, rendered. *)
  (match Scl.connect (`Unix sock_path) with
   | Error e -> failwith ("E-SERVE: connect: " ^ e)
   | Ok c ->
     List.iter
       (fun (id, _) ->
         let line = "VALIDATE " ^ id in
         let direct =
           match Spr.parse line with
           | Ok req -> Srv.handle_request srv req
           | Error _ -> assert false
         in
         match Scl.request c line with
         | Ok got when Spr.render got = Spr.render direct -> ()
         | Ok got ->
           failwith
             (Printf.sprintf
                "E-SERVE: socket reply diverges from direct call for %s:\n%s"
                id (Spr.render got))
         | Error e -> failwith (Printf.sprintf "E-SERVE: %s: %s" line e))
       corpus;
     ignore (Scl.request c "QUIT");
     Scl.close c);
  print_endline "byte-identity: socket replies = direct library calls";
  (* Sustained closed-loop traffic per family. *)
  let duration_s = sm 1.5 0.25 in
  let clients = sm 4 2 in
  let pctl sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let families =
    [ ("layered", layered); ("montage", montage) ]
  in
  let rows =
    List.map
      (fun (fam, entries) ->
        let requests =
          Array.of_list
            (List.concat_map
               (fun (id, _) ->
                 [ "VALIDATE " ^ id;
                   Printf.sprintf "QUERY %s composites(ancestors(sinks))" id;
                   "LINT " ^ id ])
               entries)
        in
        let lats, wall =
          Render.time (fun () ->
              let doms =
                List.init clients (fun _ ->
                    Domain.spawn (fun () ->
                        match Scl.connect ~timeout_s:10. (`Unix sock_path) with
                        | Error e -> failwith ("E-SERVE: connect: " ^ e)
                        | Ok c ->
                          let lats = ref [] in
                          let k = ref 0 in
                          let stop_at = Unix.gettimeofday () +. duration_s in
                          while Unix.gettimeofday () < stop_at do
                            let req = requests.(!k mod Array.length requests) in
                            incr k;
                            let t0 = Unix.gettimeofday () in
                            (match Scl.request c req with
                             | Ok (Spr.Ok_lines _) -> ()
                             | Ok r ->
                               failwith
                                 (Printf.sprintf "E-SERVE: %s -> %s" req
                                    (String.trim (Spr.render r)))
                             | Error e ->
                               failwith
                                 (Printf.sprintf "E-SERVE: %s -> %s" req e));
                            lats := (Unix.gettimeofday () -. t0) :: !lats
                          done;
                          ignore (Scl.request c "QUIT");
                          Scl.close c;
                          !lats))
              in
              List.concat_map Domain.join doms)
        in
        let sorted = Array.of_list lats in
        Array.sort compare sorted;
        let n = Array.length sorted in
        let qps = float_of_int n /. wall in
        let p50 = pctl sorted 0.5 and p99 = pctl sorted 0.99 in
        Report.kv (fam ^ "_requests") (Json.Int n);
        Report.kv (fam ^ "_qps") (Json.Float qps);
        Report.kv (fam ^ "_p50_ms") (Json.Float (p50 *. 1e3));
        Report.kv (fam ^ "_p99_ms") (Json.Float (p99 *. 1e3));
        [ fam; string_of_int (List.length entries); string_of_int clients;
          string_of_int n; Printf.sprintf "%.0f" qps; fmt_s p50; fmt_s p99 ])
      families
  in
  print_endline
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right ]
       ~header:
         [ "family"; "workflows"; "clients"; "requests"; "qps"; "p50"; "p99" ]
       rows);
  let s = Srv.stats srv in
  Printf.printf "server: %d connections, %d requests, %d errors, %d shed\n"
    s.Srv.connections s.Srv.requests s.Srv.errors s.Srv.shed;
  if s.Srv.errors > 0 then failwith "E-SERVE: load run produced ERR replies";
  (* Overload: one worker wedged by a stalled client, a tiny queue, and
     bursts of arrivals — everything past the queue must get an immediate
     OVERLOADED, and the server must keep serving afterwards. *)
  let shed_path =
    let p = Filename.temp_file "wolves-bench-shed" ".sock" in
    Sys.remove p;
    p
  in
  let shed_config =
    { Srv.default_config with
      workers = 1;
      queue_depth = 2;
      read_timeout_s = 30.;
      retry_after_ms = 50 }
  in
  let shed_srv =
    match Srv.start ~config:shed_config (Srv.Unix_socket shed_path) service with
    | Ok s -> s
    | Error e -> failwith ("E-SERVE: shed start: " ^ e)
  in
  Fun.protect
    ~finally:(fun () ->
      Srv.stop shed_srv;
      if Sys.file_exists shed_path then Sys.remove shed_path)
  @@ fun () ->
  let raw_connect () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX shed_path);
    fd
  in
  let hog = raw_connect () in
  ignore (Unix.write_substring hog "VALID" 0 5);
  Unix.sleepf 0.2;
  let classify fd =
    (* A shed connection carries OVERLOADED within microseconds; a queued
       one stays silent until the worker frees up. *)
    let module N = Wolves_server.Net_io in
    let conn = N.of_fd ~read_timeout_s:0.25 fd in
    let buf = Bytes.create 64 in
    let verdict =
      match conn.N.recv buf 0 64 with
      | exception N.Timeout -> `Queued
      | exception N.Net_error _ -> `Queued
      | 0 -> `Queued
      | n when String.length (Bytes.sub_string buf 0 n) >= 10
               && Bytes.sub_string buf 0 10 = "OVERLOADED" -> `Shed
      | _ -> `Other
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    verdict
  in
  let shed_rows =
    List.map
      (fun burst ->
        let conns = List.init burst (fun _ -> raw_connect ()) in
        Unix.sleepf 0.2;
        let verdicts = List.map classify conns in
        let shed = List.length (List.filter (( = ) `Shed) verdicts) in
        let queued = List.length (List.filter (( = ) `Queued) verdicts) in
        let rate = float_of_int shed /. float_of_int burst in
        Report.kv
          (Printf.sprintf "shed_burst_%d" burst)
          (Json.Obj
             [ ("shed", Json.Int shed); ("queued", Json.Int queued);
               ("rate", Json.Float rate) ]);
        [ string_of_int burst; string_of_int shed; string_of_int queued;
          Printf.sprintf "%.0f%%" (100. *. rate) ])
      (sm [ 4; 8; 16 ] [ 4; 8 ])
  in
  print_endline
    (Table.render
       ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "burst"; "shed"; "queued"; "shed rate" ]
       shed_rows);
  (* the wedged worker comes back and honest clients are served again *)
  (try Unix.close hog with Unix.Unix_error _ -> ());
  Unix.sleepf 0.1;
  (match Scl.connect (`Unix shed_path) with
   | Error e -> failwith ("E-SERVE: reconnect after overload: " ^ e)
   | Ok c ->
     (match Scl.request c "PING" with
      | Ok (Spr.Ok_lines [ "pong" ]) -> ()
      | _ -> failwith "E-SERVE: server unresponsive after overload");
     ignore (Scl.request c "QUIT");
     Scl.close c);
  let shed_total = (Srv.stats shed_srv).Srv.shed in
  Report.kv "shed_total" (Json.Int shed_total);
  if shed_total = 0 then failwith "E-SERVE: overload never shed";
  Printf.printf "overload recovered: %d total shed, server still serving\n"
    shed_total

(* ------------------------------------------------------------------ *)
(* E-OBS                                                               *)
(* ------------------------------------------------------------------ *)

module Olog = Wolves_obs.Log
module Oprom = Wolves_obs.Prom
module Dash = Wolves_server.Dashboard

let e_obs () =
  section "E-OBS"
    "observability claim: structured access logging, Prometheus METRICS \
     exposition under concurrent scraping, and sampled tracing together \
     cost a small fraction of plain closed-loop throughput; a live scrape \
     passes the in-repo exposition checker and feeds the wolves top panel";
  let module T = Wolves_workload.Templates in
  (* The E-SERVE corpus shapes, so the overhead is measured on the same
     traffic the service benchmark publishes. *)
  let layered =
    List.map
      (fun size ->
        let spec = Gen.generate Gen.Layered ~seed:(100 + size) ~size in
        let view = Views.build ~seed:size (Views.Topological_bands 8) spec in
        (Printf.sprintf "layered-%d" size, view))
      (sm [ 60; 120; 240 ] [ 30 ])
  in
  let montage =
    List.map
      (fun scale ->
        let spec = T.generate T.Montage ~scale in
        (Printf.sprintf "montage-%d" scale, T.natural_view T.Montage spec))
      (sm [ 8; 16 ] [ 4 ])
  in
  let corpus = layered @ montage in
  let service = Ssvc.load corpus in
  let requests =
    Array.of_list
      (List.concat_map
         (fun (id, _) ->
           [ "VALIDATE " ^ id;
             Printf.sprintf "QUERY %s composites(ancestors(sinks))" id;
             "LINT " ^ id ])
         corpus)
  in
  let duration_s = sm 2.0 0.3 in
  let clients = sm 4 2 in
  (* Closed-loop load against a running server; returns completed requests,
     wall time, and process CPU time consumed by the burst (clients, both
     servers, scraper — everything lives in this process). *)
  let proc_cpu () =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  let run_load sock_path =
    let cpu0 = proc_cpu () in
    let counts, wall =
      Render.time (fun () ->
          let doms =
            List.init clients (fun _ ->
                Domain.spawn (fun () ->
                    match Scl.connect ~timeout_s:10. (`Unix sock_path) with
                    | Error e -> failwith ("E-OBS: connect: " ^ e)
                    | Ok c ->
                      let k = ref 0 and n = ref 0 in
                      let stop_at = Unix.gettimeofday () +. duration_s in
                      while Unix.gettimeofday () < stop_at do
                        let req = requests.(!k mod Array.length requests) in
                        incr k;
                        (match Scl.request c req with
                         | Ok (Spr.Ok_lines _) -> incr n
                         | Ok r ->
                           failwith
                             (Printf.sprintf "E-OBS: %s -> %s" req
                                (String.trim (Spr.render r)))
                         | Error e ->
                           failwith (Printf.sprintf "E-OBS: %s -> %s" req e))
                      done;
                      ignore (Scl.request c "QUIT");
                      Scl.close c;
                      !n))
          in
          List.map Domain.join doms)
    in
    (List.fold_left ( + ) 0 counts, wall, proc_cpu () -. cpu0)
  in
  (* Closed-loop qps in a shared process is noisy, and it drifts: heap
     growth and major-GC settling make whichever configuration runs later
     look slower (the E-MICRO harness measured the same effect at ~15%).
     So all the servers stay up for the whole experiment, bursts alternate
     round-robin across configurations (so drift lands evenly on every
     side), each side aggregates requests and CPU over all its bursts, and
     qps is requests per process-CPU-second rather than per wall second,
     which cancels whatever else the host was doing. *)
  let trials = sm 6 2 in
  let with_obs_server config f =
    let sock_path =
      let p = Filename.temp_file "wolves-bench-obs" ".sock" in
      Sys.remove p;
      p
    in
    let srv =
      match Srv.start ~config (Srv.Unix_socket sock_path) service with
      | Ok s -> s
      | Error e -> failwith ("E-OBS: start: " ^ e)
    in
    Fun.protect
      ~finally:(fun () ->
        Srv.stop srv;
        if Sys.file_exists sock_path then Sys.remove sock_path)
      (fun () -> f sock_path srv)
  in
  (* The server parks one worker per live connection, so size the pool for
     the clients plus the scraper plus slack: otherwise the observed run
     measures connection starvation, not observability cost. *)
  let base_config =
    { Srv.default_config with workers = clients + 2; queue_depth = 64 }
  in
  let traced_config = { base_config with trace_sample = 64 } in
  let log_path = Filename.temp_file "wolves-bench-obs" ".jsonl" in
  let log_oc = open_out log_path in
  let with_sink f =
    Olog.set ~level:Olog.Info (Some (Olog.channel_sink log_oc));
    Fun.protect ~finally:(fun () -> Olog.set None) f
  in
  (* Three servers, alive for the whole experiment:
       plain    — the control: no sink, no sampling, nobody scraping;
       exposed  — every request access-logged, a scraper domain polling
                  METRICS during its bursts (the paper's ≤5% claim);
       traced   — access-logged and every 64th request traced, to price
                  the sampling tier separately.
     The sink and the scraper are switched on only around the bursts that
     pay for them, so the control never does. *)
  let ( (qps_plain, n_plain, qps_exp, n_exp, qps_tr, n_tr),
        scrapes, last_page, top_panel, trace_drained ) =
    with_obs_server base_config (fun plain_path _ ->
    with_obs_server base_config (fun exp_path _ ->
    with_obs_server traced_config (fun tr_path tr_srv ->
        let scrape_on = Atomic.make false in
        let stop_scraping = Atomic.make false in
        let scraper =
          Domain.spawn (fun () ->
              match Scl.connect ~timeout_s:10. (`Unix exp_path) with
              | Error e -> failwith ("E-OBS: scraper connect: " ^ e)
              | Ok c ->
                let pages = ref 0 and last = ref [] in
                let scrape () =
                  match Scl.request c "METRICS" with
                  | Ok (Spr.Ok_lines lines) ->
                    incr pages;
                    last := lines
                  | Ok r ->
                    failwith
                      ("E-OBS: METRICS -> " ^ String.trim (Spr.render r))
                  | Error e -> failwith ("E-OBS: METRICS -> " ^ e)
                in
                (* 2Hz is already very aggressive for a scraper (Prometheus
                   defaults to one scrape per 15s) *)
                while not (Atomic.get stop_scraping) do
                  (* keepalive outside observed bursts: the parked
                     connection must not hit the server's idle timeout *)
                  if Atomic.get scrape_on then scrape ()
                  else ignore (Scl.request c "PING");
                  Unix.sleepf 0.5
                done;
                (* one final scrape so the checked page reflects the whole
                   run (and so the checker always has a page) *)
                scrape ();
                ignore (Scl.request c "QUIT");
                Scl.close c;
                (!pages, !last))
        in
        (* Warm every server (code paths, allocator) off the clock. *)
        ignore (run_load plain_path);
        ignore (run_load exp_path);
        ignore (run_load tr_path);
        let total_p = ref 0 and cpu_p = ref 0.0 in
        let total_e = ref 0 and cpu_e = ref 0.0 in
        let total_t = ref 0 and cpu_t = ref 0.0 in
        for _ = 1 to trials do
          let n, _, cpu = run_load plain_path in
          total_p := !total_p + n;
          cpu_p := !cpu_p +. cpu;
          with_sink (fun () ->
              Atomic.set scrape_on true;
              let n, _, cpu = run_load exp_path in
              Atomic.set scrape_on false;
              total_e := !total_e + n;
              cpu_e := !cpu_e +. cpu;
              let n, _, cpu = run_load tr_path in
              total_t := !total_t + n;
              cpu_t := !cpu_t +. cpu)
        done;
        let measured =
          ( float_of_int !total_p /. !cpu_p, !total_p,
            float_of_int !total_e /. !cpu_e, !total_e,
            float_of_int !total_t /. !cpu_t, !total_t )
        in
        Atomic.set stop_scraping true;
        let scrapes, last_page = Domain.join scraper in
        (* the wolves top panel, rendered exactly as `wolves top` does,
           from two polls of the still-live scraped server *)
        let top_panel =
          match Scl.connect ~timeout_s:10. (`Unix exp_path) with
          | Error e -> failwith ("E-OBS: top connect: " ^ e)
          | Ok c ->
            Fun.protect
              ~finally:(fun () ->
                ignore (Scl.request c "QUIT");
                Scl.close c)
              (fun () ->
                let prev =
                  match Dash.fetch c with
                  | Ok s -> s
                  | Error e -> failwith ("E-OBS: top fetch: " ^ e)
                in
                Unix.sleepf 0.1;
                match Dash.fetch c with
                | Ok s -> Dash.render ~prev s
                | Error e -> failwith ("E-OBS: top fetch: " ^ e))
        in
        let trace_drained = List.length (Srv.trace_events tr_srv) in
        (measured, scrapes, last_page, top_panel, trace_drained))))
  in
  close_out log_oc;
  let overhead_pct = 100. *. (1. -. (qps_exp /. qps_plain)) in
  (* the live scrape must satisfy the same checker CI runs *)
  (if last_page = [] then failwith "E-OBS: scraper never completed a scrape");
  (match Oprom.check (String.concat "\n" last_page ^ "\n") with
   | Ok samples ->
     Printf.printf "live METRICS scrape: %d samples, checker ok\n" samples;
     Report.kv "scrape_samples" (Json.Int samples)
   | Error e -> failwith ("E-OBS: live scrape fails the checker: " ^ e));
  let log_records =
    In_channel.with_open_text log_path (fun ic ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        !n)
  in
  Sys.remove log_path;
  (* every completed request on the logged servers produced one access-log
     record (the QUIT and METRICS traffic is logged too, so the file can
     only be larger) *)
  if log_records < n_exp + n_tr then
    failwith
      (Printf.sprintf "E-OBS: %d requests but only %d access-log records"
         (n_exp + n_tr) log_records);
  let pct q = 100. *. (1. -. (q /. qps_plain)) in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "configuration"; "requests"; "qps/cpu"; "overhead" ]
       [ [ "plain"; string_of_int n_plain; Printf.sprintf "%.0f" qps_plain;
           "" ];
         [ "log+scrape"; string_of_int n_exp; Printf.sprintf "%.0f" qps_exp;
           Printf.sprintf "%.1f%%" (pct qps_exp) ];
         [ "log+trace 1/64"; string_of_int n_tr;
           Printf.sprintf "%.0f" qps_tr;
           Printf.sprintf "%.1f%%" (pct qps_tr) ] ]);
  Printf.printf
    "access-logging + exposition overhead: %.1f%% qps (%d scrapes, %d \
     access-log records, %d trace events retained)\n"
    overhead_pct scrapes log_records trace_drained;
  print_endline "wolves top (one-shot, from the live exposition):";
  print_string top_panel;
  Report.kv "qps_plain" (Json.Float qps_plain);
  Report.kv "qps_observed" (Json.Float qps_exp);
  Report.kv "qps_traced" (Json.Float qps_tr);
  Report.kv "overhead_pct" (Json.Float overhead_pct);
  Report.kv "trace_overhead_pct" (Json.Float (pct qps_tr));
  Report.kv "scrapes" (Json.Int scrapes);
  Report.kv "access_log_records" (Json.Int log_records);
  Report.kv "trace_events" (Json.Int trace_drained)

(* ------------------------------------------------------------------ *)
(* Regression gate: --compare BASELINE.json                             *)
(* ------------------------------------------------------------------ *)

(* The comparator itself lives in [Wolves_cli.Benchgate] (unit-tested,
   including the missing-section direction); this wrapper does the IO and
   rendering. *)
let compare_against ~threshold ~require_all baseline_path walls =
  let text =
    try In_channel.with_open_text baseline_path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "cannot read baseline: %s\n" msg;
      exit 2
  in
  match Json.of_string text with
  | Error msg ->
    Printf.eprintf "%s: %s\n" baseline_path msg;
    exit 2
  | Ok doc ->
    (* Version-less artifacts are schema v1 (same sections shape). *)
    let result =
      Benchgate.compare ~threshold ~slack_s:Benchgate.default_slack_s
        ~require_all ~smoke:!smoke ~baseline:doc walls
    in
    if result.Benchgate.smoke_mismatch then
      Printf.printf
        "warning: baseline %s is a %s run but this is a %s run; timings \
         are not like-for-like\n"
        baseline_path
        (if !smoke then "full" else "smoke")
        (if !smoke then "smoke" else "full");
    let rows =
      List.map
        (fun r ->
          [ r.Benchgate.id;
            (match r.Benchgate.baseline_s with
             | Some b -> fmt_s b
             | None -> "-");
            (match r.Benchgate.current_s with
             | Some c -> fmt_s c
             | None -> "-");
            (match (r.Benchgate.baseline_s, r.Benchgate.current_s) with
             | Some b, Some c ->
               Printf.sprintf "%.2fx" (c /. Float.max b 1e-9)
             | _ -> "-");
            Benchgate.verdict_name r.Benchgate.verdict ])
        result.Benchgate.rows
    in
    Printf.printf "\nregression gate vs %s (threshold %.2fx + %.0fms slack):\n"
      baseline_path threshold (Benchgate.default_slack_s *. 1000.0);
    print_endline
      (Table.render
         ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
         ~header:[ "section"; "baseline"; "current"; "ratio"; "verdict" ]
         rows);
    match result.Benchgate.failed with
    | [] -> Printf.printf "regression gate passed\n"
    | failed ->
      Printf.printf "regression gate FAILED: %s\n" (String.concat ", " failed);
      exit 1

(* ------------------------------------------------------------------ *)
(* main                                                                 *)
(* ------------------------------------------------------------------ *)

let sections =
  [ ("E-FIG1", e_fig1); ("E-FIG3", e_fig3); ("E-QUAL", e_qual);
    ("E-TIME", e_time); ("E-VALID", e_valid); ("E-PROV", e_prov);
    ("E-SPEED", e_speed); ("E-EST", e_est); ("E-AUDIT", e_audit);
    ("E-INC", e_inc); ("E-INDEX", e_index); ("E-BB", e_bb);
    ("E-MIXED", e_mixed); ("E-SUGGEST", e_suggest); ("E-SCHED", e_sched);
    ("E-TEMPLATES", e_templates); ("E-FAULT", e_fault);
    ("E-LINT", e_lint); ("E-TRACE", e_trace); ("E-PAR", e_par);
    ("E-STORE", e_store); ("E-ANALYZE", e_analyze); ("E-SERVE", e_serve);
    ("E-OBS", e_obs); ("E-MICRO", e_bechamel) ]

let () =
  let json_out = ref None in
  let compare_to = ref None in
  let threshold = ref 1.5 in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--smoke" :: rest ->
      smoke := true;
      parse_args acc rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse_args acc rest
    | [ "--json" ] ->
      Printf.eprintf "--json needs a file argument\n";
      exit 2
    | "--compare" :: path :: rest ->
      compare_to := Some path;
      parse_args acc rest
    | [ "--compare" ] ->
      Printf.eprintf "--compare needs a file argument\n";
      exit 2
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f > 0.0 ->
         threshold := f;
         parse_args acc rest
       | _ ->
         Printf.eprintf "--threshold needs a positive number, got %S\n" v;
         exit 2)
    | [ "--threshold" ] ->
      Printf.eprintf "--threshold needs a number argument\n";
      exit 2
    | "--domains" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 1 ->
         Par.set_default_domains n;
         parse_args acc rest
       | _ ->
         Printf.eprintf "--domains needs a positive integer, got %S\n" v;
         exit 2)
    | [ "--domains" ] ->
      Printf.eprintf "--domains needs an integer argument\n";
      exit 2
    | id :: rest -> parse_args (id :: acc) rest
  in
  let explicit_ids = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match explicit_ids with
    | [] -> List.map fst sections
    | ids -> ids
  in
  List.iter
    (fun id ->
      if not (List.mem_assoc id sections) then begin
        Printf.eprintf "unknown section %s (known: %s)\n" id
          (String.concat ", " (List.map fst sections));
        exit 2
      end)
    requested;
  let walls =
    List.map
      (fun id ->
        let f = List.assoc id sections in
        (* Each section runs with a clean, enabled registry, so the artifact's
           per-section counters (soundness checks vs pruning probes, cache
           hits, ...) are attributable to that experiment alone. *)
        Metrics.reset ();
        Metrics.set_enabled true;
        let (), wall = Render.time f in
        Metrics.set_enabled false;
        Report.finish_section id ~wall (Metrics.snapshot ());
        (id, wall))
      requested
  in
  Option.iter
    (fun path ->
      Report.write path;
      Printf.printf "\nwrote %s\n" path)
    !json_out;
  Option.iter
    (fun path ->
      (* The missing-section direction only applies when this run was
         supposed to cover everything: an explicit subset (CI's per-section
         gates) legitimately skips the rest. *)
      compare_against ~threshold:!threshold
        ~require_all:(explicit_ids = [])
        path walls)
    !compare_to;
  print_newline ()
