(* The WOLVES command-line interface: every interaction the VLDB'09 demo GUI
   offered (import, understand, validate, correct, split/merge a single task,
   provenance analysis, estimation) as subcommands, plus corpus generation
   and repository audits. *)

open Cmdliner
open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module E = Wolves_core.Estimator
module Q = Wolves_core.Quality
module Moml = Wolves_moml.Moml
module Render = Wolves_cli.Render
module Table = Wolves_cli.Table
module R = Wolves_repository.Repository
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module P = Wolves_provenance.Provenance

let fail fmt = Format.kasprintf (fun msg -> `Error (false, msg)) fmt

(* Set when a requested artifact (metrics dump, trace, ...) could not be
   written. Those failures are reported on stderr mid-command and must not
   abort the primary output, but the process still has to exit non-zero —
   a --json consumer that also asked for --metrics would otherwise read a
   clean exit while the dump silently never appeared. Checked in [main]. *)
let io_failure = ref false

let report_io_failure what msg =
  io_failure := true;
  Printf.eprintf "wolves: cannot write %s: %s\n" what msg

(* Format by extension: .wf is the human DSL, anything else is MoML. *)
let load_view file =
  if Filename.check_suffix file ".wf" then
    match Wolves_lang.Wfdsl.load file with
    | Ok (_, view) -> Ok view
    | Error e ->
      (* [load] errors carry the path; pp_error renders it. *)
      Error (Format.asprintf "%a" Wolves_lang.Wfdsl.pp_error e)
  else
    match Moml.load file with
    | Ok (_, view) -> Ok view
    | Error e -> Error (Format.asprintf "%s: %a" file Moml.pp_error e)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let serialize_view path view =
  if Filename.check_suffix path ".wf" then Wolves_lang.Wfdsl.to_string view
  else Moml.to_string view

(* --- common arguments --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.moml"
         ~doc:"MoML document holding the workflow specification and view.")

let criterion_arg =
  let criterion_conv =
    Arg.conv
      ( (fun s ->
          match C.criterion_of_string s with
          | Some c -> Ok c
          | None -> Error (`Msg (Printf.sprintf "unknown criterion %S" s))),
        fun ppf c -> C.pp_criterion ppf c )
  in
  Arg.(value & opt criterion_conv C.Strong & info [ "criterion"; "c" ] ~docv:"CRITERION"
         ~doc:"Correction criterion: $(b,weak), $(b,strong) or $(b,optimal).")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
         ~doc:"Write the resulting view as MoML to this file.")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT.dot"
         ~doc:"Also write a Graphviz rendering (unsound composites in red).")

let color_arg =
  Arg.(value & flag & info [ "color" ] ~doc:"Colourise terminal output.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

module Json = Wolves_cli.Json
module Metrics = Wolves_obs.Metrics
module Par = Wolves_par.Par

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Run the validator/corrector across N domains (cores). \
               Defaults to $(b,WOLVES_DOMAINS) or 1; results are identical \
               at every domain count.")

let with_domains domains f =
  match domains with
  | None -> f ()
  | Some n ->
    if n < 1 then fail "--domains must be at least 1"
    else begin
      let saved = Par.default_domains () in
      Par.set_default_domains n;
      Fun.protect ~finally:(fun () -> Par.set_default_domains saved) f
    end

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"OUT.json"
         ~doc:"Enable the $(b,Wolves_obs) instrumentation for this command \
               and dump the metrics registry (counters, gauges, timer \
               histograms) as JSON to this file.")

(* Run the instrumented portion of a command: enable recording only when the
   user asked for a metrics dump, and write the dump on the way out (also on
   exceptions). Callers must not [exit] inside [f] — process exits (validate
   exits 1 on unsound views) belong after the dump is written. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
    Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Metrics.set_enabled false;
        try write_file path (Metrics.dump_json ())
        with Sys_error msg -> report_io_failure "metrics dump" msg)
      f

module Trace = Wolves_trace.Trace
module Trace_export = Wolves_trace.Export
module Trace_profile = Wolves_trace.Profile

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json"
         ~doc:"Record an event-level trace of this command and write it to \
               this file; the extension picks the format: $(b,.json) is \
               Chrome trace-event JSON (open in Perfetto or \
               $(b,chrome://tracing)), $(b,.jsonl) one event per line, \
               $(b,.folded) collapsed stacks for flamegraph tools.")

(* The instrumented portion of a command under both observability layers:
   metrics dump and/or event trace, each only when requested, both written on
   the way out (also on exceptions). *)
let with_observability metrics trace f =
  let traced g =
    match trace with
    | None -> g ()
    | Some path ->
      let collector = Trace.create () in
      Fun.protect
        ~finally:(fun () ->
          try
            Trace_export.write
              (Trace_export.format_of_path path)
              (Trace.events collector) path
          with Sys_error msg -> report_io_failure "trace" msg)
        (fun () -> Trace.with_tracing collector g)
  in
  with_metrics metrics (fun () -> traced f)

let validation_json view report =
  let spec = View.spec view in
  Json.Obj
    [ ("workflow", Json.String (Spec.name spec));
      ("composites", Json.Int (View.n_composites view));
      ("sound", Json.Bool (report.S.unsound = []));
      ( "unsound",
        Json.List
          (List.map
             (fun (c, witnesses) ->
               Json.Obj
                 [ ("composite", Json.String (View.composite_name view c));
                   ( "members",
                     Json.List
                       (List.map
                          (fun t -> Json.String (Spec.task_name spec t))
                          (View.members view c)) );
                   ( "missing_paths",
                     Json.List
                       (List.map
                          (fun (ti, to_) ->
                            Json.Obj
                              [ ("from", Json.String (Spec.task_name spec ti));
                                ("to", Json.String (Spec.task_name spec to_)) ])
                          witnesses) ) ])
             report.S.unsound) ) ]

(* --- show --- *)

let show_cmd =
  let run file dot =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      print_string (Render.spec_summary (View.spec view));
      print_newline ();
      print_string (Render.view_summary view);
      Option.iter (fun path -> write_file path (Render.view_dot view)) dot;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Display a workflow specification and its view.")
    Term.(ret (const run $ file_arg $ dot_arg))

(* --- validate --- *)

let validate_cmd =
  let run file color dot json metrics trace domains =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      with_domains domains @@ fun () ->
      let report =
        with_observability metrics trace (fun () -> S.validate view)
      in
      if json then print_endline (Json.to_string (validation_json view report))
      else print_string (Render.view_summary ~color view);
      Option.iter (fun path -> write_file path (Render.view_dot view)) dot;
      if report.S.unsound = [] then `Ok ()
      else begin
        if not json then
          Printf.printf "view is UNSOUND (%d composite(s))\n"
            (List.length report.S.unsound);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Check view soundness (Workflow View Validator). Exits 1 when the \
          view is unsound; unsound composites and their missing paths are \
          listed.")
    Term.(ret (const run $ file_arg $ color_arg $ dot_arg $ json_arg
               $ metrics_arg $ trace_arg $ domains_arg))

(* --- correct --- *)

let correct_cmd =
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS"
           ~doc:"Correct under a wall-clock budget (milliseconds): the \
                 corrector degrades optimal → strong → weak as the budget \
                 expires and reports which tier answered. Overrides \
                 $(b,--criterion).")
  in
  let run file criterion deadline output dot metrics trace domains =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      with_domains domains @@ fun () ->
      (match deadline with
       | Some ms ->
         let (corrected, outcomes), elapsed =
           with_observability metrics trace (fun () ->
               Render.time (fun () ->
                   C.correct_with_deadline ~deadline_s:(ms /. 1000.0) view))
         in
         if outcomes = [] then print_endline "view already sound"
         else
           List.iter
             (fun (c, o) ->
               Format.printf "%s: %a%s@."
                 (View.composite_name view c)
                 C.pp_tier_outcome o
                 (if o.C.proven_optimal then ", proven minimum" else ""))
             outcomes;
         Printf.printf "corrected in %.4fs under a %.3f ms deadline\n" elapsed
           ms;
         print_string (Render.view_summary corrected);
         Option.iter
           (fun path -> write_file path (serialize_view path corrected))
           output;
         Option.iter (fun path -> write_file path (Render.view_dot corrected)) dot;
         `Ok ()
       | None ->
         let (corrected, outcomes), elapsed =
           with_observability metrics trace (fun () ->
               Render.time (fun () -> C.correct criterion view))
         in
         print_string (Render.correction_summary view outcomes);
         Printf.printf "corrected in %.4fs under the %s criterion\n" elapsed
           (Format.asprintf "%a" C.pp_criterion criterion);
         print_string (Render.view_summary corrected);
         Option.iter (fun path -> write_file path (serialize_view path corrected)) output;
         Option.iter (fun path -> write_file path (Render.view_dot corrected)) dot;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "correct"
       ~doc:
         "Resolve every unsound composite by splitting (Unsound View \
          Corrector), under the chosen optimality criterion — or under a \
          wall-clock deadline with $(b,--deadline), degrading optimal → \
          strong → weak as the budget expires.")
    Term.(ret (const run $ file_arg $ criterion_arg $ deadline_arg
               $ output_arg $ dot_arg $ metrics_arg $ trace_arg
               $ domains_arg))

(* --- split-task --- *)

let task_arg =
  Arg.(required & opt (some string) None & info [ "task"; "t" ] ~docv:"NAME"
         ~doc:"Name of the composite task to operate on.")

let split_cmd =
  let run file task criterion output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      (match View.composite_of_name view task with
       | None -> fail "no composite named %S" task
       | Some c ->
         let view', outcome = C.split_composite criterion view c in
         print_string (Render.correction_summary view [ (c, outcome) ]);
         print_string (Render.view_summary view');
         Option.iter (fun path -> write_file path (serialize_view path view')) output;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "split-task"
       ~doc:"Split one composite task (the demo's Split Task popup action).")
    Term.(ret (const run $ file_arg $ task_arg $ criterion_arg $ output_arg))

(* --- merge-task --- *)

let merge_cmd =
  let run file task output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      (match View.composite_of_name view task with
       | None -> fail "no composite named %S" task
       | Some c ->
         let view', merged = C.merge_resolve view c in
         Printf.printf
           "resolved %S by merging; the merged composite %S now has %d tasks\n"
           task
           (View.composite_name view' merged)
           (List.length (View.members view' merged));
         print_string (Render.view_summary view');
         Option.iter (fun path -> write_file path (serialize_view path view')) output;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "merge-task"
       ~doc:
         "Resolve an unsound composite by merging it with neighbouring \
          composites (extension; loses detail instead of adding it).")
    Term.(ret (const run $ file_arg $ task_arg $ output_arg))

(* --- provenance --- *)

let provenance_cmd =
  let run file task =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      (match View.composite_of_name view task with
       | None -> fail "no composite named %S" task
       | Some c ->
         print_string (Render.provenance_summary view c);
         let stats = P.evaluate_view view in
         Printf.printf
           "whole-view provenance audit: %d queries, %d spurious, %d missing\n"
           stats.P.queries stats.P.spurious stats.P.missing;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:
         "Analyse the view-level provenance of one composite's output and \
          report any spurious data items (the paper's Figure 1 walkthrough).")
    Term.(ret (const run $ file_arg $ task_arg))

(* --- estimate --- *)

let estimate_cmd =
  let run file task =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      (match View.composite_of_name view task with
       | None -> fail "no composite named %S" task
       | Some c ->
         let spec = View.spec view in
         let members = View.members view c in
         let features = E.features_of spec members in
         (* Build a history from synthetic instances in the same feature
            group (the demo grouped past corrections by size and
            substructure). *)
         let history = E.create () in
         let rng = Wolves_workload.Prng.create 0xE57 in
         for _ = 1 to 60 do
           let seed = Wolves_workload.Prng.int rng 1_000_000 in
           let size = max 4 (List.length members + Wolves_workload.Prng.int rng 3 - 1) in
           let family = Wolves_workload.Prng.pick rng Gen.all_families in
           let spec' = Gen.generate family ~seed ~size in
           let members' =
             List.filteri (fun i _ -> i < List.length members)
               (Wolves_workload.Prng.shuffle rng (Spec.tasks spec'))
           in
           let f = E.features_of spec' members' in
           List.iter
             (fun criterion ->
               let cmp, elapsed =
                 Render.time (fun () -> C.split_subset criterion spec' members')
               in
               let quality =
                 match criterion with
                 | C.Optimal -> 1.0
                 | _ ->
                   let opt = C.split_subset C.Optimal spec' members' in
                   Q.ratio
                     ~optimal_parts:(List.length opt.C.parts)
                     ~parts:(List.length cmp.C.parts)
               in
               E.record history f criterion ~runtime:elapsed ~quality)
             [ C.Weak; C.Strong; C.Optimal ]
         done;
         Format.printf "composite %S: %a@." task E.pp_features features;
         let rows =
           List.map
             (fun criterion ->
               let est = E.estimate history features criterion in
               [ Format.asprintf "%a" C.pp_criterion criterion;
                 (match est.E.expected_runtime with
                  | Some t -> Printf.sprintf "%.6fs" t
                  | None -> "-");
                 (match est.E.expected_quality with
                  | Some q -> Printf.sprintf "%.3f" q
                  | None -> "-");
                 string_of_int est.E.samples ])
             [ C.Weak; C.Strong; C.Optimal ]
         in
         print_endline
           (Table.render
              ~header:[ "criterion"; "est. time"; "est. quality"; "samples" ]
              rows);
         `Ok ())
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Estimate correction time and quality per criterion from a history \
          of past corrections grouped by size and substructure (demo §3.2).")
    Term.(ret (const run $ file_arg $ task_arg))

(* --- generate --- *)

let generate_cmd =
  let family_conv =
    Arg.conv
      ( (fun s ->
          match Gen.family_of_string s with
          | Some f -> Ok f
          | None -> Error (`Msg (Printf.sprintf "unknown family %S" s))),
        fun ppf f -> Format.pp_print_string ppf (Gen.family_name f) )
  in
  let family =
    Arg.(value & opt family_conv Gen.Layered & info [ "family" ] ~docv:"FAMILY"
           ~doc:"Workflow family: layered, erdos-renyi, series-parallel, pipeline.")
  in
  let size =
    Arg.(value & opt int 20 & info [ "size" ] ~docv:"N" ~doc:"Number of tasks.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let group =
    Arg.(value & opt int 4 & info [ "group" ] ~docv:"K" ~doc:"Composite size.")
  in
  let unsound =
    Arg.(value & flag & info [ "unsound" ]
           ~doc:"Perturb the view until it is unsound.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Output MoML file.")
  in
  let suite =
    let suite_conv =
      Arg.conv
        ( (fun s ->
            match Wolves_workload.Templates.suite_of_string s with
            | Some f -> Ok f
            | None -> Error (`Msg (Printf.sprintf "unknown suite %S" s))),
          fun ppf f ->
            Format.pp_print_string ppf (Wolves_workload.Templates.suite_name f) )
    in
    Arg.(value & opt (some suite_conv) None & info [ "suite" ] ~docv:"SUITE"
           ~doc:"Scientific-workflow template instead of a random family: \
                 montage, cybershake, epigenomics, ligo (with its natural \
                 per-stage view; --size is the scale).")
  in
  let run family suite_opt size seed group unsound out =
    if size < 2 then fail "size must be at least 2"
    else begin
      let module T = Wolves_workload.Templates in
      let spec, view =
        match suite_opt with
        | Some s ->
          let spec = T.generate s ~scale:(max 1 (size / 4)) in
          (spec, T.natural_view s spec)
        | None ->
          let spec = Gen.generate family ~seed ~size in
          (spec, Views.build ~seed (Views.Connected_groups group) spec)
      in
      ignore spec;
      let view =
        if unsound then Views.inject_unsoundness ~seed:(seed + 1) ~attempts:(4 * size) view
        else view
      in
      write_file out (serialize_view out view);
      Printf.printf "wrote %s (%d tasks, %d composites, %s)\n" out
        (Spec.n_tasks (View.spec view))
        (View.n_composites view)
        (if S.is_sound view then "sound" else "unsound");
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic workflow and view (MoML or .wf).")
    Term.(ret (const run $ family $ suite $ size $ seed $ group $ unsound $ out))

(* --- audit --- *)

let audit_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of .moml files.")
  in
  let correct_flag =
    Arg.(value & flag & info [ "correct" ]
           ~doc:"Also correct every unsound view (strong criterion) in place.")
  in
  let keep_going_flag =
    Arg.(value & flag & info [ "keep-going"; "k" ]
           ~doc:"Best-effort load: audit the entries that parse and report \
                 the ones that fail, instead of aborting on the first bad \
                 file.")
  in
  let run dir correct_ keep_going =
    let loaded =
      if keep_going then R.load_dir_lenient dir
      else Result.map (fun repo -> (repo, [])) (R.load_dir dir)
    in
    match loaded with
    | Error e -> fail "%a" R.pp_io_error e
    | Ok (repo, failed) ->
      List.iter
        (fun (file, err) ->
          Format.printf "skipped %s: %a@." file R.pp_io_error err)
        failed;
      if failed <> [] then
        Printf.printf "skipped %d unreadable file(s)\n" (List.length failed);
      let audit = R.audit repo in
      Format.printf "%a@." R.pp_audit audit;
      if correct_ && audit.R.unsound_views > 0 then begin
        let repo', repaired = R.correct_all C.Strong repo in
        match R.save_dir dir repo' with
        | Ok () ->
          Printf.printf "corrected and rewrote %d view(s)\n" repaired;
          `Ok ()
        | Error e -> fail "%a" R.pp_io_error e
      end
      else `Ok ()
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Audit a directory of MoML workflows for unsound views.")
    Term.(ret (const run $ dir_arg $ correct_flag $ keep_going_flag))

(* --- query --- *)

let query_cmd =
  let expr_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query expression, e.g. \"ancestors('task') - unsound\".")
  in
  let run file expr =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      (match Wolves_query.Query.eval_names view expr with
       | Error e -> fail "%a" Wolves_query.Query.pp_error e
       | Ok names ->
         List.iter print_endline names;
         Printf.printf "(%d tasks)\n" (List.length names);
         `Ok ())
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a provenance query (set algebra over tasks: ancestors, \
          descendants, producers, consumers, composites, unsound, sources, \
          sinks, &, |, -).")
    Term.(ret (const run $ file_arg $ expr_arg))

(* --- simulate --- *)

let simulate_cmd =
  let runs_arg =
    Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N" ~doc:"Number of runs.")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W"
           ~doc:"Simulated parallel workers.")
  in
  let fail_arg =
    Arg.(value & opt float 0.05 & info [ "failure-rate" ] ~docv:"P"
           ~doc:"Per-task crash probability.")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"OUT.csv"
           ~doc:"Persist the recorded runs as CSV.")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Extra attempts granted to a crashed task.")
  in
  let backoff_arg =
    Arg.(value & opt float 1.0 & info [ "backoff" ] ~docv:"F"
           ~doc:"Base retry delay in simulated seconds (doubles per attempt, \
                 jittered).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"F"
           ~doc:"Per-task timeout in simulated seconds; longer tasks end \
                 $(b,timed out).")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"TRACE.csv"
           ~doc:"Resume from a checkpoint written by $(b,--save-trace): \
                 reuse every completed output and re-execute only the failed \
                 frontier and its descendants (a single run; $(b,--runs) is \
                 ignored). With $(b,--checkpoint-store) this is a record \
                 key, not a file path.")
  in
  let save_trace_arg =
    Arg.(value & opt (some string) None & info [ "save-trace" ] ~docv:"OUT.csv"
           ~doc:"Write the last run's trace as a resumable checkpoint. With \
                 $(b,--checkpoint-store) this is a record key, not a file \
                 path.")
  in
  let checkpoint_store_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint-store" ]
           ~docv:"DIR"
           ~doc:"Keep checkpoints in the crash-safe record store at this \
                 directory instead of bare CSV files: \
                 $(b,--save-trace)/$(b,--resume) then name records in the \
                 store (appended with checksums, recovered after crashes), \
                 not files.")
  in
  let run file runs workers failure_rate retries backoff timeout resume
      save_trace checkpoint_store save metrics trace =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let spec = View.spec view in
      let module Engine = Wolves_engine.Engine in
      let module Store = Wolves_provenance.Store in
      let duration = Engine.durations_from_attrs spec in
      let config seed =
        { Engine.default_config with
          Engine.workers;
          failure_rate;
          seed;
          duration;
          policy = Engine.Critical_path_first;
          retries;
          backoff;
          timeout }
      in
      let fault_summary traces =
        let count f =
          List.fold_left
            (fun acc trace ->
              acc
              + List.length (List.filter f trace.Engine.events))
            0 traces
        in
        let crashed e = e.Engine.outcome = Engine.Crashed in
        let timed_out e = e.Engine.outcome = Engine.Timed_out in
        let final_crashes =
          List.fold_left
            (fun acc trace ->
              acc
              + List.length
                  (List.filter
                     (fun t -> Engine.outcome_of trace t = Engine.Crashed)
                     (Spec.tasks spec)))
            0 traces
        in
        Printf.printf
          "faults: %d crashed attempts (%d unrecovered), %d timeouts\n"
          (count crashed) final_crashes (count timed_out)
      in
      let save_last_trace trace =
        match save_trace with
        | None -> Ok ()
        | Some path ->
          let saved, where =
            match checkpoint_store with
            | Some dir ->
              ( Engine.save_trace_store dir ~id:path trace,
                Printf.sprintf "record %S in store %s" path dir )
            | None -> (Engine.save_trace path trace, path)
          in
          (match saved with
           | Ok () ->
             Printf.printf "checkpointed trace to %s\n" where;
             Ok ()
           | Error msg -> Error msg)
      in
      let load_checkpoint path =
        match checkpoint_store with
        | Some dir -> Engine.load_trace_store spec dir ~id:path
        | None -> Engine.load_trace spec path
      in
      (match
         try
           Engine.validate_config (config 0);
           None
         with Invalid_argument msg -> Some msg
       with
       | Some msg -> fail "%s" msg
       | None ->
      match resume with
       | Some trace_file ->
         (match
            with_observability metrics trace (fun () ->
                match load_checkpoint trace_file with
                | Error msg -> Error msg
                | Ok { Engine.trace = prior; dropped_row } ->
                  let resumed = Engine.resume ~config:(config 1) prior in
                  Ok (prior, dropped_row, resumed))
          with
          | Error msg -> fail "%s: %s" trace_file msg
          | Ok (prior, dropped_row, resumed) ->
            (* stderr: stdout belongs to the command's own output, and
               --json consumers parse it *)
            (match dropped_row with
             | Some row ->
               Printf.eprintf
                 "warning: dropped torn checkpoint tail %S (crash during \
                  checkpoint write)\n"
                 row
             | None -> ());
            let n = Spec.n_tasks spec in
            let reused = List.length (Engine.reused_tasks resumed) in
            let executed = List.length (Engine.executed_tasks resumed) in
            Printf.printf
              "resumed from %s: reused %d/%d outputs, re-executed %d \
               (%.0f%% of tasks)\n"
              trace_file reused n executed
              (100.0 *. float_of_int executed /. float_of_int n);
            let full_work = Engine.total_work (config 1) spec in
            Printf.printf
              "work: %.2f of %.2f simulated seconds (saved %.0f%%); \
               makespan %.2f (prior attempt: %.2f)\n"
              resumed.Engine.busy_time full_work
              (100.0 *. (1.0 -. (resumed.Engine.busy_time /. full_work)))
              resumed.Engine.makespan prior.Engine.makespan;
            fault_summary [ resumed ];
            (match save_last_trace resumed with
             | Ok () -> `Ok ()
             | Error msg -> fail "%s" msg))
       | None ->
         let store = Store.create spec in
         let makespans = ref [] in
         let last_trace = ref None in
         with_observability metrics trace (fun () ->
             for seed = 1 to runs do
               let trace = Engine.run ~config:(config seed) spec in
               last_trace := Some trace;
               makespans := trace.Engine.makespan :: !makespans;
               match Store.record_run store (Engine.statuses trace) with
               | Ok _ -> ()
               | Error msg -> failwith msg
             done);
         let mean =
           List.fold_left ( +. ) 0.0 !makespans /. float_of_int runs
         in
         Printf.printf "%d runs on %d workers, failure rate %.2f\n" runs
           workers failure_rate;
         if retries > 0 || timeout <> None then
           Printf.printf "fault tolerance: %d retries, backoff %.2f%s\n"
             retries backoff
             (match timeout with
              | Some cap -> Printf.sprintf ", timeout %.2f" cap
              | None -> "");
         let base = { Engine.default_config with Engine.duration } in
         Printf.printf
           "mean makespan %.2f (critical path %.2f, total work %.2f)\n" mean
           (Engine.critical_path_length base spec)
           (Engine.total_work base spec);
         (match !last_trace with
          | Some t -> fault_summary [ t ]
          | None -> ());
         print_endline "per-task success rates:";
         List.iter
           (fun t ->
             Printf.printf "  %-40s %.0f%%\n" (Spec.task_name spec t)
               (100.0 *. Store.success_rate store t))
           (Spec.tasks spec);
         (match !last_trace with
          | Some t ->
            (match save_last_trace t with
             | Ok () -> ()
             | Error msg -> failwith msg)
          | None -> ());
         (match save with
          | None -> `Ok ()
          | Some path ->
            (match Store.save_csv store path with
             | Ok () ->
               Printf.printf "saved runs to %s\n" path;
               `Ok ()
             | Error msg -> fail "%s" msg)))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Execute the workflow repeatedly on the simulation engine, feed the \
          provenance store, and report makespan and per-task success rates. \
          Supports fault tolerance: $(b,--retries)/$(b,--backoff) for crash \
          recovery, $(b,--timeout) for runaway tasks, and \
          $(b,--save-trace)/$(b,--resume) for checkpoint/resume.")
    Term.(ret (const run $ file_arg $ runs_arg $ workers_arg $ fail_arg
               $ retries_arg $ backoff_arg $ timeout_arg $ resume_arg
               $ save_trace_arg $ checkpoint_store_arg $ save_arg
               $ metrics_arg $ trace_arg))

(* --- diagnose --- *)

let diagnose_cmd =
  let run file =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let spec = View.spec view in
      let report = S.validate view in
      if report.S.unsound = [] then begin
        print_endline "view is sound; nothing to diagnose";
        `Ok ()
      end
      else begin
        List.iter
          (fun (c, witnesses) ->
            Printf.printf "composite %S is unsound (%d violating pairs)\n"
              (View.composite_name view c)
              (List.length witnesses);
            let members = View.members view c in
            let set =
              Wolves_graph.Bitset.of_list (Spec.n_tasks spec) members
            in
            (match S.classify_unsound spec set with
             | Some kind ->
               Format.printf "  pattern: %a@." S.pp_unsoundness_kind kind
             | None -> ());
            match S.minimal_unsound_core spec set with
            | None -> ()
            | Some core ->
              Printf.printf "  minimal unsound core (%d of %d tasks): {%s}\n"
                (Wolves_graph.Bitset.cardinal core)
                (List.length members)
                (String.concat ", "
                   (List.map (Spec.task_name spec)
                      (Wolves_graph.Bitset.elements core)));
              Printf.printf
                "  every other member can stay; splitting these apart (or \
                 absorbing their suppliers/consumers) restores soundness\n")
          report.S.unsound;
        `Ok ()
      end
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Explain unsound composites: the minimal subset of tasks that is \
          still unsound (removing any one of them restores soundness).")
    Term.(ret (const run $ file_arg))

(* --- resolve --- *)

let resolve_cmd =
  let run file output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let resolved, decisions = C.resolve_auto view in
      if decisions = [] then print_endline "view already sound"
      else
        List.iter
          (fun d -> Format.printf "%a@." C.pp_decision d)
          decisions;
      print_string (Render.view_summary resolved);
      Option.iter (fun path -> write_file path (serialize_view path resolved)) output;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "resolve"
       ~doc:
         "Resolve every unsound composite by whichever of splitting or \
          merging is cheaper (mixed strategy; the paper's open problem).")
    Term.(ret (const run $ file_arg $ output_arg))

(* --- report --- *)

let report_cmd =
  let run file output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let spec = View.spec view in
      let buf = Buffer.create 4096 in
      let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      add "# WOLVES report: %s\n\n" (Spec.name spec);
      add "%d tasks, %d dependencies, %d composites (%.1fx compression).\n\n"
        (Spec.n_tasks spec) (Spec.n_dependencies spec)
        (View.n_composites view) (View.compression view);
      (* validation *)
      let report = S.validate view in
      add "## Validation\n\n";
      if report.S.unsound = [] then add "The view is **sound**.\n\n"
      else begin
        add "The view is **UNSOUND**: %d of %d composites.\n\n"
          (List.length report.S.unsound)
          (View.n_composites view);
        List.iter
          (fun (c, witnesses) ->
            add "- `%s`: %d missing paths" (View.composite_name view c)
              (List.length witnesses);
            let members = View.members view c in
            let set = Wolves_graph.Bitset.of_list (Spec.n_tasks spec) members in
            (match S.minimal_unsound_core spec set with
             | Some core ->
               add " (minimal core: %s)"
                 (String.concat ", "
                    (List.map (Spec.task_name spec)
                       (Wolves_graph.Bitset.elements core)))
             | None -> ());
            add "\n")
          report.S.unsound;
        add "\n"
      end;
      (* provenance damage *)
      let stats = Wolves_provenance.Provenance.evaluate_view_items view in
      add "## Provenance impact\n\n";
      add
        "Item-granularity audit: %d queries, %d wrong answers (%.1f%%), 0 \
         missed dependencies.\n\n"
        stats.Wolves_provenance.Provenance.queries
        stats.Wolves_provenance.Provenance.spurious
        (100.0
        *. Wolves_provenance.Provenance.spurious_rate stats);
      (* correction *)
      if report.S.unsound <> [] then begin
        let corrected, outcomes = C.correct C.Strong view in
        add "## Correction (strong local optimality)\n\n";
        List.iter
          (fun (c, o) ->
            add "- `%s` split into %d sound parts%s\n"
              (View.composite_name view c)
              (List.length o.C.parts)
              (if o.C.certified_strong then " (certified)" else ""))
          outcomes;
        let stats' =
          Wolves_provenance.Provenance.evaluate_view_items corrected
        in
        add
          "\nAfter correction: %d composites, %d wrong provenance answers.\n\n"
          (View.n_composites corrected)
          stats'.Wolves_provenance.Provenance.spurious
      end;
      (* interface catalog *)
      add "%s" (Wolves_core.Interface.to_markdown view);
      let text = Buffer.contents buf in
      (match output with
       | Some path ->
         write_file path text;
         Printf.printf "wrote %s\n" path
       | None -> print_string text);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Produce a markdown report: validation, minimal unsound cores, \
          provenance impact, correction, and the composite interface catalog.")
    Term.(ret (const run $ file_arg $ output_arg))

(* --- edit --- *)

let edit_cmd =
  let script_arg =
    Arg.(value & opt (some file) None & info [ "script" ] ~docv:"SCRIPT"
           ~doc:"Run editor commands from a file instead of stdin.")
  in
  let run file script output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let module Editor = Wolves_cli.Editor in
      let editor = Editor.create view in
      (match script with
       | Some path ->
         let lines =
           In_channel.with_open_text path In_channel.input_lines
         in
         List.iter print_endline (Editor.run_script editor lines)
       | None ->
         print_endline
           "WOLVES view designer; 'help' lists commands, 'quit' leaves.";
         let continue_ = ref true in
         while !continue_ do
           print_string "wolves> ";
           (match In_channel.input_line stdin with
            | None -> continue_ := false
            | Some line ->
              (match Editor.execute editor line with
               | `Ok "" -> ()
               | `Ok msg -> print_endline msg
               | `Error msg -> Printf.printf "error: %s\n" msg
               | `Quit -> continue_ := false))
         done);
      let final =
        Wolves_core.Session.current_view (Editor.session editor)
      in
      Option.iter (fun path -> write_file path (serialize_view path final)) output;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "edit"
       ~doc:
         "Design a view interactively (the demo GUI as a REPL): create/move/\
          dissolve composites with instant validation, correct, diagnose, \
          undo; -o saves the result.")
    Term.(ret (const run $ file_arg $ script_arg $ output_arg))

(* --- evolve --- *)

let evolve_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
           ~doc:"Old workflow+view document.")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"New workflow document (its view is ignored).")
  in
  let run old_file new_file output =
    match (load_view old_file, load_view new_file) with
    | Error msg, _ | _, Error msg -> fail "%s" msg
    | Ok old_view, Ok new_view ->
      let module Ev = Wolves_core.Evolution in
      let old_spec = View.spec old_view in
      let new_spec = View.spec new_view in
      let d = Ev.diff old_spec new_spec in
      Format.printf "%a@." Ev.pp_diff d;
      if Ev.is_empty d then print_endline "specifications are identical"
      else begin
        let report = Ev.impact old_view new_spec in
        Format.printf "%a@." Ev.pp_impact report;
        print_string (Render.view_summary report.Ev.new_view);
        Option.iter
          (fun path -> write_file path (serialize_view path report.Ev.new_view))
          output
      end;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Diff two workflow versions, migrate the old view onto the new \
          specification, and report which composites broke or were repaired.")
    Term.(ret (const run $ old_arg $ new_arg $ output_arg))

(* --- suggest --- *)

let suggest_cmd =
  let method_arg =
    Arg.(value & opt (enum [ ("greedy", `Greedy); ("banding", `Banding);
                             ("regions", `Regions) ])
           `Banding
         & info [ "method" ] ~docv:"METHOD"
             ~doc:"greedy | banding (optimal contiguous) | regions (fork-join).")
  in
  let size_arg =
    Arg.(value & opt int 8 & info [ "max-size" ] ~docv:"K"
           ~doc:"Maximum composite size (greedy/banding).")
  in
  let run file method_ max_size output =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      let spec = View.spec view in
      let module Suggest = Wolves_core.Suggest in
      let groups =
        match method_ with
        | `Greedy -> Suggest.greedy_sound_groups spec ~max_size
        | `Banding -> Suggest.optimal_sound_banding spec ~max_size
        | `Regions -> Suggest.fork_join_regions spec
      in
      let suggested = Suggest.view_of_groups spec groups in
      Printf.printf
        "suggested a sound view with %d composites (%.1fx compression)\n"
        (View.n_composites suggested)
        (View.compression suggested);
      print_string (Render.view_summary suggested);
      Option.iter (fun path -> write_file path (serialize_view path suggested)) output;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:
         "Construct a sound view automatically (greedy sound groups, optimal \
          contiguous banding, or fork-join region collapse).")
    Term.(ret (const run $ file_arg $ method_arg $ size_arg $ output_arg))

(* --- stats --- *)

(* --- lint --- *)

module Lint = Wolves_lint.Lint
module Lint_fix = Wolves_lint.Fix
module Lint_diag = Wolves_lint.Diagnostic
module Sarif = Wolves_lint.Sarif

let lint_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Workflow documents to lint ($(b,.wf) DSL or MoML).")
  in
  let rules_arg =
    Arg.(value & opt (some (list string)) None & info [ "rules" ]
           ~docv:"ID,..." ~doc:"Only run these rules (comma-separated ids).")
  in
  let disable_arg =
    Arg.(value & opt (list string) [] & info [ "disable" ] ~docv:"ID,..."
           ~doc:"Skip these rules (comma-separated ids).")
  in
  let threshold_arg =
    let sev_conv =
      Arg.conv
        ( (fun s ->
            match Lint_diag.severity_of_string s with
            | Some s -> Ok s
            | None -> Error (`Msg (Printf.sprintf "unknown severity %S" s))),
          fun ppf s ->
            Format.pp_print_string ppf (Lint_diag.severity_to_string s) )
    in
    Arg.(value & opt sev_conv Lint_diag.Hint & info [ "severity-threshold" ]
           ~docv:"SEVERITY"
           ~doc:"Report only diagnostics at least this severe: $(b,hint), \
                 $(b,warning) or $(b,error).")
  in
  let fan_arg =
    Arg.(value & opt int 8 & info [ "fan-threshold" ] ~docv:"N"
           ~doc:"Degree at which $(b,spec/fan-bottleneck) fires.")
  in
  let fix_flag =
    Arg.(value & flag & info [ "fix" ]
           ~doc:"Apply every machine-applicable fix in place (redundant \
                 edges dropped, unsound composites split, combinable \
                 composites merged) and report what remains.")
  in
  let sarif_arg =
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"OUT.sarif"
           ~doc:"Also write a SARIF 2.1.0 report to this file.")
  in
  let run files rules disabled threshold fan_threshold fix sarif json color
      metrics trace =
    let config = { Lint.rules; disabled; threshold; fan_threshold } in
    match Lint.validate_config config with
    | Error msg -> fail "%s" msg
    | Ok () ->
      let lint_one file =
        if fix then
          match Lint_fix.fix_file ~config file with
          | Error msg -> Error msg
          | Ok applied ->
            List.iter
              (fun a ->
                Printf.printf "%s: %s\n" file
                  (Format.asprintf "%a" Lint_fix.pp_applied a))
              applied;
            Lint.run_file ~config file
        else Lint.run_file ~config file
      in
      let result =
        with_observability metrics trace (fun () ->
            List.fold_left
              (fun acc file ->
                match acc with
                | Error _ as e -> e
                | Ok diagnostics ->
                  Result.map
                    (fun ds -> diagnostics @ ds)
                    (lint_one file))
              (Ok []) files)
      in
      (match result with
       | Error msg -> fail "%s" msg
       | Ok diagnostics ->
         Option.iter
           (fun path -> write_file path (Sarif.report diagnostics))
           sarif;
         if json then
           print_endline (Json.to_string ~pretty:true (Lint.to_json diagnostics))
         else print_string (Lint.to_terminal ~color diagnostics);
         if Lint.errors diagnostics > 0 then exit 1 else `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse workflow documents: spec-level structure \
          (orphans, redundant edges, disconnected pipelines, fan \
          bottlenecks), view-level soundness (unsound composites with \
          minimal witnesses, degenerate/monolithic views, combinable \
          composites) and $(b,.wf)-source style. Exits 1 when any \
          error-severity diagnostic remains; $(b,--fix) applies \
          machine-applicable fixes in place.")
    Term.(ret (const run $ files_arg $ rules_arg $ disable_arg
               $ threshold_arg $ fan_arg $ fix_flag $ sarif_arg $ json_arg
               $ color_arg $ metrics_arg $ trace_arg))

(* --- analyze --- *)

module Flow = Wolves_analysis.Flow
module Annot = Wolves_analysis.Annot
module Labels = Wolves_graph.Labels

(* The static dependency analyses (fine-grained flow over [deps]
   annotations) surfaced as a focused command: the annotation rules of the
   lint engine, plus label-index diagnostics and annotation inference. *)
let analyze_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Workflow documents to analyse ($(b,.wf) DSL or MoML).")
  in
  let labels_flag =
    Arg.(value & flag & info [ "labels" ]
           ~doc:"Build the reachability label index (rank + dominator \
                 intervals + chains), cross-validate it against the dense \
                 closure and report its size.")
  in
  let infer_flag =
    Arg.(value & flag & info [ "infer" ]
           ~doc:"Infer the minimal dependency annotations for every output \
                 lacking an entry and print them as paste-ready $(b,deps) \
                 blocks.")
  in
  let sarif_arg =
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"OUT.sarif"
           ~doc:"Also write a SARIF 2.1.0 report of the diagnostics to this \
                 file.")
  in
  (* The DSL only admits quoted names; escape the two characters its
     lexer understands. *)
  let quote name =
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      name;
    Buffer.add_char buf '"';
    Buffer.contents buf
  in
  let deps_block spec { Annot.inf_task; inf_entries } =
    Printf.sprintf "  deps %s {%s }"
      (quote (Spec.task_name spec inf_task))
      (String.concat ""
         (List.map
            (fun (out, ins) ->
              Printf.sprintf " %s <-%s;"
                (quote (Spec.task_name spec out))
                (String.concat ""
                   (List.map
                      (fun i -> " " ^ quote (Spec.task_name spec i))
                      ins)))
            inf_entries))
  in
  let load file =
    if Filename.check_suffix file ".wf" then
      match Wolves_lang.Wfdsl.load_with_source file with
      | Ok (_, view, source) -> Ok (view, Some source)
      | Error e -> Error (Format.asprintf "%a" Wolves_lang.Wfdsl.pp_error e)
    else
      match Moml.load file with
      | Ok (_, view) -> Ok (view, None)
      | Error e -> Error (Format.asprintf "%s: %a" file Moml.pp_error e)
  in
  let analysis_rules =
    [ "spec/annotation-inconsistent"; "spec/annotation-incomplete";
      "spec/dead-data"; "view/hidden-dependency" ]
  in
  let run files labels infer sarif json color metrics trace domains =
    with_domains domains @@ fun () ->
    let config =
      { Lint.default_config with Lint.rules = Some analysis_rules }
    in
    let analyze_one file =
      Result.map
        (fun (view, source) ->
          let spec = View.spec view in
          let diagnostics = Lint.run ~config ~file ?source view in
          let label_report =
            if not labels then None
            else begin
              let index = Spec.labels spec in
              let disagreement =
                Labels.cross_validate index (Spec.reach spec)
              in
              Some (index, disagreement)
            end
          in
          let inferred =
            if infer then Some (Annot.infer spec) else None
          in
          (file, spec, diagnostics, label_report, inferred))
        (load file)
    in
    let result =
      with_observability metrics trace (fun () ->
          List.fold_left
            (fun acc file ->
              match acc with
              | Error _ as e -> e
              | Ok rows -> Result.map (fun r -> r :: rows) (analyze_one file))
            (Ok []) files)
    in
    match Result.map List.rev result with
    | Error msg -> fail "%s" msg
    | Ok rows ->
      let diagnostics = List.concat_map (fun (_, _, ds, _, _) -> ds) rows in
      Option.iter
        (fun path -> write_file path (Sarif.report diagnostics))
        sarif;
      let labels_ok =
        List.for_all
          (fun (_, _, _, lr, _) ->
            match lr with Some (_, Some _) -> false | _ -> true)
          rows
      in
      if json then begin
        let row_json (file, spec, ds, label_report, inferred) =
          Json.Obj
            (List.concat
               [ [ ("file", Json.String file);
                   ("diagnostics", Lint.to_json ds) ];
                 (match label_report with
                  | None -> []
                  | Some (index, disagreement) ->
                    [ ( "labels",
                        Json.Obj
                          [ ("tasks", Json.Int (Labels.graph_size index));
                            ("chains", Json.Int (Labels.n_chains index));
                            ( "index_words",
                              Json.Int (Labels.index_words index) );
                            ( "agrees_with_closure",
                              Json.Bool (disagreement = None) ) ] ) ]);
                 (match inferred with
                  | None -> []
                  | Some result ->
                    [ ( "inferred",
                        Json.List
                          (List.map
                             (fun i ->
                               Json.Obj
                                 [ ( "task",
                                     Json.String
                                       (Spec.task_name spec i.Annot.inf_task)
                                   );
                                   ( "entries",
                                     Json.List
                                       (List.map
                                          (fun (o, ins) ->
                                            Json.Obj
                                              [ ( "output",
                                                  Json.String
                                                    (Spec.task_name spec o) );
                                                ( "inputs",
                                                  Json.List
                                                    (List.map
                                                       (fun p ->
                                                         Json.String
                                                           (Spec.task_name
                                                              spec p))
                                                       ins) ) ])
                                          i.Annot.inf_entries) ) ])
                             result.Annot.inferred) );
                      ( "inference_iterations",
                        Json.Int result.Annot.iterations ) ]) ])
        in
        print_endline
          (Json.to_string ~pretty:true (Json.List (List.map row_json rows)))
      end
      else begin
        List.iter
          (fun (file, spec, ds, label_report, inferred) ->
            if ds <> [] then print_string (Lint.to_terminal ~color ds);
            (match label_report with
             | None -> ()
             | Some (index, disagreement) ->
               (match disagreement with
                | None ->
                  Printf.printf
                    "%s: label index over %d tasks: %d chains, %d words, \
                     agrees with the dense closure\n"
                    file (Labels.graph_size index) (Labels.n_chains index)
                    (Labels.index_words index)
                | Some (u, v) ->
                  Printf.printf
                    "%s: LABEL INDEX DISAGREES with the closure on tasks \
                     (%s, %s)\n"
                    file
                    (Spec.task_name spec u)
                    (Spec.task_name spec v)));
            match inferred with
            | None -> ()
            | Some result ->
              if result.Annot.inferred = [] then
                Printf.printf
                  "%s: every output already has a dependency entry\n" file
              else begin
                Printf.printf "%s: inferred annotations (paste into the \
                               workflow block):\n"
                  file;
                List.iter
                  (fun i -> print_endline (deps_block spec i))
                  result.Annot.inferred
              end)
          rows
      end;
      if Lint.errors diagnostics > 0 || not labels_ok then exit 1 else `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static dependency analysis over $(b,deps) annotations: validate \
          them (inconsistent or incomplete entries), detect dead-data \
          edges and hidden dependencies concealed by composites, \
          cross-validate the reachability label index ($(b,--labels)) and \
          infer minimal missing annotations ($(b,--infer)). Exits 1 when \
          any error-severity diagnostic remains or a label index \
          disagrees with the closure.")
    Term.(ret (const run $ files_arg $ labels_flag $ infer_flag $ sarif_arg
               $ json_arg $ color_arg $ metrics_arg $ trace_arg
               $ domains_arg))

let stats_cmd =
  let prom_flag =
    Arg.(value & flag & info [ "prom" ]
           ~doc:"Print the registry as a Prometheus text-format exposition \
                 page (the same renderer behind the server's $(b,METRICS) \
                 verb) instead of tables.")
  in
  let run file criterion json prom metrics =
    match load_view file with
    | Error msg -> fail "%s" msg
    | Ok view ->
      Metrics.reset ();
      let (report, pstats), elapsed =
        Metrics.enabled (fun () ->
            Render.time (fun () ->
                let report = S.validate view in
                if report.S.unsound <> [] then ignore (C.correct criterion view);
                (report, P.evaluate_view view)))
      in
      let snap = Metrics.snapshot () in
      Option.iter
        (fun path ->
          try write_file path (Metrics.snapshot_to_json snap)
          with Sys_error msg -> report_io_failure "metrics dump" msg)
        metrics;
      if prom then
        print_string (Wolves_obs.Prom.render snap)
      else if json then
        (* The summary object is assembled with the CLI's Json type; the
           registry dump is already JSON text, so splice it in verbatim. *)
        Printf.printf "{\"summary\":%s,\"metrics\":%s}\n"
          (Json.to_string ~pretty:false
             (Json.Obj
                [ ("workflow", Json.String (Spec.name (View.spec view)));
                  ("sound", Json.Bool (report.S.unsound = []));
                  ("wall_time_s", Json.Float elapsed);
                  ("provenance_queries", Json.Int pstats.P.queries);
                  ("spurious_answers", Json.Int pstats.P.spurious) ]))
          (Metrics.snapshot_to_json snap)
      else begin
        Printf.printf
          "instrumented validate%s + provenance audit: %.4fs wall time\n"
          (if report.S.unsound = [] then ""
           else
             Format.asprintf " + correct (%a)" C.pp_criterion criterion)
          elapsed;
        if snap.Metrics.counters <> [] then begin
          print_endline "counters:";
          print_endline
            (Table.render ~header:[ "name"; "value" ]
               (List.map
                  (fun (name, v) -> [ name; string_of_int v ])
                  snap.Metrics.counters))
        end;
        if snap.Metrics.gauges <> [] then begin
          print_endline "gauges:";
          print_endline
            (Table.render ~header:[ "name"; "value" ]
               (List.map
                  (fun (name, v) -> [ name; Printf.sprintf "%g" v ])
                  snap.Metrics.gauges))
        end;
        let live_timers =
          List.filter (fun (_, st) -> st.Metrics.count > 0) snap.Metrics.timers
        in
        if live_timers <> [] then begin
          print_endline "timers:";
          print_endline
            (Table.render
               ~header:[ "name"; "count"; "total"; "mean"; "max" ]
               (List.map
                  (fun (name, st) ->
                    [ name;
                      string_of_int st.Metrics.count;
                      Printf.sprintf "%.6fs" st.Metrics.sum;
                      Printf.sprintf "%.6fs"
                        (st.Metrics.sum /. float_of_int st.Metrics.count);
                      Printf.sprintf "%.6fs" st.Metrics.max ])
                  live_timers))
        end
      end;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an instrumented workload (validate, correct when unsound, \
          whole-view provenance audit) and report the Wolves_obs registry: \
          soundness checks vs pruning probes, cache hit rates, timer \
          histograms. $(b,--metrics) additionally dumps the raw registry as \
          JSON; $(b,--prom) prints Prometheus text exposition instead.")
    Term.(ret (const run $ file_arg $ criterion_arg $ json_arg $ prom_flag
               $ metrics_arg))

(* --- profile --- *)

let profile_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"Trace file written by $(b,--trace): Chrome trace-event JSON \
                 ($(b,.json)) or JSONL ($(b,.jsonl)).")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~docv:"K"
           ~doc:"Rows in the top-spans tables.")
  in
  let span_table rows =
    Table.render
      ~header:[ "span path"; "count"; "total"; "self"; "max" ]
      (List.map
         (fun r ->
           [ r.Trace_profile.path;
             string_of_int r.Trace_profile.count;
             Printf.sprintf "%.6fs" r.Trace_profile.total_s;
             Printf.sprintf "%.6fs" r.Trace_profile.self_s;
             Printf.sprintf "%.6fs" r.Trace_profile.max_s ])
         rows)
  in
  let run file k =
    if k < 1 then fail "--top must be at least 1"
    else
      match Trace_profile.load file with
      | Error msg -> fail "%s" msg
      | Ok events ->
        let p = Trace_profile.of_events events in
        Printf.printf "%s: %d events, %.6fs wall time" file
          p.Trace_profile.events p.Trace_profile.wall_s;
        if p.Trace_profile.orphans > 0 then
          Printf.printf
            ", %d orphaned end events (begins evicted by the ring)"
            p.Trace_profile.orphans;
        print_newline ();
        (match Trace_profile.phases p with
         | [] -> print_endline "no completed spans in the trace"
         | phase_rows ->
           print_endline "phases (top-level spans):";
           print_endline (span_table phase_rows);
           Printf.printf "top %d spans by self time:\n" k;
           print_endline (span_table (Trace_profile.top_self ~k p));
           Printf.printf "top %d spans by total time:\n" k;
           print_endline (span_table (Trace_profile.top_total ~k p)));
        if p.Trace_profile.instants <> [] then begin
          print_endline "instant events:";
          print_endline
            (Table.render ~header:[ "name"; "count" ]
               (List.map
                  (fun (name, n) -> [ name; string_of_int n ])
                  p.Trace_profile.instants))
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Summarise a recorded trace: per-phase breakdown, the top spans by \
          self and total time, and instant-event counts. Self time is a \
          span's duration minus its directly nested spans, so the table \
          points at the code actually burning the wall clock.")
    Term.(ret (const run $ trace_file_arg $ top_arg))

(* --- store --- *)

let store_cmd =
  let module St = Wolves_storage.Store in
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Store directory.")
  in
  let fail_store e = fail "%a" St.pp_error e in
  let init_cmd =
    let shards_arg =
      Arg.(value & opt int St.default_config.St.shards
           & info [ "shards" ] ~docv:"N"
               ~doc:"Spread segment files over N shards (1-256).")
    in
    let segment_bytes_arg =
      Arg.(value & opt int St.default_config.St.segment_bytes
           & info [ "segment-bytes" ] ~docv:"B"
               ~doc:"Roll to a fresh segment file past B bytes.")
    in
    let run dir shards segment_bytes =
      match
        St.init ~config:{ St.shards; segment_bytes } dir
      with
      | exception Invalid_argument msg -> fail "%s" msg
      | Error e -> fail_store e
      | Ok store ->
        (match St.close store with
         | Ok () ->
           Printf.printf "initialised empty store at %s (%d shards)\n" dir
             shards;
           `Ok ()
         | Error e -> fail_store e)
    in
    Cmd.v
      (Cmd.info "init" ~doc:"Create an empty store.")
      Term.(ret (const run $ dir_arg $ shards_arg $ segment_bytes_arg))
  in
  let ingest_cmd =
    let from_arg =
      Arg.(value & opt (some dir) None & info [ "from" ] ~docv:"MOMLDIR"
             ~doc:"Ingest every .moml workflow of this directory.")
    in
    let synthesize_arg =
      Arg.(value & flag & info [ "synthesize" ]
             ~doc:"Ingest a synthesized corpus (all workflow families x \
                   sizes x view policies) instead of reading files.")
    in
    let seed_arg =
      Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
             ~doc:"PRNG seed for $(b,--synthesize).")
    in
    let per_cell_arg =
      Arg.(value & opt int 2 & info [ "per-cell" ] ~docv:"N"
             ~doc:"Synthesized workflows per family x size x policy cell.")
    in
    let sizes_arg =
      Arg.(value & opt (list int) [ 12; 24 ] & info [ "sizes" ] ~docv:"N,..."
             ~doc:"Workflow sizes (task counts) for $(b,--synthesize).")
    in
    let run dir from synthesize seed per_cell sizes =
      let repo =
        match (from, synthesize) with
        | Some _, true -> Error "--from and --synthesize are exclusive"
        | None, false -> Error "need --from DIR or --synthesize"
        | Some moml_dir, false ->
          Result.map_error
            (Format.asprintf "%a" R.pp_io_error)
            (R.load_dir moml_dir)
        | None, true -> Ok (R.synthesize ~seed ~per_cell ~sizes ())
      in
      match repo with
      | Error msg -> fail "%s" msg
      | Ok repo ->
        (match R.save_store dir repo with
         | Error e -> fail "%a" R.pp_io_error e
         | Ok () ->
           Printf.printf "ingested %d workflow(s) into %s\n" (R.size repo) dir;
           `Ok ())
    in
    Cmd.v
      (Cmd.info "ingest"
         ~doc:
           "Append workflows to the store (created if absent), either from \
            a directory of MoML files or synthesized. Re-ingesting an id \
            supersedes its earlier record.")
      Term.(ret (const run $ dir_arg $ from_arg $ synthesize_arg $ seed_arg
                 $ per_cell_arg $ sizes_arg))
  in
  let verify_cmd =
    let run dir json =
      match St.verify dir with
      | Error e -> fail_store e
      | Ok report ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("segments", Json.Int report.St.v_segments);
                    ("records", Json.Int report.St.v_records);
                    ("bytes", Json.Int report.St.v_bytes);
                    ( "issues",
                      Json.List
                        (List.map
                           (fun (i : St.issue) ->
                             Json.Obj
                               [ ("file", Json.String i.St.file);
                                 ("offset", Json.Int i.St.offset);
                                 ("torn", Json.Bool i.St.torn);
                                 ("reason", Json.String i.St.reason) ])
                           report.St.issues) ) ]))
        else begin
          Printf.printf "%d segment(s), %d record(s), %d bytes\n"
            report.St.v_segments report.St.v_records report.St.v_bytes;
          List.iter
            (fun (i : St.issue) ->
              Printf.printf "%s: %s at offset %d: %s\n"
                (if i.St.torn then "TORN" else "CORRUPT")
                i.St.file i.St.offset i.St.reason)
            report.St.issues
        end;
        if report.St.issues = [] then begin
          if not json then print_endline "store verifies clean";
          `Ok ()
        end
        else exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Read-only integrity scan: recompute every record checksum and \
            the catalog checksum. Exits 1 when any issue is found; nothing \
            is repaired (use $(b,recover)).")
      Term.(ret (const run $ dir_arg $ json_arg))
  in
  let recover_cmd =
    let run dir =
      match St.open_ dir with
      | Error e -> fail_store e
      | Ok (store, r) ->
        Printf.printf
          "scanned %d segment(s), recovered %d record(s)\n"
          r.St.segments_scanned r.St.records_recovered;
        List.iter
          (fun (file, kept, dropped) ->
            Printf.printf "truncated %s: kept %d byte(s), dropped %d\n" file
              kept dropped)
          r.St.truncations;
        List.iter
          (fun file -> Printf.printf "dropped segment %s\n" file)
          r.St.dropped_segments;
        List.iter
          (fun file -> Printf.printf "swept stale %s\n" file)
          r.St.swept_tmp;
        if r.St.manifest_rebuilt then
          print_endline "catalog was missing or corrupt: rebuilt from segments";
        if
          r.St.truncations = [] && r.St.dropped_segments = []
          && r.St.swept_tmp = []
          && not r.St.manifest_rebuilt
        then print_endline "store was already consistent";
        (match St.close store with
         | Ok () -> `Ok ()
         | Error e -> fail_store e)
    in
    Cmd.v
      (Cmd.info "recover"
         ~doc:
           "Open the store, running crash recovery: torn or corrupt tails \
            are truncated away, orphaned segments dropped, the catalog \
            rebuilt — the committed record prefix survives.")
      Term.(ret (const run $ dir_arg))
  in
  let stats_cmd =
    let run dir json =
      match St.open_ dir with
      | Error e -> fail_store e
      | Ok (store, _) ->
        let s = St.stats store in
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("shards", Json.Int s.St.n_shards);
                    ("segments", Json.Int s.St.n_segments);
                    ("records", Json.Int s.St.n_records);
                    ("bytes", Json.Int s.St.n_bytes);
                    ("next_lsn", Json.Int s.St.next_lsn);
                    ( "per_shard",
                      Json.List
                        (List.map
                           (fun (shard, segs, recs, bytes) ->
                             Json.Obj
                               [ ("shard", Json.Int shard);
                                 ("segments", Json.Int segs);
                                 ("records", Json.Int recs);
                                 ("bytes", Json.Int bytes) ])
                           s.St.per_shard) ) ]))
        else begin
          Printf.printf
            "%d shard(s), %d segment(s), %d record(s), %d bytes, next lsn %d\n"
            s.St.n_shards s.St.n_segments s.St.n_records s.St.n_bytes
            s.St.next_lsn;
          List.iter
            (fun (shard, segs, recs, bytes) ->
              Printf.printf "  shard %3d: %d segment(s), %4d record(s), %8d bytes\n"
                shard segs recs bytes)
            s.St.per_shard
        end;
        (match St.close store with
         | Ok () -> `Ok ()
         | Error e -> fail_store e)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Per-shard segment, record and byte counts.")
      Term.(ret (const run $ dir_arg $ json_arg))
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "The crash-safe sharded provenance store: checksummed append-only \
          segments plus an atomically swapped catalog. Subcommands: \
          $(b,init), $(b,ingest), $(b,verify), $(b,recover), $(b,stats).")
    [ init_cmd; ingest_cmd; verify_cmd; recover_cmd; stats_cmd ]

(* --- serve / call --- *)

module Srv = Wolves_server.Server
module Svc = Wolves_server.Service
module Sclient = Wolves_server.Client
module Sproto = Wolves_server.Protocol

let socket_arg =
  Arg.(value & opt (some string) None & info [ "unix-socket" ] ~docv:"PATH"
         ~doc:"Serve (or call) over a Unix domain socket at PATH.")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT"
         ~doc:"Serve (or call) over TCP on this port (0 picks a free one).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Bind/connect address for $(b,--port).")

let serve_cmd =
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Workflow documents to serve ($(b,.wf) or MoML); each is \
                 published under its basename without extension.")
  in
  let store_flag =
    Arg.(value & opt (some dir) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Serve every workflow of this $(b,wolves store) directory.")
  in
  let synthesize_flag =
    Arg.(value & flag & info [ "synthesize" ]
           ~doc:"Serve a synthesized corpus (all families x sizes x view \
                 policies) instead of reading files.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed for $(b,--synthesize).")
  in
  let per_cell_arg =
    Arg.(value & opt int 1 & info [ "per-cell" ] ~docv:"N"
           ~doc:"Synthesized workflows per family x size x policy cell.")
  in
  let sizes_arg =
    Arg.(value & opt (list int) [ 12; 24 ] & info [ "sizes" ] ~docv:"N,..."
           ~doc:"Workflow sizes (task counts) for $(b,--synthesize).")
  in
  let workers_arg =
    Arg.(value & opt int Srv.default_config.Srv.workers
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_arg =
    Arg.(value & opt int Srv.default_config.Srv.queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission queue bound; beyond it new connections are \
                   shed with $(b,OVERLOADED).")
  in
  let read_timeout_arg =
    Arg.(value & opt float Srv.default_config.Srv.read_timeout_s
         & info [ "read-timeout" ] ~docv:"S"
             ~doc:"Per-connection receive deadline in seconds (slow-loris \
                   defence).")
  in
  let write_timeout_arg =
    Arg.(value & opt float Srv.default_config.Srv.write_timeout_s
         & info [ "write-timeout" ] ~docv:"S"
             ~doc:"Per-connection send deadline in seconds.")
  in
  let max_request_arg =
    Arg.(value & opt int Srv.default_config.Srv.max_request_bytes
         & info [ "max-request-bytes" ] ~docv:"B"
             ~doc:"Longest accepted request line.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS"
           ~doc:"Default correction budget in milliseconds: bare \
                 $(b,CORRECT <id>) requests run \
                 $(b,Corrector.correct_with_deadline) under it (queue wait \
                 included), degrading optimal → strong → weak under load.")
  in
  let retry_after_arg =
    Arg.(value & opt int Srv.default_config.Srv.retry_after_ms
         & info [ "retry-after" ] ~docv:"MS"
             ~doc:"Retry-after hint carried by $(b,OVERLOADED) replies.")
  in
  let access_log_arg =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one structured JSONL record per request (id, verb, \
                 deadline, queue wait, handler time, bytes, outcome) to \
                 FILE; $(b,-) logs to stderr.")
  in
  let log_level_arg =
    Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Minimum level written to the access log: debug, info, \
                 warn or error.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Log a $(b,slow_request) warning — with the request's span \
                 tree when it was sampled — for any request whose handler \
                 takes longer than MS milliseconds.")
  in
  let trace_sample_arg =
    Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Keep every Nth request's spans in the trace ring, \
                 drainable live with the $(b,TRACE) verb. 0 disables \
                 sampling.")
  in
  let trace_perfetto_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-perfetto" ] ~docv:"FILE"
             ~doc:"On shutdown, export the sampled spans still in the ring \
                   as Chrome trace-event JSON (openable in Perfetto). \
                   Requires $(b,--trace-sample).")
  in
  let run files store synthesize seed per_cell sizes host port socket workers
      queue_depth read_timeout write_timeout max_request_bytes deadline
      retry_after access_log log_level slow_ms trace_sample trace_perfetto
      metrics =
    let corpus =
      match (store, synthesize, files) with
      | Some dir, false, [] -> Svc.of_store dir
      | None, true, [] -> (
          match R.synthesize ~seed ~per_cell ~sizes () with
          | repo -> Ok (Svc.of_repository repo)
          | exception Invalid_argument msg -> Error msg)
      | None, false, (_ :: _ as files) -> Svc.of_files files
      | None, false, [] ->
        Error "nothing to serve: give FILEs, --store DIR or --synthesize"
      | _ -> Error "FILEs, --store and --synthesize are mutually exclusive"
    in
    match corpus with
    | Error msg -> fail "%s" msg
    | Ok service ->
      let listen =
        match (socket, port) with
        | Some path, None -> Ok (Srv.Unix_socket path)
        | None, Some port -> Ok (Srv.Tcp (host, port))
        | None, None -> Error "need --port or --unix-socket"
        | Some _, Some _ -> Error "--port and --unix-socket are exclusive"
      in
      match listen with
      | Error msg -> fail "%s" msg
      | Ok listen ->
        let config =
          { Srv.default_config with
            Srv.workers;
            queue_depth;
            read_timeout_s = read_timeout;
            write_timeout_s = write_timeout;
            max_request_bytes;
            default_deadline_ms = deadline;
            retry_after_ms = retry_after;
            slow_threshold_s = Option.map (fun ms -> ms /. 1e3) slow_ms;
            trace_sample }
        in
        let module Olog = Wolves_obs.Log in
        match Olog.level_of_string (String.lowercase_ascii log_level) with
        | None -> fail "unknown --log-level %s" log_level
        | Some level ->
        if trace_perfetto <> None && trace_sample = 0 then
          fail "--trace-perfetto needs --trace-sample N"
        else
        let log_channel =
          (* opened before the server starts so a bad path fails fast *)
          match access_log with
          | None -> Ok None
          | Some "-" -> Ok (Some (stderr, false))
          | Some path -> (
            try
              Ok
                (Some
                   ( open_out_gen [ Open_append; Open_creat ] 0o644 path,
                     true ))
            with Sys_error msg -> Error msg)
        in
        match log_channel with
        | Error msg -> fail "--access-log: %s" msg
        | Ok log_channel ->
        (match log_channel with
        | Some (oc, _) -> Olog.set ~level (Some (Olog.channel_sink oc))
        | None -> ());
        let close_log () =
          Olog.set None;
          match log_channel with
          | Some (oc, close) -> if close then close_out_noerr oc
          | None -> ()
        in
        with_metrics metrics (fun () ->
            match Srv.start ~config listen service with
            | exception Invalid_argument msg -> fail "%s" msg
            | Error msg -> fail "%s" msg
            | Ok server ->
              List.iter
                (fun s ->
                  try Sys.set_signal s
                        (Sys.Signal_handle (fun _ -> Srv.request_stop server))
                  with Invalid_argument _ | Sys_error _ -> ())
                [ Sys.sigint; Sys.sigterm ];
              let where =
                match Srv.address server with
                | Some (Unix.ADDR_INET (a, p)) ->
                  Printf.sprintf "tcp %s:%d" (Unix.string_of_inet_addr a) p
                | Some (Unix.ADDR_UNIX p) -> Printf.sprintf "unix %s" p
                | None -> "?"
              in
              Printf.printf
                "serving %d workflow(s) on %s: %d worker domain(s), queue \
                 %d\n%!"
                (Svc.size service) where config.Srv.workers
                config.Srv.queue_depth;
              (* SIGINT/SIGTERM flip the flag; everything else — drain,
                 join, unlink, metrics flush — happens here, in signal-free
                 context. *)
              while not (Srv.stop_requested server) do
                try Unix.sleepf 0.2
                with Unix.Unix_error (Unix.EINTR, _, _) -> ()
              done;
              Srv.stop server;
              (* the ring survives stop; export what sampling retained *)
              Option.iter
                (fun path ->
                  try
                    Trace_export.write Trace_export.Chrome
                      (Srv.trace_events server)
                      path
                  with Sys_error msg ->
                    report_io_failure "perfetto trace" msg)
                trace_perfetto;
              close_log ();
              let s = Srv.stats server in
              Printf.printf
                "drained: %d connection(s), %d request(s), %d error(s), %d \
                 shed\n%!"
                s.Srv.connections s.Srv.requests s.Srv.errors s.Srv.shed;
              `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running provenance query service: load a corpus once, pin \
          closure + label indexes, and answer \
          validate/correct/query/lint/analyze requests concurrently over a \
          line protocol (see docs/PROTOCOL.md). Bounded admission queue \
          with $(b,OVERLOADED) load-shedding, per-connection timeouts, \
          per-request deadlines that degrade correction tiers, graceful \
          drain on SIGINT/SIGTERM (exit 0). Observability: structured \
          access logs ($(b,--access-log)), Prometheus exposition (the \
          $(b,METRICS) verb, read by $(b,wolves top)), sampled request \
          tracing ($(b,--trace-sample), drained by $(b,TRACE)).")
    Term.(ret (const run $ files_arg $ store_flag $ synthesize_flag
               $ seed_arg $ per_cell_arg $ sizes_arg $ host_arg $ port_arg
               $ socket_arg $ workers_arg $ queue_arg $ read_timeout_arg
               $ write_timeout_arg $ max_request_arg $ deadline_arg
               $ retry_after_arg $ access_log_arg $ log_level_arg
               $ slow_ms_arg $ trace_sample_arg $ trace_perfetto_arg
               $ metrics_arg))

let call_cmd =
  let words_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"WORD"
           ~doc:"The request, e.g. $(b,VALIDATE montage) or $(b,CORRECT \
                 montage DEADLINE 5). Words are joined with spaces.")
  in
  let timeout_arg =
    Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"S"
           ~doc:"Connect/receive/send deadline in seconds.")
  in
  let run host port socket timeout words =
    let target =
      match (socket, port) with
      | Some path, None -> Ok (`Unix path)
      | None, Some port -> Ok (`Tcp (host, port))
      | None, None -> Error "need --port or --unix-socket"
      | Some _, Some _ -> Error "--port and --unix-socket are exclusive"
    in
    match target with
    | Error msg -> fail "%s" msg
    | Ok target ->
      match Sclient.connect ~timeout_s:timeout target with
      | Error msg -> fail "%s" msg
      | Ok client ->
        let result = Sclient.request client (String.concat " " words) in
        Sclient.close client;
        (match result with
         | Error msg -> fail "%s" msg
         | Ok (Sproto.Ok_lines lines) ->
           (* The client ignored SIGPIPE for the socket's sake; restore the
              default before printing so `wolves call ... | head` dies
              silently like any filter instead of tripping over EPIPE at
              the exit-time stdout flush. *)
           (try ignore (Sys.signal Sys.sigpipe Sys.Signal_default)
            with Invalid_argument _ | Sys_error _ -> ());
           List.iter print_endline lines;
           `Ok ()
         | Ok (Sproto.Err (code, msg)) ->
           Printf.eprintf "ERR %s %s\n" code msg;
           exit 1
         | Ok (Sproto.Overloaded ms) ->
           Printf.eprintf "OVERLOADED %d\n" ms;
           exit 2)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send one request to a running $(b,wolves serve) and print the \
          reply payload. Exits 1 on an $(b,ERR) reply, 2 on \
          $(b,OVERLOADED).")
    Term.(ret (const run $ host_arg $ port_arg $ socket_arg $ timeout_arg
               $ words_arg))

let top_cmd =
  let module D = Wolves_server.Dashboard in
  let interval_arg =
    Arg.(value & opt float 2. & info [ "interval"; "n" ] ~docv:"S"
           ~doc:"Seconds between polls.")
  in
  let once_flag =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Scrape once, print the panel, exit (for scripts and CI).")
  in
  let timeout_arg =
    Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"S"
           ~doc:"Connect/receive/send deadline in seconds.")
  in
  let run host port socket timeout interval once =
    if interval <= 0. then fail "--interval must be positive"
    else
      let target =
        match (socket, port) with
        | Some path, None -> Ok (`Unix path)
        | None, Some port -> Ok (`Tcp (host, port))
        | None, None -> Error "need --port or --unix-socket"
        | Some _, Some _ -> Error "--port and --unix-socket are exclusive"
      in
      match target with
      | Error msg -> fail "%s" msg
      | Ok target -> (
        match Sclient.connect ~timeout_s:timeout target with
        | Error msg -> fail "%s" msg
        | Ok client ->
          let finish r =
            Sclient.close client;
            r
          in
          let rec loop prev =
            match D.fetch client with
            | Error msg -> finish (fail "%s" msg)
            | Ok sample ->
              if once then finish (`Ok (print_string (D.render ?prev sample)))
              else begin
                (* clear + home, then the panel: a cheap full-screen
                   refresh that needs no terminal library *)
                print_string "\027[H\027[2J";
                print_string (D.render ?prev sample);
                flush stdout;
                (try Unix.sleepf interval
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                loop (Some sample)
              end
          in
          loop None)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running $(b,wolves serve): polls the \
          $(b,METRICS) verb and renders qps, shed rate, in-flight, error \
          counts and per-verb p50/p99. $(b,--once) prints a single panel \
          and exits; otherwise refreshes every $(b,--interval) seconds \
          until interrupted.")
    Term.(ret (const run $ host_arg $ port_arg $ socket_arg $ timeout_arg
               $ interval_arg $ once_flag))

let promcheck_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"An exposition page, e.g. the payload of a $(b,METRICS) \
                 call or the output of $(b,wolves stats --prom).")
  in
  let run file =
    let page =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Wolves_obs.Prom.check page with
    | Ok samples ->
      Printf.printf "ok: %d sample(s)\n" samples;
      `Ok ()
    | Error msg -> fail "%s: %s" file msg
  in
  Cmd.v
    (Cmd.info "promcheck"
       ~doc:
         "Validate a Prometheus text-format exposition page: every sample \
          parses, every family has a $(b,# TYPE) line and is contiguous, \
          histogram buckets are cumulative with increasing bounds and a \
          terminal $(b,+Inf) bucket matching $(b,_count). Exits 1 on the \
          first violation — the CI gate for $(b,METRICS) scrapes.")
    Term.(ret (const run $ file_arg))

let main =
  let doc =
    "WOLVES: detect and resolve unsound workflow views for correct \
     provenance analysis (VLDB'09 demonstration, reproduced)."
  in
  Cmd.group
    (Cmd.info "wolves" ~version:"1.0.0" ~doc)
    [ show_cmd; validate_cmd; lint_cmd; analyze_cmd; correct_cmd; split_cmd;
      merge_cmd;
      resolve_cmd; diagnose_cmd; provenance_cmd; query_cmd; simulate_cmd;
      stats_cmd; profile_cmd; suggest_cmd; evolve_cmd; edit_cmd; report_cmd;
      estimate_cmd; generate_cmd; audit_cmd; store_cmd; serve_cmd; call_cmd;
      top_cmd; promcheck_cmd ]

let () =
  let code = Cmd.eval main in
  (* A command whose primary work succeeded but whose requested artifact
     (metrics dump, trace) could not be written must still fail: scripts
     and --json consumers depend on the exit code, not on spotting a
     warning line on stderr. *)
  exit (if code = 0 && !io_failure then 1 else code)
