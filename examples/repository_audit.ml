(* Repository audit: the paper's motivating survey ("our survey of workflow
   designs in a well-curated workflow repository revealed unsound views"),
   replayed over a synthetic corpus standing in for Kepler / myExperiment.

   Run with: dune exec examples/repository_audit.exe *)

module R = Wolves_repository.Repository
module C = Wolves_core.Corrector
module Table = Wolves_cli.Table

let () =
  (* A corpus crossing 4 workflow families x 2 sizes x 3 view policies. *)
  let repo = R.synthesize ~seed:2009 ~per_cell:5 ~sizes:[ 16; 32 ] () in
  Printf.printf "synthesized %d workflow+view pairs\n\n" (R.size repo);

  let audit = R.audit repo in
  Format.printf "%a@.@." R.pp_audit audit;

  (* The survey table: unsoundness rate per view construction policy. *)
  let rows =
    List.map
      (fun (origin, count, bad) ->
        [ origin;
          string_of_int count;
          string_of_int bad;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int bad /. float_of_int count) ])
      audit.R.by_origin
  in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "workflow family / view policy"; "views"; "unsound"; "rate" ]
       rows);

  (* Repair everything with the strong corrector and re-audit. *)
  let corrected, repaired = R.correct_all C.Strong repo in
  let audit' = R.audit corrected in
  Printf.printf "\ncorrected %d unsound views; re-audit: %d/%d unsound\n"
    repaired audit'.R.unsound_views audit'.R.total;
  assert (audit'.R.unsound_views = 0);

  (* Persist the healthy corpus as MoML, reload it, and confirm. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolves_corpus" in
  (match R.save_dir dir corrected with
   | Ok () -> Printf.printf "\nsaved the corrected corpus to %s\n" dir
   | Error e -> failwith (Format.asprintf "%a" R.pp_io_error e));
  match R.load_dir dir with
  | Ok reloaded ->
    Printf.printf "reloaded %d MoML files; all sound: %b\n" (R.size reloaded)
      ((R.audit reloaded).R.unsound_views = 0)
  | Error e -> failwith (Format.asprintf "%a" R.pp_io_error e)
