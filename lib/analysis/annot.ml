module Metrics = Wolves_obs.Metrics
open Wolves_workflow

type issue =
  | Not_an_output of { task : Spec.task; output : Spec.task }
  | Not_an_input of { task : Spec.task; output : Spec.task; input : Spec.task }
  | Duplicate_output of { task : Spec.task; output : Spec.task }
  | Missing_output of { task : Spec.task; output : Spec.task }

let pp_issue spec ppf issue =
  let name t = Spec.task_name spec t in
  match issue with
  | Not_an_output { task; output } ->
    Format.fprintf ppf
      "task %S annotates an output %S, but %S is not one of its consumers"
      (name task) (name output) (name output)
  | Not_an_input { task; output; input } ->
    Format.fprintf ppf
      "task %S says its output to %S depends on %S, which is not one of its \
       producers"
      (name task) (name output) (name input)
  | Duplicate_output { task; output } ->
    Format.fprintf ppf "task %S annotates its output to %S more than once"
      (name task) (name output)
  | Missing_output { task; output } ->
    Format.fprintf ppf
      "task %S is annotated but its output to %S has no entry (treated as \
       depending on all inputs)"
      (name task) (name output)

let is_inconsistency = function
  | Not_an_output _ | Not_an_input _ | Duplicate_output _ -> true
  | Missing_output _ -> false

let validate spec =
  let issues = ref [] in
  let emit i = issues := i :: !issues in
  List.iter
    (fun task ->
      let entries = Option.value ~default:[] (Spec.annotation spec task) in
      let consumers = Spec.consumers spec task in
      let producers = Spec.producers spec task in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (output, inputs) ->
          if not (List.mem output consumers) then
            emit (Not_an_output { task; output })
          else if Hashtbl.mem seen output then
            emit (Duplicate_output { task; output })
          else Hashtbl.replace seen output ();
          List.iter
            (fun input ->
              if not (List.mem input producers) then
                emit (Not_an_input { task; output; input }))
            inputs)
        entries;
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c) then
            emit (Missing_output { task; output = c }))
        consumers)
    (Spec.annotated_tasks spec);
  List.rev !issues

type inferred = {
  inf_task : Spec.task;
  inf_entries : (Spec.task * Spec.task list) list;
}

type result = {
  inferred : inferred list;
  iterations : int;
}

let t_infer = Metrics.timer "analysis.time.infer"

let infer ?domains spec =
  Metrics.time t_infer @@ fun () ->
  (* Which (task, output) pairs need an entry: out-edges not covered by a
     declared entry naming a real consumer. *)
  let declared_covers task output =
    match Spec.annotation spec task with
    | None -> false
    | Some entries -> List.exists (fun (o, _) -> o = output) entries
  in
  let candidates_from flow =
    List.filter_map
      (fun task ->
        let missing =
          List.filter (fun c -> not (declared_covers task c))
            (Spec.consumers spec task)
        in
        if missing = [] then None
        else
          Some
            ( task,
              List.map
                (fun c ->
                  ( c,
                    List.filter
                      (fun p -> Flow.live flow ~producer:p ~consumer:task)
                      (Spec.producers spec task) ))
                missing ))
      (Spec.tasks spec)
  in
  let iterations = ref 0 in
  let rec fix assumed =
    incr iterations;
    let flow = Flow.compute ?domains ~assume:assumed spec in
    let next = candidates_from flow in
    if next = assumed then next else fix next
  in
  let stable = fix [] in
  { inferred =
      List.map (fun (t, es) -> { inf_task = t; inf_entries = es }) stable;
    iterations = !iterations }
