(** Static validation and inference of dependency annotations.

    Validation checks every declared entry against the graph; inference
    completes partially (or entirely) unannotated tasks with the {e minimal
    completion consistent with the declared annotations}: a missing entry
    defaults to "all inputs", pruned of inputs whose incoming data is
    provably dead — i.e. {!Flow} shows it can never influence a terminal
    output no matter how the unannotated outputs behave. Inference is an
    idempotent fixpoint: re-running it over a specification that already
    carries the inferred entries (declared or assumed) reproduces them
    exactly, because inserting them does not change the flow semantics. *)

open Wolves_workflow

type issue =
  | Not_an_output of { task : Spec.task; output : Spec.task }
      (** an entry names an output channel that is not an out-edge *)
  | Not_an_input of { task : Spec.task; output : Spec.task; input : Spec.task }
      (** an entry lists an input that is not an in-edge *)
  | Duplicate_output of { task : Spec.task; output : Spec.task }
      (** a later entry re-declares an output (entries are unioned, but the
          duplication is almost certainly an editing mistake) *)
  | Missing_output of { task : Spec.task; output : Spec.task }
      (** the task is annotated, yet this out-edge has no entry — the
          analyses fall back to "all inputs" for it *)

val pp_issue : Spec.t -> Format.formatter -> issue -> unit

val is_inconsistency : issue -> bool
(** [true] for every constructor except [Missing_output] (incompleteness is
    a warning, inconsistency an error). *)

val validate : Spec.t -> issue list
(** All issues, deterministically ordered: tasks by id, then declaration
    order within a task, missing outputs last (consumer order). Tasks with
    no annotation raise nothing — absence is a valid (coarse) state. *)

type inferred = {
  inf_task : Spec.task;
  inf_entries : (Spec.task * Spec.task list) list;
      (** one entry per output lacking a declared one, consumer order *)
}

type result = {
  inferred : inferred list;  (** tasks with ≥ 1 missing entry, id order *)
  iterations : int;          (** flow recomputations until the fixpoint *)
}

val infer : ?domains:int -> Spec.t -> result
(** Iterates {!Flow.compute} with the candidate entries assumed until they
    stop changing (converges on the second pass — the loop verifies rather
    than trusts this). Timed under [analysis.time.infer]. *)
