module Digraph = Wolves_graph.Digraph
module Algo = Wolves_graph.Algo
module Par = Wolves_par.Par
module Metrics = Wolves_obs.Metrics

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type stats = {
  applications : int;
  rounds : int;
}

let c_iters = Metrics.counter "analysis.fixpoint_iters"
let t_fixpoint = Metrics.timer "analysis.time.fixpoint"

(* Reverse postorder of an iterative DFS over [next], covering every node —
   the processing order for the cyclic fallback (for DAGs the topological
   sort is already the forward RPO). *)
let rpo_of next n =
  let visited = Array.make n false in
  let out = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      visited.(root) <- true;
      let stack = ref [ (root, next root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, []) :: rest ->
          out := v :: !out;
          stack := rest
        | (v, w :: ws) :: rest ->
          stack := (v, ws) :: rest;
          if not visited.(w) then begin
            visited.(w) <- true;
            stack := (w, next w) :: !stack
          end
      done
    end
  done;
  !out

module Make (L : LATTICE) = struct
  let solve ?domains ~direction ~graph ~init ~transfer () =
    Metrics.time t_fixpoint @@ fun () ->
    let n = Digraph.n_nodes graph in
    let domains =
      match domains with Some d -> d | None -> Par.default_domains ()
    in
    let inputs v =
      match direction with
      | Forward -> Digraph.pred graph v
      | Backward -> Digraph.succ graph v
    in
    let value = Array.make n None in
    let get v = match value.(v) with Some x -> x | None -> assert false in
    let eval v =
      let acc =
        List.fold_left (fun acc w -> L.join acc (get w)) (init v) (inputs v)
      in
      transfer v acc
    in
    match Algo.topological_sort graph with
    | Some topo ->
      (* DAG: one pass in direction order is the least fixpoint. *)
      let order = match direction with Forward -> topo | Backward -> List.rev topo in
      if domains <= 1 || n < 2 then
        List.iter (fun v -> value.(v) <- Some (eval v)) order
      else begin
        (* Longest-path levels over the in-neighbour relation: every
           in-neighbour of a level-l node sits strictly below l, so each
           level is a dependency-free batch. *)
        let level = Array.make n 0 in
        let max_level = ref 0 in
        List.iter
          (fun v ->
            let l =
              List.fold_left (fun acc w -> max acc (level.(w) + 1)) 0 (inputs v)
            in
            level.(v) <- l;
            if l > !max_level then max_level := l)
          order;
        let buckets = Array.make (!max_level + 1) [] in
        for v = n - 1 downto 0 do
          buckets.(level.(v)) <- v :: buckets.(level.(v))
        done;
        Array.iter
          (fun nodes ->
            let nodes = Array.of_list nodes in
            Par.parallel_for ~domains (Array.length nodes) (fun i ->
                let v = nodes.(i) in
                value.(v) <- Some (eval v)))
          buckets
      end;
      Metrics.add c_iters n;
      (Array.map (fun v -> Option.get v) value, { applications = n; rounds = 1 })
    | None ->
      (* Cyclic: sequential round-robin over the direction's RPO until a
         full pass stabilises. *)
      let next v =
        match direction with
        | Forward -> Digraph.succ graph v
        | Backward -> Digraph.pred graph v
      in
      let order = rpo_of next n in
      List.iter (fun v -> value.(v) <- Some (init v)) order;
      let applications = ref 0 and rounds = ref 0 in
      let changed = ref true in
      while !changed do
        changed := false;
        incr rounds;
        List.iter
          (fun v ->
            incr applications;
            let fresh = eval v in
            if not (L.equal fresh (get v)) then begin
              value.(v) <- Some fresh;
              changed := true
            end)
          order
      done;
      Metrics.add c_iters !applications;
      ( Array.map (fun v -> Option.get v) value,
        { applications = !applications; rounds = !rounds } )
end
