(** A generic monotone dataflow framework over {!Wolves_graph.Digraph}.

    Instantiate {!Make} with a join-semilattice, then {!Make.solve} computes
    the least fixpoint of

    {v value(v) = transfer v (join over value(w) for w in-neighbours of v) v}

    where "in-neighbour" means predecessor for a {!Forward} analysis and
    successor for a {!Backward} one, and the node's own [init] seed enters
    the join alongside the neighbours.

    Scheduling: nodes are processed in reverse postorder of the analysis
    direction. On a DAG one pass is a fixpoint, and with [domains > 1] the
    pass is parallelised by longest-path level sets via {!Wolves_par.Par}
    (all in-neighbours of a level live in earlier levels, so the level is a
    dependency-free batch; per-node join order is the insertion order either
    way, so results are identical to sequential at every domain count). On a
    cyclic graph the framework falls back to sequential round-robin passes
    over the reverse postorder until a full pass changes nothing — the
    classic iterative algorithm, terminating for monotone transfers on
    finite-height lattices.

    Transfer applications are counted into the [analysis.fixpoint_iters]
    counter and the whole solve is timed under [analysis.time.fixpoint]. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  (** Used only on the cyclic fallback path, to detect stabilisation. *)

  val join : t -> t -> t
  (** [join acc v]: least upper bound. May destructively reuse [acc] —
      which is always the node's in-flight accumulator, never a stored
      value — but must not mutate [v]. *)
end

type stats = {
  applications : int;  (** transfer applications performed *)
  rounds : int;        (** full passes over the node order *)
}

module Make (L : LATTICE) : sig
  val solve :
    ?domains:int ->
    direction:direction ->
    graph:Wolves_graph.Digraph.t ->
    init:(int -> L.t) ->
    transfer:(int -> L.t -> L.t) ->
    unit ->
    L.t array * stats
  (** [init v] must return a fresh value each call (it seeds the node's
      accumulator, which [join] may mutate). [transfer] must be safe to run
      concurrently for independent nodes when [domains > 1]. *)
end
