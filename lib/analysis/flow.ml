module Digraph = Wolves_graph.Digraph
module Bitset = Wolves_graph.Bitset
module Metrics = Wolves_obs.Metrics
open Wolves_workflow

type t = {
  spec : Spec.t;
  edges : (int * int) array;
  edge_of : (int * int, int) Hashtbl.t;
  alpha : int list array;     (* per edge (x,c): effective producers of x
                                 feeding that output, in producer order *)
  sources : Bitset.t array;   (* per edge: influencing tasks *)
  node_sources : Bitset.t array; (* per task: {self} ∪ in-edge sources *)
  live_edges : bool array;
  stats : Dataflow.stats;
}

module Bits = Dataflow.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal

  let join acc v =
    Bitset.union_into ~into:acc v;
    acc
end)

module Bool_lattice = Dataflow.Make (struct
  type t = bool

  let equal = Bool.equal
  let join = ( || )
end)

let t_flow = Metrics.timer "analysis.time.flow"

let compute ?domains ?(assume = []) spec =
  Metrics.time t_flow @@ fun () ->
  let g = Spec.graph spec in
  let n = Spec.n_tasks spec in
  let m = Digraph.n_edges g in
  let edges = Array.make (max m 1) (0, 0) in
  let edge_of = Hashtbl.create (2 * m) in
  let idx = ref 0 in
  Digraph.iter_edges
    (fun u v ->
      edges.(!idx) <- (u, v);
      Hashtbl.replace edge_of (u, v) !idx;
      incr idx)
    g;
  let edges = if m = 0 then [||] else Array.sub edges 0 m in
  (* Effective entries: declared+assumed entries per (task, consumer),
     unioned and filtered to real producers; outputs with no entry default
     to every producer. Non-edge references are dropped here — Annot
     reports them, the flow semantics ignores them. *)
  let entries_of x =
    let declared = Option.value ~default:[] (Spec.annotation spec x) in
    let assumed =
      List.concat_map (fun (t, es) -> if t = x then es else []) assume
    in
    declared @ assumed
  in
  let alpha = Array.make (max m 1) [] in
  for x = 0 to n - 1 do
    let producers = Spec.producers spec x in
    let entries = entries_of x in
    List.iter
      (fun c ->
        match Hashtbl.find_opt edge_of (x, c) with
        | None -> ()
        | Some e ->
          let named =
            List.filter_map
              (fun (out, ins) -> if out = c then Some ins else None)
              entries
          in
          if named = [] then alpha.(e) <- producers
          else
            let ins = List.concat named in
            alpha.(e) <-
              List.filter
                (fun p -> List.mem p ins && Hashtbl.mem edge_of (p, x))
                producers)
      (Spec.consumers spec x)
  done;
  let alpha = if m = 0 then [||] else alpha in
  (* The annotation-respecting line graph: (p,x) -> (x,c) iff p ∈ α(x,c). *)
  let line = Digraph.create ~initial_capacity:(max m 1) () in
  Digraph.add_nodes line m;
  Array.iteri
    (fun e (x, _c) ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt edge_of (p, x) with
          | Some f -> Digraph.add_edge line f e
          | None -> assert false (* alpha is filtered to real in-edges *))
        alpha.(e))
    edges;
  let sources, fstats =
    Bits.solve ?domains ~direction:Dataflow.Forward ~graph:line
      ~init:(fun e ->
        let s = Bitset.create n in
        Bitset.add s (fst edges.(e));
        s)
      ~transfer:(fun _ acc -> acc)
      ()
  in
  let live_edges, bstats =
    Bool_lattice.solve ?domains ~direction:Dataflow.Backward ~graph:line
      ~init:(fun e -> Digraph.out_degree g (snd edges.(e)) = 0)
      ~transfer:(fun _ acc -> acc)
      ()
  in
  let node_sources =
    Array.init n (fun v ->
        let s = Bitset.create n in
        Bitset.add s v;
        List.iter
          (fun p ->
            match Hashtbl.find_opt edge_of (p, v) with
            | Some e -> Bitset.union_into ~into:s sources.(e)
            | None -> assert false)
          (Spec.producers spec v);
        s)
  in
  { spec;
    edges;
    edge_of;
    alpha;
    sources;
    node_sources;
    live_edges;
    stats =
      { applications = fstats.applications + bstats.applications;
        rounds = max fstats.rounds bstats.rounds } }

let spec t = t.spec

let n_edges t = Array.length t.edges

let edge_index t p c what =
  match Hashtbl.find_opt t.edge_of (p, c) with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Flow.%s: %d -> %d is not a dependency edge" what p c)

let effective_entry t x ~output =
  t.alpha.(edge_index t x output "effective_entry")

let edge_sources t ~producer ~consumer =
  Bitset.elements t.sources.(edge_index t producer consumer "edge_sources")

let fine_depends t u v =
  if v < 0 || v >= Array.length t.node_sources then
    invalid_arg (Printf.sprintf "Flow.fine_depends: unknown task %d" v);
  u = v || Bitset.mem t.node_sources.(v) u

let depends_on t v =
  if v < 0 || v >= Array.length t.node_sources then
    invalid_arg (Printf.sprintf "Flow.depends_on: unknown task %d" v);
  List.filter (fun u -> u <> v) (Bitset.elements t.node_sources.(v))

let live t ~producer ~consumer =
  t.live_edges.(edge_index t producer consumer "live")

let dead_edges t =
  let out = ref [] in
  Array.iteri
    (fun e pc -> if not t.live_edges.(e) then out := pc :: !out)
    t.edges;
  List.rev !out

let stats t = t.stats
