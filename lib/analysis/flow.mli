(** Fine-grained dependency flow: the dataflow analysis behind dependency
    annotations (Bowers et al., "Validation and Inference of Schema-Level
    Workflow Data-Dependency Annotations").

    The unit of data is the {e edge} of the workflow graph: the item a
    producer sends one consumer. A task's annotation ({!Wolves_workflow.Spec.Builder.annotate})
    restricts which inputs each of its outputs draws on; outputs without an
    entry (and tasks with no annotation) default to {e all} inputs.
    Two analyses run over the {e annotation-respecting line graph} — node
    per workflow edge, line edge [(p,x) → (x,c)] exactly when x's effective
    entry for output [c] contains input [p]:

    - {e forward sources}: for every edge, the set of tasks whose data
      influences the item it carries — the fine-grained provenance relation
      ([sources (x,c) = {x} ∪ ⋃ sources (p,x)] over [p] in the entry);
    - {e backward liveness}: whether an edge's item can still influence any
      terminal output ([live (x,c)] iff [c] is a sink or some live out-edge
      of [c] draws on input [x]). Dead edges feed [spec/dead-data].

    Both are instances of {!Dataflow.Make}; with no annotations present the
    fine-grained relation degenerates to plain reachability and every edge
    is live. Inconsistent annotation references (non-neighbour names, see
    {!Annot.validate}) are ignored here — they denote no edge. *)

open Wolves_workflow

type t

val compute :
  ?domains:int ->
  ?assume:(Spec.task * (Spec.task * Spec.task list) list) list ->
  Spec.t ->
  t
(** Run both analyses. [assume] supplies additional annotation entries,
    treated as if declared (appended after the task's real entries) — the
    inference loop uses it to test candidate annotations without rebuilding
    the specification. Timed under [analysis.time.flow]. *)

val spec : t -> Spec.t

val n_edges : t -> int

val effective_entry : t -> Spec.task -> output:Spec.task -> Spec.task list
(** The producer set actually used for output [(task, output)]: the
    declared (plus assumed) entries unioned and filtered to real
    producers, or every producer when no entry covers the output.
    @raise Invalid_argument when [(task, output)] is not an edge. *)

val edge_sources : t -> producer:Spec.task -> consumer:Spec.task -> Spec.task list
(** Tasks whose data influences the item carried by the given edge,
    increasing id order. @raise Invalid_argument when not an edge. *)

val fine_depends : t -> Spec.task -> Spec.task -> bool
(** [fine_depends f u v]: does [u]'s data influence [v] under the
    fine-grained semantics? Reflexive; implies [Spec.depends u v], and
    coincides with it on annotation-free specifications. *)

val depends_on : t -> Spec.task -> Spec.task list
(** All tasks a task fine-depends on, itself excluded, increasing order. *)

val live : t -> producer:Spec.task -> consumer:Spec.task -> bool
(** @raise Invalid_argument when not an edge. *)

val dead_edges : t -> (Spec.task * Spec.task) list
(** Edges whose item provably never influences a terminal output, in the
    graph's edge-iteration order. Empty on annotation-free specs. *)

val stats : t -> Dataflow.stats
(** Combined transfer counts of the two underlying fixpoints. *)
