type verdict =
  | Pass
  | Regression
  | No_baseline
  | Missing

type row = {
  id : string;
  baseline_s : float option;
  current_s : float option;
  verdict : verdict;
}

type result = {
  rows : row list;
  failed : string list;
  smoke_mismatch : bool;
}

let default_threshold = 1.5
let default_slack_s = 0.05

let verdict_name = function
  | Pass -> "ok"
  | Regression -> "REGRESSION"
  | No_baseline -> "no baseline"
  | Missing -> "MISSING"

let baseline_sections baseline =
  match Json.member "sections" baseline with
  | Some (Json.Obj fields) -> fields
  | _ -> []

let section_wall fields id =
  Option.bind (List.assoc_opt id fields) (Json.member "wall_time_s")
  |> Fun.flip Option.bind Json.to_float_opt

let compare ?(threshold = default_threshold) ?(slack_s = default_slack_s)
    ~require_all ~smoke ~baseline walls =
  let smoke_mismatch =
    match Json.member "smoke" baseline with
    | Some (Json.Bool b) -> b <> smoke
    | _ -> false
  in
  let fields = baseline_sections baseline in
  let current_rows =
    List.map
      (fun (id, wall) ->
        match section_wall fields id with
        | None -> { id; baseline_s = None; current_s = Some wall;
                    verdict = No_baseline }
        | Some base ->
          let limit = (base *. threshold) +. slack_s in
          { id;
            baseline_s = Some base;
            current_s = Some wall;
            verdict = (if wall <= limit then Pass else Regression) })
      walls
  in
  (* The other direction of the gate: a section the baseline measured but
     this run never produced. Without [require_all] a crashed or
     accidentally-skipped section would sail through the gate — there is no
     wall time to exceed any limit — which is exactly the silent pass the
     gate exists to prevent. Only suppressed when the caller explicitly ran
     a subset of sections. *)
  let missing_rows =
    if not require_all then []
    else
      List.filter_map
        (fun (id, section) ->
          if List.mem_assoc id walls then None
          else
            match
              Option.bind (Json.member "wall_time_s" section)
                Json.to_float_opt
            with
            | None -> None (* not a timed section entry *)
            | Some base ->
              Some { id; baseline_s = Some base; current_s = None;
                     verdict = Missing })
        fields
  in
  let rows = current_rows @ missing_rows in
  let failed =
    List.filter_map
      (fun r ->
        match r.verdict with
        | Regression | Missing -> Some r.id
        | Pass | No_baseline -> None)
      rows
  in
  { rows; failed; smoke_mismatch }
