(** The bench regression gate's comparator, as a pure function over a parsed
    baseline artifact — extracted from [bench/main.ml] so the direction a
    gate can silently fail in (a section present in the baseline but absent
    from the current run) is unit-testable.

    A section regresses when its wall time exceeds
    [baseline x threshold + slack]: the absolute slack keeps
    microsecond-scale sections from failing on scheduler noise, while a
    genuine regression on a section that matters clears it easily. *)

(** Per-section outcome. *)
type verdict =
  | Pass  (** within [baseline x threshold + slack] *)
  | Regression  (** over the limit — fails the gate *)
  | No_baseline
      (** measured now but absent from the baseline (a new section):
          informational, never fails the gate *)
  | Missing
      (** timed in the baseline but not produced by this run — fails the
          gate when [require_all] is set. A section that crashed or was
          silently skipped must not pass just because there is no wall time
          to exceed a limit. *)

type row = {
  id : string;
  baseline_s : float option;  (** [None] for {!No_baseline} rows *)
  current_s : float option;  (** [None] for {!Missing} rows *)
  verdict : verdict;
}

type result = {
  rows : row list;
      (** current-run sections in run order, then {!Missing} sections in
          baseline order *)
  failed : string list;
      (** ids with {!Regression} or {!Missing} verdicts, in row order;
          the gate passes iff empty *)
  smoke_mismatch : bool;
      (** the baseline's [smoke] flag differs from this run's — timings are
          not like-for-like (warn, don't fail) *)
}

val default_threshold : float
(** [1.5]. *)

val default_slack_s : float
(** [0.05] seconds. *)

val verdict_name : verdict -> string

val compare :
  ?threshold:float ->
  ?slack_s:float ->
  require_all:bool ->
  smoke:bool ->
  baseline:Json.t ->
  (string * float) list ->
  result
(** [compare ~require_all ~smoke ~baseline walls] gates the current run's
    [(section id, wall seconds)] list against the baseline artifact (the
    parsed JSON written by [bench --json]). [require_all] enables the
    {!Missing} direction — set it when the run was supposed to cover every
    section (no explicit subset requested); [smoke] is the current run's
    smoke flag, compared against the baseline's for {!field-smoke_mismatch}.
    Baseline sections without a numeric [wall_time_s] are ignored. *)
