type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(pretty = true) value =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          emit (depth + 1) item)
        fields;
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf
      (fun msg ->
        raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)))
      fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else error "expected %C" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> error "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let add_utf8 buf cp =
    (* Encode one Unicode scalar value; parse_string pairs surrogates. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= n then error "unterminated string";
      (match text.[!pos] with
       | '"' ->
         incr pos;
         closed := true
       | '\\' ->
         incr pos;
         if !pos >= n then error "truncated escape";
         (match text.[!pos] with
          | ('"' | '\\' | '/') as c ->
            Buffer.add_char buf c;
            incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
            incr pos;
            let cp = hex4 () in
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF
                 && !pos + 1 < n
                 && text.[!pos] = '\\'
                 && text.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                else error "unpaired surrogate"
              end
              else cp
            in
            add_utf8 buf cp
          | c -> error "unknown escape \\%c" c)
       | c ->
         Buffer.add_char buf c;
         incr pos)
    done;
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_float = ref false in
    let more = ref true in
    while !more do
      match peek () with
      | Some ('0' .. '9') -> incr pos
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        incr pos
      | _ -> more := false
    done;
    if !pos = start then error "expected a number";
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error "malformed number %S" s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None ->
        (* Out of int range: fall back to float. *)
        (match float_of_string_opt s with
         | Some f -> Float f
         | None -> error "malformed number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let more = ref true in
        while !more do
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            more := false
          | _ -> error "expected ',' or '}'"
        done;
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let more = ref true in
        while !more do
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            more := false
          | _ -> error "expected ',' or ']'"
        done;
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | value ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok value
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
