(** Minimal JSON emission and parsing for machine-readable CLI output and
    the tools that read it back (trace profiles, bench-artifact
    comparison). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default true) indents by two spaces. Strings are
    escaped per RFC 8259 (control characters as [\u00XX]); non-finite floats
    are emitted as [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (RFC 8259: values, nested containers, string
    escapes including surrogate-paired [\uXXXX], numbers). Numbers without a
    fraction or exponent parse as {!Int} when they fit, {!Float} otherwise.
    Object key order is preserved; trailing non-whitespace input is an
    error. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    {!Obj} holding it, [None] otherwise. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] succeed, everything else is
    [None]. *)
