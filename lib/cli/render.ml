open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module P = Wolves_provenance.Provenance
module Dot = Wolves_graph.Dot
module Bitset = Wolves_graph.Bitset

let spec_summary spec =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "workflow %S: %d tasks, %d dependencies\n" (Spec.name spec)
       (Spec.n_tasks spec) (Spec.n_dependencies spec));
  List.iter
    (fun t ->
      let consumers = Spec.consumers spec t in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s\n" (Spec.task_name spec t)
           (if consumers = [] then "(output)"
            else String.concat ", " (List.map (Spec.task_name spec) consumers))))
    (Spec.topological_order spec);
  Buffer.contents buf

let red color s = if color then "\027[31m" ^ s ^ "\027[0m" else s

let green color s = if color then "\027[32m" ^ s ^ "\027[0m" else s

let view_summary ?(color = false) view =
  let spec = View.spec view in
  let report = S.validate view in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "view of %S: %d composites (compression %.1fx)\n"
       (Spec.name spec) (View.n_composites view) (View.compression view));
  List.iter
    (fun c ->
      let members =
        String.concat ", " (List.map (Spec.task_name spec) (View.members view c))
      in
      match List.assoc_opt c report.S.unsound with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s = {%s}\n" (green color "[sound]  ")
             (View.composite_name view c) members)
      | Some witnesses ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s = {%s}\n" (red color "[UNSOUND]")
             (View.composite_name view c) members);
        List.iter
          (fun (ti, to_) ->
            Buffer.add_string buf
              (Printf.sprintf "      no path %s -> %s\n" (Spec.task_name spec ti)
                 (Spec.task_name spec to_)))
          witnesses)
    (View.composites view);
  Buffer.contents buf

let correction_summary view outcomes =
  let spec = View.spec view in
  let buf = Buffer.create 256 in
  if outcomes = [] then Buffer.add_string buf "view already sound; nothing to correct\n"
  else
    List.iter
      (fun (c, outcome) ->
        Buffer.add_string buf
          (Printf.sprintf
             "composite %S split into %d sound tasks (%d checks%s%s)\n"
             (View.composite_name view c)
             (List.length outcome.C.parts)
             outcome.C.checks
             (if outcome.C.probes > 0 then
                Printf.sprintf ", %d probes" outcome.C.probes
              else "")
             (if outcome.C.certified_strong then ", certified strongly optimal"
              else ""));
        List.iteri
          (fun i part ->
            Buffer.add_string buf
              (Printf.sprintf "    part %d: {%s}\n" i
                 (String.concat ", " (List.map (Spec.task_name spec) part))))
          outcome.C.parts)
      outcomes;
  Buffer.contents buf

let view_dot ?(highlight_unsound = true) view =
  let spec = View.spec view in
  let report = S.validate view in
  let clusters =
    List.map
      (fun c ->
        let unsound = List.mem_assoc c report.S.unsound in
        { Dot.cluster_name = string_of_int c;
          cluster_label = View.composite_name view c;
          cluster_nodes = View.members view c;
          cluster_color =
            (if highlight_unsound && unsound then Some "red"
             else Some "forestgreen") })
      (View.composites view)
  in
  Dot.to_string ~graph_name:(Spec.name spec)
    ~node_label:(Spec.task_name spec)
    ~clusters (Spec.graph spec)

let provenance_summary view target =
  let spec = View.spec view in
  let buf = Buffer.create 256 in
  let ancestors = P.composite_ancestors view target in
  Buffer.add_string buf
    (Printf.sprintf "view-level provenance of %S:\n"
       (View.composite_name view target));
  Bitset.iter
    (fun c ->
      if c <> target then
        Buffer.add_string buf
          (Printf.sprintf "  composite %s\n" (View.composite_name view c)))
    ancestors;
  let tasks = P.expand view ancestors in
  Buffer.add_string buf
    (Printf.sprintf "expanded to %d tasks\n" (Bitset.cardinal tasks));
  (match P.spurious_items view target with
   | [] ->
     Buffer.add_string buf "no spurious data items: the answer is exact\n"
   | spurious ->
     Buffer.add_string buf
       (Printf.sprintf "WARNING: %d spurious data item(s) reported:\n"
          (List.length spurious));
     List.iter
       (fun item ->
         Buffer.add_string buf
           (Format.asprintf
              "  data item %a is NOT truly in the provenance of %s's output\n"
              (P.pp_item spec) item
              (View.composite_name view target));
         match P.explain view item target with
         | P.Spurious composites ->
           Buffer.add_string buf
             (Printf.sprintf "    misled by the view path: %s\n"
                (String.concat " -> "
                   (List.map (View.composite_name view) composites)))
         | P.Genuine _ | P.Not_claimed -> ())
       spurious);
  Buffer.contents buf

(* Monotonic, never-negative timing: [Unix.gettimeofday] is a wall clock
   that can step backwards under NTP adjustment and corrupt bench numbers. *)
let time f = Wolves_obs.Clock.time f
