(** Rendering of workflows, views and validation results — the CLI
    counterpart of the demo GUI's three panels (specification, view, result)
    and its red/green soundness marking. *)

open Wolves_workflow

val spec_summary : Spec.t -> string
(** Task list with dependencies, topologically ordered. *)

val view_summary : ?color:bool -> View.t -> string
(** One line per composite with members; unsound composites are marked
    [UNSOUND] (red when [color], default off) with their witness pairs —
    the validator panel. *)

val correction_summary :
  View.t -> (View.composite * Wolves_core.Corrector.outcome) list -> string
(** The result panel: which composites were split, into what. The composites
    refer to the view {e before} correction. *)

val view_dot : ?highlight_unsound:bool -> View.t -> string
(** DOT rendering: one cluster per composite; unsound composites drawn red
    (the demo marking) when [highlight_unsound] (default true). *)

val provenance_summary : View.t -> View.composite -> string
(** The introduction's analysis for one composite: view-level provenance,
    expanded tasks, and any spurious data items with explanations. *)

val time : (unit -> 'a) -> 'a * float
(** Timing of a thunk, in seconds, on the monotonic clock
    ({!Wolves_obs.Clock}): immune to NTP steps, and the reported duration is
    clamped at zero. *)
