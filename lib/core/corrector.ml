open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach
module Obs = Wolves_obs.Metrics
module Clock = Wolves_obs.Clock
module Par = Wolves_par.Par

(* Registry counters (recorded only while metrics are enabled). The local
   [ctx] counters below always run: they feed the per-outcome numbers. *)
let m_checks = Obs.counter "corrector.checks"
let m_prune_probes = Obs.counter "corrector.prune_probes"
let m_dp_mask_evals = Obs.counter "corrector.dp_mask_evals"
let m_weak_merges = Obs.counter "corrector.weak.merges"
let m_closure_branches = Obs.counter "corrector.closure.branches"
let m_budget_exhausted = Obs.counter "corrector.closure.budget_exhausted"
let m_certified = Obs.counter "corrector.certified"
let m_uncertified = Obs.counter "corrector.uncertified"
let m_anytime_nodes = Obs.counter "corrector.anytime.nodes"
let m_anytime_proven = Obs.counter "corrector.anytime.proven"
let m_anytime_cut = Obs.counter "corrector.anytime.budget_cut"
let m_deadline_weak = Obs.counter "corrector.deadline.answered_weak"
let m_deadline_strong = Obs.counter "corrector.deadline.answered_strong"
let m_deadline_optimal = Obs.counter "corrector.deadline.answered_optimal"
let t_split = Obs.timer "corrector.split"
let t_deadline = Obs.timer "corrector.with_deadline"

type criterion =
  | Weak
  | Strong
  | Optimal

let pp_criterion ppf = function
  | Weak -> Format.pp_print_string ppf "weak"
  | Strong -> Format.pp_print_string ppf "strong"
  | Optimal -> Format.pp_print_string ppf "optimal"

let criterion_of_string = function
  | "weak" -> Some Weak
  | "strong" -> Some Strong
  | "optimal" -> Some Optimal
  | _ -> None

type outcome = {
  parts : Spec.task list list;
  checks : int;
  probes : int;
  certified_strong : bool;
}

type config = {
  branch_budget : int;
  certify : bool;
  certify_limit : int;
  optimal_max_tasks : int;
}

let default_config =
  { branch_budget = 64; certify = true; certify_limit = 18; optimal_max_tasks = 18 }

(* Shared mutable state of one correction run: the specification and two
   counters. [checks] counts real [Soundness.subset_sound] /
   [Soundness.subset_witnesses] evaluations — the unit the paper's complexity
   claims are phrased in. [probes] counts the cheaper auxiliary evaluations
   (the anytime search's partial pruning probes, the optimal DP's
   bit-parallel mask evaluations) that must NOT inflate the paper-comparable
   metric. *)
type ctx = {
  spec : Spec.t;
  n : int;
  checks : int ref;
  probes : int ref;
  stop : unit -> bool;
      (** deadline hook polled before every soundness check; checks raise
          {!Expired} once it returns true *)
}

exception Expired

let no_stop () = false

let make_ctx spec =
  { spec; n = Spec.n_tasks spec; checks = ref 0; probes = ref 0;
    stop = no_stop }

let sound ctx set =
  if ctx.stop () then raise Expired;
  incr ctx.checks;
  Obs.incr m_checks;
  Soundness.subset_sound ctx.spec set

let witnesses ctx set =
  if ctx.stop () then raise Expired;
  incr ctx.checks;
  Obs.incr m_checks;
  Soundness.subset_witnesses ctx.spec set

(* ------------------------------------------------------------------ *)
(* Weak local optimality: greedy pair merging from singletons.         *)
(* ------------------------------------------------------------------ *)

(* Parts are bitsets ordered by smallest member; merging part j into part
   i < j preserves that order, so the algorithm is deterministic. *)
let weak_split ctx members =
  let parts =
    ref
      (Array.of_list
         (List.map (fun t -> Bitset.of_list ctx.n [ t ]) members))
  in
  let remove_at j =
    let old = !parts in
    parts :=
      Array.init
        (Array.length old - 1)
        (fun k -> if k < j then old.(k) else old.(k + 1))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let i = ref 0 in
    while !i < Array.length !parts do
      let j = ref (!i + 1) in
      while !j < Array.length !parts do
        let u = Bitset.union (!parts).(!i) (!parts).(!j) in
        if sound ctx u then begin
          Obs.incr m_weak_merges;
          (!parts).(!i) <- u;
          remove_at !j;
          changed := true
        end
        else incr j
      done;
      incr i
    done
  done;
  !parts

(* ------------------------------------------------------------------ *)
(* Strong local optimality: seeded closure search for combinable        *)
(* subsets of parts, run on top of the weak result.                     *)
(* ------------------------------------------------------------------ *)

(* Try to grow the union of the seed parts into a sound union of parts.
   A "bad pair" (x, y) — x ∈ in(U), y ∈ out(U), ¬reach(x, y) — can only be
   repaired by absorbing the parts that make x an input (every outside
   predecessor of x, only possible when they all lie inside the composite) or
   dually the parts consuming y. Forced repairs are applied directly;
   two-sided choices branch within [budget]. *)
let try_closure ctx ~budget parts part_of_task seed_i seed_j =
  let p = Array.length parts in
  let union_of included =
    let u = Bitset.create ctx.n in
    for k = 0 to p - 1 do
      if included.(k) then Bitset.union_into ~into:u parts.(k)
    done;
    u
  in
  let g = Spec.graph ctx.spec in
  (* Parts (indices) that must be absorbed so that [x] stops being an
     input of [u]; None when impossible (an outside-the-composite task or an
     already absorbed-free boundary feeds x). *)
  let absorb_for neighbours u x =
    let rec collect acc = function
      | [] -> Some acc
      | t :: rest ->
        if Bitset.mem u t then collect acc rest
        else (
          match part_of_task t with
          | Some k -> collect (if List.mem k acc then acc else k :: acc) rest
          | None -> None)
    in
    collect [] (neighbours g x)
  in
  let budget = ref budget in
  let rec solve included u =
    match witnesses ctx u with
    | [] -> Some included
    | (x, y) :: _ ->
      let fix_in = absorb_for Digraph.pred u x in
      let fix_out = absorb_for Digraph.succ u y in
      let apply ks =
        let included' = Array.copy included in
        List.iter (fun k -> included'.(k) <- true) ks;
        solve included' (union_of included')
      in
      (match (fix_in, fix_out) with
       | None, None -> None
       | Some ks, None | None, Some ks -> apply ks
       | Some ks_in, Some ks_out ->
         if !budget > 0 then begin
           decr budget;
           Obs.incr m_closure_branches;
           match apply ks_in with
           | Some _ as found -> found
           | None -> apply ks_out
         end
         else begin
           Obs.incr m_budget_exhausted;
           apply ks_in
         end)
  in
  let included = Array.make p false in
  included.(seed_i) <- true;
  included.(seed_j) <- true;
  solve included (union_of included)

let find_combinable_parts ctx ~budget parts =
  let p = Array.length parts in
  let part_of = Hashtbl.create 64 in
  Array.iteri
    (fun k set -> Bitset.iter (fun t -> Hashtbl.replace part_of t k) set)
    parts;
  let part_of_task t = Hashtbl.find_opt part_of t in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < p do
    let j = ref (!i + 1) in
    while !found = None && !j < p do
      (match try_closure ctx ~budget parts part_of_task !i !j with
       | Some included ->
         found :=
           Some
             (List.filter (fun k -> included.(k)) (List.init p Fun.id))
       | None -> ());
      incr j
    done;
    incr i
  done;
  !found

let merge_parts parts indices =
  let keep = Array.to_list parts in
  let merged = Bitset.create (Bitset.capacity parts.(0)) in
  List.iter (fun k -> Bitset.union_into ~into:merged parts.(k)) indices;
  let rest =
    List.filteri (fun k _ -> not (List.mem k indices)) keep
  in
  (* Reinsert ordered by smallest member. *)
  let all = merged :: rest in
  let key set = match Bitset.choose set with Some t -> t | None -> max_int in
  Array.of_list (List.sort (fun a b -> compare (key a) (key b)) all)

(* Exhaustive fallback: find any combinable subset of ≥ 2 parts by mask
   enumeration. Exponential in the number of parts; only used under
   [certify_limit]. *)
let exhaustive_combinable ctx parts =
  let p = Array.length parts in
  let result = ref None in
  let mask = ref 3 in
  let limit = 1 lsl p in
  while !result = None && !mask < limit do
    let m = !mask in
    let indices =
      List.filter (fun k -> m land (1 lsl k) <> 0) (List.init p Fun.id)
    in
    if List.length indices >= 2 then begin
      let u = Bitset.create ctx.n in
      List.iter (fun k -> Bitset.union_into ~into:u parts.(k)) indices;
      if sound ctx u then result := Some indices
    end;
    incr mask
  done;
  !result

(* The strong loop starting from an arbitrary partition (normally the weak
   corrector's); factored out so the deadline chain can hand it the weak
   result it already holds and abandon it mid-flight via [ctx.stop]. *)
let strong_refine ctx ~config parts0 =
  let parts = ref parts0 in
  let continue_ = ref true in
  let certified = ref false in
  while !continue_ do
    match find_combinable_parts ctx ~budget:config.branch_budget !parts with
    | Some indices -> parts := merge_parts !parts indices
    | None ->
      (* The closure search is done; certify (and repair) exhaustively when
         requested and small enough. *)
      if config.certify && Array.length !parts <= config.certify_limit then begin
        match exhaustive_combinable ctx !parts with
        | Some indices -> parts := merge_parts !parts indices
        | None ->
          certified := true;
          continue_ := false
      end
      else continue_ := false
  done;
  Obs.incr (if !certified then m_certified else m_uncertified);
  (!parts, !certified)

let strong_split ctx ~config members =
  strong_refine ctx ~config (weak_split ctx members)

(* ------------------------------------------------------------------ *)
(* Optimal split: exact minimum partition into sound parts, by dynamic  *)
(* programming over subsets of the composite's members.                 *)
(* ------------------------------------------------------------------ *)

let optimal_split ctx members =
  let mem = Array.of_list members in
  let n = Array.length mem in
  assert (n <= 62);
  let index_of = Hashtbl.create n in
  Array.iteri (fun i t -> Hashtbl.replace index_of t i) mem;
  let g = Spec.graph ctx.spec in
  let r = Spec.reach ctx.spec in
  let reach_row = Array.make n 0 in
  let preds_in = Array.make n 0 in
  let succs_in = Array.make n 0 in
  let ext_in = Array.make n false in
  let ext_out = Array.make n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Reach.reaches r mem.(i) mem.(j) then
        reach_row.(i) <- reach_row.(i) lor (1 lsl j)
    done;
    List.iter
      (fun p ->
        match Hashtbl.find_opt index_of p with
        | Some k -> preds_in.(i) <- preds_in.(i) lor (1 lsl k)
        | None -> ext_in.(i) <- true)
      (Digraph.pred g mem.(i));
    List.iter
      (fun s ->
        match Hashtbl.find_opt index_of s with
        | Some k -> succs_in.(i) <- succs_in.(i) lor (1 lsl k)
        | None -> ext_out.(i) <- true)
      (Digraph.succ g mem.(i))
  done;
  let size = 1 lsl n in
  let sound_mask = Bytes.make size '\000' in
  (* Bit-parallel subset-soundness evaluation of every mask. These are NOT
     [Soundness.subset_sound] calls — they count as probes, not checks, so
     the paper-comparable metric stays honest. *)
  for mask = 1 to size - 1 do
    incr ctx.probes;
    Obs.incr m_dp_mask_evals;
    let ins = ref 0 and outs = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        if ext_in.(i) || preds_in.(i) land lnot mask <> 0 then
          ins := !ins lor (1 lsl i);
        if ext_out.(i) || succs_in.(i) land lnot mask <> 0 then
          outs := !outs lor (1 lsl i)
      end
    done;
    let ok = ref true in
    for i = 0 to n - 1 do
      if !ins land (1 lsl i) <> 0 && !outs land lnot reach_row.(i) <> 0 then
        ok := false
    done;
    if !ok then Bytes.set sound_mask mask '\001'
  done;
  let infinity_parts = n + 1 in
  let dp = Array.make size infinity_parts in
  let choice = Array.make size 0 in
  dp.(0) <- 0;
  for mask = 1 to size - 1 do
    (* The part containing the lowest member of [mask] must be a sound
       submask; enumerate them. *)
    let low = mask land -mask in
    let s = ref mask in
    while !s > 0 do
      if !s land low <> 0 && Bytes.get sound_mask !s = '\001' then begin
        let rest = mask lxor !s in
        if dp.(rest) + 1 < dp.(mask) then begin
          dp.(mask) <- dp.(rest) + 1;
          choice.(mask) <- !s
        end
      end;
      s := (!s - 1) land mask
    done
  done;
  let full = size - 1 in
  assert (dp.(full) <= n);
  let rec rebuild mask acc =
    if mask = 0 then acc
    else
      let s = choice.(mask) in
      let part =
        List.filter_map
          (fun i -> if s land (1 lsl i) <> 0 then Some mem.(i) else None)
          (List.init n Fun.id)
      in
      rebuild (mask lxor s) (part :: acc)
  in
  let parts = rebuild full [] in
  List.sort (fun a b -> compare (List.hd a) (List.hd b)) parts

(* ------------------------------------------------------------------ *)
(* Public API                                                           *)
(* ------------------------------------------------------------------ *)

let check_members spec members =
  if members = [] then invalid_arg "Corrector: empty composite";
  let sorted = List.sort_uniq compare members in
  if List.length sorted <> List.length members then
    invalid_arg "Corrector: duplicate members";
  List.iter
    (fun t ->
      if t < 0 || t >= Spec.n_tasks spec then
        invalid_arg (Printf.sprintf "Corrector: unknown task %d" t))
    sorted;
  sorted

let parts_to_lists parts =
  Array.to_list (Array.map Bitset.elements parts)

let outcome_of_ctx ctx ~parts ~certified_strong =
  { parts; checks = !(ctx.checks); probes = !(ctx.probes); certified_strong }

let criterion_name = function
  | Weak -> "weak"
  | Strong -> "strong"
  | Optimal -> "optimal"

let split_subset ?(config = default_config) criterion spec members =
  Obs.time t_split
    ~args:(fun () ->
      [ ("criterion", criterion_name criterion);
        ("members", string_of_int (List.length members)) ])
  @@ fun () ->
  let members = check_members spec members in
  let ctx = make_ctx spec in
  let member_set = Bitset.of_list ctx.n members in
  if List.length members = 1 || sound ctx member_set then
    (* Already sound: nothing to split; trivially strongly optimal. *)
    outcome_of_ctx ctx ~parts:[ members ] ~certified_strong:true
  else
    match criterion with
    | Weak ->
      let parts = weak_split ctx members in
      outcome_of_ctx ctx ~parts:(parts_to_lists parts) ~certified_strong:false
    | Strong ->
      let parts, certified = strong_split ctx ~config members in
      outcome_of_ctx ctx ~parts:(parts_to_lists parts)
        ~certified_strong:certified
    | Optimal ->
      if List.length members > config.optimal_max_tasks then
        invalid_arg
          (Printf.sprintf
             "Corrector: optimal split limited to %d tasks (got %d)"
             config.optimal_max_tasks (List.length members));
      let parts = optimal_split ctx members in
      (* A minimum split is strongly local optimal: a combinable subset
         would contradict minimality. *)
      outcome_of_ctx ctx ~parts ~certified_strong:true

(* ------------------------------------------------------------------ *)
(* Anytime exact split: branch-and-bound over topological assignments.  *)
(* ------------------------------------------------------------------ *)

(* The branch-and-bound core: improve on [incumbent] within [node_budget]
   nodes, additionally cut by the external [stop] hook (polled per node, so
   a raised deadline never escapes as an exception — the incumbent is always
   returned). Returns the best partition found (as sorted lists) and whether
   the search ran to completion (proving minimality). *)
let bb_search ctx ~node_budget ~stop members incumbent =
  let spec = ctx.spec in
  let member_set = Bitset.of_list ctx.n members in
  begin
    let best = ref (Array.map Bitset.copy incumbent) in
    let best_count = ref (Array.length incumbent) in
    let g = Spec.graph spec in
    let r = Spec.reach spec in
    (* Assignment order: members sorted topologically, so that when a task
       is placed every in-T supplier is already placed. *)
    let topo_pos = Array.make ctx.n 0 in
    List.iteri (fun i t -> topo_pos.(t) <- i) (Spec.topological_order spec);
    let order =
      Array.of_list
        (List.sort (fun a b -> compare topo_pos.(a) topo_pos.(b)) members)
    in
    let n = Array.length order in
    let assigned = Bitset.create ctx.n in
    (* A part is hopeless once some placed input x cannot reach some final
       output y: x's in-status is final (suppliers all placed), y's
       out-status is final when y exports outside T or to a placed task of
       another part. *)
    let out_final part y =
      List.exists
        (fun c ->
          if Bitset.mem part c then false
          else if not (Bitset.mem member_set c) then true
          else Bitset.mem assigned c)
        (Digraph.succ g y)
    in
    let in_now part x =
      List.exists (fun p -> not (Bitset.mem part p)) (Digraph.pred g x)
    in
    (* A pruning probe, not a subset-soundness evaluation: it inspects only
       the pairs whose in/out status is already final, so it can prove a
       part hopeless but never sound. Counting it under [checks] inflated
       the paper-comparable metric by orders of magnitude. *)
    let part_hopeless part =
      incr ctx.probes;
      Obs.incr m_prune_probes;
      let bad = ref false in
      Bitset.iter
        (fun y ->
          if (not !bad) && out_final part y then
            Bitset.iter
              (fun x ->
                if (not !bad) && in_now part x && not (Reach.reaches r x y)
                then bad := true)
              part)
        part;
      !bad
    in
    let parts : Bitset.t array = Array.init n (fun _ -> Bitset.create ctx.n) in
    let nodes = ref 0 in
    let complete = ref true in
    let rec search i used =
      if !nodes >= node_budget || stop () then complete := false
      else begin
        incr nodes;
        if used >= !best_count then () (* cannot improve *)
        else if i = n then begin
          (* All placed: re-validate every part (a pair can become "final"
             through assignments to other parts after the last time this
             part was checked). *)
          let all_sound =
            Array.for_all
              (fun part -> sound ctx part)
              (Array.sub parts 0 used)
          in
          if all_sound then begin
            best := Array.map Bitset.copy (Array.sub parts 0 used);
            best_count := used
          end
        end
        else begin
          let t = order.(i) in
          Bitset.add assigned t;
          (* Try existing parts, then a fresh one (canonical order kills the
             part-permutation symmetry). *)
          let try_part p =
            Bitset.add parts.(p) t;
            if not (part_hopeless parts.(p)) then
              search (i + 1) (max used (p + 1));
            Bitset.remove parts.(p) t
          in
          for p = 0 to used - 1 do
            try_part p
          done;
          if used < n then try_part used;
          Bitset.remove assigned t
        end
      end
    in
    search 0 0;
    Obs.add m_anytime_nodes !nodes;
    Obs.incr (if !complete then m_anytime_proven else m_anytime_cut);
    let parts_lists =
      Array.to_list (Array.map Bitset.elements !best)
      |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
    in
    (parts_lists, !complete)
  end

let split_subset_anytime ?(config = default_config) ?(node_budget = 2_000_000)
    spec members =
  let members = check_members spec members in
  let ctx = make_ctx spec in
  let member_set = Bitset.of_list ctx.n members in
  if List.length members = 1 || sound ctx member_set then
    (outcome_of_ctx ctx ~parts:[ members ] ~certified_strong:true, true)
  else begin
    (* Incumbent: the strong corrector's split. *)
    let incumbent, _ = strong_split ctx ~config members in
    let parts_lists, complete =
      bb_search ctx ~node_budget ~stop:no_stop members incumbent
    in
    (* A proven minimum is strongly local optimal (a combinable subset would
       contradict minimality); a budget-cut result is not certified. *)
    (outcome_of_ctx ctx ~parts:parts_lists ~certified_strong:complete, complete)
  end

(* ------------------------------------------------------------------ *)
(* Deadline-degrading correction: optimal when time allows, falling     *)
(* back to strong, then weak, as the budget expires.                    *)
(* ------------------------------------------------------------------ *)

type tier_outcome = {
  result : outcome;
  tier : criterion;
      (** the guarantee level of the returned partition: the tier whose
          search last {e completed} *)
  elapsed_s : float;
  abandoned : criterion option;
      (** the tier whose search the deadline interrupted, if any *)
  proven_optimal : bool;
}

let pp_tier_outcome ppf o =
  Format.fprintf ppf "%a tier, %d parts, %.3f ms%s" pp_criterion o.tier
    (List.length o.result.parts)
    (o.elapsed_s *. 1000.0)
    (match o.abandoned with
     | None -> ""
     | Some c -> Format.asprintf " (abandoned %a)" pp_criterion c)

let default_check_cost_s = 1e-4

let with_deadline ?(config = default_config) ?(node_budget = 2_000_000)
    ?(check_cost_s = default_check_cost_s) ?(spent_s = 0.) ~deadline_s spec
    members =
  if spent_s < 0.0 then
    invalid_arg "Corrector.with_deadline: spent_s must be non-negative";
  Obs.time t_deadline
    ~args:(fun () ->
      [ ("deadline_s", Printf.sprintf "%g" deadline_s);
        ("spent_s", Printf.sprintf "%g" spent_s);
        ("members", string_of_int (List.length members)) ])
  @@ fun () ->
  let start = Clock.now () in
  let members = check_members spec members in
  let ctx = make_ctx spec in
  (* Budget consumption is the max of real elapsed time and the modeled cost
     of the soundness checks performed so far. The modeled component makes
     degradation deterministic across machines (the gadgets of this repo are
     so small that every tier finishes in microseconds, which would make
     deadline behaviour a lottery of hardware speed); the wall-clock
     component keeps the deadline honest on instances large enough for real
     time to dominate. [spent_s] pre-charges the budget with time the caller
     already consumed on the request's behalf before correction started —
     the query service passes its admission-queue wait here, so a request
     that waited degrades further instead of overstaying its deadline. *)
  let consumed () =
    spent_s
    +. Float.max (Clock.elapsed_since start)
         (float_of_int !(ctx.checks) *. check_cost_s)
  in
  let expired () = consumed () >= deadline_s in
  let member_set = Bitset.of_list ctx.n members in
  let finish tier ~parts ~certified ~abandoned ~proven =
    Obs.incr
      (match tier with
       | Weak -> m_deadline_weak
       | Strong -> m_deadline_strong
       | Optimal -> m_deadline_optimal);
    Obs.instant "corrector.deadline.answered" (fun () ->
        [ ("tier", criterion_name tier);
          ("parts", string_of_int (List.length parts));
          ("proven_optimal", string_of_bool proven) ]);
    { result = outcome_of_ctx ctx ~parts ~certified_strong:certified;
      tier;
      elapsed_s = Clock.elapsed_since start;
      abandoned;
      proven_optimal = proven }
  in
  if List.length members = 1 || sound ctx member_set then
    (* Already sound: the trivial split is minimal, whatever the budget. *)
    finish Optimal ~parts:[ members ] ~certified:true ~abandoned:None
      ~proven:true
  else begin
    (* Tier 1 — weak floor. Runs to completion regardless of the deadline:
       there is no cheaper sound answer to degrade to, and it is the
       incumbent everything later improves on. *)
    let weak_parts =
      Obs.with_span "corrector.tier.weak" (fun () -> weak_split ctx members)
    in
    let weak_fallback () =
      finish Weak
        ~parts:(parts_to_lists weak_parts)
        ~certified:false ~abandoned:(Some Strong) ~proven:false
    in
    if expired () then weak_fallback ()
    else begin
      (* Tier 2 — strong refinement of the weak result, interruptible
         between soundness checks. The stop-threaded context shares the
         counter refs, so abandoned work still shows up in the outcome. *)
      match
        Obs.with_span "corrector.tier.strong" (fun () ->
            strong_refine { ctx with stop = expired } ~config weak_parts)
      with
      | exception Expired -> weak_fallback ()
      | strong_parts, certified ->
        if expired () then
          finish Strong
            ~parts:(parts_to_lists strong_parts)
            ~certified ~abandoned:(Some Optimal) ~proven:false
        else begin
          (* Tier 3 — exact branch-and-bound, cut per node by the deadline.
             Run with the non-raising context: a cut search still returns
             its incumbent (≥ the strong result), it just is not proven
             minimal. *)
          let bb_parts, complete =
            Obs.with_span "corrector.tier.optimal" (fun () ->
                bb_search ctx ~node_budget ~stop:expired members strong_parts)
          in
          if complete then
            finish Optimal ~parts:bb_parts ~certified:true ~abandoned:None
              ~proven:true
          else
            finish Strong ~parts:bb_parts ~certified
              ~abandoned:(Some Optimal) ~proven:false
        end
    end
  end

let unique_name taken base =
  if not (Hashtbl.mem taken base) then base
  else begin
    let rec go k =
      let candidate = Printf.sprintf "%s~%d" base k in
      if Hashtbl.mem taken candidate then go (k + 1) else candidate
    in
    go 2
  end

let rebuild_view view replacements =
  (* [replacements]: composite id -> parts. Composites absent from the map
     are kept as-is. *)
  let spec = View.spec view in
  let taken = Hashtbl.create 64 in
  let groups =
    List.concat_map
      (fun c ->
        let name = View.composite_name view c in
        match List.assoc_opt c replacements with
        | None ->
          let final = unique_name taken name in
          Hashtbl.replace taken final ();
          [ (final, View.members view c) ]
        | Some [ single ] ->
          let final = unique_name taken name in
          Hashtbl.replace taken final ();
          [ (final, single) ]
        | Some parts ->
          List.mapi
            (fun i part ->
              let final = unique_name taken (Printf.sprintf "%s/%d" name i) in
              Hashtbl.replace taken final ();
              (final, part))
            parts)
      (View.composites view)
  in
  let names = Array.of_list (List.map fst groups) in
  match View.of_partition ~names spec (List.map snd groups) with
  | Ok v -> v
  | Error e ->
    invalid_arg
      (Format.asprintf "Corrector.rebuild_view: %a" View.pp_error e)

let split_composite ?(config = default_config) criterion view c =
  let spec = View.spec view in
  let outcome = split_subset ~config criterion spec (View.members view c) in
  (rebuild_view view [ (c, outcome.parts) ], outcome)

let correct ?(config = default_config) ?domains criterion view =
  let domains =
    match domains with Some d -> d | None -> Par.default_domains ()
  in
  Obs.with_span "corrector.correct"
    ~args:(fun () ->
      [ ("workflow", Spec.name (View.spec view));
        ("criterion", criterion_name criterion) ])
  @@ fun () ->
  let spec = View.spec view in
  let report = Soundness.validate ~domains view in
  let split c =
    Obs.with_span "corrector.composite"
      ~args:(fun () -> [ ("composite", View.composite_name view c) ])
    @@ fun () ->
    split_subset ~config criterion spec (View.members view c)
  in
  let unsound = Array.of_list report.Soundness.unsound in
  let outcomes =
    if domains <= 1 || Array.length unsound < 2 then
      List.map (fun (c, _) -> (c, split c)) report.Soundness.unsound
    else begin
      (* Each unsound composite is corrected independently from the spec
         and its (already forced, read-only) closure, so the splits farm
         across the pool. The view is only rebuilt afterwards, on this
         domain; worker metrics land in per-job shards merged back in
         composite order, so the registry — like the outcome list — is
         identical to the sequential run. *)
      ignore (Spec.reach spec);
      let results =
        Par.map_ordered ~domains
          (fun (c, _) -> Obs.with_new_shard (fun () -> split c))
          unsound
      in
      Array.iter (fun (_, sh) -> Obs.merge_shard sh) results;
      List.mapi (fun i (c, _) -> (c, fst results.(i)))
        (Array.to_list unsound)
    end
  in
  let replacements = List.map (fun (c, o) -> (c, o.parts)) outcomes in
  (rebuild_view view replacements, outcomes)

let correct_with_deadline ?(config = default_config) ?(node_budget = 2_000_000)
    ?(check_cost_s = default_check_cost_s) ?(spent_s = 0.) ~deadline_s view =
  if spent_s < 0.0 then
    invalid_arg "Corrector.correct_with_deadline: spent_s must be non-negative";
  Obs.with_span "corrector.correct"
    ~args:(fun () ->
      [ ("workflow", Spec.name (View.spec view));
        ("deadline_s", Printf.sprintf "%g" deadline_s);
        ("spent_s", Printf.sprintf "%g" spent_s) ])
  @@ fun () ->
  let spec = View.spec view in
  let report = Soundness.validate view in
  (* One budget shared across all unsound composites: each gets whatever
     remains when its turn comes (clamped at zero — the weak floor still
     guarantees a sound answer for every composite). Consumption is each
     composite's, under the same wall-vs-modeled accounting as
     {!with_deadline}; [spent_s] is charged up front. *)
  let remaining = ref (deadline_s -. spent_s) in
  let outcomes =
    List.map
      (fun (c, _) ->
        let o =
          Obs.with_span "corrector.composite"
            ~args:(fun () -> [ ("composite", View.composite_name view c) ])
          @@ fun () ->
          with_deadline ~config ~node_budget ~check_cost_s
            ~deadline_s:(Float.max 0.0 !remaining)
            spec (View.members view c)
        in
        remaining :=
          !remaining
          -. Float.max o.elapsed_s
               (float_of_int o.result.checks *. check_cost_s);
        (c, o))
      report.Soundness.unsound
  in
  let replacements =
    List.map (fun (c, o) -> (c, o.result.parts)) outcomes
  in
  (rebuild_view view replacements, outcomes)

let combinable spec a b =
  let a = check_members spec a and b = check_members spec b in
  let set = Bitset.of_list (Spec.n_tasks spec) a in
  List.iter
    (fun t ->
      if Bitset.mem set t then invalid_arg "Corrector.combinable: overlapping sets";
      Bitset.add set t)
    b;
  Soundness.subset_sound spec set

(* ------------------------------------------------------------------ *)
(* Merge-based resolution (extension)                                   *)
(* ------------------------------------------------------------------ *)

let merge_resolve view c =
  let spec = View.spec view in
  let n = Spec.n_tasks spec in
  let g = Spec.graph spec in
  let u = Bitset.of_list n (View.members view c) in
  let absorbed = Array.make (View.n_composites view) false in
  absorbed.(c) <- true;
  let absorb_side neighbours x =
    (* Composites owning the outside neighbours of x, with the task count
       they would add. *)
    let comps =
      List.sort_uniq compare
        (List.filter_map
           (fun t ->
             if Bitset.mem u t then None else Some (View.composite_of_task view t))
           (neighbours g x))
    in
    let cost =
      List.fold_left
        (fun acc comp -> acc + List.length (View.members view comp))
        0 comps
    in
    (comps, cost)
  in
  let continue_ = ref true in
  while !continue_ do
    match Soundness.subset_witnesses spec u with
    | [] -> continue_ := false
    | (x, y) :: _ ->
      let in_side = absorb_side Digraph.pred x in
      let out_side = absorb_side Digraph.succ y in
      let comps, _ =
        match (in_side, out_side) with
        | (([], _) as a), _ -> ignore a; out_side
        | _, ([], _) -> in_side
        | (_, cin), (_, cout) -> if cout < cin then out_side else in_side
      in
      List.iter
        (fun comp ->
          absorbed.(comp) <- true;
          List.iter (Bitset.add u) (View.members view comp))
        comps
  done;
  let name = View.composite_name view c in
  let groups =
    List.filter_map
      (fun c' ->
        if absorbed.(c') then None
        else Some (View.composite_name view c', View.members view c'))
      (View.composites view)
    @ [ (name, Bitset.elements u) ]
  in
  let names = Array.of_list (List.map fst groups) in
  let view' =
    match View.of_partition ~names spec (List.map snd groups) with
    | Ok v -> v
    | Error e ->
      invalid_arg (Format.asprintf "Corrector.merge_resolve: %a" View.pp_error e)
  in
  match View.composite_of_name view' name with
  | Some c' -> (view', c')
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Mixed split/merge resolution                                         *)
(* ------------------------------------------------------------------ *)

type decision = {
  composite : string;
  action : [ `Split of int | `Merge of int ];
}

let pp_decision ppf d =
  match d.action with
  | `Split parts ->
    Format.fprintf ppf "split %S into %d parts" d.composite parts
  | `Merge absorbed ->
    Format.fprintf ppf "merged %d composites into %S" absorbed d.composite

let resolve_auto ?(config = default_config) view =
  let rec go view decisions =
    match (Soundness.validate view).Soundness.unsound with
    | [] -> (view, List.rev decisions)
    | (c, _) :: _ ->
      let name = View.composite_name view c in
      let split_view, outcome = split_composite ~config Strong view c in
      let split_cost = List.length outcome.parts - 1 in
      let merge_view, merged = merge_resolve view c in
      let merge_cost =
        List.length (View.members merge_view merged)
        - List.length (View.members view c)
      in
      if split_cost <= merge_cost then
        go split_view
          ({ composite = name; action = `Split (List.length outcome.parts) }
           :: decisions)
      else
        let absorbed =
          View.n_composites view - View.n_composites merge_view
        in
        go merge_view
          ({ composite = name; action = `Merge absorbed } :: decisions)
  in
  go view []

(* ------------------------------------------------------------------ *)
(* Oracles                                                              *)
(* ------------------------------------------------------------------ *)

module Oracle = struct
  let valid_split spec members parts =
    let members = List.sort compare members in
    let flat = List.sort compare (List.concat parts) in
    members = flat
    && List.for_all (fun p -> p <> []) parts
    && List.for_all
         (fun p -> Soundness.subset_sound spec (Bitset.of_list (Spec.n_tasks spec) p))
         parts

  let weakly_local_optimal spec parts =
    let arr = Array.of_list parts in
    let p = Array.length arr in
    let combinable_pair i j =
      let set = Bitset.of_list (Spec.n_tasks spec) arr.(i) in
      List.iter (Bitset.add set) arr.(j);
      Soundness.subset_sound spec set
    in
    let ok = ref true in
    for i = 0 to p - 1 do
      for j = i + 1 to p - 1 do
        if combinable_pair i j then ok := false
      done
    done;
    !ok

  let strongly_local_optimal ?(max_parts = 20) spec parts =
    let arr = Array.of_list parts in
    let p = Array.length arr in
    if p > max_parts then None
    else begin
      let n = Spec.n_tasks spec in
      let ok = ref true in
      for mask = 3 to (1 lsl p) - 1 do
        if !ok then begin
          let indices =
            List.filter (fun k -> mask land (1 lsl k) <> 0) (List.init p Fun.id)
          in
          if List.length indices >= 2 then begin
            let u = Bitset.create n in
            List.iter (fun k -> List.iter (Bitset.add u) arr.(k)) indices;
            if Soundness.subset_sound spec u then ok := false
          end
        end
      done;
      Some !ok
    end
end
