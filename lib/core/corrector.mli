(** The Unsound View Corrector (paper §2.2).

    Resolves an unsound composite task by splitting it into sound composite
    tasks. Three criteria, as in the demo:

    - {b Weak local optimality} (Def 2.5): no two parts of the result can be
      merged into a sound task. Polynomial greedy pair merging.
    - {b Strong local optimality} (Def 2.6): no subset of parts can be merged
      into a sound task. Polynomial seeded-closure subset search on top of the
      weak result (reconstruction of the paper's O(n³) algorithm, see
      DESIGN.md), with an optional exhaustive certification pass.
    - {b Optimality}: minimum number of sound parts (Theorem 2.2: NP-hard),
      via an exact O(3ⁿ) dynamic program over subsets, practical to n ≈ 18.

    All splits are partitions of the composite's members; every part is sound
    by construction. Soundness of a part is evaluated against the whole
    workflow (tasks outside the part — whether in sibling parts, other
    composites, or elsewhere — are "outside" per Def 2.2). *)

open Wolves_workflow

type criterion =
  | Weak
  | Strong
  | Optimal

val pp_criterion : Format.formatter -> criterion -> unit

val criterion_of_string : string -> criterion option
(** Accepts ["weak"], ["strong"], ["optimal"]. *)

(** Result of splitting one composite. *)
type outcome = {
  parts : Spec.task list list;
      (** The resulting partition; parts ordered by smallest member, members
          increasing. A sound input composite yields a single part. *)
  checks : int;
      (** Full subset-soundness evaluations performed — actual
          {!Soundness.subset_sound} / {!Soundness.subset_witnesses} calls,
          the unit of the paper's complexity claims and the dominant cost.
          Cheaper auxiliary evaluations are counted under {!field-probes}
          and never inflate this number. *)
  probes : int;
      (** Auxiliary soundness evaluations that are {e not} full
          [Soundness] calls: the anytime branch-and-bound's partial pruning
          probes and the optimal DP's bit-parallel mask evaluations. *)
  certified_strong : bool;
      (** [true] when an exhaustive pass proved the result strongly local
          optimal (always attempted for [Strong] and [Optimal] results with
          at most [certify_limit] parts). *)
}

(** Tuning knobs; {!default_config} suits tests and benches. *)
type config = {
  branch_budget : int;
      (** Extra branch points the strong closure search may explore per seed
          (forced repairs are free). Default 64. *)
  certify : bool;
      (** Run the exhaustive verification/repair pass after the polynomial
          closure search (default true). With [false] the corrector is the
          pure polynomial reconstruction; its output was strongly local
          optimal on every workload in this repository's test-suite, but the
          guarantee is only by construction of the closure, not by
          enumeration. *)
  certify_limit : int;
      (** Exhaustive strong-optimality verification runs when the split has
          at most this many parts. Default 18. *)
  optimal_max_tasks : int;
      (** [Optimal] refuses composites larger than this (the DP is
          exponential). Default 18. *)
}

val default_config : config

val split_subset :
  ?config:config -> criterion -> Spec.t -> Spec.task list -> outcome
(** Split an arbitrary task subset (typically the members of one composite).
    @raise Invalid_argument when the subset is empty, contains duplicates, or
    ([Optimal]) exceeds [optimal_max_tasks]. *)

val split_subset_anytime :
  ?config:config ->
  ?node_budget:int ->
  Spec.t ->
  Spec.task list ->
  outcome * bool
(** Exact minimum split by branch-and-bound over topological-order
    assignments, for composites beyond [optimal_max_tasks]. Starts from the
    strong corrector's split as the incumbent, explores at most
    [node_budget] search nodes (default [2_000_000]) and returns the best
    split found plus a flag: [true] when the search completed and the split
    is {e proven} minimum, [false] when the budget ran out (the result is
    then still a valid sound split, no worse than the strong corrector's).

    Pruning exploits the assignment order: once a task is placed, its
    membership of the part's in set is final (all suppliers precede it), so
    any part with an unreachable (final input, final output) pair can never
    become sound and the branch is cut. *)

(** Result of a deadline-bounded correction (see {!with_deadline}). *)
type tier_outcome = {
  result : outcome;
      (** The returned split; always sound, at worst the weak corrector's.
          Its counters include the work of abandoned tiers. *)
  tier : criterion;
      (** The guarantee level actually delivered: the highest tier whose
          search ran to completion. *)
  elapsed_s : float;  (** wall-clock seconds actually spent *)
  abandoned : criterion option;
      (** The tier whose search the deadline interrupted, if any ([Strong]
          when even the strong refinement was cut, [Optimal] when only the
          exact search was). *)
  proven_optimal : bool;
      (** [true] iff the exact search completed, proving the split minimum. *)
}

val pp_tier_outcome : Format.formatter -> tier_outcome -> unit
(** One-line rendering: tier, part count, elapsed ms, abandoned tier. *)

val default_check_cost_s : float
(** Modeled cost of one full soundness check: [1e-4] (100 µs), roughly a
    closure-matrix soundness query over a workflow of the scale the paper's
    WfMS deployments manage. *)

val with_deadline :
  ?config:config ->
  ?node_budget:int ->
  ?check_cost_s:float ->
  ?spent_s:float ->
  deadline_s:float ->
  Spec.t ->
  Spec.task list ->
  tier_outcome
(** Deadline-degrading correction chain: weak → strong → optimal, each tier
    improving on the previous, stopping (between soundness checks / search
    nodes) once the budget of [deadline_s] seconds is consumed. The budget
    is consumed by the {e larger} of wall-clock time and the modeled cost of
    the soundness checks performed ([checks × check_cost_s]): the modeled
    component makes degradation deterministic across machines — on the
    repo's gadget-sized inputs every tier finishes in microseconds, so a
    pure wall-clock deadline would be a hardware lottery — while the
    wall-clock component keeps the deadline honest on instances big enough
    for real time to dominate.

    The weak tier always runs to completion — it is the floor, so the
    answer is always a valid sound split — and with [deadline_s = 0.] it is
    also the answer. With a generous deadline the chain behaves exactly
    like {!split_subset_anytime} (the optimal tier still honours
    [node_budget]).

    [spent_s] (default [0.]) pre-charges the budget with time the caller
    already spent on the request's behalf before correction started — a
    query service passes its admission-queue wait here so a request that
    queued long degrades to a cheaper tier instead of overstaying its
    deadline. The weak floor is unaffected: it runs even with
    [spent_s >= deadline_s]. @raise Invalid_argument as {!split_subset},
    or when [spent_s] is negative. *)

val correct_with_deadline :
  ?config:config ->
  ?node_budget:int ->
  ?check_cost_s:float ->
  ?spent_s:float ->
  deadline_s:float ->
  View.t ->
  View.t * (View.composite * tier_outcome) list
(** {!correct} under one shared deadline: each unsound composite gets the
    budget remaining when its turn comes (possibly zero — the weak floor
    still answers). [spent_s] is charged against the shared budget up
    front, as in {!with_deadline}. The returned view is sound. *)

val split_composite :
  ?config:config -> criterion -> View.t -> View.composite -> View.t * outcome
(** The demo's "Split Task" action: replace one composite by its split. The
    new composites inherit the composite's name with [/0], [/1]... suffixes. *)

val correct :
  ?config:config ->
  ?domains:int ->
  criterion ->
  View.t ->
  View.t * (View.composite * outcome) list
(** The demo's "Correct View" action: split every unsound composite of the
    view. The returned view is sound; the association list maps each corrected
    composite (id in the {e input} view) to its outcome.

    With [domains] above 1 (default [Wolves_par.Par.default_domains]) the
    independent composite splits are farmed across a domain pool — metrics
    recorded in per-domain shards, merged back in composite order — and the
    corrected view and outcome list are identical to the sequential run at
    every domain count. *)

val combinable : Spec.t -> Spec.task list -> Spec.task list -> bool
(** Def 2.4: can the two disjoint task sets be merged into a sound composite
    task? *)

val merge_resolve : View.t -> View.composite -> View.t * View.composite
(** Extension (the paper's open problem, §"significance"): resolve an unsound
    composite by {e merging} it with other composites of the view instead of
    splitting it. Greedy closure absorbing the composites that supply unmet
    inputs or consume unmet outputs, preferring the cheaper side; terminates
    (the whole-workflow composite is always sound). Returns the new view and
    the id of the merged composite in it. Loses information: the merged
    composite is larger. *)

(** One decision of the mixed resolver. *)
type decision = {
  composite : string;  (** name of the unsound composite in the view at the
                           time of the decision *)
  action : [ `Split of int  (** number of resulting parts *)
           | `Merge of int  (** number of composites absorbed *) ];
}

val pp_decision : Format.formatter -> decision -> unit

val resolve_auto :
  ?config:config -> View.t -> View.t * decision list
(** The paper's open problem ("allowing view abstraction by task merging,
    and the interaction between splitting and merging"): resolve each
    unsound composite by whichever of splitting (strong criterion) or
    merging is cheaper, where splitting costs the extra composites it
    creates and merging costs the tasks it hides inside the bigger
    composite. Ties prefer splitting (information-preserving). The result is
    sound; decisions are reported in application order. *)

(** Test oracles: direct (exponential where necessary) checks of the
    optimality definitions, used by the test-suite and the quality
    benchmarks. *)
module Oracle : sig
  val valid_split : Spec.t -> Spec.task list -> Spec.task list list -> bool
  (** Is this a partition of the members into sound parts? *)

  val weakly_local_optimal : Spec.t -> Spec.task list list -> bool
  (** Def 2.5: no two parts combinable. O(p²) soundness checks. *)

  val strongly_local_optimal :
    ?max_parts:int -> Spec.t -> Spec.task list list -> bool option
  (** Def 2.6: no subset of ≥ 2 parts combinable. Enumerates the 2^p subsets;
      [None] when [p > max_parts] (default 20). *)
end
