open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module Obs = Wolves_obs.Metrics

let m_cache_hits = Obs.counter "session.verdict_cache_hits"
let m_cache_misses = Obs.counter "session.verdict_cache_misses"

type verdict =
  | Sound
  | Unsound of (Spec.task * Spec.task) list

(* One mutable composite. The cached verdict is cleared whenever the member
   set changes; nothing else can change a composite's soundness. *)
type group = {
  mutable g_members : Bitset.t;
  mutable g_verdict : verdict option;
}

type snapshot = {
  snap_groups : (string * Spec.task list * verdict option) list;
  snap_order : string list;
}

type t = {
  s_spec : Spec.t;
  groups : (string, group) Hashtbl.t;
  mutable order : string list; (* creation order, reversed *)
  owner : (Spec.task, string) Hashtbl.t;
  mutable checks : int;
  mutable hits : int;
  mutable history : snapshot list;
}

let spec s = s.s_spec

let of_groups spec named =
  let s =
    { s_spec = spec;
      groups = Hashtbl.create 64;
      order = [];
      owner = Hashtbl.create 64;
      checks = 0;
      hits = 0;
      history = [] }
  in
  List.iter
    (fun (name, members) ->
      let set = Bitset.create (Spec.n_tasks spec) in
      List.iter
        (fun task ->
          Bitset.add set task;
          Hashtbl.replace s.owner task name)
        members;
      Hashtbl.replace s.groups name { g_members = set; g_verdict = None };
      s.order <- name :: s.order)
    named;
  s

let start view =
  of_groups (View.spec view)
    (List.map
       (fun c -> (View.composite_name view c, View.members view c))
       (View.composites view))

let start_fresh spec =
  of_groups spec
    (List.map (fun t -> (Spec.task_name spec t, [ t ])) (Spec.tasks spec))

let composite_names s =
  (* [order] may contain stale entries (removed groups) and duplicates (a
     name re-used after its group disappeared, or a rename): keep the most
     recent occurrence of each live name. *)
  let seen = Hashtbl.create 16 in
  let recent =
    List.filter
      (fun name ->
        if Hashtbl.mem seen name then false
        else begin
          Hashtbl.replace seen name ();
          Hashtbl.mem s.groups name
        end)
      s.order
  in
  List.rev recent

let members s name =
  Option.map (fun g -> Bitset.elements g.g_members) (Hashtbl.find_opt s.groups name)

(* --- undo snapshots --- *)

let snapshot s =
  { snap_groups =
      Hashtbl.fold
        (fun name g acc -> (name, Bitset.elements g.g_members, g.g_verdict) :: acc)
        s.groups [];
    snap_order = s.order }

let record_snapshot s = s.history <- snapshot s :: s.history

let restore s snap =
  Hashtbl.reset s.groups;
  Hashtbl.reset s.owner;
  List.iter
    (fun (name, members, verdict) ->
      let set = Bitset.create (Spec.n_tasks s.s_spec) in
      List.iter
        (fun task ->
          Bitset.add set task;
          Hashtbl.replace s.owner task name)
        members;
      Hashtbl.replace s.groups name { g_members = set; g_verdict = verdict })
    snap.snap_groups;
  s.order <- snap.snap_order

let undo s =
  match s.history with
  | [] -> false
  | snap :: rest ->
    restore s snap;
    s.history <- rest;
    true

let history_depth s = List.length s.history

(* --- edits --- *)

let remove_from_current s task =
  let from_name = Hashtbl.find s.owner task in
  let g = Hashtbl.find s.groups from_name in
  Bitset.remove g.g_members task;
  g.g_verdict <- None;
  if Bitset.is_empty g.g_members then Hashtbl.remove s.groups from_name

let add_to s task name =
  let g = Hashtbl.find s.groups name in
  Bitset.add g.g_members task;
  g.g_verdict <- None;
  Hashtbl.replace s.owner task name

let check_tasks s tasks =
  List.find_opt (fun t -> t < 0 || t >= Spec.n_tasks s.s_spec) tasks

let create_composite_internal s ~name tasks =
  if Hashtbl.mem s.groups name then
    Error (Printf.sprintf "composite %S already exists" name)
  else if tasks = [] then Error "a composite needs at least one task"
  else
    match check_tasks s tasks with
    | Some t -> Error (Printf.sprintf "unknown task %d" t)
    | None ->
      let module SS = Set.Make (Int) in
      if SS.cardinal (SS.of_list tasks) <> List.length tasks then
        Error "duplicate tasks"
      else begin
        Hashtbl.replace s.groups name
          { g_members = Bitset.create (Spec.n_tasks s.s_spec);
            g_verdict = None };
        s.order <- name :: s.order;
        List.iter
          (fun task ->
            remove_from_current s task;
            add_to s task name)
          tasks;
        Ok ()
      end

let create_composite s ~name tasks =
  record_snapshot s;
  match create_composite_internal s ~name tasks with
  | Ok () -> Ok ()
  | Error _ as e ->
    (match s.history with
     | snap :: rest ->
       restore s snap;
       s.history <- rest
     | [] -> ());
    e

let move_task_internal s task ~into =
  if task < 0 || task >= Spec.n_tasks s.s_spec then
    Error (Printf.sprintf "unknown task %d" task)
  else if not (Hashtbl.mem s.groups into) then
    Error (Printf.sprintf "no composite named %S" into)
  else if Hashtbl.find s.owner task = into then Ok ()
  else begin
    remove_from_current s task;
    add_to s task into;
    Ok ()
  end

let move_task s task ~into =
  record_snapshot s;
  match move_task_internal s task ~into with
  | Ok () -> Ok ()
  | Error _ as e ->
    (match s.history with
     | snap :: rest ->
       restore s snap;
       s.history <- rest
     | [] -> ());
    e

let dissolve_internal s name =
  match Hashtbl.find_opt s.groups name with
  | None -> Error (Printf.sprintf "no composite named %S" name)
  | Some g ->
    let tasks = Bitset.elements g.g_members in
    if List.length tasks = 1 then Ok () (* already a singleton *)
    else begin
      let rec place = function
        | [] -> Ok ()
        | task :: rest ->
          let singleton_name =
            let base = Spec.task_name s.s_spec task in
            let rec free candidate =
              if Hashtbl.mem s.groups candidate then free (candidate ^ "'")
              else candidate
            in
            free base
          in
          (match create_composite_internal s ~name:singleton_name [ task ] with
           | Ok () -> place rest
           | Error _ as e -> e)
      in
      place tasks
    end

let dissolve s name =
  record_snapshot s;
  match dissolve_internal s name with
  | Ok () -> Ok ()
  | Error _ as e ->
    (match s.history with
     | snap :: rest ->
       restore s snap;
       s.history <- rest
     | [] -> ());
    e

let rename_internal s name ~into =
  match Hashtbl.find_opt s.groups name with
  | None -> Error (Printf.sprintf "no composite named %S" name)
  | Some _ when Hashtbl.mem s.groups into ->
    Error (Printf.sprintf "composite %S already exists" into)
  | Some g ->
    Hashtbl.remove s.groups name;
    Hashtbl.replace s.groups into g;
    s.order <- into :: s.order;
    Bitset.iter (fun t -> Hashtbl.replace s.owner t into) g.g_members;
    Ok ()

let rename s name ~into =
  record_snapshot s;
  match rename_internal s name ~into with
  | Ok () -> Ok ()
  | Error _ as e ->
    (match s.history with
     | snap :: rest ->
       restore s snap;
       s.history <- rest
     | [] -> ());
    e

(* --- validation --- *)

let compute_verdict s g =
  s.checks <- s.checks + 1;
  Obs.incr m_cache_misses;
  match Soundness.subset_witnesses s.s_spec g.g_members with
  | [] -> Sound
  | witnesses -> Unsound witnesses

let group_verdict s g =
  match g.g_verdict with
  | Some v ->
    s.hits <- s.hits + 1;
    Obs.incr m_cache_hits;
    v
  | None ->
    let v = compute_verdict s g in
    g.g_verdict <- Some v;
    v

let verdict s name =
  Option.map (group_verdict s) (Hashtbl.find_opt s.groups name)

let unsound s =
  List.filter_map
    (fun name ->
      match group_verdict s (Hashtbl.find s.groups name) with
      | Sound -> None
      | Unsound witnesses -> Some (name, witnesses))
    (composite_names s)

let is_sound s = unsound s = []

let checks_performed s = s.checks

let cache_hits s = s.hits

(* --- escape hatches --- *)

let current_view s =
  let named =
    List.map
      (fun name ->
        (name, Bitset.elements (Hashtbl.find s.groups name).g_members))
      (composite_names s)
  in
  match
    View.of_partition
      ~names:(Array.of_list (List.map fst named))
      s.s_spec (List.map snd named)
  with
  | Ok view -> view
  | Error e ->
    invalid_arg (Format.asprintf "Session.current_view: %a" View.pp_error e)

let apply_correction s name criterion =
  match Hashtbl.find_opt s.groups name with
  | None -> Error (Printf.sprintf "no composite named %S" name)
  | Some g ->
    let outcome =
      Corrector.split_subset criterion s.s_spec (Bitset.elements g.g_members)
    in
    let parts = outcome.Corrector.parts in
    let rec place i = function
      | [] -> Ok (List.length parts)
      | part :: rest ->
        (match
           create_composite_internal s ~name:(Printf.sprintf "%s/%d" name i) part
         with
         | Ok () -> place (i + 1) rest
         | Error _ as e -> e)
    in
    (match parts with
     | [ _single ] -> Ok 1 (* already sound: leave it in place *)
     | _ ->
       record_snapshot s;
       (match place 0 parts with
        | Ok _ as ok -> ok
        | Error _ as e ->
          (match s.history with
           | snap :: rest ->
             restore s snap;
             s.history <- rest
           | [] -> ());
          e))
