open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach
module Obs = Wolves_obs.Metrics
module Par = Wolves_par.Par

(* One branch each while metrics are disabled; [subset_sound] and
   [subset_witnesses] are the hot primitives every layer above funnels
   into. *)
let m_subset_checks = Obs.counter "soundness.subset_checks"
let m_witness_scans = Obs.counter "soundness.witness_scans"
let m_label_probe = Obs.counter "analysis.label_probe"
let t_validate = Obs.timer "soundness.validate"

type engine = [ `Closure | `Labels ]

(* Both engines answer the same reflexive-reachability question; `Closure
   reads the dense bitset closure, `Labels the O(V·k) chain/dominator/rank
   label index. Each forces (and caches) its index inside the spec on first
   use. *)
let prober spec = function
  | `Closure ->
    let r = Spec.reach spec in
    fun u v -> Reach.reaches r u v
  | `Labels ->
    let l = Spec.labels spec in
    fun u v ->
      Obs.incr m_label_probe;
      Wolves_graph.Labels.reaches l u v

type io = {
  inputs : Spec.task list;
  outputs : Spec.task list;
}

let subset_io spec set =
  let g = Spec.graph spec in
  let inputs = ref [] and outputs = ref [] in
  (* Reverse iteration keeps the result lists in increasing task order. *)
  List.iter
    (fun t ->
      if List.exists (fun p -> not (Bitset.mem set p)) (Digraph.pred g t) then
        inputs := t :: !inputs;
      if List.exists (fun s -> not (Bitset.mem set s)) (Digraph.succ g t) then
        outputs := t :: !outputs)
    (List.rev (Bitset.elements set));
  { inputs = !inputs; outputs = !outputs }

let subset_sound ?(engine = `Closure) spec set =
  Obs.incr m_subset_checks;
  let reaches = prober spec engine in
  let { inputs; outputs } = subset_io spec set in
  List.for_all
    (fun ti -> List.for_all (fun to_ -> reaches ti to_) outputs)
    inputs

let subset_witnesses ?(engine = `Closure) spec set =
  Obs.incr m_witness_scans;
  let reaches = prober spec engine in
  let { inputs; outputs } = subset_io spec set in
  List.concat_map
    (fun ti ->
      List.filter_map
        (fun to_ -> if reaches ti to_ then None else Some (ti, to_))
        outputs)
    inputs

type unsoundness_kind =
  | Parallel_lanes of int
  | Entangled

let pp_unsoundness_kind ppf = function
  | Parallel_lanes k -> Format.fprintf ppf "parallel lanes (%d groups)" k
  | Entangled -> Format.fprintf ppf "entangled (crossing structure)"

let classify_unsound spec set =
  if subset_sound spec set then None
  else begin
    (* Union the members into lanes: two members share a lane when one
       reaches the other (possibly through tasks outside the set). *)
    let members = Array.of_list (Bitset.elements set) in
    let n = Array.length members in
    let r = Spec.reach spec in
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if
          Reach.reaches r members.(i) members.(j)
          || Reach.reaches r members.(j) members.(i)
        then union i j
      done
    done;
    let roots = Hashtbl.create 8 in
    for i = 0 to n - 1 do
      Hashtbl.replace roots (find i) ()
    done;
    let lanes = Hashtbl.length roots in
    Some (if lanes >= 2 then Parallel_lanes lanes else Entangled)
  end

let minimal_unsound_core spec set =
  if subset_sound spec set then None
  else begin
    (* Drop members while the remainder stays unsound, repeating until a
       full pass removes nothing (soundness is not monotone under subsets,
       so one pass does not suffice for minimality). *)
    let core = Bitset.copy set in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun t ->
          Bitset.remove core t;
          if subset_sound spec core then Bitset.add core t else changed := true)
        (Bitset.elements core)
    done;
    Some core
  end

let member_set view c =
  let set = Bitset.create (Spec.n_tasks (View.spec view)) in
  List.iter (Bitset.add set) (View.members view c);
  set

let composite_io view c = subset_io (View.spec view) (member_set view c)

let composite_sound ?engine view c =
  subset_sound ?engine (View.spec view) (member_set view c)

let composite_witnesses ?engine view c =
  subset_witnesses ?engine (View.spec view) (member_set view c)

type report = {
  view : View.t;
  unsound : (View.composite * (Spec.task * Spec.task) list) list;
}

let validate ?domains ?(engine = `Closure) view =
  let domains =
    match domains with Some d -> d | None -> Par.default_domains ()
  in
  Obs.time t_validate
    ~args:(fun () ->
      [ ("workflow", Spec.name (View.spec view));
        ("composites", string_of_int (View.n_composites view)) ])
  @@ fun () ->
  let composites = Array.of_list (View.composites view) in
  let unsound =
    if domains <= 1 || Array.length composites < 2 then
      List.filter_map
        (fun c ->
          match composite_witnesses ~engine view c with
          | [] -> None
          | witnesses -> Some (c, witnesses))
        (View.composites view)
    else begin
      (* Composites are independent: each check only reads the spec and its
         reachability index. Force the engine's lazy index before farming so
         workers never race on its initialisation, and give each job a
         metrics shard so its counters don't race on the shared records.
         [map_ordered] keeps the report in composite order; merging shards
         in that same order keeps the registry deterministic. *)
      (match engine with
       | `Closure -> ignore (Spec.reach (View.spec view))
       | `Labels -> ignore (Spec.labels (View.spec view)));
      let results =
        Par.map_ordered ~domains
          (fun c ->
            Obs.with_new_shard (fun () -> composite_witnesses ~engine view c))
          composites
      in
      Array.iter (fun (_, sh) -> Obs.merge_shard sh) results;
      List.filter_map
        (fun i ->
          match fst results.(i) with
          | [] -> None
          | witnesses -> Some (composites.(i), witnesses))
        (List.init (Array.length composites) Fun.id)
    end
  in
  { view; unsound }

let is_sound view = (validate view).unsound = []

let pp_report ppf { view; unsound } =
  let spec = View.spec view in
  match unsound with
  | [] ->
    Format.fprintf ppf "view of %S is sound (%d composites checked)"
      (Spec.name spec)
      (View.n_composites view)
  | _ ->
    Format.fprintf ppf "view of %S is UNSOUND: %d of %d composites unsound"
      (Spec.name spec) (List.length unsound) (View.n_composites view);
    List.iter
      (fun (c, witnesses) ->
        Format.fprintf ppf "@\n  composite %S:" (View.composite_name view c);
        List.iter
          (fun (ti, to_) ->
            Format.fprintf ppf "@\n    no path %S -> %S" (Spec.task_name spec ti)
              (Spec.task_name spec to_))
          witnesses)
      unsound

let preserves_paths view =
  let spec = View.spec view in
  let r = Spec.reach spec in
  let vr = View.view_reach view in
  let witness c1 c2 =
    List.exists
      (fun t1 -> List.exists (fun t2 -> Reach.reaches r t1 t2) (View.members view c2))
      (View.members view c1)
  in
  List.for_all
    (fun c1 ->
      List.for_all
        (fun c2 ->
          c1 = c2 || Reach.reaches vr c1 c2 = witness c1 c2)
        (View.composites view))
    (View.composites view)

exception Out_of_fuel

(* Simple-path existence by exhaustive DFS, deliberately without memoisation:
   this is the "directly applied" Definition 2.1 check whose exponential cost
   the paper contrasts with the Proposition 2.1 validator. *)
let naive_path_exists g fuel u v =
  let n = Digraph.n_nodes g in
  let on_path = Array.make n false in
  let rec dfs x =
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel;
    x = v
    || begin
         on_path.(x) <- true;
         let found =
           List.exists (fun y -> (not on_path.(y)) && dfs y) (Digraph.succ g x)
         in
         on_path.(x) <- false;
         found
       end
  in
  dfs u

let naive_preserves_paths ?(fuel = 50_000_000) view =
  let spec = View.spec view in
  let wg = Spec.graph spec in
  let vg = View.view_graph view in
  let remaining = ref fuel in
  let witness c1 c2 =
    List.exists
      (fun t1 ->
        List.exists
          (fun t2 -> t1 = t2 || naive_path_exists wg remaining t1 t2)
          (View.members view c2))
      (View.members view c1)
  in
  try
    Some
      (List.for_all
         (fun c1 ->
           List.for_all
             (fun c2 ->
               c1 = c2
               || naive_path_exists vg remaining c1 c2 = witness c1 c2)
             (View.composites view))
         (View.composites view))
  with Out_of_fuel -> None
