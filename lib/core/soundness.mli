(** The Workflow View Validator (paper §2.1).

    Implements Definitions 2.2 and 2.3 and the Proposition 2.1 validator: a
    view is sound iff every composite task is sound, where a composite T is
    sound iff every task of [T.in] reaches every task of [T.out] in the
    workflow specification. Reachability is reflexive and may pass through
    tasks outside T.

    The literal Definition 2.1 ("a path between composites exists in the view
    iff a member-level witness path exists") is provided separately as
    {!preserves_paths}; "all composites sound" implies it, but not conversely
    (see {!Wolves_workflow.Examples.prop21_counterexample}). *)

open Wolves_workflow

type io = {
  inputs : Spec.task list;
      (** [T.in]: members receiving a dependency edge from outside T. *)
  outputs : Spec.task list;
      (** [T.out]: members sending a dependency edge outside T. *)
}

val subset_io : Spec.t -> Wolves_graph.Bitset.t -> io
(** [T.in]/[T.out] of an arbitrary task subset (Def 2.2), capacity =
    [Spec.n_tasks]. *)

type engine = [ `Closure | `Labels ]
(** Which reachability index answers the soundness probes: the dense bitset
    closure ([Spec.reach]) or the compact chain/dominator/rank label index
    ([Spec.labels], {!Wolves_graph.Labels}). Both are exact — the label
    backend is property-tested to agree with the closure on every generator
    family — but trade differently: the closure costs O(V²/w) space and
    O(V·E/w) build, labels O(V·k) space and O(E·k) build for [k] chains.
    Label probes are counted into [analysis.label_probe]. *)

val subset_sound :
  ?engine:engine -> Spec.t -> Wolves_graph.Bitset.t -> bool
(** Is the subset sound as a composite task (Def 2.3)? Singletons and the
    full task set are always sound. Default engine: [`Closure]. *)

val subset_witnesses :
  ?engine:engine -> Spec.t -> Wolves_graph.Bitset.t -> (Spec.task * Spec.task) list
(** The violating pairs: [(ti, to)] with [ti ∈ in], [to ∈ out] and no path
    [ti ⇝ to]. Empty iff the subset is sound. *)

(** Structural class of an unsound composite — what kind of mistake the
    designer made. *)
type unsoundness_kind =
  | Parallel_lanes of int
      (** the members split into this many groups with no dataflow between
          them (grouping independent branches — the dominant repository
          mistake, cf. the lane stages of the Pegasus shapes) *)
  | Entangled
      (** members are dataflow-connected yet some input still cannot reach
          some output (crossing structure — the paper's Figure 3 pattern) *)

val pp_unsoundness_kind : Format.formatter -> unsoundness_kind -> unit

val classify_unsound : Spec.t -> Wolves_graph.Bitset.t -> unsoundness_kind option
(** [None] when the subset is sound. Lanes are the weakly-connected
    components of the member-induced reachability relation. *)

val minimal_unsound_core : Spec.t -> Wolves_graph.Bitset.t -> Wolves_graph.Bitset.t option
(** A minimal unsound subset of the given set: every task of the result is
    necessary (removing any one makes it sound). [None] when the input is
    already sound. Deletion-greedy, O(n²) soundness checks; the core is what
    the CLI shows users as the {e explanation} of an unsound composite. *)

val composite_io : View.t -> View.composite -> io

val composite_sound : ?engine:engine -> View.t -> View.composite -> bool

val composite_witnesses :
  ?engine:engine -> View.t -> View.composite -> (Spec.task * Spec.task) list

(** Result of validating a whole view. *)
type report = {
  view : View.t;
  unsound : (View.composite * (Spec.task * Spec.task) list) list;
      (** Unsound composites with their violating pairs, by composite id. *)
}

val validate : ?domains:int -> ?engine:engine -> View.t -> report
(** Check every composite (Proposition 2.1). Polynomial: one reachability
    index build plus O(Σ |T.in|·|T.out|) probes; [engine] picks the index
    (default [`Closure]).

    Composite checks are independent, so with [domains] above 1 (default
    [Wolves_par.Par.default_domains]) they are farmed across a domain pool:
    the engine's index is forced up front, each worker records its metrics
    into a per-domain shard merged back in composite order, and the report
    is identical to the sequential one at every domain count and under
    either engine. *)

val is_sound : View.t -> bool

val pp_report : Format.formatter -> report -> unit
(** Human-readable report naming unsound composites and witnesses — the CLI
    equivalent of the demo GUI's red marking. *)

val preserves_paths : View.t -> bool
(** The literal Definition 2.1, decided with transitive closures (polynomial):
    for every pair of distinct composites, [T1 ⇝ T2] in the view iff some
    members satisfy [t1 ⇝ t2] in the workflow. Implied by {!is_sound}. *)

val naive_preserves_paths : ?fuel:int -> View.t -> bool option
(** Definition 2.1 decided the naive way the paper warns about (§2.1):
    enumerating simple paths in both graphs. Exponential; explores at most
    [fuel] path extensions (default [50_000_000]) and returns [None] when the
    budget is exhausted. Exists for the E-VALID benchmark and for
    differential testing of {!preserves_paths} on small inputs. *)
