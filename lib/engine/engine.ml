open Wolves_workflow
module Store = Wolves_provenance.Store
module Obs = Wolves_obs.Metrics

let m_runs = Obs.counter "engine.runs"
let m_events = Obs.counter "engine.events_scheduled"
let m_crashes = Obs.counter "engine.crashes_injected"
let m_not_run = Obs.counter "engine.tasks_not_run"
let g_makespan = Obs.gauge "engine.last_makespan"
let t_run = Obs.timer "engine.run"

type outcome =
  | Completed of string
  | Crashed
  | Not_run

type event = {
  task : Spec.task;
  started : float;
  finished : float;
  outcome : outcome;
}

type trace = {
  spec : Spec.t;
  events : event list;
  makespan : float;
  busy_time : float;
}

type policy =
  | Fifo
  | Critical_path_first
  | Shortest_first

let policy_name = function
  | Fifo -> "fifo"
  | Critical_path_first -> "critical-path-first"
  | Shortest_first -> "shortest-first"

type config = {
  workers : int;
  duration : Spec.task -> float;
  failure_rate : float;
  seed : int;
  salts : (Spec.task * int) list;
  policy : policy;
}

let default_config =
  { workers = 1;
    duration = (fun _ -> 1.0);
    failure_rate = 0.0;
    seed = 0;
    salts = [];
    policy = Fifo }

(* FNV-1a over a string: cheap, deterministic content hashing for output
   values. Not cryptographic — collision resistance is irrelevant here. *)
let fnv s =
  let h = ref 0x3bf29ce484222325 in (* FNV offset basis folded into 62 bits *)
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  Printf.sprintf "%016x" !h

let mix seed i =
  let h = ref (seed lxor (i * 0x9E3779B9) lxor 0x5bd1e995) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x7FEB352D land max_int;
  h := !h lxor (!h lsr 15);
  !h land max_int

(* Simulated-time min-heap of (time, tie, payload), as a simple pairing of
   sorted insertion into a reference list would be O(n²); use a binary heap
   over arrays. *)
module Heap = struct
  type 'a t = {
    mutable items : (float * int * 'a) array;
    mutable size : int;
  }

  let create () = { items = [||]; size = 0 }

  let swap h i j =
    let tmp = h.items.(i) in
    h.items.(i) <- h.items.(j);
    h.items.(j) <- tmp

  let less h i j =
    let ti, ki, _ = h.items.(i) and tj, kj, _ = h.items.(j) in
    ti < tj || (ti = tj && ki < kj)

  let push h item =
    if h.size = Array.length h.items then begin
      let grown = Array.make (max 8 (2 * h.size)) item in
      Array.blit h.items 0 grown 0 h.size;
      h.items <- grown
    end;
    h.items.(h.size) <- item;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.items.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.items.(0) <- h.items.(h.size);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && less h l !smallest then smallest := l;
          if r < h.size && less h r !smallest then smallest := r;
          if !smallest = !i then continue_ := false
          else begin
            swap h !i !smallest;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

let durations_from_attrs ?(key = "duration") ?(default = 1.0) spec task =
  match Spec.float_attr spec task key with
  | Some d when d > 0.0 -> d
  | Some _ | None -> default

let run ?(config = default_config) spec =
  Obs.time t_run @@ fun () ->
  if config.workers < 1 then invalid_arg "Engine.run: need at least one worker";
  let n = Spec.n_tasks spec in
  let duration t =
    let d = config.duration t in
    if d <= 0.0 then invalid_arg "Engine.run: durations must be positive";
    d
  in
  let salt t =
    match List.assoc_opt t config.salts with Some s -> s | None -> 0
  in
  (* outcome slots; None = not decided yet *)
  let outcomes : outcome option array = Array.make n None in
  let missing_inputs = Array.init n (fun t -> List.length (Spec.producers spec t)) in
  (* Priority of a ready task under the scheduling policy (lower = first). *)
  let downstream = Array.make n 0.0 in
  List.iter
    (fun v ->
      let best =
        List.fold_left
          (fun acc w -> Float.max acc downstream.(w))
          0.0 (Spec.consumers spec v)
      in
      downstream.(v) <- best +. duration v)
    (List.rev (Spec.topological_order spec));
  let arrival = ref 0 in
  let priority t =
    match config.policy with
    | Fifo ->
      incr arrival;
      float_of_int !arrival
    | Critical_path_first -> -.downstream.(t)
    | Shortest_first -> duration t
  in
  let ready = Heap.create () in
  let ready_tie = ref 0 in
  let ready_push t =
    incr ready_tie;
    Heap.push ready (priority t, !ready_tie, t)
  in
  List.iter
    (fun t -> if missing_inputs.(t) = 0 then ready_push t)
    (Spec.topological_order spec);
  let running = Heap.create () in
  let free_workers = ref config.workers in
  let clock = ref 0.0 in
  let busy = ref 0.0 in
  let events = ref [] in
  let tie = ref 0 in
  (* Mark a task (and transitively its dependents with missing inputs) as
     decided-not-run lazily: a dependent is Not_run when scheduled-time
     arrives and an input is missing. *)
  let value_of t =
    match outcomes.(t) with
    | Some (Completed v) -> Some v
    | Some (Crashed | Not_run) | None -> None
  in
  let start_task t =
    decr free_workers;
    Obs.incr m_events;
    let d = duration t in
    busy := !busy +. d;
    incr tie;
    Heap.push running (!clock +. d, !tie, t)
  in
  let schedule_ready () =
    let continue_sched = ref true in
    while !free_workers > 0 && !continue_sched do
      match Heap.pop ready with
      | None -> continue_sched := false
      | Some (_, _, t) ->
      let inputs_ok =
        List.for_all
          (fun p -> match outcomes.(p) with Some (Completed _) -> true | _ -> false)
          (Spec.producers spec t)
      in
      if inputs_ok then start_task t
      else begin
        (* An input crashed or never ran: decide Not_run immediately, which
           occupies no worker and takes no time. *)
        outcomes.(t) <- Some Not_run;
        Obs.incr m_not_run;
        events :=
          { task = t; started = !clock; finished = !clock; outcome = Not_run }
          :: !events;
        List.iter
          (fun c ->
            missing_inputs.(c) <- missing_inputs.(c) - 1;
            if missing_inputs.(c) = 0 then ready_push c)
          (Spec.consumers spec t)
      end
    done
  in
  schedule_ready ();
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop running with
    | None -> continue_ := false
    | Some (finish_time, _, t) ->
      clock := finish_time;
      incr free_workers;
      let crash_draw =
        float_of_int (mix config.seed t land 0xFFFFFF) /. 16777216.0
      in
      let outcome =
        if crash_draw < config.failure_rate then begin
          Obs.incr m_crashes;
          Crashed
        end
        else begin
          let inputs =
            List.filter_map value_of (Spec.producers spec t)
          in
          let material =
            String.concat "|"
              (Spec.task_name spec t
               :: string_of_int (salt t)
               :: List.sort compare inputs)
          in
          Completed (fnv material)
        end
      in
      outcomes.(t) <- Some outcome;
      events :=
        { task = t;
          started = finish_time -. duration t;
          finished = finish_time;
          outcome }
        :: !events;
      List.iter
        (fun c ->
          missing_inputs.(c) <- missing_inputs.(c) - 1;
          if missing_inputs.(c) = 0 then ready_push c)
        (Spec.consumers spec t);
      schedule_ready ()
  done;
  Obs.incr m_runs;
  Obs.set g_makespan !clock;
  { spec;
    events = List.rev !events;
    makespan = !clock;
    busy_time = !busy }

let outcome_of trace t =
  match List.find_opt (fun e -> e.task = t) trace.events with
  | Some e -> e.outcome
  | None -> Not_run

let output_value trace t =
  match outcome_of trace t with
  | Completed v -> Some v
  | Crashed | Not_run -> None

let statuses trace =
  List.map
    (fun t ->
      let status =
        match outcome_of trace t with
        | Completed _ -> Store.Succeeded
        | Crashed -> Store.Failed
        | Not_run -> Store.Skipped
      in
      (t, status))
    (Spec.tasks trace.spec)

let critical_path_length config spec =
  let weight = Array.make (Spec.n_tasks spec) 0.0 in
  List.iter
    (fun t ->
      let incoming =
        List.fold_left (fun acc p -> max acc weight.(p)) 0.0 (Spec.producers spec t)
      in
      weight.(t) <- incoming +. config.duration t)
    (Spec.topological_order spec);
  Array.fold_left max 0.0 weight

let total_work config spec =
  List.fold_left (fun acc t -> acc +. config.duration t) 0.0 (Spec.tasks spec)

let pp_trace ppf trace =
  Format.fprintf ppf "trace of %S: makespan %.2f, busy %.2f@." (Spec.name trace.spec)
    trace.makespan trace.busy_time;
  List.iter
    (fun e ->
      Format.fprintf ppf "  [%6.2f - %6.2f] %-30s %s@." e.started e.finished
        (Spec.task_name trace.spec e.task)
        (match e.outcome with
         | Completed v -> "ok " ^ String.sub v 0 8
         | Crashed -> "CRASHED"
         | Not_run -> "not run"))
    trace.events

let gantt ?(width = 60) trace =
  let span = Float.max trace.makespan 1e-9 in
  let scale t = int_of_float (Float.round (t /. span *. float_of_int width)) in
  let buf = Buffer.create 1024 in
  let rows =
    List.filter (fun e -> e.outcome <> Not_run) trace.events
    |> List.sort (fun a b -> compare (a.started, a.task) (b.started, b.task))
  in
  List.iter
    (fun e ->
      let from_col = min width (scale e.started) in
      let to_col = min width (max (from_col + 1) (scale e.finished)) in
      let bar =
        String.make from_col ' '
        ^ String.make (to_col - from_col)
            (match e.outcome with Crashed -> 'x' | _ -> '#')
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s |%-*s|\n"
           (Spec.task_name trace.spec e.task)
           width bar))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-24s  0%*s%.1f\n" "" (width - 2) "" trace.makespan);
  Buffer.contents buf
