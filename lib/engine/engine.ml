open Wolves_workflow
module Store = Wolves_provenance.Store
module Bitset = Wolves_graph.Bitset
module Reach = Wolves_graph.Reach

module Obs = Wolves_obs.Metrics

let m_runs = Obs.counter "engine.runs"
let m_events = Obs.counter "engine.events_scheduled"
let m_crashes = Obs.counter "engine.crashes_injected"
let m_retries = Obs.counter "engine.retries"
let m_timeouts = Obs.counter "engine.timeouts"
let m_not_run = Obs.counter "engine.tasks_not_run"
let m_resumes = Obs.counter "engine.resumes"
let m_reused = Obs.counter "engine.tasks_reused"
let g_makespan = Obs.gauge "engine.last_makespan"
let t_run = Obs.timer "engine.run"

(* Simulated seconds of one attempt's worker occupancy; the discrete-event
   analog of a per-attempt span (real-time spans are meaningless inside a
   simulation step). *)
let t_attempt = Obs.timer "engine.attempt_sim"

type outcome =
  | Completed of string
  | Crashed
  | Timed_out
  | Not_run

type event = {
  task : Spec.task;
  attempt : int;
  started : float;
  finished : float;
  outcome : outcome;
}

type trace = {
  spec : Spec.t;
  events : event list;
  makespan : float;
  busy_time : float;
}

type policy =
  | Fifo
  | Critical_path_first
  | Shortest_first

let policy_name = function
  | Fifo -> "fifo"
  | Critical_path_first -> "critical-path-first"
  | Shortest_first -> "shortest-first"

type config = {
  workers : int;
  duration : Spec.task -> float;
  failure_rate : float;
  seed : int;
  salts : (Spec.task * int) list;
  policy : policy;
  retries : int;
  backoff : float;
  timeout : float option;
}

let default_config =
  { workers = 1;
    duration = (fun _ -> 1.0);
    failure_rate = 0.0;
    seed = 0;
    salts = [];
    policy = Fifo;
    retries = 0;
    backoff = 1.0;
    timeout = None }

let validate_config config =
  if config.workers < 1 then invalid_arg "Engine.run: need at least one worker";
  if not (config.failure_rate >= 0.0 && config.failure_rate <= 1.0) then
    invalid_arg "Engine.run: failure_rate must be within [0, 1]";
  if config.retries < 0 then
    invalid_arg "Engine.run: retries must be non-negative";
  if not (config.backoff > 0.0) then
    invalid_arg "Engine.run: backoff must be positive";
  match config.timeout with
  | Some cap when not (cap > 0.0) ->
    invalid_arg "Engine.run: timeout must be positive"
  | Some _ | None -> ()

(* FNV-1a over a string: cheap, deterministic content hashing for output
   values. Not cryptographic — collision resistance is irrelevant here. *)
let fnv s =
  let h = ref 0x3bf29ce484222325 in (* FNV offset basis folded into 62 bits *)
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  Printf.sprintf "%016x" !h

let mix seed i =
  let h = ref (seed lxor (i * 0x9E3779B9) lxor 0x5bd1e995) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x7FEB352D land max_int;
  h := !h lxor (!h lsr 15);
  !h land max_int

(* Simulated-time min-heap of (time, tie, payload), as a simple pairing of
   sorted insertion into a reference list would be O(n²); use a binary heap
   over arrays. *)
module Heap = struct
  type 'a t = {
    mutable items : (float * int * 'a) array;
    mutable size : int;
  }

  let create () = { items = [||]; size = 0 }

  let swap h i j =
    let tmp = h.items.(i) in
    h.items.(i) <- h.items.(j);
    h.items.(j) <- tmp

  let less h i j =
    let ti, ki, _ = h.items.(i) and tj, kj, _ = h.items.(j) in
    ti < tj || (ti = tj && ki < kj)

  let push h item =
    if h.size = Array.length h.items then begin
      let grown = Array.make (max 8 (2 * h.size)) item in
      Array.blit h.items 0 grown 0 h.size;
      h.items <- grown
    end;
    h.items.(h.size) <- item;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.items.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.items.(0) <- h.items.(h.size);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && less h l !smallest then smallest := l;
          if r < h.size && less h r !smallest then smallest := r;
          if !smallest = !i then continue_ := false
          else begin
            swap h !i !smallest;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

let durations_from_attrs ?(key = "duration") ?(default = 1.0) spec task =
  match Spec.float_attr spec task key with
  | Some d when d > 0.0 -> d
  | Some _ | None -> default

(* Scheduled payloads of the simulated-time heap: a worker finishing an
   attempt ([cut] when the attempt is ended by the timeout rather than by
   completing), or a crashed task waking up from its backoff delay. *)
type sched =
  | Finish of { task : Spec.task; attempt : int; cut : bool }
  | Wake of Spec.task

(* The core discrete-event loop shared by [run] (reuse is empty) and
   [resume] (reuse returns the prior run's output hash for every task that
   does not need re-execution). *)
let exec ~config ~reuse spec =
  Obs.time t_run
    ~args:(fun () ->
      [ ("workflow", Spec.name spec);
        ("tasks", string_of_int (Spec.n_tasks spec)) ])
  @@ fun () ->
  validate_config config;
  let n = Spec.n_tasks spec in
  let duration t =
    let d = config.duration t in
    if d <= 0.0 then invalid_arg "Engine.run: durations must be positive";
    d
  in
  let salt t =
    match List.assoc_opt t config.salts with Some s -> s | None -> 0
  in
  (* Independent uniform draw in [0,1) per (task, attempt, lane): lane 0
     decides crashes, lane 1 jitters the backoff. Values never feed the
     draws, so salting a task perturbs outputs without perturbing the
     failure pattern — the property the provenance exactness experiments
     rely on. *)
  let draw t attempt lane =
    float_of_int (mix (mix config.seed ((t * 2) + lane + 1)) attempt land 0xFFFFFF)
    /. 16777216.0
  in
  (* outcome slots; None = not decided yet *)
  let outcomes : outcome option array = Array.make n None in
  let missing_inputs = Array.init n (fun t -> List.length (Spec.producers spec t)) in
  let events = ref [] in
  let clock = ref 0.0 in
  let busy = ref 0.0 in
  (* Checkpoint/resume: pre-seed reused outputs. They occupy no worker and no
     simulated time; their events carry attempt 0. The reuse set is
     ancestor-closed (a task only completed when all its ancestors did), so
     seeding in topological order is safe. *)
  List.iter
    (fun t ->
      match reuse t with
      | None -> ()
      | Some v ->
        Obs.incr m_reused;
        outcomes.(t) <- Some (Completed v);
        events :=
          { task = t; attempt = 0; started = 0.0; finished = 0.0;
            outcome = Completed v }
          :: !events;
        List.iter
          (fun c -> missing_inputs.(c) <- missing_inputs.(c) - 1)
          (Spec.consumers spec t))
    (Spec.topological_order spec);
  (* Priority of a ready task under the scheduling policy (lower = first). *)
  let downstream = Array.make n 0.0 in
  List.iter
    (fun v ->
      let best =
        List.fold_left
          (fun acc w -> Float.max acc downstream.(w))
          0.0 (Spec.consumers spec v)
      in
      downstream.(v) <- best +. duration v)
    (List.rev (Spec.topological_order spec));
  let arrival = ref 0 in
  let priority t =
    match config.policy with
    | Fifo ->
      incr arrival;
      float_of_int !arrival
    | Critical_path_first -> -.downstream.(t)
    | Shortest_first -> duration t
  in
  let ready = Heap.create () in
  let ready_tie = ref 0 in
  let ready_push t =
    incr ready_tie;
    Heap.push ready (priority t, !ready_tie, t)
  in
  List.iter
    (fun t ->
      if outcomes.(t) = None && missing_inputs.(t) = 0 then ready_push t)
    (Spec.topological_order spec);
  let running = Heap.create () in
  let free_workers = ref config.workers in
  let tie = ref 0 in
  let push_sched time item =
    incr tie;
    Heap.push running (time, !tie, item)
  in
  let attempts = Array.make n 0 in
  let value_of t =
    match outcomes.(t) with
    | Some (Completed v) -> Some v
    | Some (Crashed | Timed_out | Not_run) | None -> None
  in
  let notify_consumers t =
    List.iter
      (fun c ->
        missing_inputs.(c) <- missing_inputs.(c) - 1;
        if missing_inputs.(c) = 0 then ready_push c)
      (Spec.consumers spec t)
  in
  let finalize t attempt ~started outcome =
    outcomes.(t) <- Some outcome;
    events :=
      { task = t; attempt; started; finished = !clock; outcome } :: !events;
    notify_consumers t
  in
  let start_task t =
    decr free_workers;
    Obs.incr m_events;
    attempts.(t) <- attempts.(t) + 1;
    let d = duration t in
    let occupied, cut =
      match config.timeout with
      | Some cap when d > cap -> (cap, true)
      | Some _ | None -> (d, false)
    in
    busy := !busy +. occupied;
    Obs.observe t_attempt occupied;
    push_sched (!clock +. occupied)
      (Finish { task = t; attempt = attempts.(t); cut })
  in
  let schedule_ready () =
    let continue_sched = ref true in
    while !free_workers > 0 && !continue_sched do
      match Heap.pop ready with
      | None -> continue_sched := false
      | Some (_, _, t) ->
      let inputs_ok =
        List.for_all
          (fun p -> match outcomes.(p) with Some (Completed _) -> true | _ -> false)
          (Spec.producers spec t)
      in
      if inputs_ok then start_task t
      else begin
        (* An input crashed, timed out or never ran: decide Not_run
           immediately, which occupies no worker and takes no time. *)
        outcomes.(t) <- Some Not_run;
        Obs.incr m_not_run;
        events :=
          { task = t; attempt = 0; started = !clock; finished = !clock;
            outcome = Not_run }
          :: !events;
        notify_consumers t
      end
    done
  in
  schedule_ready ();
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop running with
    | None -> continue_ := false
    | Some (time, _, Wake t) ->
      (* Backoff expired: the task re-enters the ready queue and competes
         for a worker again. *)
      clock := time;
      ready_push t;
      schedule_ready ()
    | Some (time, _, Finish { task = t; attempt; cut }) ->
      clock := time;
      incr free_workers;
      let d = duration t in
      let occupied =
        match config.timeout with Some cap when cut -> cap | _ -> d
      in
      let started = time -. occupied in
      (if cut then begin
         (* Timeouts are deterministic in simulated time (the duration is
            fixed), so retrying would time out again: Timed_out is final. *)
         Obs.incr m_timeouts;
         Obs.instant "engine.timeout" (fun () ->
             [ ("task", Spec.task_name spec t);
               ("attempt", string_of_int attempt) ]);
         finalize t attempt ~started Timed_out
       end
       else if draw t attempt 0 < config.failure_rate then begin
         Obs.incr m_crashes;
         if attempt <= config.retries then begin
           (* Record the failed attempt, back off exponentially (jittered),
              and try again. The outcome stays undecided, so consumers keep
              waiting instead of being skipped. *)
           Obs.incr m_retries;
           Obs.instant "engine.retry" (fun () ->
               [ ("task", Spec.task_name spec t);
                 ("attempt", string_of_int attempt) ]);
           events :=
             { task = t; attempt; started; finished = time; outcome = Crashed }
             :: !events;
           let delay =
             config.backoff
             *. Float.pow 2.0 (float_of_int (attempt - 1))
             *. (0.5 +. draw t attempt 1)
           in
           push_sched (time +. delay) (Wake t)
         end
         else finalize t attempt ~started Crashed
       end
       else begin
         let inputs = List.filter_map value_of (Spec.producers spec t) in
         let material =
           String.concat "|"
             (Spec.task_name spec t
              :: string_of_int (salt t)
              :: List.sort compare inputs)
         in
         finalize t attempt ~started (Completed (fnv material))
       end);
      schedule_ready ()
  done;
  Obs.incr m_runs;
  Obs.set g_makespan !clock;
  { spec;
    events = List.rev !events;
    makespan = !clock;
    busy_time = !busy }

let run ?(config = default_config) spec = exec ~config ~reuse:(fun _ -> None) spec

(* The last event of a task decides: a retried task has earlier Crashed
   attempt events followed by its final outcome. *)
let outcome_of trace t =
  List.fold_left
    (fun acc e -> if e.task = t then Some e.outcome else acc)
    None trace.events
  |> Option.value ~default:Not_run

let output_value trace t =
  match outcome_of trace t with
  | Completed v -> Some v
  | Crashed | Timed_out | Not_run -> None

let n_attempts trace t =
  List.length (List.filter (fun e -> e.task = t && e.attempt >= 1) trace.events)

let executed_tasks trace =
  List.filter (fun t -> n_attempts trace t >= 1) (Spec.tasks trace.spec)

let reused_tasks trace =
  List.filter_map
    (fun e -> if e.attempt = 0 && e.outcome <> Not_run then Some e.task else None)
    trace.events
  |> List.sort_uniq compare

let resume ?(config = default_config) prior =
  let spec = prior.spec in
  let r = Spec.reach spec in
  (* Re-execute the failed/Not_run frontier plus everything downstream of a
     salted task; every other completed output is reused verbatim. *)
  let dirty = Bitset.create (Spec.n_tasks spec) in
  List.iter
    (fun t ->
      match outcome_of prior t with
      | Completed _ -> ()
      | Crashed | Timed_out | Not_run -> Bitset.add dirty t)
    (Spec.tasks spec);
  List.iter
    (fun (t, _) -> Reach.union_descendants_into r ~into:dirty t)
    config.salts;
  Obs.incr m_resumes;
  Obs.instant "engine.resume" (fun () ->
      [ ("workflow", Spec.name spec);
        ("dirty", string_of_int (Bitset.cardinal dirty)) ]);
  let reuse t = if Bitset.mem dirty t then None else output_value prior t in
  exec ~config ~reuse spec

let statuses trace =
  List.map
    (fun t ->
      let status =
        match outcome_of trace t with
        | Completed _ -> Store.Succeeded
        | Crashed | Timed_out -> Store.Failed
        | Not_run -> Store.Skipped
      in
      (t, status))
    (Spec.tasks trace.spec)

let critical_path_length config spec =
  let weight = Array.make (Spec.n_tasks spec) 0.0 in
  List.iter
    (fun t ->
      let incoming =
        List.fold_left (fun acc p -> max acc weight.(p)) 0.0 (Spec.producers spec t)
      in
      weight.(t) <- incoming +. config.duration t)
    (Spec.topological_order spec);
  Array.fold_left max 0.0 weight

let total_work config spec =
  List.fold_left (fun acc t -> acc +. config.duration t) 0.0 (Spec.tasks spec)

let pp_trace ppf trace =
  Format.fprintf ppf "trace of %S: makespan %.2f, busy %.2f@." (Spec.name trace.spec)
    trace.makespan trace.busy_time;
  List.iter
    (fun e ->
      Format.fprintf ppf "  [%6.2f - %6.2f] %-30s %s@." e.started e.finished
        (Spec.task_name trace.spec e.task)
        (let tag =
           match e.outcome with
           | Completed v -> "ok " ^ String.sub v 0 8
           | Crashed -> "CRASHED"
           | Timed_out -> "TIMED OUT"
           | Not_run -> "not run"
         in
         if e.attempt = 0 && e.outcome <> Not_run then tag ^ " (reused)"
         else if e.attempt > 1 then Printf.sprintf "%s (attempt %d)" tag e.attempt
         else tag))
    trace.events

let gantt ?(width = 60) trace =
  let span = Float.max trace.makespan 1e-9 in
  let scale t = int_of_float (Float.round (t /. span *. float_of_int width)) in
  let buf = Buffer.create 1024 in
  let rows =
    List.filter (fun e -> e.outcome <> Not_run && e.attempt >= 1) trace.events
    |> List.sort (fun a b -> compare (a.started, a.task) (b.started, b.task))
  in
  List.iter
    (fun e ->
      let from_col = min width (scale e.started) in
      let to_col = min width (max (from_col + 1) (scale e.finished)) in
      let bar =
        String.make from_col ' '
        ^ String.make (to_col - from_col)
            (match e.outcome with
             | Crashed -> 'x'
             | Timed_out -> 't'
             | Completed _ | Not_run -> '#')
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s |%-*s|\n"
           (Spec.task_name trace.spec e.task)
           width bar))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-24s  0%*s%.1f\n" "" (width - 2) "" trace.makespan);
  Buffer.contents buf

(* --- trace persistence ------------------------------------------------- *)

let outcome_tag = function
  | Completed _ -> "completed"
  | Crashed -> "crashed"
  | Timed_out -> "timed-out"
  | Not_run -> "not-run"

let quote_field s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let trace_header = "task,attempt,started,finished,outcome,value"

let trace_to_string trace =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (trace_header ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.17g,%.17g,%s,%s\n"
           (quote_field (Spec.task_name trace.spec e.task))
           e.attempt e.started e.finished (outcome_tag e.outcome)
           (match e.outcome with Completed v -> v | _ -> "")))
    trace.events;
  (* The footer is the commit marker: a checkpoint whose write was cut short
     is missing it (or holds a torn prefix of it), which the loader uses to
     distinguish a recoverable torn tail from silent truncation. *)
  Buffer.add_string buf
    (Printf.sprintf "#end,%d\n" (List.length trace.events));
  Buffer.contents buf

let save_trace path trace =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (trace_to_string trace));
    Ok ()
  with Sys_error msg -> Error msg

(* A minimal CSV row reader handling our own quoting. *)
let parse_row line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let bad = ref false in
  while (not !bad) && !i < n do
    if Buffer.length buf = 0 && !i < n && line.[!i] = '"' then begin
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if line.[!i] = '"' then
          if !i + 1 < n && line.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done;
      if not !closed then bad := true
    end
    else if line.[!i] = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf;
      incr i
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  if !bad then None
  else begin
    fields := Buffer.contents buf :: !fields;
    Some (List.rev !fields)
  end

type loaded = {
  trace : trace;
  dropped_row : string option;
}

let parse_event spec line =
  match parse_row line with
  | Some [ name; attempt_s; started_s; finished_s; tag; value ] ->
    (match
       ( Spec.task_of_name spec name,
         int_of_string_opt attempt_s,
         float_of_string_opt started_s,
         float_of_string_opt finished_s )
     with
     | Some task, Some attempt, Some started, Some finished ->
       let outcome =
         match tag with
         | "completed" -> Some (Completed value)
         | "crashed" -> Some Crashed
         | "timed-out" -> Some Timed_out
         | "not-run" -> Some Not_run
         | _ -> None
       in
       Option.map
         (fun outcome -> { task; attempt; started; finished; outcome })
         outcome
     | _ -> None)
  | Some _ | None -> None

let trace_of_string spec s =
  (* Every committed line ends with a newline; a write cut short mid-line
     leaves the file without one. That matters below: a torn final row can
     still *parse* (the cut may land inside the free-form value field), so
     the missing terminator is the only signal that the row is not whole. *)
  let terminated = String.length s > 0 && s.[String.length s - 1] = '\n' in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace file"
  | header :: rows when header = trace_header ->
    (* Peel the [#end,<count>] footer off the tail. A trailing line that
       starts the footer marker but does not parse whole is the torn tail of
       the footer write itself: the rows before it are all committed. *)
    let footer, torn_footer, rows =
      match List.rev rows with
      | last :: before when String.length last >= 1 && last.[0] = '#' ->
        (match String.split_on_char ',' last with
         | [ "#end"; count ] ->
           (match int_of_string_opt count with
            | Some n -> (Some n, None, List.rev before)
            | None -> (None, Some last, List.rev before))
         | _ -> (None, Some last, List.rev before))
      | _ -> (None, None, rows)
    in
    let n_rows = List.length rows in
    let parsed = List.map (fun line -> (line, parse_event spec line)) rows in
    let rec split_committed acc = function
      | [] -> Ok (List.rev acc, None)
      | [ (line, None) ] -> Ok (List.rev acc, Some line)
      | (_, Some e) :: rest -> split_committed (e :: acc) rest
      | (_, None) :: _ ->
        Error
          (Printf.sprintf "line %d: bad row with committed rows after it"
             (List.length acc + 2))
    in
    (match footer with
     | Some n when n <> n_rows ->
       Error
         (Printf.sprintf
            "footer says %d rows but %d are present: checkpoint corrupt" n
            n_rows)
     | Some _ ->
       (* Complete footer: every row is committed, none may be dropped. *)
       (match split_committed [] parsed with
        | Ok (events, None) -> Ok (events, None)
        | Ok (_, Some line) | Error line ->
          Error
            (Printf.sprintf "bad row in a complete checkpoint: %s" line))
     | None ->
       (* No (whole) footer: a torn or legacy checkpoint. A single bad row
          at the very end is the torn tail — drop and report it; a bad row
          with committed rows after it is corruption. A last line missing
          its newline is torn even when it parses (see [terminated]). *)
       let parsed =
         if terminated || torn_footer <> None then parsed
         else
           match List.rev parsed with
           | (line, _) :: before -> List.rev ((line, None) :: before)
           | [] -> parsed
       in
       Result.map
         (fun (events, dropped) ->
           match (dropped, torn_footer) with
           | Some _, _ -> (events, dropped)
           | None, Some _ -> (events, torn_footer)
           | None, None -> (events, None))
         (split_committed [] parsed))
    |> Result.map (fun (events, dropped_row) ->
           let makespan =
             List.fold_left (fun acc e -> Float.max acc e.finished) 0.0 events
           in
           let busy =
             List.fold_left
               (fun acc e ->
                 if e.attempt >= 1 then acc +. (e.finished -. e.started)
                 else acc)
               0.0 events
           in
           { trace = { spec; events; makespan; busy_time = busy };
             dropped_row })
  | _ -> Error "unexpected trace header"

let load_trace spec path =
  try
    trace_of_string spec
      (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

(* --- store-backed checkpoints ------------------------------------------- *)

module Wstore = Wolves_storage.Store

let store_error e = Format.asprintf "%a" Wstore.pp_error e

let save_trace_store dir ~id trace =
  let open_for_append () =
    if Wstore.is_store dir then Result.map fst (Wstore.open_ dir)
    else Wstore.init dir
  in
  match open_for_append () with
  | Error e -> Error (store_error e)
  | Ok store ->
    let appended =
      Wstore.append store Wstore.Checkpoint ~id (trace_to_string trace)
    in
    let closed = Wstore.close store in
    (match (appended, closed) with
     | Ok (), Ok () -> Ok ()
     | Error e, _ | _, Error e -> Error (store_error e))

let load_trace_store spec dir ~id =
  match Wstore.open_ dir with
  | Error e -> Error (store_error e)
  | Ok (store, _recovery) ->
    let result =
      match Wstore.latest store Wstore.Checkpoint with
      | Error e -> Error (store_error e)
      | Ok records ->
        (match
           List.find_opt (fun (r : Wstore.record) -> r.Wstore.id = id) records
         with
         | None -> Error (Printf.sprintf "no checkpoint %S in store %s" id dir)
         | Some r -> trace_of_string spec r.Wstore.value)
    in
    ignore (Wstore.close store);
    result
