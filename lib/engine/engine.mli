(** A small workflow execution engine (discrete-event simulation).

    The paper's setting is a workflow management system executing "in-silico"
    experiments; this engine is that substrate. It schedules a specification
    over [workers] simulated machines, respecting dependencies, with
    per-task durations, failure injection, bounded retries with exponential
    backoff, per-task timeouts, and checkpoint/resume — and produces an
    execution trace: per-task status, timing, and an {e output value} per
    succeeded task.

    Output values are content hashes of (task identity, input values,
    per-run task salt), so dataflow is observable: the output of a task
    changes between two runs iff the value of some ancestor changed — the
    semantic fact provenance analysis is supposed to capture, and the
    property the engine tests pin. Traces feed the multi-run
    {!Wolves_provenance.Store} directly. *)

open Wolves_workflow

type outcome =
  | Completed of string  (** the task's output value (content hash) *)
  | Crashed              (** failure injected, retry budget exhausted *)
  | Timed_out            (** ran longer than the configured timeout *)
  | Not_run              (** skipped: an input never arrived *)

(** One scheduling event, in simulated time. A retried task contributes one
    event per attempt: every non-final attempt has outcome {!Crashed}, the
    last one carries the final outcome. [attempt] is 1-based for attempts
    actually executed; reused checkpoint results (see {!resume}) and
    skip decisions appear with [attempt = 0] and zero duration. *)
type event = {
  task : Spec.task;
  attempt : int;
  started : float;
  finished : float;
  outcome : outcome;
}

type trace = {
  spec : Spec.t;
  events : event list;      (** ordered by finish time *)
  makespan : float;         (** total simulated duration *)
  busy_time : float;        (** summed worker-occupied time over all attempts *)
}

(** Ready-queue ordering when workers are scarce. *)
type policy =
  | Fifo
      (** dependency-release order (the baseline) *)
  | Critical_path_first
      (** prioritise the task with the heaviest remaining downstream path —
          the classic makespan heuristic *)
  | Shortest_first
      (** prioritise cheap tasks (maximises early throughput, can hurt
          makespan) *)

val policy_name : policy -> string

(** Execution parameters. *)
type config = {
  workers : int;            (** simulated parallel machines, ≥ 1 *)
  duration : Spec.task -> float;  (** simulated runtime of each task, > 0 *)
  failure_rate : float;     (** independent crash probability per attempt,
                                within [0, 1] *)
  seed : int;               (** drives failures, backoff jitter, value salts *)
  salts : (Spec.task * int) list;
      (** override the value salt of specific tasks: re-running with a
          changed salt models changed inputs/parameters, and exactly the
          descendants of salted tasks change outputs *)
  policy : policy;
  retries : int;
      (** extra attempts granted after a crash (0 = fail on first crash);
          timeouts are deterministic and never retried *)
  backoff : float;
      (** base delay, in simulated seconds, before the first retry; doubles
          per further attempt and is jittered by a factor in [0.5, 1.5)
          drawn from the deterministic PRNG *)
  timeout : float option;
      (** when set, a task whose duration exceeds the cap is cut at the cap
          with outcome {!Timed_out} (the worker stays occupied for the full
          cap) *)
}

val default_config : config
(** 1 worker, unit durations, no failures, seed 0, no salts, FIFO,
    no retries (backoff 1.0), no timeout. *)

val durations_from_attrs :
  ?key:string -> ?default:float -> Spec.t -> Spec.task -> float
(** A duration function reading each task's ["duration"] attribute (or
    [key]), falling back to [default] (1.0) when absent or unparseable —
    the bridge from annotated workflow documents to the simulator. *)

val validate_config : config -> unit
(** The validation {!run} performs up front, exposed so callers (the CLI)
    can reject a bad configuration with a clean message before any work.
    @raise Invalid_argument on a non-positive worker count, a failure rate
    outside [0, 1], negative retries, a non-positive backoff or timeout.
    (Durations are validated per task as {!run} encounters them.) *)

val run : ?config:config -> Spec.t -> trace
(** Execute the workflow once. @raise Invalid_argument on a non-positive
    worker count or duration, a failure rate outside [0, 1], negative
    retries, a non-positive backoff or timeout. *)

val resume : ?config:config -> trace -> trace
(** [resume ~config prior] re-executes only what a fresh run could not reuse
    from [prior]: tasks whose final outcome is not [Completed], plus every
    descendant (inclusive) of a task salted in [config.salts]. All other
    completed output values are reused verbatim (recorded as [attempt = 0]
    events at time zero, occupying no worker). Because the engine's reused
    set is ancestor-closed, a resumed run that succeeds produces output
    values identical to a fresh zero-failure run with the same salts.
    @raise Invalid_argument as {!run}. *)

val outcome_of : trace -> Spec.task -> outcome
(** The task's {e final} outcome — the last event's, so retried tasks
    report the outcome of their last attempt, not the first crash. *)

val output_value : trace -> Spec.task -> string option
(** The task's output value, when it completed. *)

val n_attempts : trace -> Spec.task -> int
(** How many times the task actually executed (reused results count 0). *)

val executed_tasks : trace -> Spec.task list
(** Tasks that ran at least one attempt in this trace (increasing order). *)

val reused_tasks : trace -> Spec.task list
(** Tasks whose result was reused from a prior trace (increasing order). *)

val statuses : trace -> (Spec.task * Wolves_provenance.Store.status) list
(** The trace as a status assignment accepted by
    {!Wolves_provenance.Store.record_run}. [Timed_out] maps to
    [Store.Failed], like [Crashed]. *)

val critical_path_length : config -> Spec.t -> float
(** Sum of durations along the heaviest dependency path — the makespan lower
    bound regardless of worker count. *)

val total_work : config -> Spec.t -> float
(** Sum of all task durations — the single-worker makespan (without
    failures). *)

val pp_trace : Format.formatter -> trace -> unit
(** Event log rendering. *)

val gantt : ?width:int -> trace -> string
(** ASCII Gantt chart: one row per executed attempt ordered by start time,
    bars scaled to [width] columns (default 60); crashed attempts render as
    [x], timed-out ones as [t]; skipped and reused tasks are omitted. *)

val trace_to_string : trace -> string
(** The checkpoint format: a CSV header, one row per event, and a final
    [#end,<row count>] footer marking the file complete — a checkpoint cut
    short by a crash is missing (or has torn) its footer, which
    {!trace_of_string} uses to tell a torn tail from silent truncation. *)

val save_trace : string -> trace -> (unit, string) result
(** Persist {!trace_to_string} to a file for later {!resume}. *)

(** A parsed checkpoint. [dropped_row] is the torn trailing line dropped
    from a checkpoint that was being written when the process died — the
    committed prefix is still a valid trace to {!resume} from. *)
type loaded = {
  trace : trace;
  dropped_row : string option;
}

val trace_of_string : Spec.t -> string -> (loaded, string) result
(** Parse {!trace_to_string} output, resolving task names against the
    specification. In a footer-less file the {e final} line is a torn
    checkpoint tail — dropped and reported, not an error — when it is
    malformed {e or} missing its terminating newline (a cut inside the
    free-form value field can leave a row that still parses; the absent
    newline is the only evidence it is not whole). A malformed row with
    committed rows after it, or a footer whose count disagrees with the
    rows present, is real corruption and fails. Footer-less,
    newline-terminated files whose rows all parse load as legacy
    checkpoints. *)

val load_trace : Spec.t -> string -> (loaded, string) result
(** Read a checkpoint file via {!trace_of_string}. *)

val save_trace_store : string -> id:string -> trace -> (unit, string) result
(** Append the trace as a [Checkpoint] record keyed [id] in the crash-safe
    store at that directory (initialised when absent, recovered when dirty)
    — the durable alternative to {!save_trace}'s bare file. *)

val load_trace_store : Spec.t -> string -> id:string -> (loaded, string) result
(** Load the newest [Checkpoint] record keyed [id] from the store,
    recovering first if the store was left dirty by a crash. *)
