(* OCaml ints carry 63 usable bits; we store 63 members per word so that all
   word arithmetic stays within the untagged range. *)
let bits_per_word = 63

type t = {
  capacity : int;
  words : int array;
}

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (words_for capacity) 0 }

let capacity s = s.capacity

let copy s = { s with words = Array.copy s.words }

let check s i name =
  if i < 0 || i >= s.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: %d out of [0, %d)" name i s.capacity)

let add s i =
  check s i "add";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i "remove";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i "mem";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) land (1 lsl b) <> 0

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let popcount =
  (* Kernighan's loop is fine at our word counts. *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  fun w -> go 0 w

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  for i = 0 to Array.length s.words - 1 do
    s.words.(i) <- -1
  done;
  (* Mask off the bits beyond [capacity] in the last word. *)
  let tail = s.capacity mod bits_per_word in
  if tail <> 0 && Array.length s.words > 0 then begin
    let last = Array.length s.words - 1 in
    s.words.(last) <- s.words.(last) land ((1 lsl tail) - 1)
  end

let same_capacity a b name =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)"
                   name a.capacity b.capacity)

let union_into ~into s =
  same_capacity into s "union_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter_into ~into s =
  same_capacity into s "inter_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land s.words.(i)
  done

let diff_into ~into s =
  same_capacity into s "diff_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot s.words.(i)
  done

(* Cache-blocked multi-source union: OR the sources into [into] one block
   of words at a time, all sources before the next block, so [into]'s block
   stays resident in L1 across the whole source group instead of being
   streamed through the cache once per source. 256 words = 2 KB per block,
   comfortably under any L1; the win shows on closure rows wide enough to
   spill (tens of thousands of bits) unioned over several successors. *)
let block_words = 256

let union_many_into ~into sources =
  Array.iter (fun s -> same_capacity into s "union_many_into") sources;
  match Array.length sources with
  | 0 -> ()
  | 1 -> union_into ~into sources.(0)
  | nsrc ->
    let nw = Array.length into.words in
    let iw = into.words in
    let b = ref 0 in
    while !b < nw do
      let hi = min nw (!b + block_words) in
      for k = 0 to nsrc - 1 do
        let sw = sources.(k).words in
        for i = !b to hi - 1 do
          iw.(i) <- iw.(i) lor sw.(i)
        done
      done;
      b := hi
    done

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

let equal a b =
  same_capacity a b "equal";
  a.words = b.words

(* Cumulative count of words examined by the short-circuiting predicates
   below — a test/debug observable (the early-exit tests assert the scan
   really stops at the first violating word), not a metric: it is plain
   (non-atomic) and unsynchronised under domains. *)
let scanned_words = ref 0

let words_scanned () = !scanned_words

let subset a b =
  same_capacity a b "subset";
  (* Short-circuit on the first word of [a] with a bit outside [b]: these
     run inside the soundness pruning probes, where the answer is usually
     decided within a word or two. *)
  let n = Array.length a.words in
  let rec go i =
    i >= n
    || begin
         incr scanned_words;
         a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)
       end
  in
  go 0

let disjoint a b =
  same_capacity a b "disjoint";
  let n = Array.length a.words in
  let rec go i =
    i >= n
    || begin
         incr scanned_words;
         a.words.(i) land b.words.(i) = 0 && go (i + 1)
       end
  in
  go 0

(* Number of trailing zeros of a one-bit word (a power of two fitting in the
   63 usable bits), by binary search — six branches, no table. *)
let ntz_pow2 w =
  let n = ref 0 and w = ref w in
  if !w land 0xFFFFFFFF = 0 then begin n := !n + 32; w := !w lsr 32 end;
  if !w land 0xFFFF = 0 then begin n := !n + 16; w := !w lsr 16 end;
  if !w land 0xFF = 0 then begin n := !n + 8; w := !w lsr 8 end;
  if !w land 0xF = 0 then begin n := !n + 4; w := !w lsr 4 end;
  if !w land 0x3 = 0 then begin n := !n + 2; w := !w lsr 2 end;
  if !w land 0x1 = 0 then incr n;
  !n

(* Lowest-set-bit extraction: each iteration isolates the lowest member with
   [word land (-word)] and clears it, so a word costs O(popcount) instead of
   all 63 bit probes — the win on the sparse sets Reach and Soundness
   iterate. *)
let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let low = !word land (- !word) in
        f (base + ntz_pow2 low);
        word := !word land lnot low
      done
    end
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

(* [for_all]/[exists] used to fold the whole set even after the answer was
   settled; they now abandon the iteration at the first decisive member. *)
exception Settled

let for_all p s =
  try
    iter (fun i -> if not (p i) then raise_notrace Settled) s;
    true
  with Settled -> false

let exists p s =
  try
    iter (fun i -> if p i then raise_notrace Settled) s;
    false
  with Settled -> true

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list capacity elts =
  let s = create capacity in
  List.iter (add s) elts;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
