(** Dense, fixed-capacity bitsets over the integer universe [0, capacity).

    Used as the row representation of transitive-closure matrices and for the
    set arithmetic of the view correctors, where the universe (task identifiers
    of one workflow) is small, dense and known in advance. All operations that
    combine two sets require them to have the same capacity. *)

type t

val create : int -> t
(** [create capacity] is the empty set over universe [0, capacity).
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int
(** Size of the universe the set ranges over. *)

val copy : t -> t

val add : t -> int -> unit
(** [add s i] inserts [i]. @raise Invalid_argument if [i] is out of range. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int

val clear : t -> unit
(** Remove every element. *)

val fill : t -> unit
(** Insert every element of the universe. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s] adds every element of [s] to [into]. *)

val union_many_into : into:t -> t array -> unit
(** [union_many_into ~into sources] adds every element of every source to
    [into], equivalent to folding {!union_into} over [sources] but
    cache-blocked: the word range is processed in L1-sized blocks, each
    block ORed with all sources before moving on, so wide rows are not
    streamed through the cache once per source. The workhorse of the
    transitive-closure kernels. *)

val inter_into : into:t -> t -> unit
(** [inter_into ~into s] removes from [into] the elements not in [s]. *)

val diff_into : into:t -> t -> unit
(** [diff_into ~into s] removes from [into] the elements of [s]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b].
    Short-circuits on the first word of [a] with a bit outside [b]. *)

val disjoint : t -> t -> bool
(** Short-circuits on the first word where the two sets intersect. *)

val words_scanned : unit -> int
(** Cumulative number of words examined by {!subset} and {!disjoint} since
    program start — a test/debug observable for the short-circuiting
    behaviour (plain counter, unsynchronised across domains). *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val for_all : (int -> bool) -> t -> bool
(** Stops iterating at the first member for which the predicate fails. *)

val exists : (int -> bool) -> t -> bool
(** Stops iterating at the first member for which the predicate holds. *)

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity elts]. @raise Invalid_argument on out-of-range input. *)

val choose : t -> int option
(** Smallest member, if any. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{0, 3, 7}]. *)
