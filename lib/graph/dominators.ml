(* Cooper–Harvey–Kennedy iterative dominators. On a DAG one pass in
   topological order suffices (every predecessor is finalised first). The
   virtual root has index [n] internally and is reported as [None]. *)

type t = {
  n : int;
  idom : int array;  (* idom.(v); n = virtual root *)
  depth : int array; (* depth in the dominator tree, root = 0 *)
}

let compute_with g order =
  let n = Digraph.n_nodes g in
  let root = n in
  let idom = Array.make (n + 1) (-1) in
  idom.(root) <- root;
  let position = Array.make (n + 1) (-1) in
  position.(root) <- -1 (* before everything *);
  List.iteri (fun i v -> position.(v) <- i) order;
  let rec intersect a b =
    if a = b then a
    else if a = root then root
    else if b = root then root
    else if position.(a) > position.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  List.iter
    (fun v ->
      let preds = Digraph.pred g v in
      let new_idom =
        match preds with
        | [] -> root
        | first :: rest ->
          List.fold_left (fun acc p -> intersect acc p) first rest
      in
      idom.(v) <- new_idom)
    order;
  let depth = Array.make (n + 1) 0 in
  List.iter
    (fun v -> depth.(v) <- (if idom.(v) = root then 1 else depth.(idom.(v)) + 1))
    order;
  { n; idom; depth }

let compute g =
  match Algo.topological_sort g with
  | None -> invalid_arg "Dominators.compute: graph has a cycle"
  | Some order -> compute_with g order

let compute_post g =
  let t = Digraph.transpose g in
  match Algo.topological_sort t with
  | None -> invalid_arg "Dominators.compute_post: graph has a cycle"
  | Some order -> compute_with t order

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Dominators: unknown node %d" v)

let idom t v =
  check t v;
  if t.idom.(v) = t.n then None else Some t.idom.(v)

let dominates t d v =
  check t d;
  check t v;
  let rec climb v = if v = d then true else if v = t.n then false else climb t.idom.(v) in
  climb v

let tree_intervals t =
  (* Pre/post DFS numbering of the dominator tree: [d] dominates [v] iff
     [pre d <= pre v && post v <= post d]. Children are visited in
     decreasing node order (they were consed in increasing order below), so
     the numbering is deterministic. The virtual root gets no numbers; its
     children are the forest roots. *)
  let children = Array.make (t.n + 1) [] in
  for v = t.n - 1 downto 0 do
    children.(t.idom.(v)) <- v :: children.(t.idom.(v))
  done;
  let pre = Array.make t.n 0 and post = Array.make t.n 0 in
  let counter = ref 0 in
  let visit root =
    let stack = ref [ (root, children.(root)) ] in
    pre.(root) <- !counter;
    incr counter;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, []) :: rest ->
        post.(v) <- !counter;
        incr counter;
        stack := rest
      | (v, c :: cs) :: rest ->
        pre.(c) <- !counter;
        incr counter;
        stack := (c, children.(c)) :: (v, cs) :: rest
    done
  in
  List.iter visit children.(t.n);
  (pre, post)

let common t nodes =
  match nodes with
  | [] -> invalid_arg "Dominators.common: empty list"
  | first :: rest ->
    List.iter (check t) nodes;
    let rec intersect a b =
      if a = b then a
      else if a = t.n || b = t.n then t.n
      else if t.depth.(a) > t.depth.(b) then intersect t.idom.(a) b
      else intersect a t.idom.(b)
    in
    let result = List.fold_left intersect first rest in
    if result = t.n then None else Some result
