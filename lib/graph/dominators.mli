(** Dominator trees over DAGs with a virtual root/sink.

    Node [d] dominates [v] when every path from the (virtual) root to [v]
    passes through [d]. WOLVES uses dominators and their duals
    (postdominators, computed on the transposed graph) to detect fork–join
    regions: a fork [f] and the join [j] that postdominates all its branches
    bound a single-entry/single-exit region, which is a sound composite by
    construction (see [Wolves_core.Suggest]).

    The graph may have several sources/sinks; a virtual root preceding every
    source (resp. virtual sink following every sink) is added internally.
    Cyclic graphs are rejected. *)

type t

val compute : Digraph.t -> t
(** Dominators from the virtual root. @raise Invalid_argument on a cyclic
    graph. *)

val compute_post : Digraph.t -> t
(** Postdominators (dominators of the transposed graph from the virtual
    sink). *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for nodes whose only dominator is the
    virtual root. *)

val dominates : t -> int -> int -> bool
(** [dominates t d v]: does [d] dominate [v]? Reflexive. *)

val tree_intervals : t -> int array * int array
(** [(pre, post)] DFS numbers of the dominator tree, excluding the virtual
    root: [d] dominates [v] iff [pre.(d) <= pre.(v) && post.(v) <= post.(d)]
    — the O(1) form of {!dominates}, used by the reachability label index
    ([d] dominating [v] implies [d] reaches [v], since some root-to-[v] path
    exists and every one passes through [d]). *)

val common : t -> int list -> int option
(** The nearest common dominator of a non-empty node list; [None] when it is
    the virtual root. *)
