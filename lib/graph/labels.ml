type t = {
  n : int;
  rank : int array;       (* topological position; u ⇝ v (u ≠ v) forces
                             rank u < rank v, so >= refutes in O(1) *)
  dom_pre : int array;    (* dominator-tree DFS intervals: ancestor in the
                             dominator tree proves reachability in O(1) *)
  dom_post : int array;
  chains : Chains.t;      (* authoritative O(1) oracle *)
  interval : Interval.t;  (* independent witness for cross-validation *)
}

let compute g =
  let order =
    match Algo.topological_sort g with
    | Some order -> order
    | None -> invalid_arg "Labels.compute: graph has a cycle"
  in
  let n = Digraph.n_nodes g in
  let rank = Array.make n 0 in
  List.iteri (fun i v -> rank.(v) <- i) order;
  let dom = Dominators.compute g in
  let dom_pre, dom_post = Dominators.tree_intervals dom in
  { n;
    rank;
    dom_pre;
    dom_post;
    chains = Chains.compute g;
    interval = Interval.compute g }

let graph_size t = t.n

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Labels: unknown node %d" v)

let reaches t u v =
  check t u;
  check t v;
  if u = v then true
  else if t.rank.(u) >= t.rank.(v) then false
  else if t.dom_pre.(u) <= t.dom_pre.(v) && t.dom_post.(v) <= t.dom_post.(u)
  then true (* u dominates v: every root-to-v path passes u, and one exists *)
  else Chains.reaches t.chains u v

let n_chains t = Chains.n_chains t.chains

let index_words t =
  Chains.index_words t.chains
  + (3 * t.n) (* rank + dominator pre/post *)
  + (2 * Interval.n_intervals t.interval)
  + t.n (* the interval index's postorder numbers *)

let disagrees t reach u v =
  let expected = Reach.reaches reach u v in
  reaches t u v <> expected
  || Chains.reaches t.chains u v <> expected
  || Interval.reaches t.interval u v <> expected

let cross_validate t reach =
  if Reach.graph_size reach <> t.n then
    invalid_arg "Labels.cross_validate: closure indexes a different graph";
  let bad = ref None in
  (try
     for u = 0 to t.n - 1 do
       for v = 0 to t.n - 1 do
         if disagrees t reach u v then begin
           bad := Some (u, v);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !bad

let cross_validate_sampled t reach ~seed ~samples =
  if Reach.graph_size reach <> t.n then
    invalid_arg "Labels.cross_validate_sampled: closure indexes a different graph";
  if t.n = 0 then None
  else begin
    (* SplitMix64-style mixing keeps the pair choice deterministic without
       touching any global PRNG state. *)
    let state = ref (Int64.of_int (seed lxor 0x9e3779b9)) in
    let next () =
      state := Int64.add !state 0x9e3779b97f4a7c15L;
      let z = !state in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
                0xbf58476d1ce4e5b9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
                0x94d049bb133111ebL in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      Int64.to_int (Int64.logand z 0x3fffffffffffffffL)
    in
    let bad = ref None in
    (try
       for _ = 1 to samples do
         let u = next () mod t.n and v = next () mod t.n in
         if disagrees t reach u v then begin
           bad := Some (u, v);
           raise Exit
         end
       done
     with Exit -> ());
    !bad
  end
