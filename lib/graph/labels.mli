(** Combined reachability labels for DAGs — the Bao–Davidson-style compact
    index behind [Soundness.validate ~engine:`Labels].

    Every node carries a few machine words of labels drawn from three
    existing indexes, layered from cheapest to most general:

    - its {e topological rank}: [rank u >= rank v] refutes [u ⇝ v] in O(1)
      (a path strictly increases rank);
    - its {e dominator-tree interval} ({!Dominators.tree_intervals}):
      [u] an ancestor of [v] in the dominator tree proves [u ⇝ v] in O(1);
    - its {e chain labels} ({!Chains}): the authoritative O(1) answer for
      every pair the first two layers did not settle.

    A spanning-forest {e interval index} ({!Interval}) is built alongside
    and used by {!cross_validate} as an independent witness: the checker
    demands that chains, intervals, the combined query, and the dense
    {!Reach} closure all agree, pair by pair.

    Space is O(V·k) words for [k] chains (plus O(V) for the rest) versus
    O(V²/w) for the closure; construction is O(E·k) int operations versus
    O(E·V/w) word operations. Cyclic graphs are rejected. *)

type t

val compute : Digraph.t -> t
(** Build all label layers. @raise Invalid_argument on a cyclic graph. *)

val graph_size : t -> int

val reaches : t -> int -> int -> bool
(** [reaches t u v]: is there a directed path from [u] to [v]? Reflexive,
    O(1), answered from the labels alone. *)

val n_chains : t -> int
(** Chains in the greedy path cover — the [k] in the space bound. *)

val index_words : t -> int
(** Total machine words the labels occupy (chain labels, ranks, dominator
    intervals, and the interval-index rows), for comparison against
    [Reach.n_closure_edges / word_size] closure words. *)

val cross_validate : t -> Reach.t -> (int * int) option
(** Exhaustive consistency check against the dense closure: the first pair
    [(u, v)] on which the combined query, the raw chain labels, the raw
    interval index, and [Reach.reaches] do not all agree — [None] when the
    label set is consistent. O(n² log n); intended for tests and
    [wolves analyze --labels] on human-sized specs. *)

val cross_validate_sampled :
  t -> Reach.t -> seed:int -> samples:int -> (int * int) option
(** {!cross_validate} over [samples] deterministically PRNG-chosen pairs —
    the large-spec variant. *)
