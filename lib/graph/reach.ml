module Par = Wolves_par.Par

type t = {
  n : int;
  rows : Bitset.t array; (* rows.(v) = descendants of v, v included *)
  mutable trans : Bitset.t array option;
      (* trans.(v) = ancestors of v, v included; built on first ancestor
         query (the transposed closure), then shared by every query *)
}

(* Longest-path level of every node counted from the sinks: level v =
   1 + max over successors, 0 for sinks. All nodes of one level have their
   successors strictly below it, so a level is a dependency-free batch the
   domain pool can fill concurrently (reverse topological order is exactly
   "levels in increasing order"). *)
let level_buckets g order =
  let n = Digraph.n_nodes g in
  let level = Array.make n 0 in
  let max_level = ref 0 in
  List.iter
    (fun v ->
      let l =
        List.fold_left
          (fun acc w -> max acc (level.(w) + 1))
          0 (Digraph.succ g v)
      in
      level.(v) <- l;
      if l > !max_level then max_level := l)
    (List.rev order);
  let buckets = Array.make (!max_level + 1) [] in
  for v = n - 1 downto 0 do
    buckets.(level.(v)) <- v :: buckets.(level.(v))
  done;
  Array.map Array.of_list buckets

(* Fill one row: the node itself plus the union of its successors' rows,
   cache-blocked across the successor group. Safe to run concurrently for
   all nodes of one level — each call writes only its own row and reads
   rows of strictly lower levels, which the pool's join barrier has already
   made visible. *)
let fill_row g rows v =
  let row = rows.(v) in
  Bitset.add row v;
  match Digraph.succ g v with
  | [] -> ()
  | succs ->
    Bitset.union_many_into ~into:row
      (Array.of_list (List.map (fun w -> rows.(w)) succs))

let compute_dag g order =
  let n = Digraph.n_nodes g in
  let rows = Array.init n (fun _ -> Bitset.create n) in
  if Par.default_domains () <= 1 then
    (* In reverse topological order every successor row is already final. *)
    List.iter (fun v -> fill_row g rows v) (List.rev order)
  else begin
    let buckets = level_buckets g order in
    Array.iter
      (fun nodes ->
        Par.parallel_for (Array.length nodes) (fun i ->
            fill_row g rows nodes.(i)))
      buckets
  end;
  { n; rows; trans = None }

let compute_general g =
  let n = Digraph.n_nodes g in
  let dag, comp = Algo.condensation g in
  let comp_order =
    match Algo.topological_sort dag with
    | Some order -> order
    | None -> assert false (* condensations are acyclic *)
  in
  (* Closure over components, then expanded to member nodes. *)
  let count = Digraph.n_nodes dag in
  let comp_rows = Array.init count (fun _ -> Bitset.create count) in
  if Par.default_domains () <= 1 then
    List.iter (fun c -> fill_row dag comp_rows c) (List.rev comp_order)
  else begin
    let buckets = level_buckets dag comp_order in
    Array.iter
      (fun nodes ->
        Par.parallel_for (Array.length nodes) (fun i ->
            fill_row dag comp_rows nodes.(i)))
      buckets
  end;
  let members = Array.make count [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  let expanded = Array.init count (fun _ -> Bitset.create n) in
  Par.parallel_for count (fun c ->
      Bitset.iter
        (fun d -> List.iter (fun v -> Bitset.add expanded.(c) v) members.(d))
        comp_rows.(c));
  (* All member nodes of one SCC share the component's expanded row. The
     sharing is an internal memory optimisation only: every accessor either
     reads the rows or hands out copies, so the aliasing cannot be observed
     (see the [descendants] ownership contract in the interface). *)
  { n; rows = Array.init n (fun v -> expanded.(comp.(v))); trans = None }

let compute g =
  match Algo.topological_sort g with
  | Some order -> compute_dag g order
  | None -> compute_general g

let graph_size r = r.n

let equal a b =
  a.n = b.n && Array.for_all2 Bitset.equal a.rows b.rows

let check r v =
  if v < 0 || v >= r.n then
    invalid_arg (Printf.sprintf "Reach: unknown node %d" v)

let reaches r u v =
  check r u;
  check r v;
  Bitset.mem r.rows.(u) v

let row_subset r set v =
  check r v;
  Bitset.subset set r.rows.(v)

let descendants r v =
  check r v;
  (* A fresh copy: the internal row may be shared between the nodes of an
     SCC, so handing it out live would let one caller's mutation corrupt
     the closure for every sibling (and every later query). *)
  Bitset.copy r.rows.(v)

let union_descendants_into r ~into v =
  check r v;
  Bitset.union_into ~into r.rows.(v)

(* The transposed closure, built lazily on the first ancestor query:
   trans.(v) collects every u whose row contains v, so each subsequent
   query is one row read instead of an O(n) scan over all rows. Built from
   the forward rows in one pass over the set bits (O(closure edges)). Not
   safe to trigger concurrently from several domains — the parallel
   drivers query reachability only forward, and single-domain callers
   (queries, provenance stores) are the ancestor users. *)
let transposed r =
  match r.trans with
  | Some t -> t
  | None ->
    let t = Array.init r.n (fun _ -> Bitset.create r.n) in
    for u = 0 to r.n - 1 do
      Bitset.iter (fun v -> Bitset.add t.(v) u) r.rows.(u)
    done;
    r.trans <- Some t;
    t

let ancestors r v =
  check r v;
  Bitset.copy (transposed r).(v)

let ancestors_of_set r set =
  let t = transposed r in
  let result = Bitset.create r.n in
  Bitset.union_many_into ~into:result
    (Array.of_list (List.map (fun v -> t.(v)) (Bitset.elements set)));
  result

let descendants_of_set r set =
  let result = Bitset.create r.n in
  Bitset.union_many_into ~into:result
    (Array.of_list (List.map (fun v -> r.rows.(v)) (Bitset.elements set)));
  result

let n_closure_edges r =
  Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 r.rows
