(** Reachability indexes: reflexive–transitive closure of a {!Digraph}.

    The closure is materialised as one {!Bitset} row of descendants per node,
    computed in reverse topological order for DAGs and via the SCC
    condensation for general graphs, so construction costs O(V·E/w) word
    operations. This is the workhorse behind the soundness validator and the
    correctors, which probe [reaches] heavily.

    Construction is domain-parallel when [Wolves_par.Par.default_domains]
    is above 1: the rows of each longest-path level set are filled
    concurrently with cache-blocked union kernels, and the result is
    byte-identical to the sequential build at every domain count (each row
    is a union over the node's successors, which is order-independent).

    Ancestor queries are answered from a transposed copy of the closure,
    built lazily on the first such query and cached inside the index: the
    first call costs one pass over the closure's set bits, each subsequent
    call a single row read. The transpose build mutates the index and is
    {e not} safe to trigger concurrently from several domains; the parallel
    soundness/corrector drivers only query forward reachability. *)

type t

val compute : Digraph.t -> t
(** Build the closure of the given graph (cyclic graphs allowed). *)

val graph_size : t -> int
(** Number of nodes of the indexed graph. *)

val equal : t -> t -> bool
(** Row-for-row equality of two closures over same-sized graphs — the
    check behind "parallel construction is byte-identical to sequential". *)

val reaches : t -> int -> int -> bool
(** [reaches r u v] is [true] iff there is a (possibly empty) directed path
    from [u] to [v]. Reflexive: [reaches r v v = true]. *)

val row_subset : t -> Bitset.t -> int -> bool
(** [row_subset r set v]: is every member of [set] reachable from [v]? One
    subset test against the internal descendant row — no copy, but the scan
    runs over all of [set]'s words (O(n/w)) even when [set] is sparse. This
    is the "closure row" probe E-ANALYZE compares against O(1) label
    probes. *)

val descendants : t -> int -> Bitset.t
(** The set of nodes reachable from a node, as a {e fresh} set the caller
    owns and may mutate freely. Reflexive, like {!reaches}:
    [descendants r v] always contains [v] itself, even for isolated nodes —
    callers wanting strict (proper) descendants must remove it.

    (The index's internal rows are shared between the nodes of a strongly
    connected component, which is why this hands out a copy: mutating a
    live row would corrupt [reaches] for every sibling node. Hot paths
    that only need to accumulate a row should use
    {!union_descendants_into} and skip the copy.) *)

val union_descendants_into : t -> into:Bitset.t -> int -> unit
(** [union_descendants_into r ~into v] adds every descendant of [v]
    (including [v]) to [into] without materialising an intermediate copy —
    the allocation-free accessor for hot accumulation loops. *)

val ancestors : t -> int -> Bitset.t
(** The set of nodes reaching a node (fresh set, caller-owned). Reflexive
    like {!descendants}: [ancestors r v] always contains [v] itself.
    Answered from the cached transposed closure: O(closure bits) once,
    then O(n/w) per query instead of the former O(n) row scan. *)

val ancestors_of_set : t -> Bitset.t -> Bitset.t
(** Union of [ancestors] over a set of nodes (cache-blocked union over the
    transposed rows). *)

val descendants_of_set : t -> Bitset.t -> Bitset.t
(** Union of [descendants] over a set of nodes. *)

val n_closure_edges : t -> int
(** Total number of ordered reachable pairs, reflexive pairs included; the
    size of the materialised provenance relation. *)
