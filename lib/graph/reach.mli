(** Reachability indexes: reflexive–transitive closure of a {!Digraph}.

    The closure is materialised as one {!Bitset} row of descendants per node,
    computed in reverse topological order for DAGs and via the SCC
    condensation for general graphs, so construction costs O(V·E/w) word
    operations. This is the workhorse behind the soundness validator and the
    correctors, which probe [reaches] heavily. *)

type t

val compute : Digraph.t -> t
(** Build the closure of the given graph (cyclic graphs allowed). *)

val graph_size : t -> int
(** Number of nodes of the indexed graph. *)

val reaches : t -> int -> int -> bool
(** [reaches r u v] is [true] iff there is a (possibly empty) directed path
    from [u] to [v]. Reflexive: [reaches r v v = true]. *)

val descendants : t -> int -> Bitset.t
(** The row of nodes reachable from a node. Reflexive, like {!reaches}:
    [descendants r v] always contains [v] itself, even for isolated nodes —
    callers wanting strict (proper) descendants must remove it. The returned
    set is shared with the index: treat it as read-only. *)

val ancestors : t -> int -> Bitset.t
(** The column of nodes reaching a node (fresh set). Reflexive like
    {!descendants}: [ancestors r v] always contains [v] itself. *)

val ancestors_of_set : t -> Bitset.t -> Bitset.t
(** Union of [ancestors] over a set of nodes. *)

val descendants_of_set : t -> Bitset.t -> Bitset.t
(** Union of [descendants] over a set of nodes. *)

val n_closure_edges : t -> int
(** Total number of ordered reachable pairs, reflexive pairs included; the
    size of the materialised provenance relation. *)
