open Wolves_workflow

type error = {
  file : string option;
  line : int;
  column : int;
  message : string;
}

let pp_error ppf e =
  (match e.file with
   | Some path -> Format.fprintf ppf "%s: " path
   | None -> ());
  if e.line = 0 then Format.pp_print_string ppf e.message
  else Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

exception Fail of error

let fail line column fmt =
  Format.kasprintf
    (fun message -> raise (Fail { file = None; line; column; message }))
    fmt

(* --- lexer --- *)

type token =
  | Kw_workflow
  | Kw_task
  | Kw_composite
  | Kw_deps
  | Name of string
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Equals
  | Comma
  | Semi
  | Arrow
  | Larrow
  | End

type lexeme = {
  token : token;
  l_line : int;
  l_column : int;
}

let tokenize input =
  let n = String.length input in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let lexemes = ref [] in
  let advance () =
    if !pos < n then begin
      if input.[!pos] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr pos
    end
  in
  let push token l c = lexemes := { token; l_line = l; l_column = c } :: !lexemes in
  while !pos < n do
    let c = input.[!pos] in
    let l0 = !line and c0 = !col in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '#' ->
      while !pos < n && input.[!pos] <> '\n' do
        advance ()
      done
    | '{' ->
      push Lbrace l0 c0;
      advance ()
    | '}' ->
      push Rbrace l0 c0;
      advance ()
    | ';' ->
      push Semi l0 c0;
      advance ()
    | '[' ->
      push Lbracket l0 c0;
      advance ()
    | ']' ->
      push Rbracket l0 c0;
      advance ()
    | '=' ->
      push Equals l0 c0;
      advance ()
    | ',' ->
      push Comma l0 c0;
      advance ()
    | '-' ->
      advance ();
      if !pos < n && input.[!pos] = '>' then begin
        advance ();
        push Arrow l0 c0
      end
      else fail l0 c0 "expected '->'"
    | '<' ->
      advance ();
      if !pos < n && input.[!pos] = '-' then begin
        advance ();
        push Larrow l0 c0
      end
      else fail l0 c0 "expected '<-'"
    | '"' ->
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        match input.[!pos] with
        | '"' ->
          closed := true;
          advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail l0 c0 "unterminated name"
          else begin
            (match input.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | other -> fail !line !col "unknown escape '\\%c'" other);
            advance ()
          end
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      if not !closed then fail l0 c0 "unterminated name";
      push (Name (Buffer.contents buf)) l0 c0
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let buf = Buffer.create 16 in
      while
        !pos < n
        &&
        match input.[!pos] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
        | _ -> false
      do
        Buffer.add_char buf input.[!pos];
        advance ()
      done;
      (match Buffer.contents buf with
       | "workflow" -> push Kw_workflow l0 c0
       | "task" -> push Kw_task l0 c0
       | "composite" -> push Kw_composite l0 c0
       | "deps" -> push Kw_deps l0 c0
       | other -> fail l0 c0 "unknown keyword %S (names are quoted)" other)
    | other -> fail l0 c0 "unexpected character %C" other
  done;
  List.rev ({ token = End; l_line = !line; l_column = !col } :: !lexemes)

(* --- parser --- *)

type statement =
  | St_task of string * int * int * (string * string) list
  | St_chain of (string * int * int) list  (* >= 2 names *)
  | St_composite of string * int * int * (string * int * int) list
  | St_deps of
      string * int * int
      * ((string * int * int) * (string * int * int) list) list
      (* task, position, entries: (output name, input names) *)

type stream = {
  mutable rest : lexeme list;
}

let peek st = List.hd st.rest

let advance st = st.rest <- List.tl st.rest

let expect st token what =
  let lx = peek st in
  if lx.token = token then advance st
  else fail lx.l_line lx.l_column "expected %s" what

let expect_name st what =
  let lx = peek st in
  match lx.token with
  | Name n ->
    advance st;
    (n, lx.l_line, lx.l_column)
  | _ -> fail lx.l_line lx.l_column "expected %s (a quoted name)" what

let parse_statements st =
  let statements = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let lx = peek st in
    match lx.token with
    | Rbrace -> continue_ := false
    | Kw_task ->
      advance st;
      let name = expect_name st "a task name" in
      (* Optional attribute block: [ "k" = "v", ... ] *)
      let attrs = ref [] in
      (match (peek st).token with
       | Lbracket ->
         advance st;
         let closed = ref false in
         while not !closed do
           let key, _, _ = expect_name st "an attribute key" in
           expect st Equals "'='";
           let value, _, _ = expect_name st "an attribute value" in
           attrs := (key, value) :: !attrs;
           match (peek st).token with
           | Comma -> advance st
           | Rbracket ->
             advance st;
             closed := true
           | _ ->
             let lx = peek st in
             fail lx.l_line lx.l_column "expected ',' or ']'"
         done
       | _ -> ());
      expect st Semi "';'";
      let n, l, c = name in
      statements := St_task (n, l, c, List.rev !attrs) :: !statements
    | Kw_composite ->
      advance st;
      let name, l, c = expect_name st "a composite name" in
      expect st Lbrace "'{'";
      let members = ref [] in
      let inner = ref true in
      while !inner do
        match (peek st).token with
        | Rbrace ->
          advance st;
          inner := false
        | Name _ -> members := expect_name st "a member task" :: !members
        | _ ->
          let lx = peek st in
          fail lx.l_line lx.l_column "expected a member name or '}'"
      done;
      statements := St_composite (name, l, c, List.rev !members) :: !statements
    | Kw_deps ->
      advance st;
      let name, l, c = expect_name st "a task name" in
      expect st Lbrace "'{'";
      let entries = ref [] in
      let inner = ref true in
      while !inner do
        match (peek st).token with
        | Rbrace ->
          advance st;
          inner := false
        | Name _ ->
          let output = expect_name st "an output (consumer task) name" in
          expect st Larrow "'<-'";
          let inputs = ref [] in
          let entry_open = ref true in
          while !entry_open do
            match (peek st).token with
            | Name _ ->
              inputs :=
                expect_name st "an input (producer task) name" :: !inputs
            | Semi ->
              advance st;
              entry_open := false
            | _ ->
              let lx = peek st in
              fail lx.l_line lx.l_column "expected an input name or ';'"
          done;
          entries := (output, List.rev !inputs) :: !entries
        | _ ->
          let lx = peek st in
          fail lx.l_line lx.l_column "expected an output entry or '}'"
      done;
      statements := St_deps (name, l, c, List.rev !entries) :: !statements
    | Name _ ->
      let first = expect_name st "a task name" in
      let chain = ref [ first ] in
      let more = ref true in
      while !more do
        match (peek st).token with
        | Arrow ->
          advance st;
          chain := expect_name st "a task name after '->'" :: !chain
        | Semi ->
          advance st;
          more := false
        | _ ->
          let lx = peek st in
          fail lx.l_line lx.l_column "expected '->' or ';'"
      done;
      (match !chain with
       | [ (_, l, c) ] -> fail l c "a dependency needs at least two tasks"
       | chain -> statements := St_chain (List.rev chain) :: !statements)
    | End -> fail lx.l_line lx.l_column "missing '}' closing the workflow"
    | _ ->
      fail lx.l_line lx.l_column
        "expected 'task', 'composite', a dependency chain, or '}'"
  done;
  List.rev !statements

let parse input =
  let st = { rest = tokenize input } in
  expect st Kw_workflow "'workflow'";
  let wf_name, wf_line, wf_column = expect_name st "the workflow name" in
  expect st Lbrace "'{'";
  let statements = parse_statements st in
  expect st Rbrace "'}'";
  (match (peek st).token with
   | End -> ()
   | _ ->
     let lx = peek st in
     fail lx.l_line lx.l_column "trailing input after the workflow");
  (wf_name, (wf_line, wf_column), statements)

(* --- elaboration --- *)

type position = {
  pos_line : int;
  pos_column : int;
}

type source_map = {
  workflow_position : position;
  task_decls : (string * position) list;
  edge_occurrences : ((string * string) * position) list;
  composite_decls : (string * position) list;
  deps_decls : (string * position) list;
  deps_entries : ((string * string) * position) list;
}

let pos (l, c) = { pos_line = l; pos_column = c }

let of_string_with_source input =
  try
    let wf_name, wf_pos, statements = parse input in
    (* First pass: declared tasks with their positions. *)
    let declared = Hashtbl.create 32 in
    List.iter
      (function
        | St_task (name, l, c, _) ->
          if Hashtbl.mem declared name then fail l c "task %S declared twice" name
          else Hashtbl.replace declared name (l, c)
        | St_chain _ | St_composite _ | St_deps _ -> ())
      statements;
    let check_declared (name, l, c) =
      if not (Hashtbl.mem declared name) then
        fail l c "unknown task %S (declare it with: task \"%s\";)" name name
    in
    let edges = ref [] in
    List.iter
      (function
        | St_chain chain ->
          List.iter check_declared chain;
          let rec pairs = function
            | (a, al, ac) :: ((b, _, _) :: _ as rest) ->
              edges := ((a, b), (al, ac)) :: !edges;
              pairs rest
            | [ _ ] | [] -> ()
          in
          pairs chain
        | St_task _ | St_composite _ | St_deps _ -> ())
      statements;
    (* Deps blocks: every referenced name must be declared (with a precise
       position), but outputs/inputs need not be graph neighbours — the
       analysis layer diagnoses that, not the parser. *)
    List.iter
      (function
        | St_deps (name, l, c, entries) ->
          check_declared (name, l, c);
          List.iter
            (fun (output, inputs) ->
              check_declared output;
              List.iter check_declared inputs)
            entries
        | St_task _ | St_chain _ | St_composite _ -> ())
      statements;
    let tasks =
      List.filter_map
        (function
          | St_task (n, _, _, _) -> Some n
          | St_chain _ | St_composite _ | St_deps _ -> None)
        statements
    in
    let build () =
      let b = Spec.Builder.create ~name:wf_name () in
      let rec step f = function
        | [] -> Ok ()
        | x :: rest ->
          (match f x with Error e -> Error e | Ok _ -> step f rest)
      in
      match step (Spec.Builder.add_task b) tasks with
      | Error e -> Error e
      | Ok () ->
        (match
           step
             (fun ((p, c), _) -> Spec.Builder.add_dependency b p c)
             (List.rev !edges)
         with
         | Error e -> Error e
         | Ok () ->
           (match
              step
                (function
                  | St_task (n, _, _, attrs) ->
                    step
                      (fun (key, value) -> Spec.Builder.set_attr b n ~key value)
                      attrs
                  | St_deps (task, _, _, entries) ->
                    step
                      (fun ((output, _, _), inputs) ->
                        Spec.Builder.annotate b task ~output
                          (List.map (fun (i, _, _) -> i) inputs))
                      entries
                  | St_chain _ | St_composite _ -> Ok ())
                statements
            with
            | Error e -> Error e
            | Ok () -> Spec.Builder.finish b))
    in
    match build () with
    | Error e -> fail 1 1 "%s" (Format.asprintf "%a" Spec.pp_error e)
    | Ok spec ->
      (* Composites; uncovered tasks become singletons. *)
      let covered = Hashtbl.create 32 in
      let groups =
        List.filter_map
          (function
            | St_composite (name, _, _, members) ->
              List.iter check_declared members;
              List.iter
                (fun (m, l, c) ->
                  if Hashtbl.mem covered m then
                    fail l c "task %S is already in a composite" m
                  else Hashtbl.replace covered m ())
                members;
              Some (name, List.map (fun (m, _, _) -> m) members)
            | St_task _ | St_chain _ | St_deps _ -> None)
          statements
      in
      let singletons =
        List.filter_map
          (fun t ->
            let name = Spec.task_name spec t in
            if Hashtbl.mem covered name then None else Some (name, [ name ]))
          (Spec.tasks spec)
      in
      (match View.make spec (groups @ singletons) with
       | Error e -> fail 1 1 "%s" (Format.asprintf "%a" View.pp_error e)
       | Ok view ->
         let source =
           { workflow_position = pos wf_pos;
             task_decls =
               List.filter_map
                 (function
                   | St_task (n, l, c, _) -> Some (n, pos (l, c))
                   | St_chain _ | St_composite _ | St_deps _ -> None)
                 statements;
             edge_occurrences =
               List.rev_map (fun (e, p) -> (e, pos p)) !edges;
             composite_decls =
               List.filter_map
                 (function
                   | St_composite (n, l, c, _) -> Some (n, pos (l, c))
                   | St_task _ | St_chain _ | St_deps _ -> None)
                 statements;
             deps_decls =
               List.filter_map
                 (function
                   | St_deps (n, l, c, _) -> Some (n, pos (l, c))
                   | St_task _ | St_chain _ | St_composite _ -> None)
                 statements;
             deps_entries =
               List.concat_map
                 (function
                   | St_deps (n, _, _, entries) ->
                     List.map
                       (fun ((o, l, c), _) -> ((n, o), pos (l, c)))
                       entries
                   | St_task _ | St_chain _ | St_composite _ -> [])
                 statements }
         in
         Ok (spec, view, source))
  with Fail e -> Error e

let of_string input =
  Result.map (fun (spec, view, _) -> (spec, view)) (of_string_with_source input)

(* --- printer --- *)

let quote name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string view =
  let spec = View.spec view in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "workflow %s {\n" (quote (Spec.name spec)));
  List.iter
    (fun t ->
      let attrs = Spec.attrs spec t in
      let attr_block =
        if attrs = [] then ""
        else
          Printf.sprintf " [ %s ]"
            (String.concat ", "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s = %s" (quote k) (quote v))
                  attrs))
      in
      Buffer.add_string buf
        (Printf.sprintf "  task %s%s;\n" (quote (Spec.task_name spec t))
           attr_block))
    (Spec.tasks spec);
  if Spec.n_dependencies spec > 0 then Buffer.add_char buf '\n';
  Wolves_graph.Digraph.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s;\n"
           (quote (Spec.task_name spec u))
           (quote (Spec.task_name spec v))))
    (Spec.graph spec);
  let annotated = Spec.annotated_tasks spec in
  if annotated <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      let entries = Option.value ~default:[] (Spec.annotation spec t) in
      Buffer.add_string buf
        (Printf.sprintf "  deps %s {%s }\n"
           (quote (Spec.task_name spec t))
           (String.concat ""
              (List.map
                 (fun (out, ins) ->
                   Printf.sprintf " %s <-%s;"
                     (quote (Spec.task_name spec out))
                     (String.concat ""
                        (List.map
                           (fun i -> " " ^ quote (Spec.task_name spec i))
                           ins)))
                 entries))))
    annotated;
  let explicit =
    List.filter
      (fun c ->
        match View.members view c with
        | [ single ] -> View.composite_name view c <> Spec.task_name spec single
        | _ -> true)
      (View.composites view)
  in
  if explicit <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  composite %s {%s }\n"
           (quote (View.composite_name view c))
           (String.concat ""
              (List.map
                 (fun t -> " " ^ quote (Spec.task_name spec t))
                 (View.members view c)))))
    explicit;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Every error escaping [load]/[save] names the file, so CLI and lint
   diagnostics can point at it without the caller re-threading the path. *)
let attach_file path = function
  | Ok _ as ok -> ok
  | Error e -> Error { e with file = Some path }

let load_with_source path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> attach_file path (of_string_with_source text)
  | exception Sys_error msg ->
    Error { file = Some path; line = 0; column = 0; message = msg }

let load path =
  Result.map (fun (spec, view, _) -> (spec, view)) (load_with_source path)

let save path view =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string view))
  with
  | () -> Ok ()
  | exception Sys_error msg ->
    Error { file = Some path; line = 0; column = 0; message = msg }
