(** A human-writable workflow description language (the [.wf] format).

    MoML is the interchange format; this DSL is what a person types:

    {v
    # phylogenomic inference, abridged
    workflow "phylo" {
      task "select";   task "split";  task "align";  task "display";

      "select" -> "split" -> "align" -> "display";   # chains are sugar

      composite "Input"  { "select" "split" }
      composite "Render" { "display" }
      # tasks in no composite become singletons
    }
    v}

    Grammar (comments run [#] to end of line; names are double-quoted,
    with backslash escapes for the quote and the backslash itself):

    {v
    document  := 'workflow' NAME '{' statement* '}'
    statement := 'task' NAME attrs? ';'
               | NAME ('->' NAME)+ ';'
               | 'composite' NAME '{' NAME* '}'
               | 'deps' NAME '{' entry* '}'
    attrs     := '[' NAME '=' NAME (',' NAME '=' NAME)* ']'
    entry     := NAME '<-' NAME* ';'
    v}

    Edges may reference tasks declared anywhere in the document.

    A [deps] block carries optional {e dependency annotations} for one
    task: each entry says that the data the task sends to one consumer
    (the entry's left-hand name) depends on exactly the data it receives
    from the listed producers — an empty right-hand side marks an output
    generated from no input. Unannotated outputs are treated as depending
    on all inputs. Referenced names must be declared tasks, but are {e not}
    required to be graph neighbours: the [wolves analyze] / lint layer
    reports non-neighbour references ([spec/annotation-inconsistent])
    rather than the parser rejecting the document:

    {v
    deps "align" { "display" <- "split"; "audit" <-; }
    v} *)

open Wolves_workflow

type error = {
  file : string option;
      (** The path being read or written, when the error came from {!load} or
          {!save}; [None] for in-memory parses. *)
  line : int;    (** 1-based; 0 for I/O failures. *)
  column : int;  (** 1-based *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** Renders as [FILE: line L, column C: MSG]; the [FILE:] prefix is omitted
    when no file is attached, the position when [line] is 0 (I/O errors). *)

val of_string : string -> (Spec.t * View.t, error) result
(** Parse a document into a specification and view (singletons for tasks in
    no composite). Workflow-level problems (cycles, duplicate tasks, overlap
    between composites) are reported as errors at the document's location of
    the offending name where possible. *)

(** Source positions retained from a parse, for diagnostics that point back
    into the [.wf] text (the lint analyzer's spans). All positions are
    1-based (line, column) of the relevant name token. *)
type position = {
  pos_line : int;
  pos_column : int;
}

type source_map = {
  workflow_position : position;  (** the workflow's name token *)
  task_decls : (string * position) list;
      (** every [task] declaration, document order *)
  edge_occurrences : ((string * string) * position) list;
      (** every producer→consumer pair as written — chains expanded, {e
          duplicates kept} in document order; the position is the producer
          name's occurrence in that statement *)
  composite_decls : (string * position) list;
      (** every explicit [composite] block, document order *)
  deps_decls : (string * position) list;
      (** every [deps] block's task name, document order *)
  deps_entries : ((string * string) * position) list;
      (** every annotation entry as written, document order, {e duplicates
          kept}: ((task, output), position of the output name) *)
}

val of_string_with_source : string -> (Spec.t * View.t * source_map, error) result
(** Like {!of_string}, additionally returning the source map. *)

val to_string : View.t -> string
(** Canonical rendering; [of_string ∘ to_string] preserves the
    specification and partition. Singleton composites named after their only
    task are rendered implicitly. *)

val load : string -> (Spec.t * View.t, error) result
(** Read a [.wf] file. Every error — parse or I/O — carries the path in
    [file]; I/O failures are reported at line 0. *)

val load_with_source : string -> (Spec.t * View.t * source_map, error) result
(** {!load}, additionally returning the source map. *)

val save : string -> View.t -> (unit, error) result
(** Write the canonical rendering. I/O failures carry the path in [file] and
    are reported at line 0. *)
