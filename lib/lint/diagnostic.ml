type severity =
  | Error
  | Warning
  | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "hint" -> Some Hint
  | _ -> None

let severity_rank = function
  | Error -> 3
  | Warning -> 2
  | Hint -> 1

type position = {
  line : int;
  column : int;
}

type anchor =
  | Task of string
  | Composite of string
  | Edge of string * string
  | Workflow of string

let anchor_name = function
  | Task t -> Printf.sprintf "task %S" t
  | Composite c -> Printf.sprintf "composite %S" c
  | Edge (a, b) -> Printf.sprintf "edge %S -> %S" a b
  | Workflow w -> Printf.sprintf "workflow %S" w

type location = {
  file : string option;
  position : position option;
  anchor : anchor;
}

type related = {
  r_location : location;
  note : string;
}

type fix =
  | Drop_edge of string * string
  | Split_composite of string
  | Merge_composites of string * string
  | Rename_composite of string * string
  | Canonicalize of string
  | Add_annotation of string * (string * string list) list

let fix_description = function
  | Drop_edge (a, b) -> Printf.sprintf "drop the redundant edge %S -> %S" a b
  | Split_composite c -> Printf.sprintf "split %S into sound parts" c
  | Merge_composites (a, b) -> Printf.sprintf "merge %S and %S" a b
  | Rename_composite (old_, new_) ->
    Printf.sprintf "rename composite %S to %S" old_ new_
  | Canonicalize what -> Printf.sprintf "re-render canonically (%s)" what
  | Add_annotation (task, entries) ->
    Printf.sprintf "annotate task %S with inferred entries: %s" task
      (String.concat "; "
         (List.map
            (fun (output, inputs) ->
              Printf.sprintf "%S <- %s" output
                (if inputs = [] then "(nothing)"
                 else String.concat " " (List.map (Printf.sprintf "%S") inputs)))
            entries))

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  related : related list;
  fix : fix option;
}

(* Deterministic total order used to sort every report. *)

let anchor_key = function
  | Workflow w -> (0, w, "")
  | Task t -> (1, t, "")
  | Composite c -> (2, c, "")
  | Edge (a, b) -> (3, a, b)

let position_key = function
  | Some { line; column } -> (line, column)
  | None -> (max_int, max_int)

let compare a b =
  let c =
    Stdlib.compare
      (Option.value ~default:"" a.location.file)
      (Option.value ~default:"" b.location.file)
  in
  if c <> 0 then c
  else
    let c =
      Stdlib.compare (position_key a.location.position)
        (position_key b.location.position)
    in
    if c <> 0 then c
    else
      let c =
        Stdlib.compare (anchor_key a.location.anchor)
          (anchor_key b.location.anchor)
      in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.rule b.rule in
        if c <> 0 then c else Stdlib.compare a.message b.message

let pp ppf d =
  (match (d.location.file, d.location.position) with
   | Some f, Some p -> Format.fprintf ppf "%s:%d:%d: " f p.line p.column
   | Some f, None ->
     Format.fprintf ppf "%s: %s: " f (anchor_name d.location.anchor)
   | None, Some p -> Format.fprintf ppf "%d:%d: " p.line p.column
   | None, None -> Format.fprintf ppf "%s: " (anchor_name d.location.anchor));
  Format.fprintf ppf "%s %s: %s" (severity_to_string d.severity) d.rule
    d.message
