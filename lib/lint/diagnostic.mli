(** Typed lint diagnostics.

    A diagnostic names the rule that fired, a severity, a location — a
    source span when the lint ran over a [.wf] document, the task/composite
    name otherwise — a human message, related locations (witness tasks,
    first occurrences, core members), and an optional machine-applicable
    fix that {!Fix} can apply. *)

type severity =
  | Error    (** the view misleads provenance analysis (unsoundness) *)
  | Warning  (** structural mistakes worth fixing *)
  | Hint     (** style and missed-abstraction suggestions *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] = 3, [Warning] = 2, [Hint] = 1 — for threshold comparison. *)

type position = {
  line : int;    (** 1-based *)
  column : int;  (** 1-based *)
}

(** What the diagnostic is about, independent of any source text. *)
type anchor =
  | Task of string
  | Composite of string
  | Edge of string * string  (** producer, consumer *)
  | Workflow of string       (** the workflow's name *)

val anchor_name : anchor -> string
(** A printable identification such as ["task \"align\""] or
    ["edge \"a\" -> \"b\""]. *)

type location = {
  file : string option;        (** the linted document, when known *)
  position : position option;  (** resolved from the [.wf] source map *)
  anchor : anchor;
}

type related = {
  r_location : location;
  note : string;  (** e.g. ["first occurrence"], ["unreached output"] *)
}

(** Machine-applicable fixes, applied by {!Fix} to the canonical [.wf]
    rendering. *)
type fix =
  | Drop_edge of string * string
      (** remove the redundant dependency producer → consumer *)
  | Split_composite of string
      (** split the unsound composite into sound parts (strong criterion) *)
  | Merge_composites of string * string
      (** fuse two sound-combinable composites (Def 2.4) *)
  | Rename_composite of string * string
      (** old name, new name — degenerate singleton aliases fold back onto
          their member's name, making the composite implicit *)
  | Canonicalize of string
      (** resolved by re-rendering the canonical form (e.g. duplicate edge
          statements collapse); the string describes what goes away *)
  | Add_annotation of string * (string * string list) list
      (** insert inferred dependency-annotation entries (output, inputs)
          into the task's [deps] block, completing a partial annotation *)

val fix_description : fix -> string

type t = {
  rule : string;  (** rule identifier, e.g. ["view/unsound-composite"] *)
  severity : severity;
  location : location;
  message : string;
  related : related list;
  fix : fix option;
}

val compare : t -> t -> int
(** Total, deterministic order: by file, then source position (positionless
    locations last), then anchor, then rule, then message. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [FILE:LINE:COL: severity rule: message] when a
    source position is known, [FILE: anchor: severity rule: message]
    otherwise. *)
