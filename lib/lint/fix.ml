open Wolves_workflow
module D = Diagnostic
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Wfdsl = Wolves_lang.Wfdsl
module Metrics = Wolves_obs.Metrics

type applied = {
  rule : string;
  fix : D.fix;
  round : int;
}

let pp_applied ppf a =
  Format.fprintf ppf "[round %d] %s: %s" a.round a.rule
    (D.fix_description a.fix)

let c_fixes = Metrics.counter "lint.fixes"
let c_rounds = Metrics.counter "lint.fix_rounds"

(* Rebuild the view on a specification with some edges dropped, some
   composites renamed and some annotation entries added. Task attributes,
   annotations and the partition are preserved; dropped edges are
   redundant, so reachability — and with it every soundness verdict — is
   unchanged. Annotation entries referencing an edge dropped in this round
   are pruned with it (including added ones: an inferred entry may name a
   producer whose redundant edge goes away in the same batch); references
   that were already inconsistent are kept verbatim so the error stays
   visible. *)
let rebuild view ~drop_edges ~renames ~add_annots =
  if drop_edges = [] && renames = [] && add_annots = [] then view
  else begin
    let spec = View.spec view in
    let b = Spec.Builder.create ~name:(Spec.name spec) () in
    List.iter
      (fun t ->
        let name = Spec.task_name spec t in
        ignore (Spec.Builder.add_task_exn b name);
        List.iter
          (fun (key, value) -> Spec.Builder.set_attr_exn b name ~key value)
          (Spec.attrs spec t))
      (Spec.tasks spec);
    Wolves_graph.Digraph.iter_edges
      (fun u v ->
        let edge = (Spec.task_name spec u, Spec.task_name spec v) in
        if not (List.mem edge drop_edges) then
          Spec.Builder.add_dependency_exn b (fst edge) (snd edge))
      (Spec.graph spec);
    let keep_out t o = not (List.mem (t, o) drop_edges) in
    let keep_in p t = not (List.mem (p, t) drop_edges) in
    let annotate tname (oname, inputs) =
      if keep_out tname oname then
        Spec.Builder.annotate_exn b tname ~output:oname
          (List.filter (fun p -> keep_in p tname) inputs)
    in
    List.iter
      (fun t ->
        let tname = Spec.task_name spec t in
        List.iter
          (fun (o, ins) ->
            annotate tname
              (Spec.task_name spec o, List.map (Spec.task_name spec) ins))
          (Option.value ~default:[] (Spec.annotation spec t)))
      (Spec.annotated_tasks spec);
    List.iter
      (fun (tname, entries) -> List.iter (annotate tname) entries)
      add_annots;
    let spec' = Spec.Builder.finish_exn b in
    let groups =
      List.map
        (fun c ->
          let name = View.composite_name view c in
          let name =
            match List.assoc_opt name renames with
            | Some fresh -> fresh
            | None -> name
          in
          (name, List.map (Spec.task_name spec) (View.members view c)))
        (View.composites view)
    in
    View.make_exn spec' groups
  end

(* One round: partition the batch of fixes by kind, then apply in an order
   that keeps every step meaningful — graph surgery first (it can only
   improve soundness), then splits of still-unsound composites, then merges
   re-verified against the current view. *)
let apply_round view fixes =
  let drop_edges =
    List.filter_map
      (function D.Drop_edge (a, b) -> Some (a, b) | _ -> None)
      fixes
  in
  let renames =
    List.filter_map
      (function D.Rename_composite (o, n) -> Some (o, n) | _ -> None)
      fixes
  in
  let add_annots =
    List.filter_map
      (function D.Add_annotation (t, es) -> Some (t, es) | _ -> None)
      fixes
  in
  let view = rebuild view ~drop_edges ~renames ~add_annots in
  let view =
    List.fold_left
      (fun view fix ->
        match fix with
        | D.Split_composite name ->
          (match View.composite_of_name view name with
           | Some c when not (S.composite_sound view c) ->
             fst (C.split_composite C.Strong view c)
           | Some _ | None -> view)
        | _ -> view)
      view fixes
  in
  List.fold_left
    (fun view fix ->
      match fix with
      | D.Merge_composites (na, nb) ->
        (match (View.composite_of_name view na, View.composite_of_name view nb)
         with
         | Some a, Some b when a <> b ->
           (* Earlier merges may have changed either side; re-verify, and
              never merge down to a single composite — that would trade the
              hint for a view/monolithic-view warning. *)
           let spec = View.spec view in
           if
             View.n_composites view > 2
             && S.composite_sound view a && S.composite_sound view b
             && C.combinable spec (View.members view a) (View.members view b)
           then View.merge_exn view [ a; b ]
           else view
         | _ -> view)
      | _ -> view)
    view fixes

let apply ?(config = Lint.default_config) ?(max_rounds = 256) ?file ?source
    view =
  let log = ref [] in
  let rec go view round source =
    if round > max_rounds then view
    else begin
      let diagnostics = Lint.run ~config ?file ?source view in
      let fixable =
        List.filter_map
          (fun d ->
            match d.D.fix with
            | Some fix -> Some (d.D.rule, fix)
            | None -> None)
          diagnostics
      in
      let structural =
        List.filter
          (function _, D.Canonicalize _ -> false | _ -> true)
          fixable
      in
      (* Canonicalize fixes are performed by the caller's re-rendering; they
         can only arise from the source map, i.e. in round one. *)
      List.iter
        (fun (rule, fix) -> log := { rule; fix; round } :: !log)
        fixable;
      if structural = [] then view
      else begin
        Metrics.incr c_rounds;
        Metrics.add c_fixes (List.length structural);
        let view' = apply_round view (List.map snd structural) in
        go view' (round + 1) None
      end
    end
  in
  let final = go view 1 source in
  (final, List.rev !log)

let fix_file ?(config = Lint.default_config) path =
  let write view =
    let rendered =
      if Filename.check_suffix path ".wf" then Wfdsl.to_string view
      else Wolves_moml.Moml.to_string view
    in
    match
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc rendered)
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
  in
  if Filename.check_suffix path ".wf" then
    match Wfdsl.load_with_source path with
    | Error e -> Error (Format.asprintf "%a" Wfdsl.pp_error e)
    | Ok (_, view, source) ->
      let fixed, applied = apply ~config ~file:path ~source view in
      if applied = [] then Ok []
      else Result.map (fun () -> applied) (write fixed)
  else
    match Wolves_moml.Moml.load path with
    | Error e -> Error (Format.asprintf "%s: %a" path Wolves_moml.Moml.pp_error e)
    | Ok (_, view) ->
      let fixed, applied = apply ~config ~file:path view in
      if applied = [] then Ok []
      else Result.map (fun () -> applied) (write fixed)
