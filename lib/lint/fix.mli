(** The lint autofix engine.

    Applies every machine-applicable fix the analyzer attached — dropping
    redundant edges, splitting unsound composites with the strong
    {!Wolves_core.Corrector}, merging sound-combinable composites, folding
    degenerate singleton aliases, inserting inferred dependency-annotation
    entries — and iterates until a fixpoint: {b re-linting the result
    yields no fixable diagnostics}. Annotations survive every rebuild;
    entries referencing an edge dropped in the same round are pruned with
    it.

    Guarantees:
    - the returned view's {!Wolves_core.Soundness} verdict is
      unchanged-or-improved: sound views stay sound, unsound composites
      are split into sound parts (dropping a redundant edge never changes
      reachability, and merges are applied only when the union is sound);
    - the engine is idempotent: applying it to its own output changes
      nothing. *)

open Wolves_workflow

type applied = {
  rule : string;            (** the rule whose fix this was *)
  fix : Diagnostic.fix;
  round : int;              (** 1-based fixpoint round *)
}

val pp_applied : Format.formatter -> applied -> unit

val apply :
  ?config:Lint.config ->
  ?max_rounds:int ->
  ?file:string ->
  ?source:Wolves_lang.Wfdsl.source_map ->
  View.t ->
  View.t * applied list
(** Lint, apply fixes, re-lint, until no fixable diagnostic remains (or
    [max_rounds], default 256, as a safety net — every round applies at
    least one fix, and each kind strictly consumes a finite budget: drops
    remove edges, splits remove unsound composites, merges remove
    composites, so convergence is guaranteed well before the cap). Only
    diagnostics that pass [config]'s rule filters and
    severity threshold are fixed. [source] lets round one see the DSL-layer
    diagnostics; [Canonicalize] fixes are recorded as applied (the caller's
    canonical re-rendering performs them). *)

val fix_file : ?config:Lint.config -> string -> (applied list, string) result
(** {!apply} on a document and rewrite it in place — canonical [.wf]
    rendering for [.wf] files, MoML otherwise. Nothing is written when no
    fix applies. *)
