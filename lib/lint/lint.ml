module D = Diagnostic
module Json = Wolves_cli.Json
module Wfdsl = Wolves_lang.Wfdsl

type config = {
  rules : string list option;
  disabled : string list;
  threshold : D.severity;
  fan_threshold : int;
}

let default_config =
  { rules = None; disabled = []; threshold = D.Hint; fan_threshold = 8 }

let rule_enabled config id =
  (match config.rules with
   | None -> true
   | Some whitelist -> List.mem id whitelist)
  && not (List.mem id config.disabled)

let validate_config config =
  let mentioned = Option.value ~default:[] config.rules @ config.disabled in
  let unknown ids = List.find_opt (fun id -> Rules.find id = None) ids in
  let rec first_duplicate seen = function
    | [] -> None
    | id :: rest ->
      if List.mem id seen then Some id else first_duplicate (id :: seen) rest
  in
  if config.fan_threshold <= 0 then
    Error
      (Printf.sprintf "fan threshold must be positive (got %d)"
         config.fan_threshold)
  else
    match unknown mentioned with
    | Some id ->
      Error
        (Printf.sprintf "unknown lint rule %S (known: %s)" id
           (String.concat ", " (List.map (fun m -> m.Rules.id) Rules.all)))
    | None ->
      (match first_duplicate [] mentioned with
       | Some id ->
         Error
           (Printf.sprintf
              "lint rule %S is mentioned more than once across --rules and \
               --disable; each rule may appear at most once"
              id)
       | None -> Ok ())

let run ?(config = default_config) ?file ?source view =
  let diagnostics =
    Rules.analyze ~fan_threshold:config.fan_threshold
      ~enabled:(rule_enabled config)
      { Rules.view; file; source }
  in
  List.filter
    (fun d ->
      D.severity_rank d.D.severity >= D.severity_rank config.threshold)
    diagnostics

let run_file ?(config = default_config) path =
  if Filename.check_suffix path ".wf" then
    match Wfdsl.load_with_source path with
    | Ok (_, view, source) -> Ok (run ~config ~file:path ~source view)
    | Error e -> Error (Format.asprintf "%a" Wfdsl.pp_error e)
  else
    match Wolves_moml.Moml.load path with
    | Ok (_, view) -> Ok (run ~config ~file:path view)
    | Error e ->
      Error (Format.asprintf "%s: %a" path Wolves_moml.Moml.pp_error e)

let errors diagnostics =
  List.length (List.filter (fun d -> d.D.severity = D.Error) diagnostics)

(* --- terminal backend --- *)

let severity_color = function
  | D.Error -> "\027[31m"
  | D.Warning -> "\027[33m"
  | D.Hint -> "\027[36m"

let to_terminal ?(color = false) diagnostics =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun d ->
      if color then
        add "%s%s\027[0m\n"
          (severity_color d.D.severity)
          (Format.asprintf "%a" D.pp d)
      else add "%s\n" (Format.asprintf "%a" D.pp d);
      List.iter
        (fun r ->
          let where =
            match (r.D.r_location.D.position, r.D.r_location.D.file) with
            | Some p, Some f -> Printf.sprintf "%s:%d:%d" f p.D.line p.D.column
            | Some p, None -> Printf.sprintf "%d:%d" p.D.line p.D.column
            | None, _ -> D.anchor_name r.D.r_location.D.anchor
          in
          add "    %s: %s\n" where r.D.note)
        d.D.related;
      match d.D.fix with
      | Some fix -> add "    fix: %s\n" (D.fix_description fix)
      | None -> ())
    diagnostics;
  let count s =
    List.length (List.filter (fun d -> d.D.severity = s) diagnostics)
  in
  add "%d error(s), %d warning(s), %d hint(s)\n" (count D.Error)
    (count D.Warning) (count D.Hint);
  Buffer.contents buf

(* --- JSON backend --- *)

let location_json l =
  Json.Obj
    (List.concat
       [ (match l.D.file with
          | Some f -> [ ("file", Json.String f) ]
          | None -> []);
         (match l.D.position with
          | Some p ->
            [ ("line", Json.Int p.D.line); ("column", Json.Int p.D.column) ]
          | None -> []);
         [ ("anchor", Json.String (D.anchor_name l.D.anchor)) ] ])

let to_json diagnostics =
  Json.List
    (List.map
       (fun d ->
         Json.Obj
           (List.concat
              [ [ ("rule", Json.String d.D.rule);
                  ("severity", Json.String (D.severity_to_string d.D.severity));
                  ("location", location_json d.D.location);
                  ("message", Json.String d.D.message) ];
                (if d.D.related = [] then []
                 else
                   [ ( "related",
                       Json.List
                         (List.map
                            (fun r ->
                              Json.Obj
                                [ ("location", location_json r.D.r_location);
                                  ("note", Json.String r.D.note) ])
                            d.D.related) ) ]);
                (match d.D.fix with
                 | Some fix ->
                   [ ("fix", Json.String (D.fix_description fix)) ]
                 | None -> []) ]))
       diagnostics)
