(** The lint driver: configuration, the entry points, and the human/JSON
    output backends (SARIF lives in {!Sarif}, autofix in {!Fix}).

    The paper's Proposition 2.1 makes view soundness a polynomial static
    check; this module generalises that into a rule-driven analyzer over
    workflow specifications, views and [.wf] documents — see {!Rules} for
    the rule catalogue. *)

open Wolves_workflow

type config = {
  rules : string list option;
      (** Whitelist of rule ids ([None] = all rules). *)
  disabled : string list;
      (** Rule ids to skip (applied after the whitelist). *)
  threshold : Diagnostic.severity;
      (** Keep only diagnostics at least this severe ([Hint] keeps all). *)
  fan_threshold : int;
      (** Degree at which [spec/fan-bottleneck] fires. *)
}

val default_config : config
(** All rules, no disables, [Hint] threshold, fan threshold 8. *)

val rule_enabled : config -> string -> bool

val validate_config : config -> (unit, string) result
(** [Error] when [fan_threshold] is not positive, when [rules] or
    [disabled] mentions an unknown rule id, or when any rule id appears
    more than once across the two lists. The message names the offending
    value. *)

val run :
  ?config:config ->
  ?file:string ->
  ?source:Wolves_lang.Wfdsl.source_map ->
  View.t ->
  Diagnostic.t list
(** Lint a view (and its specification). With [source], diagnostics carry
    [.wf] line/column spans and the DSL-layer rules run. Deterministic:
    the result is sorted by {!Diagnostic.compare}. *)

val run_file : ?config:config -> string -> (Diagnostic.t list, string) result
(** Load [FILE.wf] (with its source map) or any other extension as MoML,
    then {!run}. The error string names the file. *)

val errors : Diagnostic.t list -> int
(** Number of [Error]-severity diagnostics — the CI gate's exit criterion. *)

val to_terminal : ?color:bool -> Diagnostic.t list -> string
(** One line per diagnostic plus indented related locations and fixes,
    ending with a [N error(s), N warning(s), N hint(s)] summary line. *)

val to_json : Diagnostic.t list -> Wolves_cli.Json.t
(** Machine-readable report: a list of diagnostic objects with [rule],
    [severity], [file], [line]/[column] (when resolved), [anchor],
    [message], [related] and [fix]. *)
