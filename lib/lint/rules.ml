open Wolves_workflow
module D = Diagnostic
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Wfdsl = Wolves_lang.Wfdsl
module Bitset = Wolves_graph.Bitset
module Metrics = Wolves_obs.Metrics
module Flow = Wolves_analysis.Flow
module Annot = Wolves_analysis.Annot

type layer =
  | Spec_level
  | View_level
  | Dsl_level

let layer_name = function
  | Spec_level -> "spec"
  | View_level -> "view"
  | Dsl_level -> "dsl"

type meta = {
  id : string;
  layer : layer;
  severity : D.severity;
  doc : string;
  fixable : bool;
}

type target = {
  view : View.t;
  file : string option;
  source : Wfdsl.source_map option;
}

(* --- shared analysis context --- *)

type ctx = {
  t : target;
  spec : Spec.t;
  reach : Wolves_graph.Reach.t;
  report : S.report Lazy.t;  (* Prop 2.1 validation, shared by view rules *)
  flow : Flow.t Lazy.t;  (* fine-grained dependency flow (annotation rules) *)
  annot_issues : Annot.issue list Lazy.t;
  inference : Annot.result Lazy.t;
  fan_threshold : int;
}

(* Source-map position resolution. Implicit singleton composites fall back
   to their member's declaration site. *)

let task_pos ctx name =
  Option.bind ctx.t.source (fun src ->
      List.assoc_opt name src.Wfdsl.task_decls)

let composite_pos ctx c =
  match ctx.t.source with
  | None -> None
  | Some src ->
    let name = View.composite_name ctx.t.view c in
    (match List.assoc_opt name src.Wfdsl.composite_decls with
     | Some p -> Some p
     | None ->
       (match View.members ctx.t.view c with
        | [ single ] -> task_pos ctx (Spec.task_name ctx.spec single)
        | _ -> None))

let edge_pos ctx pair =
  Option.bind ctx.t.source (fun src ->
      List.assoc_opt pair src.Wfdsl.edge_occurrences)

let deps_decl_pos ctx task =
  Option.bind ctx.t.source (fun src ->
      List.assoc_opt task src.Wfdsl.deps_decls)

let deps_entry_pos ctx pair =
  Option.bind ctx.t.source (fun src ->
      List.assoc_opt pair src.Wfdsl.deps_entries)

let workflow_pos ctx =
  Option.map (fun src -> src.Wfdsl.workflow_position) ctx.t.source

let to_position = function
  | None -> None
  | Some p ->
    Some { D.line = p.Wfdsl.pos_line; column = p.Wfdsl.pos_column }

let loc ctx anchor =
  let position =
    match anchor with
    | D.Task name -> task_pos ctx name
    | D.Composite name ->
      (match View.composite_of_name ctx.t.view name with
       | Some c -> composite_pos ctx c
       | None -> None)
    | D.Edge (a, b) -> edge_pos ctx (a, b)
    | D.Workflow _ -> workflow_pos ctx
  in
  { D.file = ctx.t.file; position = to_position position; anchor }

let related ctx anchor note = { D.r_location = loc ctx anchor; note }

let task_name ctx t = Spec.task_name ctx.spec t

(* Is the task a member of an explicit [composite] block of the source
   document (as opposed to an implicit singleton)? *)
let in_explicit_composite ctx t =
  match ctx.t.source with
  | None -> false
  | Some src ->
    List.exists
      (fun (name, _) ->
        match View.composite_of_name ctx.t.view name with
        | Some c -> List.mem t (View.members ctx.t.view c)
        | None -> false)
      src.Wfdsl.composite_decls

let has_no_edges ctx t =
  Spec.producers ctx.spec t = [] && Spec.consumers ctx.spec t = []

(* A task is "unused" (DSL layer) when it is declared but appears in no
   dependency statement and no explicit composite block. *)
let is_unused ctx t =
  ctx.t.source <> None && has_no_edges ctx t
  && not (in_explicit_composite ctx t)

(* --- spec-level rules --- *)

(* Orphan tasks: no producers and no consumers. When the DSL rule
   [dsl/unused-task] already covers the task (declared and referenced
   nowhere at all), this rule stays quiet — one diagnostic per defect. *)
let check_orphan ctx =
  if Spec.n_tasks ctx.spec < 2 then []
  else
    List.filter_map
      (fun t ->
        if has_no_edges ctx t && not (is_unused ctx t) then
          let name = task_name ctx t in
          Some
            { D.rule = "spec/orphan-task";
              severity = D.Warning;
              location = loc ctx (D.Task name);
              message =
                Printf.sprintf
                  "task %S has no dependencies in either direction; it is \
                   disconnected from the rest of the workflow"
                  name;
              related = [];
              fix = None }
        else None)
      (Spec.tasks ctx.spec)

(* Redundant transitive edges: u -> v with another path u ~> w ~> v. The
   fix (dropping the edge) never changes reachability, hence never changes
   any soundness verdict. *)
let check_redundant_edge ctx =
  let g = Spec.graph ctx.spec in
  Wolves_graph.Digraph.fold_edges
    (fun u v acc ->
      let witness =
        List.fold_left
          (fun best w ->
            if w <> v && Wolves_graph.Reach.reaches ctx.reach w v then
              match best with
              | Some b when b <= w -> best
              | _ -> Some w
            else best)
          None (Wolves_graph.Digraph.succ g u)
      in
      match witness with
      | None -> acc
      | Some w ->
        let un = task_name ctx u and vn = task_name ctx v in
        let wn = task_name ctx w in
        { D.rule = "spec/redundant-edge";
          severity = D.Warning;
          location = loc ctx (D.Edge (un, vn));
          message =
            Printf.sprintf
              "dependency %S -> %S is redundant: the path through %S \
               already implies it"
              un vn wn;
          related = [ related ctx (D.Task wn) "intermediate task" ];
          fix = Some (D.Drop_edge (un, vn)) }
        :: acc)
    g []
  |> List.rev

(* Weakly-connected components of ≥ 2 tasks; two or more of them means the
   document glues unrelated pipelines together. Lone orphan tasks are the
   orphan rule's business, not this one's. *)
let check_disconnected ctx =
  let n = Spec.n_tasks ctx.spec in
  if n = 0 then []
  else begin
    let comp = Array.make n (-1) in
    let g = Spec.graph ctx.spec in
    let next = ref 0 in
    for s = 0 to n - 1 do
      if comp.(s) < 0 then begin
        let id = !next in
        incr next;
        let stack = ref [ s ] in
        comp.(s) <- id;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
            stack := rest;
            List.iter
              (fun v ->
                if comp.(v) < 0 then begin
                  comp.(v) <- id;
                  stack := v :: !stack
                end)
              (Wolves_graph.Digraph.succ g u @ Wolves_graph.Digraph.pred g u)
        done
      end
    done;
    let sizes = Array.make !next 0 in
    let representative = Array.make !next max_int in
    Array.iteri
      (fun t id ->
        sizes.(id) <- sizes.(id) + 1;
        if t < representative.(id) then representative.(id) <- t)
      comp;
    let big =
      List.filter (fun id -> sizes.(id) >= 2)
        (List.init !next (fun id -> id))
    in
    if List.length big < 2 then []
    else
      [ { D.rule = "spec/disconnected";
          severity = D.Warning;
          location = loc ctx (D.Workflow (Spec.name ctx.spec));
          message =
            Printf.sprintf
              "the dependency graph splits into %d disconnected pipelines \
               (no dataflow between them); consider separate workflows"
              (List.length big);
          related =
            List.map
              (fun id ->
                related ctx
                  (D.Task (task_name ctx representative.(id)))
                  (Printf.sprintf "pipeline of %d tasks" sizes.(id)))
              big;
          fix = None } ]
  end

(* Suspicious hubs: fan-in or fan-out at or above the threshold. High fan
   degrees are where view designers tend to group independent branches —
   the dominant unsoundness mistake. *)
let check_fan_bottleneck ctx =
  List.filter_map
    (fun t ->
      let fan_in = List.length (Spec.producers ctx.spec t) in
      let fan_out = List.length (Spec.consumers ctx.spec t) in
      if fan_in < ctx.fan_threshold && fan_out < ctx.fan_threshold then None
      else
        let name = task_name ctx t in
        let side, degree =
          if fan_in >= fan_out then ("fan-in", fan_in) else ("fan-out", fan_out)
        in
        Some
          { D.rule = "spec/fan-bottleneck";
            severity = D.Hint;
            location = loc ctx (D.Task name);
            message =
              Printf.sprintf
                "task %S has %s %d (threshold %d): a likely bottleneck, and \
                 grouping its branches into one composite is the classic \
                 unsoundness mistake"
                name side degree ctx.fan_threshold;
            related = [];
            fix = None })
    (Spec.tasks ctx.spec)

(* Annotation diagnostics anchor at the deps entry (or block) when the
   source map knows it, falling back to the generic anchor resolution. *)
let loc_at ctx anchor pos =
  match pos with
  | Some p ->
    { D.file = ctx.t.file; position = to_position (Some p); anchor }
  | None -> loc ctx anchor

(* Inconsistent dependency annotations: entries naming non-neighbours or
   re-declaring an output (Bowers et al. validation). The analyses ignore
   the bad references, so an inconsistent annotation silently means
   something other than what its author wrote — hence an error. *)
let check_annotation_inconsistent ctx =
  List.filter_map
    (fun issue ->
      if not (Annot.is_inconsistency issue) then None
      else
        let task, output =
          match issue with
          | Annot.Not_an_output { task; output }
          | Annot.Not_an_input { task; output; _ }
          | Annot.Duplicate_output { task; output }
          | Annot.Missing_output { task; output } -> (task, output)
        in
        let tname = task_name ctx task in
        let pos =
          match deps_entry_pos ctx (tname, task_name ctx output) with
          | Some p -> Some p
          | None -> deps_decl_pos ctx tname
        in
        Some
          { D.rule = "spec/annotation-inconsistent";
            severity = D.Error;
            location = loc_at ctx (D.Task tname) pos;
            message =
              Format.asprintf "%a (the analyses ignore the bad reference)"
                (Annot.pp_issue ctx.spec) issue;
            related = [];
            fix = None })
    (Lazy.force ctx.annot_issues)

(* Incomplete dependency annotations: an annotated task leaves some output
   without an entry, silently falling back to "all inputs". One diagnostic
   per task, fixed by inserting the inferred minimal entries. *)
let check_annotation_incomplete ctx =
  let missing_by_task = Hashtbl.create 8 in
  List.iter
    (function
      | Annot.Missing_output { task; output } ->
        let prev =
          try Hashtbl.find missing_by_task task with Not_found -> []
        in
        Hashtbl.replace missing_by_task task (output :: prev)
      | _ -> ())
    (Lazy.force ctx.annot_issues);
  if Hashtbl.length missing_by_task = 0 then []
  else begin
    let inference = Lazy.force ctx.inference in
    List.filter_map
      (fun task ->
        match Hashtbl.find_opt missing_by_task task with
        | None -> None
        | Some outputs ->
          let outputs = List.rev outputs in
          let tname = task_name ctx task in
          let inferred =
            List.find_opt
              (fun i -> i.Annot.inf_task = task)
              inference.Annot.inferred
          in
          let fix =
            Option.map
              (fun i ->
                D.Add_annotation
                  ( tname,
                    List.map
                      (fun (o, ins) ->
                        ( task_name ctx o,
                          List.map (task_name ctx) ins ))
                      i.Annot.inf_entries ))
              inferred
          in
          Some
            { D.rule = "spec/annotation-incomplete";
              severity = D.Warning;
              location =
                loc_at ctx (D.Task tname) (deps_decl_pos ctx tname);
              message =
                Printf.sprintf
                  "task %S is annotated but %d of its outputs (%s) have no \
                   entry and silently fall back to \"all inputs\""
                  tname (List.length outputs)
                  (String.concat ", "
                     (List.map
                        (fun o -> Printf.sprintf "%S" (task_name ctx o))
                        outputs));
              related =
                List.map
                  (fun o ->
                    related ctx
                      (D.Edge (tname, task_name ctx o))
                      "output without an entry")
                  outputs;
              fix })
      (Spec.tasks ctx.spec)
  end

(* Dead data: edges whose item provably never influences any terminal
   output under the declared annotations — the producer's work on that
   channel is wasted. Only meaningful once annotations exist (without
   them every edge is trivially live). *)
let check_dead_data ctx =
  if not (Spec.has_annotations ctx.spec) then []
  else
    let flow = Lazy.force ctx.flow in
    List.map
      (fun (p, c) ->
        let pn = task_name ctx p and cn = task_name ctx c in
        { D.rule = "spec/dead-data";
          severity = D.Warning;
          location = loc ctx (D.Edge (pn, cn));
          message =
            Printf.sprintf
              "the data %S sends %S can never influence a terminal output \
               under the declared annotations: the dependency carries dead \
               data"
              pn cn;
          related =
            [ related ctx (D.Task cn)
                "consumer whose annotated outputs never draw on this input" ];
          fix = None })
      (Flow.dead_edges flow)

(* --- view-level rules --- *)

(* Unsound composites (Prop 2.1): reported with the minimal unsound core
   and one witness (t_in, t_out) pair taken from that core — the smallest
   explanation of the defect. Fixed by the strong corrector. *)
let check_unsound ctx =
  let report = Lazy.force ctx.report in
  List.map
    (fun (c, witnesses) ->
      let cname = View.composite_name ctx.t.view c in
      let members = View.members ctx.t.view c in
      let set = Bitset.of_list (Spec.n_tasks ctx.spec) members in
      let core = S.minimal_unsound_core ctx.spec set in
      let core_tasks =
        match core with
        | Some core -> Bitset.elements core
        | None -> []
      in
      let witness =
        match core with
        | Some core ->
          (match S.subset_witnesses ctx.spec core with
           | pair :: _ -> Some pair
           | [] -> None)
        | None -> None
      in
      let witness =
        match (witness, witnesses) with
        | Some pair, _ -> Some pair
        | None, pair :: _ -> Some pair
        | None, [] -> None
      in
      let kind =
        match S.classify_unsound ctx.spec set with
        | Some k -> Format.asprintf " (%a)" S.pp_unsoundness_kind k
        | None -> ""
      in
      let witness_text, witness_related =
        match witness with
        | None -> ("", [])
        | Some (ti, to_) ->
          let ni = task_name ctx ti and no = task_name ctx to_ in
          ( Printf.sprintf ": input %S cannot reach output %S" ni no,
            [ related ctx (D.Task ni) "input with no path to the output";
              related ctx (D.Task no) "output the input cannot reach" ] )
      in
      let core_text =
        match core_tasks with
        | [] -> ""
        | ts ->
          Printf.sprintf "; minimal unsound core: {%s}"
            (String.concat ", " (List.map (task_name ctx) ts))
      in
      { D.rule = "view/unsound-composite";
        severity = D.Error;
        location = loc ctx (D.Composite cname);
        message =
          Printf.sprintf
            "composite %S is unsound%s%s%s — view-level provenance over it \
             reports spurious dependencies"
            cname kind witness_text core_text;
        related =
          witness_related
          @ List.map
              (fun t ->
                related ctx (D.Task (task_name ctx t))
                  "member of the minimal unsound core")
              core_tasks;
        fix = Some (D.Split_composite cname) })
    report.S.unsound

(* Degenerate composites: a singleton whose name differs from its member's,
   adding an aliasing layer without abstracting anything. Folding the name
   back onto the member makes the composite implicit in the canonical
   rendering. *)
let check_degenerate ctx =
  List.filter_map
    (fun c ->
      match View.members ctx.t.view c with
      | [ single ] ->
        let cname = View.composite_name ctx.t.view c in
        let tname = task_name ctx single in
        if cname = tname then None
        else
          let fix =
            (* Renaming must not collide with another composite. *)
            if View.composite_of_name ctx.t.view tname = None then
              Some (D.Rename_composite (cname, tname))
            else None
          in
          Some
            { D.rule = "view/degenerate-composite";
              severity = D.Warning;
              location = loc ctx (D.Composite cname);
              message =
                Printf.sprintf
                  "composite %S only aliases task %S: it hides nothing and \
                   renames one node"
                  cname tname;
              related = [ related ctx (D.Task tname) "the single member" ];
              fix }
      | _ -> None)
    (View.composites ctx.t.view)

(* Monolithic views: one composite swallowing the entire workflow. Always
   sound (the full task set is sound by definition), and useless — every
   provenance question collapses to "everything depends on everything". *)
let check_monolithic ctx =
  if View.n_composites ctx.t.view = 1 && Spec.n_tasks ctx.spec >= 2 then
    match View.composites ctx.t.view with
    | [ c ] ->
      let cname = View.composite_name ctx.t.view c in
      [ { D.rule = "view/monolithic-view";
          severity = D.Warning;
          location = loc ctx (D.Composite cname);
          message =
            Printf.sprintf
              "the single composite %S hides all %d tasks: the view answers \
               no provenance question more precisely than \"everything\""
              cname (Spec.n_tasks ctx.spec);
          related = [];
          fix = None } ]
    | _ -> []
  else []

(* Adjacent sound composites whose union is still sound (Def 2.4
   combinability): the view is not weakly locally optimal (Def 2.5) — it
   could abstract more without losing correctness. Pairs touching an
   unsound composite are skipped: splitting comes first. *)
let check_combinable ctx =
  let view = ctx.t.view in
  let report = Lazy.force ctx.report in
  let unsound =
    List.fold_left
      (fun acc (c, _) -> c :: acc)
      [] report.S.unsound
  in
  let seen = Hashtbl.create 16 in
  Wolves_graph.Digraph.fold_edges
    (fun u v acc ->
      let a = min u v and b = max u v in
      if a = b || Hashtbl.mem seen (a, b) then acc
      else begin
        Hashtbl.replace seen (a, b) ();
        if List.mem a unsound || List.mem b unsound then acc
        else if
          C.combinable ctx.spec (View.members view a) (View.members view b)
        then
          let na = View.composite_name view a
          and nb = View.composite_name view b in
          { D.rule = "view/combinable-composites";
            severity = D.Hint;
            location = loc ctx (D.Composite na);
            message =
              Printf.sprintf
                "composites %S and %S are sound-combinable (Def 2.4): \
                 merging them yields a smaller view that is still sound"
                na nb;
            related = [ related ctx (D.Composite nb) "the other half" ];
            (* A machine merge is only offered while it cannot collapse the
               view into a single all-hiding composite (which
               view/monolithic-view would immediately flag). *)
            fix =
              (if View.n_composites view > 2 then
                 Some (D.Merge_composites (na, nb))
               else None) }
          :: acc
        else acc
      end)
    (View.view_graph view) []
  |> List.rev

(* Hidden (spurious) dependencies a composite manufactures: the soundness
   criterion and view-level provenance both work on coarse task
   reachability, but fine-grained annotations may refute a coarse path —
   the input's data reaches the output task without ever flowing into the
   data it emits. The view then reports a dependency that does not exist;
   annotations are what expose it. *)
let check_hidden_dependency ctx =
  if not (Spec.has_annotations ctx.spec) then []
  else
    let flow = Lazy.force ctx.flow in
    List.concat_map
      (fun c ->
        if List.length (View.members ctx.t.view c) < 2 then []
        else
          let { S.inputs; outputs } = S.composite_io ctx.t.view c in
          let cname = View.composite_name ctx.t.view c in
          List.concat_map
            (fun ti ->
              List.filter_map
                (fun to_ ->
                  if
                    Wolves_graph.Reach.reaches ctx.reach ti to_
                    && not (Flow.fine_depends flow ti to_)
                  then
                    let ni = task_name ctx ti and no = task_name ctx to_ in
                    Some
                      { D.rule = "view/hidden-dependency";
                        severity = D.Warning;
                        location = loc ctx (D.Composite cname);
                        message =
                          Printf.sprintf
                            "composite %S hides that %S's data never flows \
                             into %S's output: the path exists only at task \
                             granularity, so provenance over the view \
                             reports a spurious dependency"
                            cname ni no;
                        related =
                          [ related ctx (D.Task ni)
                              "input whose data is refuted by the annotations";
                            related ctx (D.Task no)
                              "output that never draws on it" ];
                        fix = None }
                  else None)
                outputs)
            inputs)
      (View.composites ctx.t.view)

(* --- DSL-level rules --- *)

(* Tasks declared but never referenced by any dependency statement or
   explicit composite block. *)
let check_unused ctx =
  match ctx.t.source with
  | None -> []
  | Some _ ->
    List.filter_map
      (fun t ->
        if is_unused ctx t then
          let name = task_name ctx t in
          Some
            { D.rule = "dsl/unused-task";
              severity = D.Warning;
              location = loc ctx (D.Task name);
              message =
                Printf.sprintf
                  "task %S is declared but never referenced by any \
                   dependency or composite"
                  name;
              related = [];
              fix = None }
        else None)
      (Spec.tasks ctx.spec)

(* The same dependency written more than once. Harmless to the elaborated
   graph (edges are a set) but noise in the document; the canonical
   rendering drops the duplicates. *)
let check_duplicate_edge ctx =
  match ctx.t.source with
  | None -> []
  | Some src ->
    let counts = Hashtbl.create 32 in
    List.iter
      (fun (pair, p) ->
        let prev = try Hashtbl.find counts pair with Not_found -> [] in
        Hashtbl.replace counts pair (p :: prev))
      src.Wfdsl.edge_occurrences;
    List.filter_map
      (fun (pair, _) ->
        match List.rev (try Hashtbl.find counts pair with Not_found -> []) with
        | first :: (second :: _ as dups) ->
          (* Report once, at the second occurrence. *)
          Hashtbl.remove counts pair;
          let a, b = pair in
          Some
            { D.rule = "dsl/duplicate-edge";
              severity = D.Warning;
              location =
                { D.file = ctx.t.file;
                  position =
                    Some
                      { D.line = second.Wfdsl.pos_line;
                        column = second.Wfdsl.pos_column };
                  anchor = D.Edge (a, b) };
              message =
                Printf.sprintf "dependency %S -> %S is declared %d times" a b
                  (1 + List.length dups);
              related =
                [ { D.r_location =
                      { D.file = ctx.t.file;
                        position =
                          Some
                            { D.line = first.Wfdsl.pos_line;
                              column = first.Wfdsl.pos_column };
                        anchor = D.Edge (a, b) };
                    note = "first declaration" } ];
              fix =
                Some
                  (D.Canonicalize
                     (Printf.sprintf "duplicate %S -> %S statements collapse"
                        a b)) }
        | _ -> None)
      src.Wfdsl.edge_occurrences

(* Composite names shadowing task names (other than the canonical implicit
   singleton): "the provenance of c" becomes ambiguous. *)
let check_shadowed ctx =
  List.filter_map
    (fun c ->
      let cname = View.composite_name ctx.t.view c in
      match Spec.task_of_name ctx.spec cname with
      | None -> None
      | Some t ->
        (match View.members ctx.t.view c with
         | [ single ] when single = t -> None  (* canonical singleton *)
         | _ ->
           Some
             { D.rule = "dsl/shadowed-name";
               severity = D.Warning;
               location = loc ctx (D.Composite cname);
               message =
                 Printf.sprintf
                   "composite %S shares its name with a task: references to \
                    %S are ambiguous between the composite and the task"
                   cname cname;
               related =
                 [ related ctx (D.Task cname) "the task being shadowed" ];
               fix = None }))
    (View.composites ctx.t.view)

(* --- registry --- *)

type rule = {
  meta : meta;
  check : ctx -> D.t list;
}

let rules =
  [ { meta =
        { id = "spec/orphan-task";
          layer = Spec_level;
          severity = D.Warning;
          doc = "task with no dependencies in either direction";
          fixable = false };
      check = check_orphan };
    { meta =
        { id = "spec/redundant-edge";
          layer = Spec_level;
          severity = D.Warning;
          doc = "dependency already implied by a longer path (transitive)";
          fixable = true };
      check = check_redundant_edge };
    { meta =
        { id = "spec/disconnected";
          layer = Spec_level;
          severity = D.Warning;
          doc = "two or more disconnected pipelines in one workflow";
          fixable = false };
      check = check_disconnected };
    { meta =
        { id = "spec/fan-bottleneck";
          layer = Spec_level;
          severity = D.Hint;
          doc = "suspiciously high fan-in or fan-out degree";
          fixable = false };
      check = check_fan_bottleneck };
    { meta =
        { id = "spec/annotation-inconsistent";
          layer = Spec_level;
          severity = D.Error;
          doc =
            "dependency annotation referencing a non-neighbour or \
             re-declaring an output";
          fixable = false };
      check = check_annotation_inconsistent };
    { meta =
        { id = "spec/annotation-incomplete";
          layer = Spec_level;
          severity = D.Warning;
          doc =
            "annotated task leaving outputs without an entry (fix: insert \
             the inferred minimal entries)";
          fixable = true };
      check = check_annotation_incomplete };
    { meta =
        { id = "spec/dead-data";
          layer = Spec_level;
          severity = D.Warning;
          doc =
            "edge whose data can never influence a terminal output under \
             the annotations";
          fixable = false };
      check = check_dead_data };
    { meta =
        { id = "view/unsound-composite";
          layer = View_level;
          severity = D.Error;
          doc =
            "composite violating Def 2.3 soundness, with a minimal witness \
             core";
          fixable = true };
      check = check_unsound };
    { meta =
        { id = "view/degenerate-composite";
          layer = View_level;
          severity = D.Warning;
          doc = "singleton composite that only renames its member";
          fixable = true };
      check = check_degenerate };
    { meta =
        { id = "view/monolithic-view";
          layer = View_level;
          severity = D.Warning;
          doc = "a single composite hiding the entire workflow";
          fixable = false };
      check = check_monolithic };
    { meta =
        { id = "view/combinable-composites";
          layer = View_level;
          severity = D.Hint;
          doc =
            "adjacent sound composites whose union is sound (weak local \
             optimality violation)";
          fixable = true };
      check = check_combinable };
    { meta =
        { id = "view/hidden-dependency";
          layer = View_level;
          severity = D.Warning;
          doc =
            "composite whose coarse input-output path is refuted by the \
             fine-grained annotations (spurious view-level dependency)";
          fixable = false };
      check = check_hidden_dependency };
    { meta =
        { id = "dsl/unused-task";
          layer = Dsl_level;
          severity = D.Warning;
          doc = "task declared but never referenced by an edge or composite";
          fixable = false };
      check = check_unused };
    { meta =
        { id = "dsl/duplicate-edge";
          layer = Dsl_level;
          severity = D.Warning;
          doc = "the same dependency declared more than once";
          fixable = true };
      check = check_duplicate_edge };
    { meta =
        { id = "dsl/shadowed-name";
          layer = Dsl_level;
          severity = D.Warning;
          doc = "composite name shadowing a task name";
          fixable = false };
      check = check_shadowed } ]

let all = List.map (fun r -> r.meta) rules

let find id = List.find_opt (fun m -> m.id = id) all

(* --- observability --- *)

let metric_name prefix id =
  prefix ^ String.map (fun c -> if c = '/' then '.' else c) id

let hit_counters =
  List.map (fun r -> (r.meta.id, Metrics.counter (metric_name "lint.hits." r.meta.id))) rules

let rule_timers =
  List.map (fun r -> (r.meta.id, Metrics.timer (metric_name "lint.time." r.meta.id))) rules

let c_targets = Metrics.counter "lint.targets"
let c_diagnostics = Metrics.counter "lint.diagnostics"
let t_analyze = Metrics.timer "lint.analyze"

(* --- driver --- *)

let analyze ?(fan_threshold = 8) ~enabled t =
  Metrics.incr c_targets;
  Metrics.time t_analyze
    ~args:(fun () ->
      [ ("workflow", Spec.name (View.spec t.view));
        ("composites", string_of_int (View.n_composites t.view)) ])
    (fun () ->
      let spec = View.spec t.view in
      let ctx =
        { t;
          spec;
          reach = Spec.reach spec;
          report = lazy (S.validate t.view);
          flow = lazy (Flow.compute spec);
          annot_issues = lazy (Annot.validate spec);
          inference = lazy (Annot.infer spec);
          fan_threshold }
      in
      let diagnostics =
        List.concat_map
          (fun r ->
            if not (enabled r.meta.id) then []
            else
              Metrics.time (List.assoc r.meta.id rule_timers) (fun () ->
                  let ds = r.check ctx in
                  Metrics.add (List.assoc r.meta.id hit_counters)
                    (List.length ds);
                  ds))
          rules
      in
      Metrics.add c_diagnostics (List.length diagnostics);
      List.sort D.compare diagnostics)
