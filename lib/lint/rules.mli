(** The lint rule registry: every rule's metadata and the analysis driver.

    Rules come in three layers:

    - {b spec-level}: structural mistakes in the dependency graph itself —
      orphan tasks, redundant transitive edges, disconnected pipelines,
      suspicious fan-in/fan-out hubs — plus the dependency-annotation
      analyses ({!Wolves_analysis}): inconsistent and incomplete [deps]
      annotations (the latter fixed by inserting inferred entries) and
      dead-data edges. Run on every input; the annotation rules stay quiet
      on unannotated specifications.
    - {b view-level}: the paper's subject — unsound composites (Prop 2.1,
      reported with a minimal witness pair via
      {!Wolves_core.Soundness.minimal_unsound_core}), degenerate composites,
      monolithic views, adjacent composites that are sound-combinable
      (weak-local-optimality violations, Def 2.4/2.5), and hidden
      dependencies (coarse input→output paths through a composite that the
      fine-grained annotations refute). Run on every input.
    - {b DSL-level}: [.wf]-document mistakes that the elaborated
      specification can no longer show — duplicate edge statements, tasks
      declared but never referenced, composite names shadowing task names.
      Rules that need the raw statements only run when a
      {!Wolves_lang.Wfdsl.source_map} is available. *)

open Wolves_workflow

type layer =
  | Spec_level
  | View_level
  | Dsl_level

val layer_name : layer -> string

type meta = {
  id : string;           (** e.g. ["view/unsound-composite"] *)
  layer : layer;
  severity : Diagnostic.severity;
  doc : string;          (** one-line description, shown in SARIF metadata *)
  fixable : bool;        (** whether the rule ever attaches a machine fix *)
}

val all : meta list
(** Every rule, in a fixed documentation order. *)

val find : string -> meta option

(** What a lint pass runs over. *)
type target = {
  view : View.t;
  file : string option;
      (** the document's path, threaded into diagnostic locations *)
  source : Wolves_lang.Wfdsl.source_map option;
      (** present when the target came from [.wf] text: diagnostics then
          carry line/column spans and the DSL-layer rules run in full *)
}

val analyze :
  ?fan_threshold:int ->
  enabled:(string -> bool) ->
  target ->
  Diagnostic.t list
(** Run every rule whose id satisfies [enabled] and return the diagnostics
    sorted by {!Diagnostic.compare} (deterministic across runs).
    [fan_threshold] (default 8) is the degree at which
    [spec/fan-bottleneck] fires. Per-rule hit counters and timers are
    recorded in the {!Wolves_obs.Metrics} registry under
    [lint.hits.<rule>] / [lint.time.<rule>]. *)
