module D = Diagnostic
module Json = Wolves_cli.Json

let version = "2.1.0"

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of_severity = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Hint -> "note"

let text s = Json.Obj [ ("text", Json.String s) ]

(* Each rule's documentation anchor in docs/RULES.md, using GitHub's
   heading-slug convention (lowercase, non-alphanumerics dropped): the
   heading "## spec/orphan-task" becomes "#specorphan-task". *)
let help_uri id =
  let slug =
    String.concat ""
      (List.filter_map
         (fun c ->
           if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' then
             Some (String.make 1 c)
           else None)
         (List.init (String.length id) (String.get id)))
  in
  "https://github.com/wolves/wolves/blob/main/docs/RULES.md#" ^ slug

let rule_json (m : Rules.meta) =
  Json.Obj
    [ ("id", Json.String m.Rules.id);
      ("shortDescription", text m.Rules.doc);
      ("helpUri", Json.String (help_uri m.Rules.id));
      ( "defaultConfiguration",
        Json.Obj
          [ ("level", Json.String (level_of_severity m.Rules.severity)) ] );
      ( "properties",
        Json.Obj
          [ ( "layer",
              Json.String
                (match m.Rules.layer with
                 | Rules.Spec_level -> "spec"
                 | Rules.View_level -> "view"
                 | Rules.Dsl_level -> "dsl") );
            ("fixable", Json.Bool m.Rules.fixable) ] ) ]

let anchor_kind = function
  | D.Task _ -> "function"
  | D.Composite _ -> "module"
  | D.Edge _ -> "member"
  | D.Workflow _ -> "namespace"

let location_json ?message (l : D.location) =
  let physical =
    match l.D.file with
    | None -> []
    | Some file ->
      let region =
        match l.D.position with
        | None -> []
        | Some p ->
          [ ( "region",
              Json.Obj
                [ ("startLine", Json.Int p.D.line);
                  ("startColumn", Json.Int p.D.column) ] ) ]
      in
      [ ( "physicalLocation",
          Json.Obj
            ( ("artifactLocation", Json.Obj [ ("uri", Json.String file) ])
            :: region ) ) ]
  in
  let logical =
    match l.D.anchor with
    | D.Workflow _ -> []
    | anchor ->
      [ ( "logicalLocations",
          Json.List
            [ Json.Obj
                [ ("fullyQualifiedName", Json.String (D.anchor_name anchor));
                  ("kind", Json.String (anchor_kind anchor)) ] ] ) ]
  in
  let message =
    match message with None -> [] | Some m -> [ ("message", text m) ]
  in
  Json.Obj (message @ physical @ logical)

let result_json rule_index (d : D.t) =
  let index =
    match rule_index d.D.rule with Some i -> [ ("ruleIndex", Json.Int i) ] | None -> []
  in
  let related =
    if d.D.related = [] then []
    else
      [ ( "relatedLocations",
          Json.List
            (List.map
               (fun r -> location_json ~message:r.D.note r.D.r_location)
               d.D.related) ) ]
  in
  let properties =
    match d.D.fix with
    | None -> []
    | Some fix ->
      [ ( "properties",
          Json.Obj [ ("fix", Json.String (D.fix_description fix)) ] ) ]
  in
  Json.Obj
    ( [ ("ruleId", Json.String d.D.rule) ]
    @ index
    @ [ ("level", Json.String (level_of_severity d.D.severity));
        ("message", text d.D.message);
        ("locations", Json.List [ location_json d.D.location ]) ]
    @ related @ properties )

let report diagnostics =
  let rule_index id =
    let rec go i = function
      | [] -> None
      | m :: _ when m.Rules.id = id -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Rules.all
  in
  let artifacts =
    List.sort_uniq compare
      (List.filter_map (fun d -> d.D.location.D.file) diagnostics)
  in
  let doc =
    Json.Obj
      [ ("$schema", Json.String schema);
        ("version", Json.String version);
        ( "runs",
          Json.List
            [ Json.Obj
                [ ( "tool",
                    Json.Obj
                      [ ( "driver",
                          Json.Obj
                            [ ("name", Json.String "wolves-lint");
                              ("version", Json.String "1.0.0");
                              ( "informationUri",
                                Json.String
                                  "https://github.com/wolves/wolves" );
                              ( "rules",
                                Json.List (List.map rule_json Rules.all) )
                            ] ) ] );
                  ( "artifacts",
                    Json.List
                      (List.map
                         (fun uri ->
                           Json.Obj
                             [ ( "location",
                                 Json.Obj [ ("uri", Json.String uri) ] ) ])
                         artifacts) );
                  ( "results",
                    Json.List (List.map (result_json rule_index) diagnostics)
                  ) ] ] ) ]
  in
  Json.to_string ~pretty:true doc ^ "\n"
