(** SARIF 2.1.0 emission — the interchange format GitHub code scanning
    ingests to annotate pull requests.

    One run, tool driver [wolves-lint], the full rule catalogue as
    [tool.driver.rules] (with default severity levels), one [result] per
    diagnostic. Physical locations carry the [.wf] region when the lint ran
    over source text; every result also carries a logical location naming
    the task/composite/edge. Machine-applicable fixes are described in the
    result's property bag under ["fix"]. *)

val version : string
(** ["2.1.0"]. *)

val report : Diagnostic.t list -> string
(** The complete SARIF document as pretty-printed JSON (trailing
    newline included). *)
