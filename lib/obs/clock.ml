let now_ns () = Monotonic_clock.now ()

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed_since start = Float.max 0.0 (now () -. start)

let time f =
  let start = now () in
  let result = f () in
  (result, elapsed_since start)
