(** Monotonic time source for all instrumentation.

    Wall clocks ([Unix.gettimeofday]) can step backwards under NTP
    adjustment and corrupt benchmark numbers; everything in this repository
    that measures a duration goes through this module instead. The source is
    the OS monotonic clock (CLOCK_MONOTONIC via the bechamel stubs), which
    never steps. As defence in depth every elapsed-time computation is also
    clamped at zero. *)

val now_ns : unit -> int64
(** Raw monotonic reading in nanoseconds. Only differences are meaningful. *)

val now : unit -> float
(** Monotonic reading in seconds (an arbitrary epoch; only differences are
    meaningful). *)

val elapsed_since : float -> float
(** [elapsed_since start] is [now () -. start] clamped at [0.] — a duration
    in seconds that is never negative. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the elapsed monotonic seconds
    (clamped at [0.]). *)
