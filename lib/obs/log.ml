(* Structured JSONL logging. The design mirrors Metrics: a process-global
   "is anything installed" check guards every call site, so disabled
   logging costs one load and branch and never forces field thunks.

   JSON rendering is inlined here (as in Metrics.snapshot_to_json) because
   Wolves_cli.Json sits above this library in the dependency order. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = Str of string | Int of int | Float of float | Bool of bool

type sink = { write : string -> unit; sink_flush : unit -> unit }

let channel_sink ?(flush_every_record = true) oc =
  {
    write =
      (fun line ->
        output_string oc line;
        if flush_every_record then flush oc);
    sink_flush = (fun () -> flush oc);
  }

let buffer_sink buf =
  { write = (fun line -> Buffer.add_string buf line); sink_flush = ignore }

(* [installed] is the hot-path gate: None means every Log.event call
   returns after one load. Writes to the sink (and swaps of it) are
   serialised by [lock] so concurrent domains never interleave lines. *)
let installed : (sink * level) option ref = ref None
let lock = Mutex.create ()
let sink_errors = Metrics.counter "log.sink_errors"
let records = Metrics.counter "log.records"

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let flush () =
  locked (fun () ->
      match !installed with
      | Some (s, _) -> ( try s.sink_flush () with _ -> ())
      | None -> ())

let set ?(level = Info) sink =
  locked (fun () ->
      (match !installed with
      | Some (old, _) -> ( try old.sink_flush () with _ -> ())
      | None -> ());
      installed := (match sink with None -> None | Some s -> Some (s, level)))

let current () = !installed

let enabled lvl =
  match !installed with
  | None -> false
  | Some (_, min_level) -> level_rank lvl >= level_rank min_level

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Str s -> add_escaped buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%g" f)
      else Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let event lvl name fields =
  match !installed with
  | None -> ()
  | Some (_, min_level) when level_rank lvl < level_rank min_level -> ()
  | Some _ ->
      (* Format on the emitting domain, outside the lock. *)
      let fields = fields () in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":"
           (Unix.gettimeofday ()) (level_name lvl));
      add_escaped buf name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add_value buf v)
        fields;
      Buffer.add_string buf "}\n";
      let line = Buffer.contents buf in
      locked (fun () ->
          (* Re-check under the lock: the sink may have been swapped out. *)
          match !installed with
          | None -> ()
          | Some (s, _) -> (
              try
                s.write line;
                Metrics.incr records
              with _ ->
                (* A dead sink (closed pipe, full disk) must not take the
                   server down; drop it and count the loss. *)
                installed := None;
                Metrics.incr sink_errors))

let with_sink ?level sink f =
  let prev = !installed in
  set ?level (Some sink);
  Fun.protect
    ~finally:(fun () ->
      locked (fun () -> installed := prev))
    f
