(** Structured, leveled JSONL logging for long-running wolves processes —
    the access-log backbone of [wolves serve].

    One record per call, rendered as a single JSON object per line
    ([{"ts": .., "level": "info", "event": "request", ...fields}]), written
    to a process-wide {!sink}. Like {!Metrics}, everything sits behind one
    installed-sink check: with no sink installed (the default), {!event} is
    a single load-and-branch and the field thunk is never forced, so
    instrumented request loops cost essentially nothing when logging is
    off.

    {b Domain safety.} Records are formatted on the emitting domain and the
    final line write (plus flush) happens under an internal lock, so worker
    domains can log concurrently without interleaving bytes; each record
    lands on its own line, whole. Unlike {!Metrics} there is no shard
    buffering — an access log wants every record durably out as it happens,
    not merged later. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** Lower-case name: ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option

(** A structured field value. Strings are JSON-escaped on render; non-finite
    floats render as [null]. *)
type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type sink
(** Where rendered lines go. *)

val channel_sink : ?flush_every_record:bool -> out_channel -> sink
(** Write records to a channel. With [flush_every_record] (the default) each
    record is flushed as it is written, so [tail -f] on an access log sees
    requests as they complete and a crash loses at most the in-flight
    record. *)

val buffer_sink : Buffer.t -> sink
(** Collect records in memory — the test harness's sink. Reads of the
    buffer are only safe once no domain is logging (e.g. after a server
    drain); the writes themselves are serialised by the module lock. *)

val set : ?level:level -> sink option -> unit
(** Install (or with [None] remove) the process-wide sink; [level] (default
    [Info]) is the minimum level recorded. Flushes the outgoing sink when
    replacing one. *)

val current : unit -> (sink * level) option

val enabled : level -> bool
(** Would a record at this level be written right now? One load and a
    compare — safe to call per request. *)

val event : level -> string -> (unit -> (string * value) list) -> unit
(** Emit one record. The field thunk is only forced when a sink is
    installed and the level passes, so call sites are free while logging
    is off. Field order is preserved; [ts] (wall-clock seconds since the
    epoch), [level] and [event] are prepended. Never raises: a sink whose
    write fails disables itself (recorded in the
    [log.sink_errors] metric counter). *)

val flush : unit -> unit
(** Flush the installed sink, if any. *)

val with_sink : ?level:level -> sink -> (unit -> 'a) -> 'a
(** Run a thunk with the given sink installed, restoring the previous
    sink/level afterwards (also on exceptions). *)
