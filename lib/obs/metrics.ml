type counter = {
  c_name : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
  mutable g_set : bool;
}

(* Shared fixed log-scale bucket bounds: powers of 4 starting at 4ns, the
   last bucket unbounded. 20 buckets span 4ns .. ~275s, plenty for anything
   this repository times. *)
let n_buckets = 21

let bucket_bounds =
  Array.init n_buckets (fun i ->
      if i = n_buckets - 1 then infinity else 4e-9 *. (4.0 ** float_of_int i))

let bucket_of d =
  let i = ref 0 in
  while !i < n_buckets - 1 && d > bucket_bounds.(!i) do
    incr i
  done;
  !i

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_sum : float;
  mutable t_max : float;
  t_buckets : int array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer

(* --- registry --- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Two independent switches share the fast path: [flag] gates metric
   recording, [tracer] receives event-level begin/end/instant callbacks.
   [hot] is their disjunction, maintained on every switch flip, so the
   timed-region combinators ([time], [with_span]) still pay exactly one
   load-and-branch when both are off. *)

type span_args = (string * string) list

type tracer = {
  on_begin : string -> span_args -> unit;
  on_end : string -> unit;
  on_instant : string -> span_args -> unit;
}

let flag = ref false

let tracer : tracer option ref = ref None

let hot = ref false

let refresh_hot () = hot := !flag || !tracer <> None

let set_enabled b =
  flag := b;
  refresh_hot ()

let is_enabled () = !flag

let enabled f =
  let saved = !flag in
  set_enabled true;
  Fun.protect ~finally:(fun () -> set_enabled saved) f

let set_tracer t =
  tracer := t;
  refresh_hot ()

let has_tracer () = !tracer <> None

let with_tracer t f =
  let saved = !tracer in
  set_tracer (Some t);
  Fun.protect ~finally:(fun () -> set_tracer saved) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"

let register name make extract =
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match extract m with
     | Some x -> x
     | None ->
       invalid_arg
         (Printf.sprintf "Metrics: %S is already registered as a %s" name
            (kind_name m)))
  | None ->
    let x, m = make () in
    Hashtbl.replace registry name m;
    x

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_value = 0.0; g_set = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let timer name =
  register name
    (fun () ->
      let t =
        { t_name = name;
          t_count = 0;
          t_sum = 0.0;
          t_max = 0.0;
          t_buckets = Array.make n_buckets 0 }
      in
      (t, Timer t))
    (function Timer t -> Some t | _ -> None)

(* --- recording --- *)

let incr c = if !flag then c.c_value <- c.c_value + 1

let add c n = if !flag then c.c_value <- c.c_value + n

let set g v =
  if !flag then begin
    g.g_value <- v;
    g.g_set <- true
  end

let observe t d =
  if !flag then begin
    let d = Float.max 0.0 d in
    t.t_count <- t.t_count + 1;
    t.t_sum <- t.t_sum +. d;
    if d > t.t_max then t.t_max <- d;
    let b = t.t_buckets in
    let i = bucket_of d in
    b.(i) <- b.(i) + 1
  end

let no_args () = []

let trace_begin name args =
  match !tracer with
  | Some tr -> tr.on_begin name (args ())
  | None -> ()

let trace_end name =
  match !tracer with Some tr -> tr.on_end name | None -> ()

let time ?(args = no_args) t f =
  if not !hot then f ()
  else begin
    trace_begin t.t_name args;
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        observe t (Clock.elapsed_since start);
        trace_end t.t_name)
      f
  end

let instant name args =
  match !tracer with
  | Some tr -> tr.on_instant name (args ())
  | None -> ()

(* --- spans --- *)

let spans : string list ref = ref []

let span_stack () = !spans

let with_span ?(args = no_args) name f =
  if not !hot then f ()
  else begin
    spans := name :: !spans;
    let path = String.concat "/" (List.rev !spans) in
    let t = timer ("span:" ^ path) in
    trace_begin name args;
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        observe t (Clock.elapsed_since start);
        trace_end name;
        match !spans with
        | _ :: rest -> spans := rest
        | [] -> ())
      f
  end

(* --- reading --- *)

let counter_value c = c.c_value

let gauge_value g = if g.g_set then Some g.g_value else None

type timer_stats = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
}

let timer_stats t =
  { count = t.t_count;
    sum = t.t_sum;
    max = t.t_max;
    buckets =
      List.init n_buckets (fun i -> (bucket_bounds.(i), t.t_buckets.(i))) }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stats) list;
}

let snapshot () =
  let counters = ref [] and gauges = ref [] and timers = ref [] in
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> counters := (c.c_name, c.c_value) :: !counters
      | Gauge g -> if g.g_set then gauges := (g.g_name, g.g_value) :: !gauges
      | Timer t -> timers := (t.t_name, timer_stats t) :: !timers)
    registry;
  let by_name (a, _) (b, _) = compare a b in
  { counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    timers = List.sort by_name !timers }

let reset () =
  (* Also unwind the open-span stack: a [reset] inside a [with_span] must
     not leave stale entries that would corrupt the [/]-joined paths of
     every span opened afterwards. The enclosing spans' unwind handlers
     tolerate the empty stack. *)
  spans := [];
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> c.c_value <- 0
      | Gauge g ->
        g.g_value <- 0.0;
        g.g_set <- false
      | Timer t ->
        t.t_count <- 0;
        t.t_sum <- 0.0;
        t.t_max <- 0.0;
        Array.fill t.t_buckets 0 n_buckets 0)
    registry

(* --- JSON --- *)

(* Wolves_cli.Json lives above this library in the dependency order (the CLI
   depends on core which depends on us), so the emitter is inlined: the
   grammar here is tiny and the names are our own. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let snapshot_to_json snap =
  let buf = Buffer.create 1024 in
  let field first key emit_value =
    if not !first then Buffer.add_string buf ",";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape key));
    emit_value ()
  in
  let obj entries emit_one =
    Buffer.add_char buf '{';
    let first = ref true in
    List.iter (fun (key, v) -> field first key (fun () -> emit_one v)) entries;
    Buffer.add_char buf '}'
  in
  let num f =
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  in
  Buffer.add_char buf '{';
  let first = ref true in
  field first "counters" (fun () ->
      obj snap.counters (fun v -> Buffer.add_string buf (string_of_int v)));
  field first "gauges" (fun () -> obj snap.gauges num);
  field first "timers" (fun () ->
      obj snap.timers (fun stats ->
          Buffer.add_char buf '{';
          let f = ref true in
          field f "count" (fun () ->
              Buffer.add_string buf (string_of_int stats.count));
          field f "sum_s" (fun () -> num stats.sum);
          field f "max_s" (fun () -> num stats.max);
          field f "buckets" (fun () ->
              obj
                (List.filter_map
                   (fun (bound, n) ->
                     if n = 0 then None
                     else
                       Some
                         ( (if Float.is_finite bound then
                              Printf.sprintf "%.12g" bound
                            else "inf"),
                           n ))
                   stats.buckets)
                (fun n -> Buffer.add_string buf (string_of_int n)));
          Buffer.add_char buf '}'));
  Buffer.add_char buf '}';
  Buffer.contents buf

let dump_json () = snapshot_to_json (snapshot ())
