type counter = {
  c_name : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
  mutable g_set : bool;
}

(* Shared fixed log-scale bucket bounds: powers of 4 starting at 4ns, the
   last bucket unbounded. 20 buckets span 4ns .. ~275s, plenty for anything
   this repository times. *)
let n_buckets = 21

let bucket_bounds =
  Array.init n_buckets (fun i ->
      if i = n_buckets - 1 then infinity else 4e-9 *. (4.0 ** float_of_int i))

let bucket_of d =
  let i = ref 0 in
  while !i < n_buckets - 1 && d > bucket_bounds.(!i) do
    incr i
  done;
  !i

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_sum : float;
  mutable t_max : float;
  t_buckets : int array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer

(* --- registry --- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* The registry hashtable is shared by every domain (worker domains
   register span timers on first use), so all structural access — find,
   replace, iterate — happens under this lock. Recording into an already
   obtained handle does not touch the table. *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* --- domain shards --- *)

(* A shard is a detached recording buffer: while one is installed in a
   domain's local storage, every [incr]/[add]/[set]/[observe] of that
   domain lands in the shard instead of the shared metric records, so
   parallel workers never race on a counter. The driver that farmed the
   work merges the shards back into the registry afterwards, in a
   deterministic order. *)

type sh_timer = {
  mutable sh_count : int;
  mutable sh_sum : float;
  mutable sh_max : float;
  sh_buckets : int array;
}

type shard = {
  sh_counters : (string, int ref) Hashtbl.t;
  sh_gauges : (string, float ref) Hashtbl.t;
  sh_timers : (string, sh_timer) Hashtbl.t;
}

let shard_key : shard option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_shard () = Domain.DLS.get shard_key

(* Two independent switches share the fast path: [flag] gates metric
   recording, [tracer] receives event-level begin/end/instant callbacks.
   [hot] is their disjunction, maintained on every switch flip, so the
   timed-region combinators ([time], [with_span]) still pay exactly one
   load-and-branch when both are off. *)

type span_args = (string * string) list

type tracer = {
  on_begin : string -> (unit -> span_args) -> unit;
  on_end : string -> unit;
  on_instant : string -> (unit -> span_args) -> unit;
}

let flag = ref false

let tracer : tracer option ref = ref None

let hot = ref false

let refresh_hot () = hot := !flag || !tracer <> None

let set_enabled b =
  flag := b;
  refresh_hot ()

let is_enabled () = !flag

let enabled f =
  let saved = !flag in
  set_enabled true;
  Fun.protect ~finally:(fun () -> set_enabled saved) f

let set_tracer t =
  tracer := t;
  refresh_hot ()

let has_tracer () = !tracer <> None

let current_tracer () = !tracer

let with_tracer t f =
  let saved = !tracer in
  set_tracer (Some t);
  Fun.protect ~finally:(fun () -> set_tracer saved) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"

let register name make extract =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match extract m with
     | Some x -> x
     | None ->
       invalid_arg
         (Printf.sprintf "Metrics: %S is already registered as a %s" name
            (kind_name m)))
  | None ->
    let x, m = make () in
    Hashtbl.replace registry name m;
    x

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_value = 0.0; g_set = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let timer name =
  register name
    (fun () ->
      let t =
        { t_name = name;
          t_count = 0;
          t_sum = 0.0;
          t_max = 0.0;
          t_buckets = Array.make n_buckets 0 }
      in
      (t, Timer t))
    (function Timer t -> Some t | _ -> None)

(* --- recording --- *)

(* The disabled path stays one load-and-branch; the enabled path pays one
   domain-local read to find out whether a shard is installed. *)

let shard_bump sh name n =
  match Hashtbl.find_opt sh.sh_counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace sh.sh_counters name (ref n)

let add c n =
  if !flag then
    match current_shard () with
    | None -> c.c_value <- c.c_value + n
    | Some sh -> shard_bump sh c.c_name n

let incr c = add c 1

let set g v =
  if !flag then
    match current_shard () with
    | None ->
      g.g_value <- v;
      g.g_set <- true
    | Some sh ->
      (match Hashtbl.find_opt sh.sh_gauges g.g_name with
       | Some r -> r := v
       | None -> Hashtbl.replace sh.sh_gauges g.g_name (ref v))

let observe t d =
  if !flag then begin
    let d = Float.max 0.0 d in
    match current_shard () with
    | None ->
      t.t_count <- t.t_count + 1;
      t.t_sum <- t.t_sum +. d;
      if d > t.t_max then t.t_max <- d;
      let b = t.t_buckets in
      let i = bucket_of d in
      b.(i) <- b.(i) + 1
    | Some sh ->
      let st =
        match Hashtbl.find_opt sh.sh_timers t.t_name with
        | Some st -> st
        | None ->
          let st =
            { sh_count = 0;
              sh_sum = 0.0;
              sh_max = 0.0;
              sh_buckets = Array.make n_buckets 0 }
          in
          Hashtbl.replace sh.sh_timers t.t_name st;
          st
      in
      st.sh_count <- st.sh_count + 1;
      st.sh_sum <- st.sh_sum +. d;
      if d > st.sh_max then st.sh_max <- d;
      let i = bucket_of d in
      st.sh_buckets.(i) <- st.sh_buckets.(i) + 1
  end

let no_args () = []

(* The ring-buffer tracer is a single shared collector and is not
   domain-safe; while a shard is installed (i.e. inside a parallel worker
   job) event emission is suppressed rather than interleaved. *)

let trace_begin name args =
  match !tracer with
  | Some tr when current_shard () = None -> tr.on_begin name args
  | _ -> ()

let trace_end name =
  match !tracer with
  | Some tr when current_shard () = None -> tr.on_end name
  | _ -> ()

let time ?(args = no_args) t f =
  if not !hot then f ()
  else begin
    trace_begin t.t_name args;
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        observe t (Clock.elapsed_since start);
        trace_end t.t_name)
      f
  end

let instant name args =
  match !tracer with
  | Some tr when current_shard () = None -> tr.on_instant name args
  | _ -> ()

(* --- spans --- *)

(* One span stack per domain: a worker's spans nest under its own paths
   without racing the main domain's stack. *)
let spans_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let spans () = Domain.DLS.get spans_key

let span_stack () = !(spans ())

let with_span ?(args = no_args) name f =
  if not !hot then f ()
  else begin
    let spans = spans () in
    spans := name :: !spans;
    let path = String.concat "/" (List.rev !spans) in
    let t = timer ("span:" ^ path) in
    trace_begin name args;
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        observe t (Clock.elapsed_since start);
        trace_end name;
        match !spans with
        | _ :: rest -> spans := rest
        | [] -> ())
      f
  end

(* --- reading --- *)

let counter_value c = c.c_value

let gauge_value g = if g.g_set then Some g.g_value else None

type timer_stats = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
}

let timer_stats t =
  (* Read the bucket array once and derive [count] from that copy rather
     than from [t_count]: unsharded recorders (a server worker crossing an
     instrumented region mid-handler) race the two fields apart, and a
     published histogram whose +Inf bucket disagrees with its _count fails
     exposition validation. Deriving one from the other makes every
     snapshot internally consistent no matter how the races land. *)
  let buckets =
    List.init n_buckets (fun i -> (bucket_bounds.(i), t.t_buckets.(i)))
  in
  let count = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  { count; sum = t.t_sum; max = t.t_max; buckets }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stats) list;
}

let snapshot () =
  let counters = ref [] and gauges = ref [] and timers = ref [] in
  locked (fun () ->
      Hashtbl.iter
        (fun _ metric ->
          match metric with
          | Counter c -> counters := (c.c_name, c.c_value) :: !counters
          | Gauge g ->
            if g.g_set then gauges := (g.g_name, g.g_value) :: !gauges
          | Timer t -> timers := (t.t_name, timer_stats t) :: !timers)
        registry);
  let by_name (a, _) (b, _) = compare a b in
  { counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    timers = List.sort by_name !timers }

let reset () =
  (* Also unwind the open-span stack: a [reset] inside a [with_span] must
     not leave stale entries that would corrupt the [/]-joined paths of
     every span opened afterwards. The enclosing spans' unwind handlers
     tolerate the empty stack. (Only the calling domain's stack — worker
     domains each own theirs, and resets happen between parallel phases.) *)
  spans () := [];
  locked (fun () ->
      Hashtbl.iter
        (fun _ metric ->
          match metric with
          | Counter c -> c.c_value <- 0
          | Gauge g ->
            g.g_value <- 0.0;
            g.g_set <- false
          | Timer t ->
            t.t_count <- 0;
            t.t_sum <- 0.0;
            t.t_max <- 0.0;
            Array.fill t.t_buckets 0 n_buckets 0)
        registry)

(* --- shard lifecycle --- *)

let create_shard () =
  { sh_counters = Hashtbl.create 16;
    sh_gauges = Hashtbl.create 4;
    sh_timers = Hashtbl.create 16 }

let with_new_shard f =
  let sh = create_shard () in
  let saved = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key (Some sh);
  let v =
    Fun.protect ~finally:(fun () -> Domain.DLS.set shard_key saved) f
  in
  (v, sh)

let sorted_names tbl =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) tbl [])

let shard_counters sh =
  List.map
    (fun name -> (name, !(Hashtbl.find sh.sh_counters name)))
    (sorted_names sh.sh_counters)

let merge_shard sh =
  (* Fold the shard into the shared records. The recording was already
     gated by the enable flag when it entered the shard, so merging is
     unconditional; names are merged in sorted order so registration
     order — and therefore any registry iteration — is deterministic. *)
  List.iter
    (fun name ->
      let v = !(Hashtbl.find sh.sh_counters name) in
      let c = counter name in
      c.c_value <- c.c_value + v)
    (sorted_names sh.sh_counters);
  List.iter
    (fun name ->
      let v = !(Hashtbl.find sh.sh_gauges name) in
      let g = gauge name in
      (* High-water semantics: shards are parallel workers reporting levels
         (queue depth, in-flight); "what was the worst moment" is the only
         merge that doesn't depend on merge order. Coordinators that want
         to overwrite (e.g. a final post-drain zero) call [set] directly
         from outside any shard. *)
      g.g_value <- (if g.g_set then Float.max g.g_value v else v);
      g.g_set <- true)
    (sorted_names sh.sh_gauges);
  List.iter
    (fun name ->
      let st = Hashtbl.find sh.sh_timers name in
      let t = timer name in
      t.t_count <- t.t_count + st.sh_count;
      t.t_sum <- t.t_sum +. st.sh_sum;
      if st.sh_max > t.t_max then t.t_max <- st.sh_max;
      for i = 0 to n_buckets - 1 do
        t.t_buckets.(i) <- t.t_buckets.(i) + st.sh_buckets.(i)
      done)
    (sorted_names sh.sh_timers)

(* --- JSON --- *)

(* Wolves_cli.Json lives above this library in the dependency order (the CLI
   depends on core which depends on us), so the emitter is inlined: the
   grammar here is tiny and the names are our own. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let snapshot_to_json snap =
  let buf = Buffer.create 1024 in
  let field first key emit_value =
    if not !first then Buffer.add_string buf ",";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape key));
    emit_value ()
  in
  let obj entries emit_one =
    Buffer.add_char buf '{';
    let first = ref true in
    List.iter (fun (key, v) -> field first key (fun () -> emit_one v)) entries;
    Buffer.add_char buf '}'
  in
  let num f =
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  in
  Buffer.add_char buf '{';
  let first = ref true in
  field first "bucket_bounds_s" (fun () ->
      (* The shared log-scale bounds, once, so consumers of the per-timer
         bucket maps don't have to re-derive the scale. The unbounded last
         bucket renders as null (JSON has no infinity); it matches the
         "inf" key used in the per-timer maps. *)
      Buffer.add_char buf '[';
      Array.iteri
        (fun i bound ->
          if i > 0 then Buffer.add_char buf ',';
          num bound)
        bucket_bounds;
      Buffer.add_char buf ']');
  field first "counters" (fun () ->
      obj snap.counters (fun v -> Buffer.add_string buf (string_of_int v)));
  field first "gauges" (fun () -> obj snap.gauges num);
  field first "timers" (fun () ->
      obj snap.timers (fun stats ->
          Buffer.add_char buf '{';
          let f = ref true in
          field f "count" (fun () ->
              Buffer.add_string buf (string_of_int stats.count));
          field f "sum_s" (fun () -> num stats.sum);
          field f "max_s" (fun () -> num stats.max);
          field f "buckets" (fun () ->
              obj
                (List.filter_map
                   (fun (bound, n) ->
                     if n = 0 then None
                     else
                       Some
                         ( (if Float.is_finite bound then
                              Printf.sprintf "%.12g" bound
                            else "inf"),
                           n ))
                   stats.buckets)
                (fun n -> Buffer.add_string buf (string_of_int n)));
          Buffer.add_char buf '}'));
  Buffer.add_char buf '}';
  Buffer.contents buf

let dump_json () = snapshot_to_json (snapshot ())
