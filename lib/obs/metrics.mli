(** A process-wide metrics registry for the WOLVES hot paths.

    Counters, gauges and timers (log-scale histograms over the monotonic
    {!Clock}), plus lightweight nestable spans, all registered under stable
    dotted names ([soundness.subset_checks], [corrector.prune_probes], ...).

    Everything sits behind one enable flag: when disabled (the default),
    every recording operation is a single load-and-branch, so instrumented
    hot loops cost essentially nothing in production. Handle creation
    ({!counter} / {!gauge} / {!timer}) is always allowed — modules register
    their metrics at load time — only {e recording} is gated.

    The registry is global mutable state (like the clock it wraps); callers
    that need isolation, such as per-experiment benchmark sections, use
    {!reset} between measurements.

    {b Domain safety.} Registration and snapshot/reset take an internal
    lock, so handles may be created from any domain. Recording into the
    shared records is {e not} synchronised — concurrent recorders must
    instead run under {!with_new_shard}, which redirects every recording
    operation on the calling domain into a private shard the coordinator
    later folds back with {!merge_shard}. While a shard is installed the
    tracer hooks are suppressed (the ring-buffer tracer is not
    domain-safe); the span stack is domain-local throughout. *)

type counter
type gauge
type timer

(* --- enable flag --- *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val enabled : (unit -> 'a) -> 'a
(** Run a thunk with recording enabled, restoring the previous flag
    afterwards (also on exceptions). *)

(* --- tracing hook --- *)

type span_args = (string * string) list
(** Structured key/value annotations attached to trace events (task counts,
    composite names, tier names, retry attempts, ...). *)

type tracer = {
  on_begin : string -> (unit -> span_args) -> unit;
      (** a timed region ([time] or [with_span]) opened *)
  on_end : string -> unit;  (** the matching region closed *)
  on_instant : string -> (unit -> span_args) -> unit;
      (** a point event ([instant]) *)
}
(** Event-level observer. Installing one makes every already-instrumented
    region ({!time} / {!with_span} call site) emit begin/end events in
    addition to — and independently of — histogram recording: tracing works
    with metrics disabled and vice versa. The argument thunk is passed
    through unforced so a tracer that drops an event (e.g. the server's
    per-request sampling gate) never pays for its annotations; force it at
    most once, at the moment the event is actually kept.
    [Wolves_trace.Trace] provides the standard ring-buffer
    implementation. *)

val set_tracer : tracer option -> unit
(** Install (or remove, with [None]) the process-wide tracer. *)

val has_tracer : unit -> bool

val current_tracer : unit -> tracer option
(** The installed tracer, for callers that need to chain or save/restore
    around a temporary installation of their own. *)

val with_tracer : tracer -> (unit -> 'a) -> 'a
(** Run a thunk with the given tracer installed, restoring the previous one
    afterwards (also on exceptions). *)

val instant : string -> (unit -> span_args) -> unit
(** Emit a point event to the installed tracer, if any. The argument thunk
    is only forced when a tracer is installed, so call sites cost a single
    load-and-branch while tracing is off. No metric is recorded. *)

(* --- registration (idempotent by name) --- *)

val counter : string -> counter
(** Find or create the counter of that name.
    @raise Invalid_argument when the name is registered as another kind. *)

val gauge : string -> gauge

val timer : string -> timer

(* --- recording (no-ops while disabled) --- *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val observe : timer -> float -> unit
(** Record one duration in seconds (clamped at [0.]). *)

val time : ?args:(unit -> span_args) -> timer -> (unit -> 'a) -> 'a
(** Time a thunk on the monotonic clock and {!observe} the duration (also
    on exceptions). When a tracer is installed the region additionally
    emits begin/end events named after the timer, annotated with [args]
    (forced per event; defaults to none). While metrics and tracing are
    both off this is exactly [f ()]. *)

(* --- spans --- *)

val with_span : ?args:(unit -> span_args) -> string -> (unit -> 'a) -> 'a
(** Time a named, nestable region. Nested spans record under their
    [/]-joined path: [with_span "correct" (fun () -> with_span "weak" f)]
    records into the timers [span:correct] and [span:correct/weak]. The
    span stack unwinds correctly on exceptions. When a tracer is installed
    the region also emits begin/end events (named by the leaf name, with
    [args]). While metrics and tracing are both off this is exactly
    [f ()]. *)

val span_stack : unit -> string list
(** The names of the currently open spans, innermost first (for tests). *)

(* --- per-domain shards --- *)

type shard
(** A private buffer of recordings, keyed by metric name. Worker domains
    record into one; the coordinating domain merges them back. *)

val with_new_shard : (unit -> 'a) -> 'a * shard
(** Run a thunk with a fresh shard installed on the calling domain: every
    {!incr}/{!add}/{!set}/{!observe} (and {!time}/{!with_span} recording)
    inside it lands in the shard instead of the shared records, and the
    tracer hooks stay silent. Returns the thunk's value and the shard; the
    previous shard (if any — shards nest) is restored afterwards, also on
    exceptions. The shard escapes deliberately: merge it with
    {!merge_shard} from whichever domain coordinates the workers, in a
    deterministic order if reproducible registries matter. *)

val merge_shard : shard -> unit
(** Fold a shard into the shared records: counter values and timer
    count/sum/histograms add, timer maxima combine, and gauges merge as
    {e high-water marks} — the merged value is the max of the current value
    and the shard's last [set], so N shards merged in any order report the
    worst level any worker saw. (A coordinator that needs to overwrite —
    e.g. recording a final post-drain zero — calls {!set} directly from
    outside any shard; direct sets always overwrite.) Call from one domain
    at a time — typically the coordinator after joining its workers. Metric
    names inside the shard are merged in sorted order, so
    first-registration order is deterministic. *)

val shard_counters : shard -> (string * int) list
(** The counters recorded in a shard, sorted by name (for tests). *)

(* --- reading --- *)

val counter_value : counter -> int
val gauge_value : gauge -> float option
(** [None] until the gauge is first {!set}. *)

val bucket_bounds : float array
(** The fixed log-scale bucket upper bounds, in seconds, shared by every
    timer: powers of 4 from 4ns, the last entry [infinity]. *)

type timer_stats = {
  count : int;  (** number of observations *)
  sum : float;  (** total observed seconds *)
  max : float;  (** largest observation, [0.] when empty *)
  buckets : (float * int) list;
      (** (upper bound in seconds, observations ≤ bound); fixed log-scale
          bounds — powers of 4 from 4ns — shared by every timer, the last
          bucket unbounded ([infinity]). *)
}

val timer_stats : timer -> timer_stats

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stats) list;
}
(** All registered metrics, each section sorted by name. Gauges that were
    never set are omitted. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations survive) and unwind the
    open-span stack, so spans opened after a mid-span [reset] record under
    clean paths. *)

(* --- output --- *)

val snapshot_to_json : snapshot -> string
(** Render a snapshot as a JSON object
    [{"bucket_bounds_s": [..], "counters": {..}, "gauges": {..},
    "timers": {..}}]. [bucket_bounds_s] lists the shared log-scale bucket
    upper bounds in seconds, the unbounded last bound as [null]. Timer
    histograms list only non-empty buckets keyed by the rendered bound
    (the unbounded bucket keyed ["inf"]). *)

val dump_json : unit -> string
(** [snapshot_to_json (snapshot ())]. *)
