(* Prometheus text exposition. Rendering is straight string building; the
   interesting parts are the quantile estimator (shared with STATS and
   wolves top) and [check], the validator CI runs against live scrapes so
   a malformed page fails the build rather than the first real scraper. *)

let metric_name name =
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_' || c = ':'
        || (c >= '0' && c <= '9')
      in
      if i = 0 && c >= '0' && c <= '9' then Buffer.add_char buf '_';
      Buffer.add_char buf (if ok then c else '_'))
    name;
  Buffer.contents buf

let percentile (st : Metrics.timer_stats) q =
  if st.count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int st.count))) in
    let rec go seen = function
      | [] -> st.max
      | (bound, n) :: rest ->
        let seen = seen + n in
        if seen >= rank then
          if Float.is_finite bound then Float.min bound st.max else st.max
        else go seen rest
    in
    go 0 st.buckets
  end

let fmt v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" v

let quantiles = [ 0.5; 0.9; 0.99 ]

(* Every timer shares the registry's fixed bucket bounds, so their rendered
   forms are interned once: a live scrape re-renders the whole page per
   request and must not re-format hundreds of identical floats. *)
let fmt_bound =
  let cache : (float, string) Hashtbl.t = Hashtbl.create 32 in
  fun b ->
    match Hashtbl.find_opt cache b with
    | Some s -> s
    | None ->
      let s = fmt b in
      if Hashtbl.length cache < 1024 then Hashtbl.replace cache b s;
      s

(* Rendering writes straight into the buffer (no per-line ksprintf): the
   [METRICS] verb serves this page on a request path, concurrently with
   the traffic being measured, so both the time and the garbage matter. *)
let render (snap : Metrics.snapshot) =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  let addc = Buffer.add_char buf in
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      let n = if Filename.check_suffix n "_total" then n else n ^ "_total" in
      add "# TYPE "; add n; add " counter\n";
      add n; addc ' '; add (string_of_int v); addc '\n')
    snap.counters;
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      add "# TYPE "; add n; add " gauge\n";
      add n; addc ' '; add (fmt v); addc '\n')
    snap.gauges;
  List.iter
    (fun (name, (st : Metrics.timer_stats)) ->
      if st.count > 0 then begin
        let n = metric_name name ^ "_seconds" in
        add "# TYPE "; add n; add " histogram\n";
        let seen = ref 0 in
        List.iter
          (fun (bound, k) ->
            seen := !seen + k;
            add n; add "_bucket{le=\""; add (fmt_bound bound); add "\"} ";
            add (string_of_int !seen); addc '\n')
          st.buckets;
        add n; add "_sum "; add (fmt st.sum); addc '\n';
        add n; add "_count "; add (string_of_int st.count); addc '\n';
        add "# TYPE "; add n; add "_max gauge\n";
        add n; add "_max "; add (fmt st.max); addc '\n';
        add "# TYPE "; add n; add "_quantile gauge\n";
        List.iter
          (fun q ->
            add n; add "_quantile{quantile=\""; add (fmt_bound q); add "\"} ";
            add (fmt (percentile st q)); addc '\n')
          quantiles
      end)
    snap.timers;
  Buffer.contents buf

(* --- validation --- *)

exception Bad of string

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* [name{k="v",...} value] -> (name, labels, value). Total over the label
   grammar including backslash escapes; raises [Bad] with the reason. *)
let parse_sample line =
  let len = String.length line in
  let i = ref 0 in
  while !i < len && is_name_char line.[!i] do incr i done;
  if !i = 0 then raise (Bad "sample does not start with a metric name");
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < len && line.[!i] = '{' then begin
    incr i;
    let stop = ref false in
    while not !stop do
      if !i >= len then raise (Bad "unterminated label set");
      if line.[!i] = '}' then begin
        incr i;
        stop := true
      end
      else begin
        let k0 = !i in
        while !i < len && is_name_char line.[!i] do incr i done;
        let k = String.sub line k0 (!i - k0) in
        if k = "" then raise (Bad "empty label name");
        if !i >= len || line.[!i] <> '=' then raise (Bad "expected = in label");
        incr i;
        if !i >= len || line.[!i] <> '"' then
          raise (Bad "label value is not quoted");
        incr i;
        let vbuf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= len then raise (Bad "unterminated label value");
          (match line.[!i] with
          | '"' -> closed := true
          | '\\' ->
            if !i + 1 >= len then raise (Bad "dangling escape");
            incr i;
            Buffer.add_char vbuf
              (match line.[!i] with 'n' -> '\n' | c -> c)
          | c -> Buffer.add_char vbuf c);
          incr i
        done;
        labels := (k, Buffer.contents vbuf) :: !labels;
        if !i < len && line.[!i] = ',' then incr i
      end
    done
  end;
  while !i < len && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
  let v0 = !i in
  while !i < len && line.[!i] <> ' ' && line.[!i] <> '\t' do incr i done;
  if !i = v0 then raise (Bad "missing sample value");
  let tok = String.sub line v0 (!i - v0) in
  let value =
    match float_of_string_opt (String.lowercase_ascii tok) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "unparsable value %S" tok))
  in
  (* Only an optional timestamp may follow; anything else is junk. *)
  while !i < len && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
  if !i < len && int_of_string_opt (String.sub line !i (len - !i)) = None then
    raise (Bad "trailing junk after sample value");
  (name, List.rev !labels, value)

let strip_suffix s suffix =
  if Filename.check_suffix s suffix then
    Some (String.sub s 0 (String.length s - String.length suffix))
  else None

let check page =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let finished : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  (* histogram series, keyed by family + non-le labels, in page order *)
  let hist : (string, (float * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let close_current () =
    match !current with
    | Some f ->
      Hashtbl.replace finished f ();
      current := None
    | None -> ()
  in
  let family_of name =
    let stripped suffix =
      match strip_suffix name suffix with
      | Some base when Hashtbl.mem typed base -> Some base
      | _ -> None
    in
    match stripped "_bucket" with
    | Some base -> base
    | None -> (
      match stripped "_sum" with
      | Some base -> base
      | None -> (
        match stripped "_count" with Some base -> base | None -> name))
  in
  let label_key labels =
    String.concat ","
      (List.filter_map
         (fun (k, v) -> if k = "le" then None else Some (k ^ "=" ^ v))
         labels)
  in
  try
    let lineno = ref 0 in
    String.split_on_char '\n' page
    |> List.iter (fun line ->
           incr lineno;
           let fail msg =
             raise (Bad (Printf.sprintf "line %d: %s (%s)" !lineno msg line))
           in
           let line =
             (* tolerate CRLF pages *)
             if line <> "" && line.[String.length line - 1] = '\r' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           if line = "" then ()
           else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
             match String.split_on_char ' ' line with
             | [ "#"; "TYPE"; fam; ty ] ->
               if
                 not
                   (List.mem ty
                      [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
               then fail (Printf.sprintf "unknown metric type %S" ty);
               if Hashtbl.mem typed fam then
                 fail (Printf.sprintf "duplicate TYPE for %s" fam);
               if Hashtbl.mem finished fam then
                 fail (Printf.sprintf "TYPE after samples of %s" fam);
               close_current ();
               Hashtbl.replace typed fam ty
             | _ -> fail "malformed TYPE line"
           end
           else if line.[0] = '#' then ()
           else begin
             let name, labels, value =
               try parse_sample line with Bad m -> fail m
             in
             incr samples;
             let fam = family_of name in
             if not (Hashtbl.mem typed fam) then
               fail (Printf.sprintf "sample of %s before its TYPE line" fam);
             (match !current with
             | Some f when f = fam -> ()
             | _ ->
               if Hashtbl.mem finished fam then
                 fail (Printf.sprintf "family %s is not contiguous" fam);
               close_current ();
               current := Some fam);
             if Hashtbl.find typed fam = "histogram" then begin
               let key = fam ^ "\000" ^ label_key labels in
               if Filename.check_suffix name "_bucket" then begin
                 let le =
                   match List.assoc_opt "le" labels with
                   | None -> fail "histogram bucket without le label"
                   | Some le -> (
                     match
                       float_of_string_opt (String.lowercase_ascii le)
                     with
                     | Some f -> f
                     | None -> fail (Printf.sprintf "unparsable le %S" le))
                 in
                 let r =
                   match Hashtbl.find_opt hist key with
                   | Some r -> r
                   | None ->
                     let r = ref [] in
                     Hashtbl.replace hist key r;
                     r
                 in
                 r := (le, value) :: !r
               end
               else if Filename.check_suffix name "_count" then
                 Hashtbl.replace counts key value
             end
           end);
    (* cross-line checks, per histogram series *)
    Hashtbl.iter
      (fun key series ->
        let fam =
          match String.index_opt key '\000' with
          | Some i -> String.sub key 0 i
          | None -> key
        in
        let buckets = List.rev !series in
        (match buckets with
        | [] -> raise (Bad (Printf.sprintf "histogram %s has no buckets" fam))
        | _ -> ());
        let rec walk prev = function
          | [] -> ()
          | (le, count) :: rest ->
            (match prev with
            | Some (ple, pcount) ->
              if le <= ple then
                raise
                  (Bad
                     (Printf.sprintf "histogram %s: le bounds not increasing"
                        fam));
              if count < pcount then
                raise
                  (Bad
                     (Printf.sprintf
                        "histogram %s: bucket counts not cumulative" fam))
            | None -> ());
            walk (Some (le, count)) rest
        in
        walk None buckets;
        let last_le, last_count = List.nth buckets (List.length buckets - 1) in
        if last_le <> Float.infinity then
          raise
            (Bad (Printf.sprintf "histogram %s: missing +Inf bucket" fam));
        match Hashtbl.find_opt counts key with
        | Some c when c <> last_count ->
          raise
            (Bad
               (Printf.sprintf "histogram %s: _count %g <> +Inf bucket %g" fam
                  c last_count))
        | _ -> ())
      hist;
    Ok !samples
  with Bad msg -> Error msg
