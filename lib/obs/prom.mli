(** Prometheus text-format exposition over a {!Metrics} snapshot.

    Renders the registry the way a scraper expects it: counters as
    [_total] families, gauges verbatim, timers as histograms with the
    explicit log-scale bucket bounds (cumulative [le] buckets ending in
    [+Inf], [_sum], [_count]) plus derived p50/p90/p99 quantile gauges and
    a [_max] gauge. Served live as the [METRICS] protocol verb and offline
    as [wolves stats --prom].

    Also home to {!check}, the in-repo exposition validator the CI smoke
    step runs against a live scrape, and {!percentile}, the histogram
    quantile estimator shared with the [STATS] reply and [wolves top]. *)

val metric_name : string -> string
(** Sanitise a registry name into the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: dots, dashes, slashes and anything else
    illegal become [_]; a leading digit gains a [_] prefix. *)

val percentile : Metrics.timer_stats -> float -> float
(** [percentile stats q] estimates the [q]-quantile ([0. <= q <= 1.]) in
    seconds from the log-scale histogram: the upper bound of the bucket
    holding the [ceil (q * count)]-th observation, clamped to the observed
    maximum (which also stands in for the unbounded bucket). [0.] when the
    timer is empty. Because bucket bounds grow by 4x, the estimate [e] of
    a true quantile [x >= 4ns] satisfies [x <= e <= 4x]. *)

val render : Metrics.snapshot -> string
(** The full exposition page, [# TYPE]-annotated, families grouped,
    newline-terminated. Empty timers are omitted (no samples to expose);
    never-set gauges already are by {!Metrics.snapshot}. *)

val check : string -> (int, string) result
(** Validate an exposition page: every sample line parses
    ([name{labels} value]), every family is announced by a preceding
    [# TYPE] line with a known type and is contiguous, histogram bucket
    [le] bounds are strictly increasing with cumulative counts
    non-decreasing, the terminal bucket is [+Inf], and [_count] (when
    present with the same labels) equals the [+Inf] bucket. Returns the
    number of sample lines, or a message naming the first offending
    line. *)
