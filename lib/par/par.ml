let recommended_domains () = Domain.recommended_domain_count ()

let env_domains () =
  match Sys.getenv_opt "WOLVES_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)

let default = ref (env_domains ())

let default_domains () = !default

let set_default_domains n =
  if n < 1 then
    invalid_arg (Printf.sprintf "Par.set_default_domains: %d < 1" n);
  default := n

(* One in-flight job: workers and the caller claim [chunk]-sized index
   ranges from [next] until it passes [n]. The first exception (by smallest
   starting index) is kept so re-raising is deterministic. *)
type job = {
  next : int Atomic.t;
  n : int;
  chunk : int;
  f : int -> unit;
  fail : Mutex.t;
  mutable exn : (int * exn) option; (* chunk start, exception *)
}

type pool = {
  mutable workers : unit Domain.t array; (* [domains - 1] of them *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int; (* bumped when a job is published *)
  mutable active : int; (* workers still running the current job *)
  mutable stop : bool;
}

let record_exn job start e =
  Mutex.lock job.fail;
  (match job.exn with
   | Some (s, _) when s <= start -> ()
   | _ -> job.exn <- Some (start, e));
  Mutex.unlock job.fail

let run_chunks job =
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start >= job.n then continue := false
    else
      let stop = min job.n (start + job.chunk) in
      try
        for i = start to stop - 1 do
          job.f i
        done
      with e ->
        record_exn job start e;
        (* Drain the counter so co-workers stop picking up chunks whose
           results will be discarded anyway. *)
        Atomic.set job.next job.n
  done

let worker pool =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while pool.generation = !seen && not pool.stop do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stop then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      seen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.lock;
      run_chunks job;
      Mutex.lock pool.lock;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.lock
    end
  done

let create_pool domains =
  let pool =
    { workers = [||];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stop = false }
  in
  (* The workers must capture [pool] itself (they poll its mutable job
     fields), so the array is filled in after the record exists; it is only
     read by the submitting domain, never by the workers. *)
  pool.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

(* The global pool, owned by whichever domain first submits work (in this
   repository: the main domain). [busy] makes nested parallel calls — a job
   function invoking parallel_for — run inline instead of deadlocking on
   the single job slot; worker domains observe [busy = true] for the whole
   job window because it is set before the job is published (mutex
   release/acquire orders the write). *)
let global : pool option ref = ref None

let busy = ref false

let shutdown () =
  match !global with
  | None -> ()
  | Some pool ->
    global := None;
    Mutex.lock pool.lock;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers

let () = at_exit shutdown

let obtain domains =
  match !global with
  | Some pool when Array.length pool.workers = domains - 1 -> pool
  | _ ->
    shutdown ();
    let pool = create_pool domains in
    global := Some pool;
    pool

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?domains ?chunk n f =
  let domains =
    match domains with Some d when d >= 1 -> d | Some _ | None -> !default
  in
  if domains <= 1 || n < 2 || !busy then sequential_for n f
  else begin
    let pool = obtain domains in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (domains * 8))
    in
    let job =
      { next = Atomic.make 0;
        n;
        chunk;
        f;
        fail = Mutex.create ();
        exn = None }
    in
    busy := true;
    Mutex.lock pool.lock;
    pool.job <- Some job;
    pool.active <- Array.length pool.workers;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    run_chunks job;
    Mutex.lock pool.lock;
    while pool.active > 0 do
      Condition.wait pool.work_done pool.lock
    done;
    pool.job <- None;
    Mutex.unlock pool.lock;
    busy := false;
    match job.exn with
    | Some (_, e) -> raise e
    | None -> ()
  end

let map_ordered ?domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?domains n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end
