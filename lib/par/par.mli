(** A small domain pool for the data-parallel kernels (OCaml 5 domains).

    The closure construction, the batched soundness validator and the
    corrector driver are embarrassingly parallel across rows / composites;
    this module gives them a shared, reusable pool of worker domains with
    chunked self-scheduling and {e deterministic, ordered} result
    collection, so parallel runs are byte-identical to sequential ones at
    every domain count.

    The default domain count is 1 (everything runs inline on the calling
    domain, exactly the pre-parallel behaviour); it is raised via the
    [WOLVES_DOMAINS] environment variable or {!set_default_domains} (the
    CLI's [--domains N] and the bench harness's [--domains N] both call
    it). Worker domains idle on a condition variable between jobs — no
    busy-waiting — and the pool is resized lazily when the requested count
    changes.

    Nested calls run inline: a job function that itself calls
    {!parallel_for} or {!map_ordered} executes that inner loop
    sequentially on its own domain, so composing parallel layers cannot
    deadlock the pool. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware parallelism
    available to this process. *)

val default_domains : unit -> int
(** The process-wide domain count used when [?domains] is omitted.
    Initialised from [WOLVES_DOMAINS] (default 1; invalid or < 1 values
    are ignored). *)

val set_default_domains : int -> unit
(** Set the process-wide default. @raise Invalid_argument when [n < 1]. *)

val parallel_for : ?domains:int -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)], partitioned into chunks that
    [domains] domains (default {!default_domains}) claim from a shared
    atomic counter. The call returns only after every index has run, and
    the pool's join synchronises memory: writes made by [f] are visible to
    the caller afterwards. With [domains = 1], [n < 2] or from inside
    another pool job, this is a plain sequential loop.

    [f] must only write to locations owned by its index (rows of a matrix,
    slots of an array): indexes run concurrently in unspecified order.
    [chunk] overrides the chunk size (default: [n] split ~8 ways per
    domain, at least 1). An exception raised by [f] is re-raised in the
    caller (when several indexes raise, the one with the smallest index
    wins, deterministically). *)

val map_ordered : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_ordered f xs] is [Array.map f xs] with the elements evaluated in
    parallel on the pool; [xs.(i)]'s result lands at slot [i] regardless
    of which domain ran it, so the output (and any ordered fold over it)
    is independent of scheduling. Exceptions propagate as in
    {!parallel_for}. *)

val shutdown : unit -> unit
(** Join and discard the pool's worker domains, if any (registered with
    [at_exit]; also safe to call directly, e.g. between benchmark
    sections). The next parallel call re-creates the pool on demand. *)
