open Wolves_workflow
module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach
module Bitset = Wolves_graph.Bitset
module Obs = Wolves_obs.Metrics

let m_runs_recorded = Obs.counter "store.runs_recorded"
let m_closure_builds = Obs.counter "store.closure_builds"
let m_closure_hits = Obs.counter "store.closure_cache_hits"
let m_provenance_queries = Obs.counter "store.provenance_queries"
let t_closure = Obs.timer "store.closure_build"
let t_influence = Obs.timer "store.influence_query"

type run_id = int

type status =
  | Succeeded
  | Failed
  | Skipped

let pp_status ppf = function
  | Succeeded -> Format.pp_print_string ppf "succeeded"
  | Failed -> Format.pp_print_string ppf "failed"
  | Skipped -> Format.pp_print_string ppf "skipped"

type run = {
  statuses : status array;
  mutable closure : Reach.t option;
      (* closure of the executed subgraph, same node ids as the spec *)
}

type t = {
  store_spec : Spec.t;
  mutable runs : run array;
  mutable count : int;
}

let create spec = { store_spec = spec; runs = [||]; count = 0 }

let spec t = t.store_spec

let push t run =
  if t.count = Array.length t.runs then begin
    let grown = Array.make (max 8 (2 * t.count)) run in
    Array.blit t.runs 0 grown 0 t.count;
    t.runs <- grown
  end;
  t.runs.(t.count) <- run;
  t.count <- t.count + 1;
  Obs.incr m_runs_recorded;
  t.count - 1

(* A deterministic split-mix step, so the store does not depend on the
   workload library. *)
let mix seed i =
  let h = ref (seed lxor (i * 0x9E3779B9)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x7FEB352D land max_int;
  h := !h lxor (!h lsr 15);
  h := !h * 0x846CA68B land max_int;
  !h lxor (!h lsr 16)

let simulate_run t ~failure_rate ~seed =
  let spec = t.store_spec in
  let n = Spec.n_tasks spec in
  let statuses = Array.make n Succeeded in
  List.iter
    (fun task ->
      let upstream_ok =
        List.for_all
          (fun p -> statuses.(p) = Succeeded)
          (Spec.producers spec task)
      in
      if not upstream_ok then statuses.(task) <- Skipped
      else begin
        let draw = float_of_int (mix seed task land 0xFFFFFF) /. 16777216.0 in
        if draw < failure_rate then statuses.(task) <- Failed
      end)
    (Spec.topological_order spec);
  push t { statuses; closure = None }

let record_run t observed =
  let spec = t.store_spec in
  let n = Spec.n_tasks spec in
  let statuses = Array.make n Skipped in
  let seen = Array.make n false in
  let rec fill = function
    | [] -> Ok ()
    | (task, st) :: rest ->
      if task < 0 || task >= n then
        Error (Printf.sprintf "unknown task %d" task)
      else if seen.(task) then
        Error (Printf.sprintf "task %S given twice" (Spec.task_name spec task))
      else begin
        seen.(task) <- true;
        statuses.(task) <- st;
        fill rest
      end
  in
  match fill observed with
  | Error _ as e -> e
  | Ok () ->
    if Array.exists not seen then
      Error "every task needs a status"
    else begin
      (* Consistency: a task may only run when all producers succeeded. *)
      let inconsistent =
        List.find_opt
          (fun task ->
            statuses.(task) <> Skipped
            && List.exists
                 (fun p -> statuses.(p) <> Succeeded)
                 (Spec.producers spec task))
          (Spec.tasks spec)
      in
      match inconsistent with
      | Some task ->
        Error
          (Printf.sprintf "task %S ran although an input was missing"
             (Spec.task_name spec task))
      | None -> Ok (push t { statuses; closure = None })
    end

let n_runs t = t.count

let get_run t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Store: unknown run %d" id);
  t.runs.(id)

let status t id task =
  let run = get_run t id in
  if task < 0 || task >= Array.length run.statuses then
    invalid_arg (Printf.sprintf "Store: unknown task %d" task);
  run.statuses.(task)

let succeeded t id =
  let run = get_run t id in
  List.filter (fun task -> run.statuses.(task) = Succeeded)
    (Spec.tasks t.store_spec)

(* Closure of the run's executed subgraph, cached per run. Node identifiers
   match the specification (non-executed tasks become isolated). *)
let run_closure t id =
  let run = get_run t id in
  match run.closure with
  | Some r ->
    Obs.incr m_closure_hits;
    r
  | None ->
    Obs.incr m_closure_builds;
    Obs.time t_closure ~args:(fun () -> [ ("run", string_of_int id) ])
    @@ fun () ->
    let spec = t.store_spec in
    let g = Digraph.create ~initial_capacity:(Spec.n_tasks spec) () in
    Digraph.add_nodes g (Spec.n_tasks spec);
    Digraph.iter_edges
      (fun u v ->
        if run.statuses.(u) = Succeeded && run.statuses.(v) = Succeeded then
          Digraph.add_edge g u v)
      (Spec.graph spec);
    let r = Reach.compute g in
    run.closure <- Some r;
    r

let items_of_run t id =
  let run = get_run t id in
  List.filter
    (fun { Provenance.producer; _ } -> run.statuses.(producer) = Succeeded)
    (Provenance.items t.store_spec)

let run_provenance t id task =
  Obs.incr m_provenance_queries;
  let run = get_run t id in
  if run.statuses.(task) <> Succeeded then []
  else begin
    let r = run_closure t id in
    Bitset.elements (Reach.ancestors r task)
    |> List.filter (fun u -> run.statuses.(u) = Succeeded)
  end

let runs_where_influences t source target =
  Obs.time t_influence
    ~args:(fun () ->
      [ ("source", string_of_int source);
        ("target", string_of_int target);
        ("runs", string_of_int t.count) ])
  @@ fun () ->
  List.filter
    (fun id ->
      let run = get_run t id in
      run.statuses.(source) = Succeeded
      && run.statuses.(target) = Succeeded
      && Reach.reaches (run_closure t id) source target)
    (List.init t.count Fun.id)

let success_rate t task =
  if t.count = 0 then 0.0
  else begin
    let ok = ref 0 in
    for id = 0 to t.count - 1 do
      if t.runs.(id).statuses.(task) = Succeeded then incr ok
    done;
    float_of_int !ok /. float_of_int t.count
  end

(* --- CSV persistence --------------------------------------------------- *)

let status_string = function
  | Succeeded -> "succeeded"
  | Failed -> "failed"
  | Skipped -> "skipped"

let status_of_string = function
  | "succeeded" -> Some Succeeded
  | "failed" -> Some Failed
  | "skipped" -> Some Skipped
  | _ -> None

let quote_field s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let save_csv t path =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc "run,task,status\n";
        for id = 0 to t.count - 1 do
          Array.iteri
            (fun task st ->
              Out_channel.output_string oc
                (Printf.sprintf "%d,%s,%s\n" id
                   (quote_field (Spec.task_name t.store_spec task))
                   (status_string st)))
            t.runs.(id).statuses
        done);
    Ok ()
  with Sys_error msg -> Error msg

(* A minimal CSV row reader handling our own quoting. *)
let parse_row line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let bad = ref false in
  while (not !bad) && !i < n do
    if Buffer.length buf = 0 && !i < n && line.[!i] = '"' then begin
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if line.[!i] = '"' then
          if !i + 1 < n && line.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done;
      if not !closed then bad := true
    end
    else if line.[!i] = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf;
      incr i
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  if !bad then None
  else begin
    fields := Buffer.contents buf :: !fields;
    Some (List.rev !fields)
  end

let load_csv spec path =
  try
    let lines = In_channel.with_open_text path In_channel.input_lines in
    match lines with
    | [] -> Error "empty file"
    | header :: rows ->
      if header <> "run,task,status" then Error "unexpected CSV header"
      else begin
        (* Group rows by run id (they are contiguous but do not rely on it). *)
        let by_run = Hashtbl.create 16 in
        let order = ref [] in
        let parse_error = ref None in
        List.iteri
          (fun lineno line ->
            if !parse_error = None && String.trim line <> "" then
              match parse_row line with
              | Some [ run_s; task_name; status_s ] ->
                (match
                   ( int_of_string_opt run_s,
                     Spec.task_of_name spec task_name,
                     status_of_string status_s )
                 with
                 | Some run, Some task, Some st ->
                   if not (Hashtbl.mem by_run run) then order := run :: !order;
                   Hashtbl.replace by_run run
                     ((task, st)
                      :: Option.value ~default:[] (Hashtbl.find_opt by_run run))
                 | _ ->
                   parse_error :=
                     Some (Printf.sprintf "line %d: bad row" (lineno + 2)))
              | Some _ | None ->
                parse_error := Some (Printf.sprintf "line %d: bad row" (lineno + 2)))
          rows;
        match !parse_error with
        | Some msg -> Error msg
        | None ->
          let store = create spec in
          let rec replay = function
            | [] -> Ok store
            | run :: rest ->
              (match record_run store (Hashtbl.find by_run run) with
               | Ok _ -> replay rest
               | Error msg -> Error (Printf.sprintf "run %d: %s" run msg))
          in
          replay (List.sort compare !order)
      end
  with Sys_error msg -> Error msg
