open Wolves_workflow
module Soundness = Wolves_core.Soundness
module Corrector = Wolves_core.Corrector
module Views = Wolves_workload.Views
module Generate = Wolves_workload.Generate
module Moml = Wolves_moml.Moml

type entry = {
  id : string;
  origin : string;
  spec : Spec.t;
  view : View.t;
}

type t = {
  mutable items : entry list; (* reversed *)
  ids : (string, unit) Hashtbl.t;
  mutable next : int;
}

let create () = { items = []; ids = Hashtbl.create 64; next = 0 }

(* Entry ids become file basenames ([<id>.moml]) and store record keys, so
   anything that could navigate outside the target directory is rejected at
   insertion — not at save time, when the bad id is already in the corpus. *)
let valid_id id =
  id <> "" && id <> "." && id <> ".."
  && not (String.exists (fun c -> c = '/' || c = '\\' || c = '\000') id)

let add repo ?id ~origin spec view =
  if View.spec view != spec then
    invalid_arg "Repository.add: view does not belong to the specification";
  let id =
    match id with
    | Some id -> id
    | None ->
      let fresh = Printf.sprintf "wf%04d" repo.next in
      repo.next <- repo.next + 1;
      fresh
  in
  if not (valid_id id) then
    invalid_arg
      (Printf.sprintf
         "Repository.add: invalid id %S (must be non-empty, without path \
          separators, and not a dot-name)"
         id);
  if Hashtbl.mem repo.ids id then
    invalid_arg (Printf.sprintf "Repository.add: duplicate id %S" id);
  Hashtbl.replace repo.ids id ();
  repo.items <- { id; origin; spec; view } :: repo.items;
  id

let size repo = List.length repo.items

let entries repo = List.rev repo.items

let find repo id = List.find_opt (fun e -> e.id = id) repo.items

let default_policies =
  [ Views.Topological_bands 4; Views.Connected_groups 4; Views.Random_partition 4 ]

let synthesize ~seed ~per_cell ~sizes ?(policies = default_policies) () =
  let repo = create () in
  let rng = Wolves_workload.Prng.create seed in
  List.iter
    (fun family ->
      List.iter
        (fun size ->
          List.iter
            (fun policy ->
              for _ = 1 to per_cell do
                let wf_seed = Wolves_workload.Prng.int rng 10_000_000 in
                let spec = Generate.generate family ~seed:wf_seed ~size in
                let view = Views.build ~seed:wf_seed policy spec in
                let origin =
                  Printf.sprintf "%s/%s" (Generate.family_name family)
                    (Views.policy_name policy)
                in
                ignore (add repo ~origin spec view)
              done)
            policies)
        sizes)
    Generate.all_families;
  repo

type entry_audit = {
  entry : entry;
  total_composites : int;
  unsound_composites : int;
}

type audit = {
  per_entry : entry_audit list;
  total : int;
  unsound_views : int;
  by_origin : (string * int * int) list;
  parallel_lane_composites : int;
  entangled_composites : int;
}

let audit repo =
  let per_entry =
    List.map
      (fun entry ->
        let report = Soundness.validate entry.view in
        { entry;
          total_composites = View.n_composites entry.view;
          unsound_composites = List.length report.Soundness.unsound })
      (entries repo)
  in
  let unsound_views =
    List.length (List.filter (fun a -> a.unsound_composites > 0) per_entry)
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let count, bad =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl a.entry.origin)
      in
      Hashtbl.replace tbl a.entry.origin
        (count + 1, bad + if a.unsound_composites > 0 then 1 else 0))
    per_entry;
  let by_origin =
    List.sort compare
      (Hashtbl.fold (fun origin (count, bad) acc -> (origin, count, bad) :: acc) tbl [])
  in
  let lanes = ref 0 and entangled = ref 0 in
  List.iter
    (fun e ->
      let report = Soundness.validate e.view in
      List.iter
        (fun (c, _) ->
          let set =
            Wolves_graph.Bitset.of_list
              (Spec.n_tasks e.spec)
              (View.members e.view c)
          in
          match Soundness.classify_unsound e.spec set with
          | Some (Soundness.Parallel_lanes _) -> incr lanes
          | Some Soundness.Entangled -> incr entangled
          | None -> ())
        report.Soundness.unsound)
    (entries repo);
  { per_entry;
    total = List.length per_entry;
    unsound_views;
    by_origin;
    parallel_lane_composites = !lanes;
    entangled_composites = !entangled }

let pp_audit ppf a =
  Format.fprintf ppf "%d views audited, %d unsound (%.1f%%)" a.total
    a.unsound_views
    (if a.total = 0 then 0.0
     else 100.0 *. float_of_int a.unsound_views /. float_of_int a.total);
  List.iter
    (fun (origin, count, bad) ->
      Format.fprintf ppf "@\n  %-50s %3d views, %3d unsound" origin count bad)
    a.by_origin;
  if a.parallel_lane_composites + a.entangled_composites > 0 then
    Format.fprintf ppf
      "@\nunsound composite patterns: %d parallel-lane, %d entangled"
      a.parallel_lane_composites a.entangled_composites

let correct_all ?(config = Corrector.default_config) criterion repo =
  let repaired = ref 0 in
  let repo' = create () in
  List.iter
    (fun e ->
      if Soundness.is_sound e.view then
        ignore (add repo' ~id:e.id ~origin:e.origin e.spec e.view)
      else begin
        incr repaired;
        let corrected, _ = Corrector.correct ~config criterion e.view in
        ignore
          (add repo' ~id:e.id ~origin:(e.origin ^ "+corrected") e.spec corrected)
      end)
    (entries repo);
  (repo', !repaired)

let update repo ~id new_spec =
  match find repo id with
  | None -> Error (Printf.sprintf "no entry %S" id)
  | Some entry ->
    let impact = Wolves_core.Evolution.impact entry.view new_spec in
    let replacement =
      { entry with
        spec = new_spec;
        view = impact.Wolves_core.Evolution.new_view;
        origin = entry.origin ^ "+evolved" }
    in
    repo.items <-
      List.map (fun e -> if e.id = id then replacement else e) repo.items;
    Ok impact

type io_error =
  | Io_error of string
  | Entry_error of string * Moml.error

let pp_io_error ppf = function
  | Io_error msg -> Format.pp_print_string ppf msg
  | Entry_error (file, err) ->
    Format.fprintf ppf "%s: %a" file Moml.pp_error err

exception Io of io_error

let tmp_counter = ref 0

let fsync_path path flags =
  match Unix.openfile path flags 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save_dir dir repo =
  try
    (match (try Some (Sys.is_directory dir) with Sys_error _ -> None) with
     | Some true -> ()
     | Some false ->
       raise (Io (Io_error (dir ^ ": exists and is not a directory")))
     | None -> Sys.mkdir dir 0o755);
    (* Sweep temporaries left by an earlier crashed or interrupted save:
       they are dead by construction (every live temporary is renamed away
       before save_dir returns). *)
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    List.iter
      (fun e ->
        let file = e.id ^ ".moml" in
        let final = Filename.concat dir file in
        (* Atomic per file: build the entry under a unique temporary name —
           pid + counter, so concurrent savers into the same directory never
           collide — fsync it, and only rename it into place once durable,
           so an interrupted or failed save never leaves a truncated [.moml]
           behind. *)
        incr tmp_counter;
        let tmp =
          Printf.sprintf "%s.%d-%d.tmp" final (Unix.getpid ()) !tmp_counter
        in
        match Moml.save tmp e.view with
        | Ok () ->
          fsync_path tmp [ Unix.O_WRONLY ];
          Sys.rename tmp final
        | Error err ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise (Io (Entry_error (file, err))))
      (entries repo);
    (* One directory fsync covers every rename above. *)
    fsync_path dir [ Unix.O_RDONLY ];
    Ok ()
  with
  | Io err -> Error err
  | Sys_error msg -> Error (Io_error msg)

let moml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".moml")
  |> List.sort compare

let load_dir dir =
  match moml_files dir with
  | exception Sys_error msg -> Error (Io_error msg)
  | files ->
    let repo = create () in
    (try
       List.iter
         (fun file ->
           match Moml.load (Filename.concat dir file) with
           | Ok (spec, view) ->
             ignore
               (add repo
                  ~id:(Filename.chop_suffix file ".moml")
                  ~origin:"imported" spec view)
           | Error err -> raise (Io (Entry_error (file, err))))
         files;
       Ok repo
     with
     | Io err -> Error err
     | Sys_error msg -> Error (Io_error msg))

let load_dir_lenient dir =
  match moml_files dir with
  | exception Sys_error msg -> Error (Io_error msg)
  | files ->
    let repo = create () in
    let failed = ref [] in
    List.iter
      (fun file ->
        match Moml.load (Filename.concat dir file) with
        | Ok (spec, view) ->
          ignore
            (add repo
               ~id:(Filename.chop_suffix file ".moml")
               ~origin:"imported" spec view)
        | Error err -> failed := (file, Entry_error (file, err)) :: !failed
        | exception Sys_error msg ->
          failed := (file, Io_error msg) :: !failed)
      files;
    Ok (repo, List.rev !failed)

(* --- store-backed persistence --- *)

module Store = Wolves_storage.Store

let store_error e = Io_error (Format.asprintf "%a" Store.pp_error e)

let save_store ?config dir repo =
  let open_for_append () =
    if Store.is_store dir then
      Result.map fst (Store.open_ dir)
    else Store.init ?config dir
  in
  match open_for_append () with
  | Error e -> Error (store_error e)
  | Ok store ->
    let result =
      try
        List.iter
          (fun e ->
            match
              Store.append store Store.Workflow ~id:e.id (Moml.to_string e.view)
            with
            | Ok () -> ()
            | Error err -> raise (Io (store_error err)))
          (entries repo);
        (match Store.close store with
         | Ok () -> Ok ()
         | Error err -> Error (store_error err))
      with Io err ->
        ignore (Store.close store);
        Error err
    in
    result

let load_store dir =
  match Store.open_ dir with
  | Error e -> Error (store_error e)
  | Ok (store, _recovery) ->
    let result =
      match Store.latest store Store.Workflow with
      | Error e -> Error (store_error e)
      | Ok records ->
        let repo = create () in
        (try
           List.iter
             (fun (r : Store.record) ->
               match Moml.of_string r.Store.value with
               | Ok (spec, view) ->
                 ignore (add repo ~id:r.Store.id ~origin:"store" spec view)
               | Error err -> raise (Io (Entry_error (r.Store.id, err))))
             records;
           Ok repo
         with Io err -> Error err)
    in
    ignore (Store.close store);
    result
