(** A workflow repository: named (specification, view) pairs.

    Simulates the curated repositories the paper surveyed (Kepler,
    myExperiment) — see DESIGN.md, Substitutions. Supports synthesis from the
    workload generators, soundness audits (the paper's "our survey … revealed
    unsound views"), batch correction, and MoML directory persistence. *)

open Wolves_workflow

type entry = {
  id : string;
  origin : string;  (** generator family / view policy, or ["imported"] *)
  spec : Spec.t;
  view : View.t;
}

type t

val create : unit -> t

val add : t -> ?id:string -> origin:string -> Spec.t -> View.t -> string
(** Insert an entry; the generated (or given) id is returned.
    @raise Invalid_argument on a duplicate id, a view over a different
    specification, or an id unusable as a file basename: empty, containing
    a path separator ([/] or [\ ]) or NUL, or a dot-name ([.] / [..]) —
    such ids would let {!save_dir} write outside its target directory. *)

val size : t -> int

val entries : t -> entry list
(** In insertion order. *)

val find : t -> string -> entry option

val synthesize :
  seed:int ->
  per_cell:int ->
  sizes:int list ->
  ?policies:Wolves_workload.Views.policy list ->
  unit ->
  t
(** A corpus crossing all workflow families × [sizes] × view [policies]
    (default: topological bands of 4, connected groups of 4, random
    partitions of 4), [per_cell] entries each. *)

(** Result of auditing one entry. *)
type entry_audit = {
  entry : entry;
  total_composites : int;
  unsound_composites : int;
}

(** Aggregate audit (E-AUDIT). *)
type audit = {
  per_entry : entry_audit list;
  total : int;
  unsound_views : int;
  by_origin : (string * int * int) list;
      (** origin, entries with that origin, unsound among them *)
  parallel_lane_composites : int;
      (** unsound composites that group dataflow-independent branches *)
  entangled_composites : int;
      (** unsound composites with crossing structure (Figure 3 style) *)
}

val audit : t -> audit

val pp_audit : Format.formatter -> audit -> unit

val correct_all :
  ?config:Wolves_core.Corrector.config ->
  Wolves_core.Corrector.criterion ->
  t ->
  t * int
(** Replace every unsound view by its correction; returns the new repository
    and how many views were corrected. Corrected entries keep their id with
    an ["+corrected"] origin suffix. *)

val update :
  t -> id:string -> Spec.t -> (Wolves_core.Evolution.impact, string) result
(** Evolve one entry to a new specification version: its view is migrated
    (surviving members keep their composites, new tasks become singletons),
    the entry is replaced in place with an ["+evolved"] origin suffix, and
    the per-composite soundness impact is returned. *)

(** Failure of directory persistence. *)
type io_error =
  | Io_error of string
      (** filesystem trouble (the [Sys_error] message) *)
  | Entry_error of string * Wolves_moml.Moml.error
      (** one entry failed to (de)serialise: file basename and the MoML
          error *)

val pp_io_error : Format.formatter -> io_error -> unit

val save_dir : string -> t -> (unit, io_error) result
(** Write one MoML file per entry ([<id>.moml]) into the directory (created
    if missing). Each file is written atomically and durably — built under a
    unique temporary name (pid-tagged, so concurrent savers never collide),
    fsynced, renamed into place, with one directory fsync at the end — so a
    failed or interrupted save never leaves a truncated entry behind
    (earlier entries of the corpus may already have been written). Stale
    [.tmp] files from earlier interrupted saves are swept first. *)

val load_dir : string -> (t, io_error) result
(** Load every [*.moml] file of a directory; entry ids are file basenames.
    Stops at the first entry that fails to parse. *)

val load_dir_lenient : string -> (t * (string * io_error) list, io_error) result
(** Like {!load_dir}, but best-effort: entries that fail to read or parse
    are collected as [(file, error)] pairs instead of aborting the load.
    Only a failure to list the directory itself is a top-level [Error]. *)

(** {2 Store-backed persistence}

    The MoML directory format above is one file per entry; the store format
    ({!Wolves_storage.Store}) is a crash-safe sharded append-only log
    holding the same MoML documents as records, with checksummed recovery —
    see TUTORIAL.md, "Durable storage". *)

val save_store :
  ?config:Wolves_storage.Store.config -> string -> t -> (unit, io_error) result
(** Append every entry to the store at [dir] (initialised when absent) as a
    [Workflow] record keyed by entry id — re-saving a repository supersedes
    earlier versions of its entries — then sync and close. *)

val load_store : string -> (t, io_error) result
(** Load the newest [Workflow] record per id from the store at [dir]
    (running crash recovery if needed) and parse each as MoML. Entries get
    origin ["store"]. *)
