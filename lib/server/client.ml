type t = { conn : Net_io.t; reader : Net_io.Lines.reader }

let max_reply_line = 1 lsl 20

let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> ()

let connect ?(timeout_s = 10.) target =
  ignore_sigpipe ();
  match
    let fd =
      match target with
      | `Tcp (host, port) ->
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith (Printf.sprintf "cannot resolve %s" host)
              | { Unix.h_addr_list; _ } -> h_addr_list.(0)
              | exception Not_found ->
                  failwith (Printf.sprintf "cannot resolve %s" host))
          in
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_INET (addr, port))
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          fd
      | `Unix path ->
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          fd
    in
    let conn =
      Net_io.of_fd ~read_timeout_s:timeout_s ~write_timeout_s:timeout_s fd
    in
    { conn; reader = Net_io.Lines.reader conn }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | exception Failure msg -> Error msg

let close t = try t.conn.Net_io.close () with _ -> ()

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let read_line t =
  match Net_io.Lines.read_line t.reader ~max_bytes:max_reply_line with
  | `Line l -> Ok l
  | `Eof -> Error "connection closed by server"
  | `Too_long -> Error "oversized reply line"

let request t line =
  match
    Net_io.send_all t.conn (line ^ "\n");
    let ( let* ) = Result.bind in
    let* head = read_line t in
    match words head with
    | [ "OK"; count ] -> (
        match int_of_string_opt count with
        | Some k when k >= 0 ->
            let rec payload acc n =
              if n = 0 then Ok (Protocol.Ok_lines (List.rev acc))
              else
                let* l = read_line t in
                payload (l :: acc) (n - 1)
            in
            payload [] k
        | _ -> Error (Printf.sprintf "malformed reply header %S" head))
    | "ERR" :: code :: rest ->
        Ok (Protocol.Err (code, String.concat " " rest))
    | [ "OVERLOADED"; ms ] -> (
        match int_of_string_opt ms with
        | Some v -> Ok (Protocol.Overloaded v)
        | None -> Error (Printf.sprintf "malformed reply %S" head))
    | _ -> Error (Printf.sprintf "unparseable reply line %S" head)
  with
  | r -> r
  | exception Net_io.Timeout -> Error "timed out waiting for reply"
  | exception Net_io.Net_error msg -> Error ("connection failed: " ^ msg)
