(** A small blocking client for the {!Protocol} line protocol — the
    in-process harness behind bench E-SERVE, the test-suite's scripted
    sessions, and the [wolves call] CLI. *)

type t

val connect :
  ?timeout_s:float ->
  [ `Tcp of string * int | `Unix of string ] ->
  (t, string) result
(** Connect with [timeout_s] (default 10) as both receive and send
    deadline. *)

val request : t -> string -> (Protocol.reply, string) result
(** Send one request line (the terminator is appended) and read the full
    framed reply. [Error] on transport failure, deadline, or a framing
    violation — after which the connection should be {!close}d. *)

val close : t -> unit
