(* The wolves top data path: scrape METRICS over a client connection,
   index the samples, render an operator-facing text panel. Kept in the
   library (not the CLI) so the bench harness can exercise the exact
   rendering CI sees from `wolves top --once`. *)

module Clock = Wolves_obs.Clock

type series = {
  name : string;
  labels : (string * string) list;
  value : float;
}

type sample = { at : float; series : series list }

let parse_line line =
  (* the exposition grammar, minus the validation Prom.check does *)
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else
    let is_name_char c =
      (c >= 'a' && c <= 'z')
      || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9')
      || c = '_' || c = ':'
    in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    if !i = 0 then None
    else begin
      let name = String.sub line 0 !i in
      let labels = ref [] in
      (if !i < n && line.[!i] = '{' then
         match String.index_from_opt line !i '}' with
         | None -> i := n
         | Some close ->
             let body = String.sub line (!i + 1) (close - !i - 1) in
             String.split_on_char ',' body
             |> List.iter (fun kv ->
                    match String.index_opt kv '=' with
                    | None -> ()
                    | Some eq ->
                        let k = String.sub kv 0 eq in
                        let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                        let v =
                          if String.length v >= 2 && v.[0] = '"' then
                            String.sub v 1 (String.length v - 2)
                          else v
                        in
                        labels := (k, v) :: !labels);
             i := close + 1);
      let rest = String.trim (String.sub line !i (n - !i)) in
      let tok =
        match String.index_opt rest ' ' with
        | None -> rest
        | Some sp -> String.sub rest 0 sp
      in
      match float_of_string_opt (String.lowercase_ascii tok) with
      | None -> None
      | Some value -> Some { name; labels = List.rev !labels; value }
    end

let parse_exposition lines =
  { at = Clock.now (); series = List.filter_map parse_line lines }

let value ?(labels = []) sample name =
  let matches s =
    s.name = name
    && List.for_all
         (fun (k, v) -> List.assoc_opt k s.labels = Some v)
         labels
  in
  match List.find_opt matches sample.series with
  | Some s -> Some s.value
  | None -> None

let fetch client =
  match Client.request client "METRICS" with
  | Error e -> Error e
  | Ok (Protocol.Ok_lines lines) -> Ok (parse_exposition lines)
  | Ok (Protocol.Err (code, msg)) -> Error (Printf.sprintf "%s: %s" code msg)
  | Ok (Protocol.Overloaded ms) ->
      Error (Printf.sprintf "overloaded, retry in %dms" ms)

let v0 ?labels sample name = Option.value ~default:0. (value ?labels sample name)

let render ?prev sample =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let uptime = v0 sample "wolves_server_uptime_seconds" in
  let requests = v0 sample "wolves_server_requests_total" in
  let qps =
    match prev with
    | Some p when sample.at > p.at ->
        (requests -. v0 p "wolves_server_requests_total")
        /. (sample.at -. p.at)
    | _ -> if uptime > 0. then requests /. uptime else 0.
  in
  let shed = v0 sample "wolves_server_shed_total" in
  let shed_rate =
    match prev with
    | Some p when sample.at > p.at ->
        (shed -. v0 p "wolves_server_shed_total") /. (sample.at -. p.at)
    | _ -> if uptime > 0. then shed /. uptime else 0.
  in
  line "wolves top — uptime %.1fs%s" uptime
    (if v0 sample "wolves_server_draining" > 0. then "  DRAINING" else "");
  line
    "requests %.0f  qps %.1f  errors %.0f  shed %.0f (%.1f/s)  timeouts %.0f"
    requests qps
    (v0 sample "wolves_server_errors_total")
    shed shed_rate
    (v0 sample "wolves_server_timeouts_total");
  line "in-flight %.0f  queue %.0f  connections %.0f  p50 %.2fms  p99 %.2fms"
    (v0 sample "wolves_server_in_flight")
    (v0 sample "wolves_server_queue_depth")
    (v0 sample "wolves_server_connections_total")
    (v0 sample "wolves_server_latency_seconds_quantile"
       ~labels:[ ("quantile", "0.5") ]
    *. 1e3)
    (v0 sample "wolves_server_latency_seconds_quantile"
       ~labels:[ ("quantile", "0.99") ]
    *. 1e3);
  line "";
  line "%-10s %10s %8s %10s %10s" "verb" "requests" "errors" "p50_ms" "p99_ms";
  Array.iter
    (fun verb ->
      let n =
        v0 sample "wolves_server_verb_requests_total"
          ~labels:[ ("verb", verb) ]
      in
      if n > 0. then
        line "%-10s %10.0f %8.0f %10.2f %10.2f" verb n
          (v0 sample "wolves_server_verb_errors_total"
             ~labels:[ ("verb", verb) ])
          (v0 sample "wolves_server_verb_latency_seconds_quantile"
             ~labels:[ ("verb", verb); ("quantile", "0.5") ]
          *. 1e3)
          (v0 sample "wolves_server_verb_latency_seconds_quantile"
             ~labels:[ ("verb", verb); ("quantile", "0.99") ]
          *. 1e3))
    Server.verbs;
  Buffer.contents buf
