(** The data path behind [wolves top]: scrape the [METRICS] exposition
    from a live server, index it, render an operator panel — qps (from
    deltas between polls), shed rate, in-flight, per-verb request/error
    counts and p50/p99. Lives in the library so the bench harness and
    tests can drive the exact rendering [wolves top --once] prints. *)

type series = {
  name : string;
  labels : (string * string) list;
  value : float;
}

type sample = { at : float;  (** monotonic scrape time *) series : series list }

val parse_exposition : string list -> sample
(** Index exposition lines (comments skipped, unparsable lines dropped —
    validation is {!Wolves_obs.Prom.check}'s job), stamped with the
    monotonic clock. *)

val value : ?labels:(string * string) list -> sample -> string -> float option
(** First series with that name whose labels include all of [labels]. *)

val fetch : Client.t -> (sample, string) result
(** One [METRICS] round trip, parsed. *)

val render : ?prev:sample -> sample -> string
(** The panel. With [prev] (the previous poll), qps and shed rate are
    deltas over the poll interval; without it they are lifetime
    averages. *)
