exception Timeout
exception Net_error of string

type t = {
  recv : bytes -> int -> int -> int;
  send : string -> int -> int -> int;
  close : unit -> unit;
}

let of_fd ?(read_timeout_s = 10.) ?(write_timeout_s = 10.) fd =
  (* SO_RCVTIMEO/SO_SNDTIMEO turn a wedged peer into EAGAIN without any
     select bookkeeping; a timeout of 0 means "block forever" to the
     kernel, so clamp to a small positive floor instead. *)
  let clamp s = Float.max 0.01 s in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO (clamp read_timeout_s);
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO (clamp write_timeout_s)
   with Unix.Unix_error _ -> ());
  let rec recv buf off len =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Timeout
    | exception Unix.Unix_error (e, _, _) ->
        raise (Net_error (Unix.error_message e))
  in
  let rec send s off len =
    match Unix.write_substring fd s off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> send s off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Timeout
    | exception Unix.Unix_error (e, _, _) ->
        raise (Net_error (Unix.error_message e))
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  { recv; send; close }

let of_string input out =
  let pos = ref 0 in
  let recv buf off len =
    let n = min len (String.length input - !pos) in
    if n > 0 then begin
      Bytes.blit_string input !pos buf off n;
      pos := !pos + n
    end;
    max n 0
  in
  let send s off len =
    Buffer.add_substring out s off len;
    len
  in
  { recv; send; close = (fun () -> ()) }

let send_all t s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w = t.send s off (n - off) in
      if w <= 0 then raise (Net_error "send made no progress");
      go (off + w)
    end
  in
  go 0

module Lines = struct
  type reader = { conn : t; buf : Buffer.t; chunk : bytes }

  let reader conn = { conn; buf = Buffer.create 256; chunk = Bytes.create 4096 }

  let read_line r ~max_bytes =
    let rec go () =
      let s = Buffer.contents r.buf in
      match String.index_opt s '\n' with
      | Some i when i > max_bytes -> `Too_long
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear r.buf;
          Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
          let line =
            let n = String.length line in
            if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
            else line
          in
          `Line line
      | None ->
          if String.length s > max_bytes then `Too_long
          else
            let n = r.conn.recv r.chunk 0 (Bytes.length r.chunk) in
            if n = 0 then `Eof
            else begin
              Buffer.add_subbytes r.buf r.chunk 0 n;
              go ()
            end
    in
    go ()
end

type fault =
  | Short_reads
  | Short_writes
  | Disconnect_after_recv of int
  | Error_after_send of int
  | Stall_after_recv of int
  | Garbage_after_recv of int * int

type injector = {
  mutable received : int;
  mutable sent : int;
  mutable fired : bool;
}

(* Deterministic per-(seed, offset) garbage byte: a murmur-style finaliser
   so neighbouring offsets decorrelate. *)
let garbage_byte seed off =
  let x = (seed * 0x9E3779B1) lxor (off * 0x85EBCA77) in
  let x = x lxor (x lsr 13) in
  let x = x * 0xC2B2AE3D in
  (x lxor (x lsr 16)) land 0xFF

let faulty fault inner =
  let inj = { received = 0; sent = 0; fired = false } in
  let recv buf off len =
    match fault with
    | Disconnect_after_recv n ->
        if inj.received >= n then begin
          inj.fired <- true;
          0
        end
        else begin
          let len = min len (n - inj.received) in
          let r = inner.recv buf off len in
          inj.received <- inj.received + r;
          r
        end
    | Stall_after_recv n ->
        if inj.received >= n then begin
          inj.fired <- true;
          raise Timeout
        end
        else begin
          let len = min len (n - inj.received) in
          let r = inner.recv buf off len in
          inj.received <- inj.received + r;
          r
        end
    | Garbage_after_recv (n, seed) ->
        let r = inner.recv buf off len in
        for k = 0 to r - 1 do
          let global = inj.received + k in
          if global >= n then begin
            inj.fired <- true;
            Bytes.set buf (off + k) (Char.chr (garbage_byte seed global))
          end
        done;
        inj.received <- inj.received + r;
        r
    | Short_reads ->
        if len = 0 then 0
        else begin
          inj.fired <- true;
          let r = inner.recv buf off 1 in
          inj.received <- inj.received + r;
          r
        end
    | Short_writes | Error_after_send _ ->
        let r = inner.recv buf off len in
        inj.received <- inj.received + r;
        r
  in
  let send s off len =
    match fault with
    | Short_writes ->
        if len = 0 then 0
        else begin
          inj.fired <- true;
          let w = inner.send s off 1 in
          inj.sent <- inj.sent + w;
          w
        end
    | Error_after_send n ->
        if inj.sent >= n then begin
          inj.fired <- true;
          raise (Net_error "injected send failure")
        end
        else begin
          let len = min len (n - inj.sent) in
          let w = inner.send s off len in
          inj.sent <- inj.sent + w;
          w
        end
    | Short_reads | Disconnect_after_recv _ | Stall_after_recv _
    | Garbage_after_recv _ ->
        let w = inner.send s off len in
        inj.sent <- inj.sent + w;
        w
  in
  ({ recv; send; close = inner.close }, inj)
