(** The pluggable connection I/O layer underneath {!Server}.

    Every byte the server exchanges with a client goes through one of these
    records — the real implementation wraps a connected socket with receive
    and send timeouts, the in-memory one backs unit tests, and {!faulty}
    wraps either with injected network pathologies (short reads and writes,
    mid-request disconnects, byte-level garbage, stalled peers). The design
    mirrors {!Wolves_storage.Storage_io}: production code cannot tell the
    implementations apart, so the chaos property tests exercise exactly the
    code that serves real connections. *)

exception Timeout
(** A receive or send exceeded its deadline (slow-loris client, stalled
    consumer). The connection is unusable afterwards. *)

exception Net_error of string
(** The peer vanished or the transport failed (reset, broken pipe, injected
    fault). The connection is unusable afterwards. *)

type t = {
  recv : bytes -> int -> int -> int;
      (** [recv buf off len] reads at most [len] bytes into [buf] at
          [off]; returns the count actually read, [0] meaning end of
          stream. May return fewer bytes than asked (short read).
          @raise Timeout / Net_error as above. *)
  send : string -> int -> int -> int;
      (** [send s off len] writes at most [len] bytes of [s] from [off];
          returns the count actually written, possibly short. Use
          {!send_all} to write a whole reply. *)
  close : unit -> unit;  (** Release the transport. Idempotence is the
                             caller's concern; {!Server} guards it. *)
}

val of_fd : ?read_timeout_s:float -> ?write_timeout_s:float ->
  Unix.file_descr -> t
(** Wrap a connected socket. Timeouts (default 10 s each) are enforced with
    [SO_RCVTIMEO]/[SO_SNDTIMEO] and surface as {!Timeout}; [EINTR] is
    retried; every other transport error surfaces as {!Net_error}.
    [close] closes the descriptor. *)

val of_string : string -> Buffer.t -> t
(** [of_string input out] is an in-memory connection: [recv] drains
    [input] then reports end of stream, [send] appends to [out], [close]
    does nothing. Deterministic — the chaos tests' substrate. *)

val send_all : t -> string -> unit
(** Write the whole string, looping over short writes.
    @raise Net_error if the connection makes no progress. *)

(** Buffered line reading on top of a connection. *)
module Lines : sig
  type reader

  val reader : t -> reader

  val read_line : reader -> max_bytes:int -> [ `Line of string | `Eof | `Too_long ]
  (** Next LF-terminated line, without its terminator (a trailing CR is
      also stripped, so CRLF clients work). [`Too_long] once a line
      exceeds [max_bytes] without a terminator — the stream cannot be
      re-synchronised, the caller must close. A trailing partial line at
      end of stream is discarded ([`Eof]). Receive exceptions propagate. *)
end

(** One injected network pathology. Byte counts are cumulative over the
    connection's lifetime, so a schedule is a single integer — the chaos
    test sweeps it across every byte offset of a session. *)
type fault =
  | Short_reads  (** every receive returns at most one byte *)
  | Short_writes  (** every send accepts at most one byte *)
  | Disconnect_after_recv of int
      (** end of stream after [n] bytes have been received *)
  | Error_after_send of int
      (** [Net_error] once [n] bytes have been sent (peer reset mid-reply) *)
  | Stall_after_recv of int
      (** {!Timeout} once [n] bytes have been received (slow-loris) *)
  | Garbage_after_recv of int * int
      (** [(n, seed)]: every received byte from offset [n] on is replaced
          with deterministic pseudo-random garbage *)

(** Live counters exposed to the test harness. *)
type injector = {
  mutable received : int;  (** bytes delivered to the server so far *)
  mutable sent : int;  (** bytes accepted from the server so far *)
  mutable fired : bool;  (** the fault actually triggered *)
}

val faulty : fault -> t -> t * injector
(** Wrap a connection with one fault. The returned connection behaves
    identically up to the fault point. *)
