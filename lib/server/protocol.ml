open Wolves_core

type correction =
  | Criterion of Corrector.criterion
  | Deadline_ms of float

type request =
  | Ping
  | List_ids
  | Stats
  | Health
  | Metrics
  | Trace
  | Quit
  | Validate of string
  | Correct of string * correction option
  | Query of string * string
  | Lint of string
  | Analyze of string

type reply =
  | Ok_lines of string list
  | Err of string * string
  | Overloaded of int

let sanitize s =
  let s =
    String.map
      (fun c ->
        match c with
        | '\n' | '\r' | '\t' -> ' '
        | c when Char.code c < 32 || Char.code c > 126 -> '?'
        | c -> c)
      s
  in
  if String.length s > 200 then String.sub s 0 200 ^ "..." else s

(* Payload lines come from the library (task names, diagnostics): fold any
   stray newline into a space so framing survives, but otherwise leave them
   verbatim. *)
let oneline s =
  if String.contains s '\n' || String.contains s '\r' then
    String.map (function '\n' | '\r' -> ' ' | c -> c) s
  else s

(* First space-separated token and the raw remainder (leading spaces kept
   on neither side of the cut). *)
let next_token s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && s.[!i] = ' ' do incr i done;
  let j = ref !i in
  while !j < n && s.[!j] <> ' ' do incr j done;
  if !j = !i then None
  else Some (String.sub s !i (!j - !i), String.sub s !j (n - !j))

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let usage = function
  | "PING" | "LIST" | "STATS" | "HEALTH" | "METRICS" | "TRACE" | "QUIT" ->
      "takes no argument"
  | "VALIDATE" -> "usage: VALIDATE <id>"
  | "CORRECT" -> "usage: CORRECT <id> [weak|strong|optimal | DEADLINE <ms>]"
  | "QUERY" -> "usage: QUERY <id> <expr>"
  | "LINT" -> "usage: LINT <id>"
  | "ANALYZE" -> "usage: ANALYZE <id>"
  | _ -> "unusable"

let parse line =
  match next_token line with
  | None -> Error ("bad-request", "empty request line")
  | Some (cmd, rest) -> (
      let c = String.uppercase_ascii cmd in
      let bad () = Error ("bad-request", usage c) in
      match c with
      | "PING" | "LIST" | "STATS" | "HEALTH" | "METRICS" | "TRACE" | "QUIT"
        -> (
          match words rest with
          | [] ->
              Ok
                (match c with
                | "PING" -> Ping
                | "LIST" -> List_ids
                | "STATS" -> Stats
                | "HEALTH" -> Health
                | "METRICS" -> Metrics
                | "TRACE" -> Trace
                | _ -> Quit)
          | _ -> bad ())
      | "VALIDATE" | "LINT" | "ANALYZE" -> (
          match words rest with
          | [ id ] ->
              Ok
                (match c with
                | "VALIDATE" -> Validate id
                | "LINT" -> Lint id
                | _ -> Analyze id)
          | _ -> bad ())
      | "CORRECT" -> (
          match words rest with
          | [ id ] -> Ok (Correct (id, None))
          | [ id; crit ] -> (
              match Corrector.criterion_of_string (String.lowercase_ascii crit) with
              | Some crit -> Ok (Correct (id, Some (Criterion crit)))
              | None ->
                  Error
                    ( "bad-request",
                      Printf.sprintf "unknown criterion %s (%s)" (sanitize crit)
                        (usage c) ))
          | [ id; kw; ms ] when String.uppercase_ascii kw = "DEADLINE" -> (
              match float_of_string_opt ms with
              | Some v when v >= 0. && Float.is_finite v ->
                  Ok (Correct (id, Some (Deadline_ms v)))
              | _ ->
                  Error
                    ( "bad-request",
                      "DEADLINE wants a non-negative millisecond count" ))
          | _ -> bad ())
      | "QUERY" -> (
          match next_token rest with
          | None -> bad ()
          | Some (id, expr) ->
              let expr = String.trim expr in
              if expr = "" then bad () else Ok (Query (id, expr)))
      | _ -> Error ("unknown-command", sanitize cmd))

let render = function
  | Ok_lines lines ->
      let b = Buffer.create 128 in
      Buffer.add_string b (Printf.sprintf "OK %d\n" (List.length lines));
      List.iter
        (fun l ->
          Buffer.add_string b (oneline l);
          Buffer.add_char b '\n')
        lines;
      Buffer.contents b
  | Err (code, msg) -> Printf.sprintf "ERR %s %s\n" code (sanitize msg)
  | Overloaded ms -> Printf.sprintf "OVERLOADED %d\n" ms

let kind = function
  | Ping -> "ping"
  | List_ids -> "list"
  | Stats -> "stats"
  | Health -> "health"
  | Metrics -> "metrics"
  | Trace -> "trace"
  | Quit -> "quit"
  | Validate _ -> "validate"
  | Correct _ -> "correct"
  | Query _ -> "query"
  | Lint _ -> "lint"
  | Analyze _ -> "analyze"

let parse_reply_stream s =
  let n = String.length s in
  (* [line_at pos] = Some (line, next_pos) when a full LF-terminated line
     starts at [pos]. *)
  let line_at pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  let rec go acc pos =
    if pos >= n then Ok (List.rev acc, "")
    else
      match line_at pos with
      | None -> Ok (List.rev acc, String.sub s pos (n - pos))
      | Some (line, next) -> (
          match words line with
          | [ "OK"; count ] -> (
              match int_of_string_opt count with
              | Some k when k >= 0 ->
                  let rec payload got p =
                    if List.length got = k then
                      go (Ok_lines (List.rev got) :: acc) p
                    else
                      match line_at p with
                      | None ->
                          (* frame cut mid-payload: everything from the OK
                             header on is the unfinished tail *)
                          Ok (List.rev acc, String.sub s pos (n - pos))
                      | Some (l, p') -> payload (l :: got) p'
                  in
                  payload [] next
              | _ -> Error (Printf.sprintf "malformed OK header %S" line))
          | "ERR" :: code :: rest ->
              go (Err (code, String.concat " " rest) :: acc) next
          | [ "OVERLOADED"; ms ] -> (
              match int_of_string_opt ms with
              | Some v -> go (Overloaded v :: acc) next
              | None -> Error (Printf.sprintf "malformed OVERLOADED %S" line))
          | _ -> Error (Printf.sprintf "unparseable reply line %S" line))
  in
  go [] 0
