(** The wire protocol of {!Server}: LF-terminated request lines, framed
    replies. See [docs/PROTOCOL.md] for the client-facing description.

    Requests (one line, space-separated, command case-insensitive):
    {v
    PING | LIST | STATS | HEALTH | METRICS | TRACE | QUIT
    VALIDATE <id>
    CORRECT <id> [weak|strong|optimal]
    CORRECT <id> DEADLINE <ms>
    QUERY <id> <expr...>
    LINT <id> | ANALYZE <id>
    v}

    Replies:
    {v
    OK <n>            followed by n payload lines
    ERR <code> <msg>  single line
    OVERLOADED <ms>   single line, retry-after hint
    v} *)

open Wolves_core

(** How a [CORRECT] request wants its correction bounded. *)
type correction =
  | Criterion of Corrector.criterion
  | Deadline_ms of float
      (** run {!Corrector.correct_with_deadline} under this budget;
          the server charges its queue wait against it *)

type request =
  | Ping
  | List_ids
  | Stats
  | Health
  | Metrics
      (** Prometheus text-format exposition of the server's own families
          plus the {!Wolves_obs.Metrics} registry *)
  | Trace
      (** drain the sampled-request trace ring as Chrome trace-event JSONL
          (requires the server to run with trace sampling on) *)
  | Quit
  | Validate of string
  | Correct of string * correction option
      (** [None]: the server's default deadline if configured, else the
          strong criterion *)
  | Query of string * string  (** id, query expression (raw remainder) *)
  | Lint of string
  | Analyze of string

type reply =
  | Ok_lines of string list
  | Err of string * string  (** machine code, human message *)
  | Overloaded of int  (** retry-after hint, milliseconds *)

val parse : string -> (request, string * string) result
(** Parse one request line. [Error (code, message)] uses the same codes as
    {!Err} ([bad-request], [unknown-command]). Total: any byte garbage
    parses to an [Error], never raises. *)

val render : reply -> string
(** Wire form, including all line terminators. Payload lines are folded to
    single lines (embedded newlines become spaces); [Err] messages are
    additionally sanitised to printable ASCII and truncated. *)

val kind : request -> string
(** Lower-case request family name, for metric and span labels. *)

val sanitize : string -> string
(** Printable-ASCII projection of an untrusted string, truncated to 200
    bytes — safe to embed in a single-line reply or log. *)

val parse_reply_stream : string -> (reply list * string, string) result
(** Parse a concatenation of rendered replies, e.g. everything a server
    wrote on one connection. Returns the complete replies in order plus
    any trailing bytes that do not yet form a complete reply (a reply cut
    mid-frame by a fault). [Error] when a completed line violates the
    protocol — the chaos tests' well-formedness oracle. *)
