module Metrics = Wolves_obs.Metrics
module Clock = Wolves_obs.Clock

type config = {
  workers : int;
  queue_depth : int;
  read_timeout_s : float;
  write_timeout_s : float;
  max_request_bytes : int;
  default_deadline_ms : float option;
  retry_after_ms : int;
  drain_grace_s : float;
}

let default_config =
  { workers = 4;
    queue_depth = 64;
    read_timeout_s = 10.;
    write_timeout_s = 10.;
    max_request_bytes = 64 * 1024;
    default_deadline_ms = None;
    retry_after_ms = 100;
    drain_grace_s = 5. }

let validate_config c =
  if c.workers < 1 then invalid_arg "Server: workers must be >= 1";
  if c.queue_depth < 1 then invalid_arg "Server: queue_depth must be >= 1";
  if c.read_timeout_s <= 0. || c.write_timeout_s <= 0. then
    invalid_arg "Server: timeouts must be positive";
  if c.max_request_bytes < 16 then
    invalid_arg "Server: max_request_bytes must be >= 16";
  if c.retry_after_ms < 0 then invalid_arg "Server: retry_after_ms must be >= 0";
  if c.drain_grace_s < 0. then invalid_arg "Server: drain_grace_s must be >= 0"

type stats = {
  connections : int;
  requests : int;
  errors : int;
  shed : int;
  timeouts : int;
  in_flight : int;
  queue_depth : int;
  draining : bool;
}

(* Log-scale latency histogram over lock-free buckets: bucket [i] counts
   requests in [2^(i-1), 2^i) microseconds. Good to ~70 s with 1-bit
   resolution, which is all a p50/p99 readout needs. *)
module Hist = struct
  let buckets = 40

  type t = int Atomic.t array

  let create () = Array.init buckets (fun _ -> Atomic.make 0)

  let observe (h : t) seconds =
    let us = int_of_float (Float.max 0. seconds *. 1e6) in
    let rec index i v = if v = 0 || i >= buckets - 1 then i else index (i + 1) (v lsr 1) in
    Atomic.incr h.(index 0 us)

  let quantile (h : t) q =
    let total = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h in
    if total = 0 then 0.
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let rec go i acc =
        let acc = acc + Atomic.get h.(i) in
        if acc >= rank || i = buckets - 1 then
          (* upper bound of bucket i, in seconds *)
          Float.of_int (1 lsl i) *. 1e-6
        else go (i + 1) acc
      in
      go 0 0
    end
end

type t = {
  config : config;
  service : Service.t;
  stop_flag : bool Atomic.t;
  drained_flag : bool Atomic.t;
  queue : (Unix.file_descr * float) Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  merge_lock : Mutex.t;  (** serialises obs shard merges across domains *)
  stop_lock : Mutex.t;
  mutable stopped : bool;
  mutable acceptor : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  mutable listener : Unix.file_descr option;
  mutable socket_path : string option;
  active : Unix.file_descr option Atomic.t array;
      (** per-worker connection being served, for drain cut-off *)
  c_connections : int Atomic.t;
  c_requests : int Atomic.t;
  c_errors : int Atomic.t;
  c_shed : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_in_flight : int Atomic.t;
  latency : Hist.t;
  started_at : float;
}

(* Obs handles; recorded through per-domain shards (workers are not the
   main domain), merged under [merge_lock]. *)
let m_requests = Metrics.counter "server.requests"
let m_errors = Metrics.counter "server.errors"
let m_shed = Metrics.counter "server.shed"
let m_connections = Metrics.counter "server.connections"
let m_request_time = Metrics.timer "server.request"
let m_queue_depth = Metrics.gauge "server.queue_depth"
let m_in_flight = Metrics.gauge "server.in_flight"

let create ?(config = default_config) service =
  validate_config config;
  { config;
    service;
    stop_flag = Atomic.make false;
    drained_flag = Atomic.make false;
    queue = Queue.create ();
    qlock = Mutex.create ();
    qcond = Condition.create ();
    merge_lock = Mutex.create ();
    stop_lock = Mutex.create ();
    stopped = false;
    acceptor = None;
    worker_domains = [];
    listener = None;
    socket_path = None;
    active = Array.init config.workers (fun _ -> Atomic.make None);
    c_connections = Atomic.make 0;
    c_requests = Atomic.make 0;
    c_errors = Atomic.make 0;
    c_shed = Atomic.make 0;
    c_timeouts = Atomic.make 0;
    c_in_flight = Atomic.make 0;
    latency = Hist.create ();
    started_at = Clock.now () }

let queue_len t =
  Mutex.lock t.qlock;
  let n = Queue.length t.queue in
  Mutex.unlock t.qlock;
  n

let stop_requested t = Atomic.get t.stop_flag
let drained t = Atomic.get t.drained_flag

let stats t =
  { connections = Atomic.get t.c_connections;
    requests = Atomic.get t.c_requests;
    errors = Atomic.get t.c_errors;
    shed = Atomic.get t.c_shed;
    timeouts = Atomic.get t.c_timeouts;
    in_flight = Atomic.get t.c_in_flight;
    queue_depth = queue_len t;
    draining = stop_requested t }

let stats_lines t =
  let s = stats t in
  [ Printf.sprintf "uptime_s %.3f" (Clock.elapsed_since t.started_at);
    Printf.sprintf "corpus %d" (Service.size t.service);
    Printf.sprintf "workers %d" t.config.workers;
    Printf.sprintf "connections %d" s.connections;
    Printf.sprintf "requests %d" s.requests;
    Printf.sprintf "errors %d" s.errors;
    Printf.sprintf "shed %d" s.shed;
    Printf.sprintf "timeouts %d" s.timeouts;
    Printf.sprintf "in_flight %d" s.in_flight;
    Printf.sprintf "queue_depth %d" s.queue_depth;
    Printf.sprintf "latency_p50_ms %.3f" (Hist.quantile t.latency 0.5 *. 1e3);
    Printf.sprintf "latency_p99_ms %.3f" (Hist.quantile t.latency 0.99 *. 1e3);
    Printf.sprintf "draining %b" s.draining ]

let handle_request t ?(spent_s = 0.) request =
  match request with
  | Protocol.Stats -> Protocol.Ok_lines (stats_lines t)
  | Protocol.Health ->
      Protocol.Ok_lines
        [ (if stop_requested t then "draining" else "ok");
          Printf.sprintf "corpus %d" (Service.size t.service) ]
  | request ->
      Service.handle ~domains:1 ~spent_s
        ?default_deadline_ms:t.config.default_deadline_ms t.service request

(* Merge one request's metrics into the registry. Shards keep worker-domain
   recording race-free; the merge itself is serialised by [merge_lock]
   (merge_shard's contract is one merging domain at a time). *)
let record_obs t ~kind ~is_error ~elapsed_s =
  if Metrics.is_enabled () then begin
    let (), shard =
      Metrics.with_new_shard (fun () ->
          Metrics.incr m_requests;
          if is_error then Metrics.incr m_errors;
          Metrics.observe m_request_time elapsed_s;
          Metrics.set m_queue_depth (float_of_int (queue_len t));
          Metrics.set m_in_flight (float_of_int (Atomic.get t.c_in_flight));
          Metrics.instant "server.request" (fun () -> [ ("kind", kind) ]))
    in
    Mutex.lock t.merge_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.merge_lock)
      (fun () -> Metrics.merge_shard shard)
  end

let merge_counter t counter =
  if Metrics.is_enabled () then begin
    let (), shard = Metrics.with_new_shard (fun () -> Metrics.incr counter) in
    Mutex.lock t.merge_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.merge_lock)
      (fun () -> Metrics.merge_shard shard)
  end

let serve_connection t ?(queued_s = 0.) (conn : Net_io.t) =
  Atomic.incr t.c_connections;
  merge_counter t m_connections;
  let reader = Net_io.Lines.reader conn in
  (* best-effort send: a dying peer must not take the worker with it *)
  let send s =
    match Net_io.send_all conn s with
    | () -> true
    | exception Net_io.Timeout ->
        Atomic.incr t.c_timeouts;
        false
    | exception Net_io.Net_error _ -> false
  in
  let spent = ref queued_s in
  (try
     let continue = ref true in
     while !continue do
       if stop_requested t then begin
         ignore
           (send
              (Protocol.render
                 (Protocol.Err ("shutting-down", "server is draining"))));
         continue := false
       end
       else
         match
           Net_io.Lines.read_line reader ~max_bytes:t.config.max_request_bytes
         with
         | `Eof -> continue := false
         | `Too_long ->
             (* framing is lost: reply once, then the connection must die *)
             Atomic.incr t.c_errors;
             ignore
               (send
                  (Protocol.render
                     (Protocol.Err
                        ( "too-large",
                          Printf.sprintf "request exceeds %d bytes"
                            t.config.max_request_bytes ))));
             continue := false
         | `Line line when String.trim line = "" -> ()
         | `Line line ->
             let t0 = Clock.now () in
             Atomic.incr t.c_in_flight;
             let parsed = Protocol.parse line in
             let reply =
               match parsed with
               | Error (code, msg) -> Protocol.Err (code, msg)
               | Ok request -> (
                   (* isolation: a raising handler costs one ERR reply *)
                   try handle_request t ~spent_s:!spent request
                   with e -> Protocol.Err ("internal", Printexc.to_string e))
             in
             spent := 0.;
             let sent_ok = send (Protocol.render reply) in
             let elapsed_s = Clock.elapsed_since t0 in
             Hist.observe t.latency elapsed_s;
             Atomic.incr t.c_requests;
             let is_error =
               match reply with Protocol.Err _ -> true | _ -> false
             in
             if is_error then Atomic.incr t.c_errors;
             Atomic.decr t.c_in_flight;
             let kind =
               match parsed with
               | Ok request -> Protocol.kind request
               | Error _ -> "malformed"
             in
             record_obs t ~kind ~is_error ~elapsed_s;
             (match parsed with
             | Ok Protocol.Quit -> continue := false
             | _ -> ());
             if not sent_ok then continue := false
     done
   with
  | Net_io.Timeout ->
      (* slow-loris or idle past the read deadline *)
      Atomic.incr t.c_timeouts;
      (try
         Net_io.send_all conn
           (Protocol.render
              (Protocol.Err ("timeout", "no complete request within deadline")))
       with Net_io.Timeout | Net_io.Net_error _ -> ())
  | Net_io.Net_error _ -> ()
  | _ -> Atomic.incr t.c_errors);
  try conn.Net_io.close () with _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop, workers, lifecycle                                     *)
(* ------------------------------------------------------------------ *)

let shed_connection t fd =
  Atomic.incr t.c_shed;
  merge_counter t m_shed;
  let conn = Net_io.of_fd ~read_timeout_s:0.1 ~write_timeout_s:0.5 fd in
  (try
     Net_io.send_all conn
       (Protocol.render (Protocol.Overloaded t.config.retry_after_ms))
   with Net_io.Timeout | Net_io.Net_error _ -> ());
  try conn.Net_io.close () with _ -> ()

let accept_loop t fd =
  let stop = ref false in
  while not !stop do
    if stop_requested t then stop := true
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()
          | exception Unix.Unix_error _ -> stop := true
          | cfd, _ ->
              Mutex.lock t.qlock;
              if Queue.length t.queue >= t.config.queue_depth then begin
                Mutex.unlock t.qlock;
                (* load-shedding: refuse in O(1), never block the acceptor *)
                shed_connection t cfd
              end
              else begin
                Queue.push (cfd, Clock.now ()) t.queue;
                Condition.signal t.qcond;
                Mutex.unlock t.qlock
              end)
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match t.socket_path with
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())
  | None -> ()

let worker_loop t i =
  let rec next () =
    Mutex.lock t.qlock;
    let rec await () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if stop_requested t then None
      else begin
        Condition.wait t.qcond t.qlock;
        await ()
      end
    in
    let item = await () in
    Mutex.unlock t.qlock;
    match item with
    | None -> ()
    | Some (fd, enqueued_at) ->
        Atomic.set t.active.(i) (Some fd);
        (if stop_requested t then begin
           (* accepted but never served: a fast typed refusal beats a hang *)
           let conn = Net_io.of_fd ~read_timeout_s:0.1 ~write_timeout_s:0.5 fd in
           (try
              Net_io.send_all conn
                (Protocol.render
                   (Protocol.Err ("shutting-down", "server is draining")))
            with Net_io.Timeout | Net_io.Net_error _ -> ());
           try conn.Net_io.close () with _ -> ()
         end
         else
           let conn =
             Net_io.of_fd ~read_timeout_s:t.config.read_timeout_s
               ~write_timeout_s:t.config.write_timeout_s fd
           in
           serve_connection t ~queued_s:(Clock.elapsed_since enqueued_at) conn);
        Atomic.set t.active.(i) None;
        next ()
  in
  next ()

type listen = Tcp of string * int | Unix_socket of string

(* A peer that disappears mid-reply must surface as EPIPE (mapped to
   Net_error by Net_io), not kill the process with SIGPIPE. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> ()

let start ?(config = default_config) listen service =
  ignore_sigpipe ();
  match
    let t = create ~config service in
    let fd, path =
      match listen with
      | Tcp (host, port) ->
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith (Printf.sprintf "cannot resolve %s" host)
              | { Unix.h_addr_list; _ } -> h_addr_list.(0)
              | exception Not_found ->
                  failwith (Printf.sprintf "cannot resolve %s" host))
          in
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt fd Unix.SO_REUSEADDR true;
             Unix.bind fd (Unix.ADDR_INET (addr, port));
             Unix.listen fd 128
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          (fd, None)
      | Unix_socket p ->
          if Sys.file_exists p then (try Unix.unlink p with _ -> ());
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try
             Unix.bind fd (Unix.ADDR_UNIX p);
             Unix.listen fd 128
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          (fd, Some p)
    in
    t.listener <- Some fd;
    t.socket_path <- path;
    t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t fd));
    t.worker_domains <-
      List.init config.workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let address t =
  match t.listener with
  | None -> None
  | Some fd -> ( try Some (Unix.getsockname fd) with Unix.Unix_error _ -> None)

let request_stop t = Atomic.set t.stop_flag true

let stop t =
  Mutex.lock t.stop_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stop_lock)
    (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        Atomic.set t.stop_flag true;
        Mutex.lock t.qlock;
        Condition.broadcast t.qcond;
        Mutex.unlock t.qlock;
        (match t.acceptor with
        | Some d ->
            Domain.join d;
            t.acceptor <- None
        | None -> ());
        t.listener <- None;
        (* grace for in-flight connections, then cut their sockets so a
           worker blocked in a receive comes back *)
        let deadline = Clock.now () +. t.config.drain_grace_s in
        let all_idle () =
          Array.for_all (fun a -> Atomic.get a = None) t.active
        in
        while (not (all_idle ())) && Clock.now () < deadline do
          Unix.sleepf 0.02
        done;
        Array.iter
          (fun a ->
            match Atomic.get a with
            | Some fd -> (
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
            | None -> ())
          t.active;
        Mutex.lock t.qlock;
        Condition.broadcast t.qcond;
        Mutex.unlock t.qlock;
        List.iter Domain.join t.worker_domains;
        t.worker_domains <- [];
        (* flush final gauge values so a post-drain dump reads zero *)
        if Metrics.is_enabled () then begin
          let (), shard =
            Metrics.with_new_shard (fun () ->
                Metrics.set m_queue_depth 0.;
                Metrics.set m_in_flight 0.)
          in
          Mutex.lock t.merge_lock;
          (try Metrics.merge_shard shard
           with e ->
             Mutex.unlock t.merge_lock;
             raise e);
          Mutex.unlock t.merge_lock
        end;
        Atomic.set t.drained_flag true
      end)
