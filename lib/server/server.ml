module Metrics = Wolves_obs.Metrics
module Clock = Wolves_obs.Clock
module Log = Wolves_obs.Log
module Prom = Wolves_obs.Prom
module Ring = Wolves_trace.Trace

type config = {
  workers : int;
  queue_depth : int;
  read_timeout_s : float;
  write_timeout_s : float;
  max_request_bytes : int;
  default_deadline_ms : float option;
  retry_after_ms : int;
  drain_grace_s : float;
  slow_threshold_s : float option;
  trace_sample : int;
}

let default_config =
  { workers = 4;
    queue_depth = 64;
    read_timeout_s = 10.;
    write_timeout_s = 10.;
    max_request_bytes = 64 * 1024;
    default_deadline_ms = None;
    retry_after_ms = 100;
    drain_grace_s = 5.;
    slow_threshold_s = None;
    trace_sample = 0 }

let validate_config c =
  if c.workers < 1 then invalid_arg "Server: workers must be >= 1";
  if c.queue_depth < 1 then invalid_arg "Server: queue_depth must be >= 1";
  if c.read_timeout_s <= 0. || c.write_timeout_s <= 0. then
    invalid_arg "Server: timeouts must be positive";
  if c.max_request_bytes < 16 then
    invalid_arg "Server: max_request_bytes must be >= 16";
  if c.retry_after_ms < 0 then invalid_arg "Server: retry_after_ms must be >= 0";
  if c.drain_grace_s < 0. then invalid_arg "Server: drain_grace_s must be >= 0";
  (match c.slow_threshold_s with
  | Some s when s < 0. -> invalid_arg "Server: slow_threshold_s must be >= 0"
  | _ -> ());
  if c.trace_sample < 0 then invalid_arg "Server: trace_sample must be >= 0"

type stats = {
  connections : int;
  requests : int;
  errors : int;
  shed : int;
  timeouts : int;
  in_flight : int;
  queue_depth : int;
  draining : bool;
}

(* Log-scale latency histogram over lock-free buckets: bucket [i] counts
   requests in [2^(i-1), 2^i) microseconds. Good to ~70 s with 1-bit
   resolution, which is all a p50/p99 readout needs. The microsecond sum
   rides along so the exposition can serve a faithful [_sum]. *)
module Hist = struct
  let buckets = 40

  type t = { cells : int Atomic.t array; sum_us : int Atomic.t }

  let create () =
    { cells = Array.init buckets (fun _ -> Atomic.make 0);
      sum_us = Atomic.make 0 }

  let observe (h : t) seconds =
    let us = int_of_float (Float.max 0. seconds *. 1e6) in
    let rec index i v = if v = 0 || i >= buckets - 1 then i else index (i + 1) (v lsr 1) in
    ignore (Atomic.fetch_and_add h.sum_us us);
    Atomic.incr h.cells.(index 0 us)

  let count (h : t) =
    Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.cells

  let sum_s (h : t) = float_of_int (Atomic.get h.sum_us) *. 1e-6

  let quantile (h : t) q =
    let total = count h in
    if total = 0 then 0.
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let rec go i acc =
        let acc = acc + Atomic.get h.cells.(i) in
        if acc >= rank || i = buckets - 1 then
          (* upper bound of bucket i, in seconds *)
          Float.of_int (1 lsl i) *. 1e-6
        else go (i + 1) acc
      in
      go 0 0
    end

  (* (upper bound in seconds, cumulative count) per bucket, the last bound
     [infinity] — bucket [buckets-1] already catches everything beyond. *)
  let cumulative (h : t) =
    let acc = ref 0 in
    List.init buckets (fun i ->
        acc := !acc + Atomic.get h.cells.(i);
        let bound =
          if i = buckets - 1 then infinity
          else Float.of_int (1 lsl i) *. 1e-6
        in
        (bound, !acc))
end

(* The fixed verb families every per-verb counter/histogram is keyed by:
   one slot per protocol request kind, plus "malformed" for lines that
   never parsed. Indexing is by [verb_index], total over any kind string. *)
let verbs =
  [| "ping"; "list"; "stats"; "health"; "metrics"; "trace"; "quit";
     "validate"; "correct"; "query"; "lint"; "analyze"; "malformed" |]

let verb_index kind =
  let n = Array.length verbs in
  let rec go i = if i >= n - 1 then n - 1 else if verbs.(i) = kind then i else go (i + 1) in
  go 0

type t = {
  config : config;
  service : Service.t;
  stop_flag : bool Atomic.t;
  drained_flag : bool Atomic.t;
  queue : (Unix.file_descr * float) Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  merge_lock : Mutex.t;  (** serialises obs shard merges across domains *)
  stop_lock : Mutex.t;
  mutable stopped : bool;
  mutable acceptor : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  mutable listener : Unix.file_descr option;
  mutable socket_path : string option;
  active : Unix.file_descr option Atomic.t array;
      (** per-worker connection being served, for drain cut-off *)
  c_connections : int Atomic.t;
  c_requests : int Atomic.t;
  c_errors : int Atomic.t;
  c_shed : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_in_flight : int Atomic.t;
  latency : Hist.t;
  next_req_id : int Atomic.t;
  verb_requests : int Atomic.t array;  (** indexed like [verbs] *)
  verb_errors : int Atomic.t array;
  verb_latency : Hist.t array;
  trace_ring : Ring.t option;  (** sampled request spans, when sampling *)
  mutable saved_tracer : Metrics.tracer option;  (** restored on [stop] *)
  started_at : float;
}

(* Obs handles; recorded through per-domain shards (workers are not the
   main domain), merged under [merge_lock]. *)
let m_requests = Metrics.counter "server.requests"
let m_errors = Metrics.counter "server.errors"
let m_shed = Metrics.counter "server.shed"
let m_connections = Metrics.counter "server.connections"
let m_request_time = Metrics.timer "server.request"
let m_queue_depth = Metrics.gauge "server.queue_depth"
let m_in_flight = Metrics.gauge "server.in_flight"

(* --- request-scoped trace sampling ---------------------------------- *)

(* A sampled request buffers its span events domain-locally while the
   handler runs (the gate below), then commits them to the shared ring in
   one atomic batch at request end — so each request's spans are
   contiguous in the ring and reconstruct as one balanced tree, and the
   unsampled hot path never touches the ring at all. *)
let req_trace_gate : Ring.event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let no_args () = []

let buffering_tracer =
  (* The annotation thunk arrives unforced, so an unsampled request pays
     one domain-local read per event and never materialises its args. *)
  let push phase name args =
    match !(Domain.DLS.get req_trace_gate) with
    | None -> ()
    | Some buf ->
        buf := { Ring.phase; name; ts = Clock.now (); args = args () } :: !buf
  in
  { Metrics.on_begin = (fun name args -> push Ring.Begin name args);
    on_end = (fun name -> push Ring.End name no_args);
    on_instant = (fun name args -> push Ring.Instant name args) }

let create ?(config = default_config) service =
  validate_config config;
  let trace_ring =
    if config.trace_sample > 0 then Some (Ring.create ()) else None
  in
  let saved_tracer =
    (* Sampling needs the instrumented regions to emit events, so the
       buffering tracer goes in process-wide for the server's lifetime
       (it is inert outside sampled requests); [stop] restores whatever
       was installed before. *)
    if trace_ring <> None then begin
      let prev = Metrics.current_tracer () in
      Metrics.set_tracer (Some buffering_tracer);
      prev
    end
    else None
  in
  { config;
    service;
    stop_flag = Atomic.make false;
    drained_flag = Atomic.make false;
    queue = Queue.create ();
    qlock = Mutex.create ();
    qcond = Condition.create ();
    merge_lock = Mutex.create ();
    stop_lock = Mutex.create ();
    stopped = false;
    acceptor = None;
    worker_domains = [];
    listener = None;
    socket_path = None;
    active = Array.init config.workers (fun _ -> Atomic.make None);
    c_connections = Atomic.make 0;
    c_requests = Atomic.make 0;
    c_errors = Atomic.make 0;
    c_shed = Atomic.make 0;
    c_timeouts = Atomic.make 0;
    c_in_flight = Atomic.make 0;
    latency = Hist.create ();
    next_req_id = Atomic.make 1;
    verb_requests = Array.init (Array.length verbs) (fun _ -> Atomic.make 0);
    verb_errors = Array.init (Array.length verbs) (fun _ -> Atomic.make 0);
    verb_latency = Array.init (Array.length verbs) (fun _ -> Hist.create ());
    trace_ring;
    saved_tracer;
    started_at = Clock.now () }

let queue_len t =
  Mutex.lock t.qlock;
  let n = Queue.length t.queue in
  Mutex.unlock t.qlock;
  n

let stop_requested t = Atomic.get t.stop_flag
let drained t = Atomic.get t.drained_flag

let stats t =
  { connections = Atomic.get t.c_connections;
    requests = Atomic.get t.c_requests;
    errors = Atomic.get t.c_errors;
    shed = Atomic.get t.c_shed;
    timeouts = Atomic.get t.c_timeouts;
    in_flight = Atomic.get t.c_in_flight;
    queue_depth = queue_len t;
    draining = stop_requested t }

let stats_lines t =
  let s = stats t in
  [ Printf.sprintf "uptime_s %.3f" (Clock.elapsed_since t.started_at);
    Printf.sprintf "corpus %d" (Service.size t.service);
    Printf.sprintf "workers %d" t.config.workers;
    Printf.sprintf "connections %d" s.connections;
    Printf.sprintf "requests %d" s.requests ]
  @ Array.to_list
      (Array.mapi
         (fun i verb ->
           Printf.sprintf "requests_%s %d" verb (Atomic.get t.verb_requests.(i)))
         verbs)
  @ [ Printf.sprintf "errors %d" s.errors;
      Printf.sprintf "shed %d" s.shed;
      Printf.sprintf "timeouts %d" s.timeouts;
      Printf.sprintf "in_flight %d" s.in_flight;
      Printf.sprintf "queue_depth %d" s.queue_depth;
      Printf.sprintf "latency_p50_ms %.3f" (Hist.quantile t.latency 0.5 *. 1e3);
      Printf.sprintf "latency_p99_ms %.3f" (Hist.quantile t.latency 0.99 *. 1e3);
      Printf.sprintf "draining %b" s.draining ]

(* --- Prometheus exposition ------------------------------------------ *)

let fmt_bound b = if b = infinity then "+Inf" else Printf.sprintf "%.12g" b

(* The server's own families are rendered by hand under a [wolves_] prefix
   so they can never collide with registry-derived names (the registry's
   [server.requests] counter becomes [server_requests_total]); the
   registry snapshot is appended through [Prom.render]. *)
let metrics_lines t =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let counter name v =
    line "# TYPE %s counter" name;
    line "%s %d" name v
  in
  let gauge name v =
    line "# TYPE %s gauge" name;
    line "%s %s" name v
  in
  let s = stats t in
  gauge "wolves_server_uptime_seconds"
    (Printf.sprintf "%.3f" (Clock.elapsed_since t.started_at));
  counter "wolves_server_requests_total" s.requests;
  counter "wolves_server_connections_total" s.connections;
  counter "wolves_server_errors_total" s.errors;
  counter "wolves_server_shed_total" s.shed;
  counter "wolves_server_timeouts_total" s.timeouts;
  gauge "wolves_server_in_flight" (string_of_int s.in_flight);
  gauge "wolves_server_queue_depth" (string_of_int s.queue_depth);
  gauge "wolves_server_draining" (if s.draining then "1" else "0");
  line "# TYPE wolves_server_verb_requests_total counter";
  Array.iteri
    (fun i verb ->
      line "wolves_server_verb_requests_total{verb=\"%s\"} %d" verb
        (Atomic.get t.verb_requests.(i)))
    verbs;
  line "# TYPE wolves_server_verb_errors_total counter";
  Array.iteri
    (fun i verb ->
      line "wolves_server_verb_errors_total{verb=\"%s\"} %d" verb
        (Atomic.get t.verb_errors.(i)))
    verbs;
  let total = Hist.count t.latency in
  if total > 0 then begin
    line "# TYPE wolves_server_latency_seconds histogram";
    List.iter
      (fun (bound, cum) ->
        line "wolves_server_latency_seconds_bucket{le=\"%s\"} %d"
          (fmt_bound bound) cum)
      (Hist.cumulative t.latency);
    line "wolves_server_latency_seconds_sum %.9g" (Hist.sum_s t.latency);
    line "wolves_server_latency_seconds_count %d" total;
    line "# TYPE wolves_server_latency_seconds_quantile gauge";
    List.iter
      (fun q ->
        line "wolves_server_latency_seconds_quantile{quantile=\"%g\"} %.9g" q
          (Hist.quantile t.latency q))
      [ 0.5; 0.9; 0.99 ]
  end;
  line "# TYPE wolves_server_verb_latency_seconds_quantile gauge";
  Array.iteri
    (fun i verb ->
      if Hist.count t.verb_latency.(i) > 0 then
        List.iter
          (fun q ->
            line
              "wolves_server_verb_latency_seconds_quantile{verb=\"%s\",quantile=\"%g\"} %.9g"
              verb q
              (Hist.quantile t.verb_latency.(i) q))
          [ 0.5; 0.99 ])
    verbs;
  (match t.trace_ring with
  | Some ring ->
      gauge "wolves_server_trace_ring_events" (string_of_int (Ring.length ring));
      counter "wolves_server_trace_ring_dropped_total" (Ring.dropped ring)
  | None -> ());
  (* Registry families (only meaningful when serving with metrics on);
     snapshot under merge_lock so no worker's half-merged shard is read. *)
  let snap =
    Mutex.lock t.merge_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.merge_lock)
      Metrics.snapshot
  in
  Buffer.add_string buf (Prom.render snap);
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let trace_events t =
  match t.trace_ring with None -> [] | Some ring -> Ring.events ring

let handle_request t ?(spent_s = 0.) request =
  match request with
  | Protocol.Stats -> Protocol.Ok_lines (stats_lines t)
  | Protocol.Health ->
      Protocol.Ok_lines
        [ (if stop_requested t then "draining" else "ok");
          Printf.sprintf "corpus %d" (Service.size t.service) ]
  | Protocol.Metrics -> Protocol.Ok_lines (metrics_lines t)
  | Protocol.Trace -> (
      match t.trace_ring with
      | None ->
          Protocol.Err
            ("bad-request", "tracing is off (serve with --trace-sample N)")
      | Some ring ->
          let events = Ring.drain ring in
          Wolves_trace.Export.to_jsonl events
          |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
          |> fun lines -> Protocol.Ok_lines lines)
  | request ->
      Service.handle ~domains:1 ~spent_s
        ?default_deadline_ms:t.config.default_deadline_ms t.service request

(* Merge one request's metrics into the registry. Shards keep worker-domain
   recording race-free; the merge itself is serialised by [merge_lock]
   (merge_shard's contract is one merging domain at a time). *)
let record_obs t ~kind ~is_error ~elapsed_s =
  if Metrics.is_enabled () then begin
    let (), shard =
      Metrics.with_new_shard (fun () ->
          Metrics.incr m_requests;
          if is_error then Metrics.incr m_errors;
          Metrics.observe m_request_time elapsed_s;
          Metrics.set m_queue_depth (float_of_int (queue_len t));
          Metrics.set m_in_flight (float_of_int (Atomic.get t.c_in_flight));
          Metrics.instant "server.request" (fun () -> [ ("kind", kind) ]))
    in
    Mutex.lock t.merge_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.merge_lock)
      (fun () -> Metrics.merge_shard shard)
  end

let merge_counter t counter =
  if Metrics.is_enabled () then begin
    let (), shard = Metrics.with_new_shard (fun () -> Metrics.incr counter) in
    Mutex.lock t.merge_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.merge_lock)
      (fun () -> Metrics.merge_shard shard)
  end

(* --- access log ------------------------------------------------------ *)

let outcome_fields reply =
  match reply with
  | Protocol.Ok_lines lines ->
      [ ("outcome", Log.Str "ok");
        ("payload_lines", Log.Int (List.length lines)) ]
  | Protocol.Err (code, _) ->
      [ ("outcome", Log.Str "err"); ("code", Log.Str code) ]
  | Protocol.Overloaded ms ->
      [ ("outcome", Log.Str "overloaded"); ("retry_after_ms", Log.Int ms) ]

let deadline_ms_of t parsed =
  match parsed with
  | Ok (Protocol.Correct (_, Some (Protocol.Deadline_ms ms))) -> Some ms
  | Ok (Protocol.Correct (_, None)) -> t.config.default_deadline_ms
  | _ -> None

(* One flat line per reconstructed span: [path dur_us self_us]. Compact
   enough for a log field, complete enough to see where a slow request
   went. *)
let span_tree_string events =
  let spans, _orphans = Ring.spans events in
  String.concat " | "
    (List.map
       (fun (sp : Ring.span) ->
         Printf.sprintf "%s %.0fus self %.0fus"
           (String.concat "/" sp.stack)
           ((sp.end_ts -. sp.begin_ts) *. 1e6)
           (sp.self_s *. 1e6))
       spans)

let log_request t ~rid ~kind ~parsed ~reply ~queued_s ~handler_s ~elapsed_s
    ~bytes_in ~bytes_out ~sampled ~events =
  if Log.enabled Log.Info then begin
    Log.event Log.Info "request" (fun () ->
        [ ("req_id", Log.Int rid);
          ("verb", Log.Str kind);
          ("deadline_ms",
           match deadline_ms_of t parsed with
           | Some ms -> Log.Float ms
           | None -> Log.Str "-");
          ("queue_wait_ms", Log.Float (queued_s *. 1e3));
          ("handler_ms", Log.Float (handler_s *. 1e3));
          ("total_ms", Log.Float (elapsed_s *. 1e3));
          ("bytes_in", Log.Int bytes_in);
          ("bytes_out", Log.Int bytes_out);
          ("sampled", Log.Bool sampled) ]
        @ outcome_fields reply);
    match t.config.slow_threshold_s with
    | Some threshold when handler_s >= threshold ->
        Log.event Log.Warn "slow_request" (fun () ->
            [ ("req_id", Log.Int rid);
              ("verb", Log.Str kind);
              ("handler_ms", Log.Float (handler_s *. 1e3));
              ("threshold_ms", Log.Float (threshold *. 1e3));
              ("spans",
               if sampled then Log.Str (span_tree_string events)
               else Log.Str "unsampled (raise --trace-sample)") ])
    | _ -> ()
  end

let serve_connection t ?(queued_s = 0.) (conn : Net_io.t) =
  Atomic.incr t.c_connections;
  merge_counter t m_connections;
  let reader = Net_io.Lines.reader conn in
  (* best-effort send: a dying peer must not take the worker with it *)
  let send s =
    match Net_io.send_all conn s with
    | () -> true
    | exception Net_io.Timeout ->
        Atomic.incr t.c_timeouts;
        false
    | exception Net_io.Net_error _ -> false
  in
  let spent = ref queued_s in
  (try
     let continue = ref true in
     while !continue do
       if stop_requested t then begin
         ignore
           (send
              (Protocol.render
                 (Protocol.Err ("shutting-down", "server is draining"))));
         continue := false
       end
       else
         match
           Net_io.Lines.read_line reader ~max_bytes:t.config.max_request_bytes
         with
         | `Eof -> continue := false
         | `Too_long ->
             (* framing is lost: reply once, then the connection must die *)
             Atomic.incr t.c_errors;
             ignore
               (send
                  (Protocol.render
                     (Protocol.Err
                        ( "too-large",
                          Printf.sprintf "request exceeds %d bytes"
                            t.config.max_request_bytes ))));
             continue := false
         | `Line line when String.trim line = "" -> ()
         | `Line line ->
             let t0 = Clock.now () in
             Atomic.incr t.c_in_flight;
             let rid = Atomic.fetch_and_add t.next_req_id 1 in
             let parsed = Protocol.parse line in
             let kind =
               match parsed with
               | Ok request -> Protocol.kind request
               | Error _ -> "malformed"
             in
             let this_queued_s = !spent in
             (* head-based sampling: every Nth request id buffers its span
                events; the rest never touch the tracer gate again *)
             let sample_buf =
               if
                 t.config.trace_sample > 0
                 && rid mod t.config.trace_sample = 0
               then begin
                 let buf =
                   ref
                     [ { Ring.phase = Ring.Begin;
                         name = "request";
                         ts = t0;
                         args =
                           [ ("req_id", string_of_int rid); ("verb", kind) ] } ]
                 in
                 Domain.DLS.get req_trace_gate := Some buf;
                 Some buf
               end
               else None
             in
             let reply =
               match parsed with
               | Error (code, msg) -> Protocol.Err (code, msg)
               | Ok request -> (
                   (* isolation: a raising handler costs one ERR reply *)
                   try handle_request t ~spent_s:!spent request
                   with e -> Protocol.Err ("internal", Printexc.to_string e))
             in
             let handler_s = Clock.elapsed_since t0 in
             let sampled_events =
               match sample_buf with
               | None -> []
               | Some buf ->
                   Domain.DLS.get req_trace_gate := None;
                   buf :=
                     { Ring.phase = Ring.End;
                       name = "request";
                       ts = Clock.now ();
                       args = [] }
                     :: !buf;
                   let events = List.rev !buf in
                   (match t.trace_ring with
                   | Some ring -> Ring.record_all ring events
                   | None -> ());
                   events
             in
             spent := 0.;
             let rendered = Protocol.render reply in
             let sent_ok = send rendered in
             let elapsed_s = Clock.elapsed_since t0 in
             Hist.observe t.latency elapsed_s;
             Atomic.incr t.c_requests;
             let vi = verb_index kind in
             Atomic.incr t.verb_requests.(vi);
             Hist.observe t.verb_latency.(vi) elapsed_s;
             let is_error =
               match reply with Protocol.Err _ -> true | _ -> false
             in
             if is_error then begin
               Atomic.incr t.c_errors;
               Atomic.incr t.verb_errors.(vi)
             end;
             Atomic.decr t.c_in_flight;
             record_obs t ~kind ~is_error ~elapsed_s;
             log_request t ~rid ~kind ~parsed ~reply ~queued_s:this_queued_s
               ~handler_s ~elapsed_s ~bytes_in:(String.length line + 1)
               ~bytes_out:(String.length rendered) ~sampled:(sample_buf <> None)
               ~events:sampled_events;
             (match parsed with
             | Ok Protocol.Quit -> continue := false
             | _ -> ());
             if not sent_ok then continue := false
     done
   with
  | Net_io.Timeout ->
      (* slow-loris or idle past the read deadline *)
      Atomic.incr t.c_timeouts;
      (try
         Net_io.send_all conn
           (Protocol.render
              (Protocol.Err ("timeout", "no complete request within deadline")))
       with Net_io.Timeout | Net_io.Net_error _ -> ())
  | Net_io.Net_error _ -> ()
  | _ -> Atomic.incr t.c_errors);
  try conn.Net_io.close () with _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop, workers, lifecycle                                     *)
(* ------------------------------------------------------------------ *)

let shed_connection t fd =
  Atomic.incr t.c_shed;
  merge_counter t m_shed;
  let rid = Atomic.fetch_and_add t.next_req_id 1 in
  Log.event Log.Info "request" (fun () ->
      (* the request line was never read — the connection was refused at
         the door — but the shed is still one numbered access-log record *)
      [ ("req_id", Log.Int rid);
        ("verb", Log.Str "-");
        ("outcome", Log.Str "overloaded");
        ("retry_after_ms", Log.Int t.config.retry_after_ms) ]);
  let conn = Net_io.of_fd ~read_timeout_s:0.1 ~write_timeout_s:0.5 fd in
  (try
     Net_io.send_all conn
       (Protocol.render (Protocol.Overloaded t.config.retry_after_ms))
   with Net_io.Timeout | Net_io.Net_error _ -> ());
  try conn.Net_io.close () with _ -> ()

let accept_loop t fd =
  let stop = ref false in
  while not !stop do
    if stop_requested t then stop := true
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()
          | exception Unix.Unix_error _ -> stop := true
          | cfd, _ ->
              Mutex.lock t.qlock;
              if Queue.length t.queue >= t.config.queue_depth then begin
                Mutex.unlock t.qlock;
                (* load-shedding: refuse in O(1), never block the acceptor *)
                shed_connection t cfd
              end
              else begin
                Queue.push (cfd, Clock.now ()) t.queue;
                Condition.signal t.qcond;
                Mutex.unlock t.qlock
              end)
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match t.socket_path with
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())
  | None -> ()

let worker_loop t i =
  let rec next () =
    Mutex.lock t.qlock;
    let rec await () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if stop_requested t then None
      else begin
        Condition.wait t.qcond t.qlock;
        await ()
      end
    in
    let item = await () in
    Mutex.unlock t.qlock;
    match item with
    | None -> ()
    | Some (fd, enqueued_at) ->
        Atomic.set t.active.(i) (Some fd);
        (if stop_requested t then begin
           (* accepted but never served: a fast typed refusal beats a hang *)
           let conn = Net_io.of_fd ~read_timeout_s:0.1 ~write_timeout_s:0.5 fd in
           (try
              Net_io.send_all conn
                (Protocol.render
                   (Protocol.Err ("shutting-down", "server is draining")))
            with Net_io.Timeout | Net_io.Net_error _ -> ());
           try conn.Net_io.close () with _ -> ()
         end
         else
           let conn =
             Net_io.of_fd ~read_timeout_s:t.config.read_timeout_s
               ~write_timeout_s:t.config.write_timeout_s fd
           in
           serve_connection t ~queued_s:(Clock.elapsed_since enqueued_at) conn);
        Atomic.set t.active.(i) None;
        next ()
  in
  next ()

type listen = Tcp of string * int | Unix_socket of string

(* A peer that disappears mid-reply must surface as EPIPE (mapped to
   Net_error by Net_io), not kill the process with SIGPIPE. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> ()

let start ?(config = default_config) listen service =
  ignore_sigpipe ();
  match
    let t = create ~config service in
    let fd, path =
      match listen with
      | Tcp (host, port) ->
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith (Printf.sprintf "cannot resolve %s" host)
              | { Unix.h_addr_list; _ } -> h_addr_list.(0)
              | exception Not_found ->
                  failwith (Printf.sprintf "cannot resolve %s" host))
          in
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt fd Unix.SO_REUSEADDR true;
             Unix.bind fd (Unix.ADDR_INET (addr, port));
             Unix.listen fd 128
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          (fd, None)
      | Unix_socket p ->
          if Sys.file_exists p then (try Unix.unlink p with _ -> ());
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try
             Unix.bind fd (Unix.ADDR_UNIX p);
             Unix.listen fd 128
           with e ->
             (try Unix.close fd with _ -> ());
             raise e);
          (fd, Some p)
    in
    t.listener <- Some fd;
    t.socket_path <- path;
    t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t fd));
    t.worker_domains <-
      List.init config.workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let address t =
  match t.listener with
  | None -> None
  | Some fd -> ( try Some (Unix.getsockname fd) with Unix.Unix_error _ -> None)

let request_stop t = Atomic.set t.stop_flag true

let stop t =
  Mutex.lock t.stop_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stop_lock)
    (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        Atomic.set t.stop_flag true;
        Mutex.lock t.qlock;
        Condition.broadcast t.qcond;
        Mutex.unlock t.qlock;
        (match t.acceptor with
        | Some d ->
            Domain.join d;
            t.acceptor <- None
        | None -> ());
        t.listener <- None;
        (* grace for in-flight connections, then cut their sockets so a
           worker blocked in a receive comes back *)
        let deadline = Clock.now () +. t.config.drain_grace_s in
        let all_idle () =
          Array.for_all (fun a -> Atomic.get a = None) t.active
        in
        while (not (all_idle ())) && Clock.now () < deadline do
          Unix.sleepf 0.02
        done;
        Array.iter
          (fun a ->
            match Atomic.get a with
            | Some fd -> (
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
            | None -> ())
          t.active;
        Mutex.lock t.qlock;
        Condition.broadcast t.qcond;
        Mutex.unlock t.qlock;
        List.iter Domain.join t.worker_domains;
        t.worker_domains <- [];
        (* flush final gauge values so a post-drain dump reads zero —
           directly, not via a shard: shards merge as high-water marks and
           would keep the busy-period peak instead of the zero *)
        if Metrics.is_enabled () then begin
          Metrics.set m_queue_depth 0.;
          Metrics.set m_in_flight 0.
        end;
        (* hand the tracer slot back and get the access log on disk *)
        if t.trace_ring <> None then Metrics.set_tracer t.saved_tracer;
        Log.flush ();
        Atomic.set t.drained_flag true
      end)
