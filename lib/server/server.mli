(** The concurrent provenance query server (ROADMAP item 1).

    A {!Service.t} corpus served over a line protocol ({!Protocol}) by a
    pool of OCaml 5 worker domains, built to stay correct {e and} available
    under hostile traffic:

    - {b Admission control}: accepted connections enter a bounded queue;
      once it is full, new arrivals get an immediate [OVERLOADED
      <retry-after-ms>] reply and are closed — a shed client learns its
      fate in microseconds instead of wedging a worker.
    - {b Deadlines}: a request's queue wait is charged against its
      correction deadline ({!Corrector.correct_with_deadline}'s [spent_s]),
      so load degrades answer {e tiers} (optimal → strong → weak), never
      latency honesty.
    - {b Slow-loris defence}: per-connection receive/send timeouts and a
      maximum request size; a stalled or oversized client costs one typed
      error reply, not a worker.
    - {b Isolation}: a request that raises produces [ERR internal] on its
      own connection; shared indexes are immutable after {!Service.load},
      so no request can poison another's view of the corpus.
    - {b Graceful drain}: {!request_stop} (safe from a signal handler)
      stops the acceptor; in-flight requests finish, queued-but-unserved
      connections get [ERR shutting-down], stragglers are cut after a
      grace period, metrics are flushed, and {!stop} returns — the CLI
      then exits 0.
    - {b Observability}: every request gets a monotonically assigned id
      and (when a {!Wolves_obs.Log} sink is installed) one structured
      access-log record carrying verb, deadline, queue wait, handler time,
      bytes and outcome; per-verb counters and latency histograms feed the
      [STATS] reply and the [METRICS] Prometheus exposition; with
      [trace_sample > 0] every Nth request's spans are buffered
      domain-locally and committed contiguously to a shared ring, drained
      live by the [TRACE] verb.

    All I/O goes through {!Net_io}, so the chaos tests drive
    {!serve_connection} — the exact production read-dispatch-reply loop —
    over fault-injecting in-memory connections. *)

type config = {
  workers : int;  (** worker domains (default 4) *)
  queue_depth : int;  (** admission queue bound (default 64) *)
  read_timeout_s : float;  (** per-receive deadline (default 10) *)
  write_timeout_s : float;  (** per-send deadline (default 10) *)
  max_request_bytes : int;  (** request line bound (default 65536) *)
  default_deadline_ms : float option;
      (** budget for bare [CORRECT <id>] requests (default none: strong) *)
  retry_after_ms : int;  (** hint in [OVERLOADED] replies (default 100) *)
  drain_grace_s : float;
      (** how long {!stop} lets in-flight connections finish before
          cutting their sockets (default 5) *)
  slow_threshold_s : float option;
      (** handler time beyond which a [slow_request] warning record — with
          the request's span tree, when sampled — is logged (default
          none) *)
  trace_sample : int;
      (** keep every Nth request's spans in the trace ring; [0] (the
          default) disables sampling and the [TRACE] verb. While positive,
          {!create} installs the server's buffering tracer as the
          process-wide {!Wolves_obs.Metrics.tracer} (restored by
          {!stop}) *)
}

val default_config : config

(** Counter snapshot behind the [STATS] request. *)
type stats = {
  connections : int;  (** accepted and handed to a worker *)
  requests : int;  (** request lines answered (including errors) *)
  errors : int;  (** [ERR] replies *)
  shed : int;  (** connections refused with [OVERLOADED] *)
  timeouts : int;  (** connections cut by a receive/send deadline *)
  in_flight : int;
  queue_depth : int;
  draining : bool;
}

type t

val create : ?config:config -> Service.t -> t
(** A server with no listener: counters, histogram and dispatch only.
    This is what the chaos tests drive via {!serve_connection}. *)

type listen = Tcp of string * int | Unix_socket of string

val start : ?config:config -> listen -> Service.t -> (t, string) result
(** Bind, listen, spawn the acceptor and worker domains. A [Unix_socket]
    path is unlinked first if present and unlinked again on {!stop}.
    [Tcp] port [0] binds an ephemeral port — read it back with
    {!address}. *)

val address : t -> Unix.sockaddr option
(** The bound address, when started. *)

val serve_connection : t -> ?queued_s:float -> Net_io.t -> unit
(** The per-connection loop: read lines, parse, dispatch, reply, until
    end-of-stream, [QUIT], a fault, or drain. Never raises; always closes
    the connection. [queued_s] is charged as [spent_s] against the first
    request's deadline. *)

val handle_request : t -> ?spent_s:float -> Protocol.request -> Protocol.reply
(** Dispatch one request exactly as {!serve_connection} does, including
    the server-level [STATS]/[HEALTH] answers — the oracle the chaos tests
    compare wire bytes against. *)

val stats : t -> stats

val verbs : string array
(** The fixed verb families per-verb counters are keyed by: every
    {!Protocol.request} kind plus ["malformed"]. *)

val stats_lines : t -> string list
(** The [STATS] reply payload: one [key value] line per field — uptime,
    corpus size, aggregate counters, one [requests_<verb>] line per
    {!verbs} entry, queue/in-flight levels and latency percentiles. *)

val metrics_lines : t -> string list
(** The [METRICS] reply payload: Prometheus text exposition of the
    server's own families ([wolves_server_*]: counters, per-verb counters,
    the latency histogram with explicit bucket bounds and [+Inf], derived
    quantile gauges) followed by the {!Wolves_obs.Metrics} registry
    rendered by {!Wolves_obs.Prom.render}. *)

val trace_events : t -> Wolves_trace.Trace.event list
(** The sampled-request events currently retained in the trace ring,
    oldest first, without draining them ([[]] when sampling is off) — for
    exporting a Perfetto trace at shutdown. *)

val request_stop : t -> unit
(** Begin draining. Async-signal-safe: sets a flag, takes no locks. *)

val stop_requested : t -> bool

val stop : t -> unit
(** Drain and join everything; idempotent, safe to call concurrently.
    After [stop], the listener is closed (and a Unix socket path
    unlinked), all domains are joined, and final gauge values are
    flushed to {!Wolves_obs.Metrics}. *)

val drained : t -> bool
(** The server has fully stopped (all domains joined). *)
